// Resilient archive: service replication + stream recording, composed
// from the library à la carte (no Runtime facade).
//
// The paper presumes "service-level parallelism and replication ... for
// efficiency, data-integrity, and fault-tolerance" (§3). This example
// builds the pipeline by hand with a replicated Filtering Service (hot
// standby), kills the primary mid-run, and shows that:
//
//   * the detection window is the only data loss,
//   * the exactly-once property survives the failover (no duplicate
//     deliveries after promotion), and
//   * an archive recorded through the outage replays cleanly as a
//     derived stream afterwards.
#include <cstdio>
#include <set>

#include "core/recorder.hpp"
#include "garnet/failover.hpp"
#include "garnet/runtime.hpp"
#include "obs/metrics.hpp"

using namespace garnet;
using util::Duration;

int main() {
  // --- hand-built stack -----------------------------------------------------
  sim::Scheduler scheduler;
  net::MessageBus bus(scheduler, {});
  core::AuthService auth({});
  core::StreamCatalog catalog;
  core::DispatchingService dispatch(bus, auth, catalog);

  wireless::SensorField::Config field_config;
  field_config.area = {{0, 0}, {400, 400}};
  field_config.radio.base_loss = 0.0;
  field_config.radio.edge_loss = 0.0;
  wireless::SensorField field(scheduler, field_config);
  field.add_receiver_grid(4, 300);

  FilteringFailover::Config failover_config;
  failover_config.mode = FilteringFailover::Mode::kHot;
  failover_config.heartbeat_interval = Duration::millis(100);
  failover_config.miss_threshold = 3;
  obs::MetricsRegistry registry;
  FilteringFailover filtering(scheduler, failover_config);
  filtering.set_metrics(registry);

  field.medium().set_uplink_sink(
      [&](const wireless::ReceptionReport& report) { filtering.ingest(report); });
  filtering.set_message_sink([&](const core::DataMessage& message, util::SimTime heard) {
    dispatch.on_filtered(message, heard);
  });

  wireless::SensorField::PopulationSpec population;
  population.count = 4;
  population.interval_ms = 100;
  field.add_population(population);

  // --- archiving consumer ----------------------------------------------------
  core::Consumer archiver(bus, "consumer.archiver");
  archiver.set_identity(auth.register_consumer("archiver", archiver.address()).value());
  std::set<std::pair<std::uint32_t, core::SequenceNo>> seen;
  std::uint64_t duplicates = 0;
  archiver.set_data_handler([&](const core::Delivery& delivery) {
    if (!seen.insert({delivery.message.stream_id.packed(), delivery.message.sequence}).second) {
      ++duplicates;
    }
  });
  core::StreamRecorder recorder(archiver);
  archiver.subscribe(core::StreamPattern::everything());
  scheduler.run_for(Duration::millis(20));

  // --- run, crash, keep running ----------------------------------------------
  field.start_all();
  scheduler.run_for(Duration::seconds(10));
  const std::uint64_t before_crash = archiver.received();
  std::printf("10s of healthy operation: %llu messages archived\n",
              static_cast<unsigned long long>(before_crash));

  filtering.kill_primary();
  scheduler.run_for(Duration::seconds(10));
  std::printf("primary filtering replica killed at t=10s\n");
  {
    const obs::MetricsSnapshot snap = registry.snapshot();
    std::printf("  detection latency: %.0fms, frames lost in window: %llu\n",
                snap.gauge("garnet.failover.detection_latency_ns") / 1e6,
                static_cast<unsigned long long>(snap.counter("garnet.failover.lost_in_window")));
  }
  std::printf("  messages after failover: %llu (duplicates leaked: %llu)\n",
              static_cast<unsigned long long>(archiver.received() - before_crash),
              static_cast<unsigned long long>(duplicates));
  field.stop_all();
  scheduler.run_for(Duration::seconds(1));

  // --- replay the archive ------------------------------------------------------
  const core::StreamId archive_stream = catalog.allocate_derived();
  catalog.advertise(archive_stream, "archive.replay", "replay", true);

  core::Consumer analyst(bus, "consumer.analyst");
  analyst.set_identity(auth.register_consumer("analyst", analyst.address()).value());
  std::uint64_t replayed = 0;
  analyst.set_data_handler([&](const core::Delivery&) { ++replayed; });
  analyst.subscribe(core::StreamPattern::exact(archive_stream));
  scheduler.run_for(Duration::millis(20));

  const auto recording = std::move(recorder).take();
  core::replay_as_stream(scheduler, recording, archiver, archive_stream, /*speed=*/20.0);
  scheduler.run_for(Duration::seconds(5));

  std::printf("archive of %zu messages (%.1fs span) replayed at 20x: analyst received %llu\n",
              recording.size(), recording.span().to_seconds(),
              static_cast<unsigned long long>(replayed));
  return duplicates == 0 && replayed == recording.size() ? 0 : 1;
}
