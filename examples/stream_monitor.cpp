// Live stream monitor: a terminal dashboard over everything on the air,
// paced by the real-time driver so updates arrive as they would in a
// deployment (here at 30x so a demo takes seconds). Exits with the
// operator text report plus the same snapshot as JSON exposition — what
// a scraper or the bench harness would ingest.
//
// With --connect the monitor runs no simulation at all: it attaches to
// a running garnet-gw daemon's stream port over TCP, subscribes to
// everything, and tails the delivery frames a remote middleware fans
// out — the same dashboard, fed across a real socket.
//
// Usage: stream_monitor [speedup]                   (default 30)
//        stream_monitor --connect host:port [--count N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/wire_types.hpp"
#include "garnet/report.hpp"
#include "garnet/runtime.hpp"
#include "gw_net.hpp"
#include "sim/realtime.hpp"

using namespace garnet;
using util::Duration;

namespace {

struct StreamRow {
  std::uint64_t messages = 0;
  double last_value = 0;
  util::SimTime last_seen;
};

/// Tails delivery frames from a garnet-gw stream port until EOF (or
/// `count` frames), then prints the per-stream roll-up.
int run_connected(const std::string& spec, std::size_t count) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "stream_monitor: --connect wants host:port\n");
    return 2;
  }
  const std::string host = spec.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
  const int fd = gw_client::connect_tcp(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "stream_monitor: cannot connect to %s\n", spec.c_str());
    return 1;
  }
  if (!gw_client::send_all(fd, std::string("SUB */*\n"))) return 1;
  const auto ack = gw_client::read_line(fd);
  if (!ack || ack->rfind("OK", 0) != 0) {
    std::fprintf(stderr, "stream_monitor: subscribe refused: %s\n", ack ? ack->c_str() : "(eof)");
    ::close(fd);
    return 1;
  }
  std::printf("connected to %s (%s); tailing...\n", spec.c_str(), ack->c_str());

  std::map<std::uint32_t, StreamRow> rows;
  std::size_t received = 0;
  while (count == 0 || received < count) {
    const auto frame = gw_client::read_frame(fd);
    if (!frame) break;
    const auto delivery = core::decode_delivery(*frame);
    if (!delivery.ok()) {
      std::fprintf(stderr, "stream_monitor: corrupt delivery frame\n");
      break;
    }
    const auto& msg = delivery.value().message;
    StreamRow& row = rows[msg.stream_id.packed()];
    ++row.messages;
    row.last_seen = delivery.value().first_heard;
    util::ByteReader r(msg.payload);
    const double value = r.f64();
    if (r.ok()) row.last_value = value;
    ++received;
    std::printf("  %-10s seq=%-6u %4zuB  last=%.2f\n", msg.stream_id.to_string().c_str(),
                msg.sequence, msg.payload.size(), row.last_value);
  }
  ::close(fd);

  std::printf("\n%-10s %-8s %s\n", "stream", "msgs", "last value");
  for (const auto& [packed, row] : rows) {
    std::printf("%-10s %-8llu %.2f\n", core::StreamId::from_packed(packed).to_string().c_str(),
                static_cast<unsigned long long>(row.messages), row.last_value);
  }
  std::printf("%zu delivery frame(s) over the wire\n", received);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_spec;
  std::size_t connect_count = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0) connect_spec = argv[i + 1];
    if (std::strcmp(argv[i], "--count") == 0) connect_count = std::strtoul(argv[i + 1], nullptr, 10);
  }
  if (!connect_spec.empty()) return run_connected(connect_spec, connect_count);

  const double speed = argc > 1 ? std::strtod(argv[1], nullptr) : 30.0;

  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  config.field.radio.base_loss = 0.05;
  Runtime runtime(config);
  runtime.deploy_receivers(9, 250);

  wireless::SensorField::PopulationSpec population;
  population.count = 6;
  population.interval_ms = 1000;
  runtime.deploy_population(population);

  core::Consumer monitor(runtime.bus(), "consumer.monitor");
  runtime.provision(monitor, "monitor");
  std::map<std::uint32_t, StreamRow> rows;
  monitor.set_data_handler([&](const core::Delivery& delivery) {
    StreamRow& row = rows[delivery.message.stream_id.packed()];
    ++row.messages;
    row.last_seen = delivery.first_heard;
    util::ByteReader r(delivery.message.payload);
    const double value = r.f64();
    if (r.ok()) row.last_value = value;
  });
  monitor.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();

  sim::RealtimeDriver driver(runtime.scheduler(), speed);
  std::printf("monitoring at %.0fx real time (6 sensors @ 1Hz)...\n\n", speed);
  for (int tick = 1; tick <= 5; ++tick) {
    driver.run_for(Duration::seconds(12));
    std::printf("t=%3.0fs  %-10s %-8s %-10s %-10s %s\n", runtime.scheduler().now().to_seconds(),
                "stream", "msgs", "last", "age(s)", "position estimate");
    for (const auto& [packed, row] : rows) {
      const core::StreamId id = core::StreamId::from_packed(packed);
      const auto estimate = runtime.location().estimate(id.sensor);
      char where[48] = "(unknown)";
      if (estimate) {
        std::snprintf(where, sizeof where, "(%.0f, %.0f) +/-%.0fm", estimate->position.x,
                      estimate->position.y, estimate->radius_m);
      }
      std::printf("        %-10s %-8llu %-10.2f %-10.1f %s\n", id.to_string().c_str(),
                  static_cast<unsigned long long>(row.messages), row.last_value,
                  (runtime.scheduler().now() - row.last_seen).to_seconds(), where);
    }
    std::printf("\n");
  }

  const auto& filter = runtime.filtering().stats();
  std::printf("totals: %llu unique messages (%llu duplicate radio copies removed)\n",
              static_cast<unsigned long long>(filter.messages_out),
              static_cast<unsigned long long>(filter.duplicates_dropped));
  for (const auto& report : runtime.filtering().stream_reports()) {
    if (report.estimated_lost > 0) {
      std::printf("  stream %s lost ~%llu frames to the radio\n",
                  report.id.to_string().c_str(),
                  static_cast<unsigned long long>(report.estimated_lost));
    }
  }

  const RuntimeReport status = snapshot(runtime);
  std::printf("\n%s", status.render().c_str());
  std::printf("\n-- JSON exposition (metrics + recent traces) --\n%s\n", status.to_json().c_str());
  return 0;
}
