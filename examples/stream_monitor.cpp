// Live stream monitor: a terminal dashboard over everything on the air,
// paced by the real-time driver so updates arrive as they would in a
// deployment (here at 30x so a demo takes seconds). Exits with the
// operator text report plus the same snapshot as JSON exposition — what
// a scraper or the bench harness would ingest.
//
// Usage: stream_monitor [speedup]    (default 30)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "garnet/report.hpp"
#include "garnet/runtime.hpp"
#include "sim/realtime.hpp"

using namespace garnet;
using util::Duration;

namespace {

struct StreamRow {
  std::uint64_t messages = 0;
  double last_value = 0;
  util::SimTime last_seen;
};

}  // namespace

int main(int argc, char** argv) {
  const double speed = argc > 1 ? std::strtod(argv[1], nullptr) : 30.0;

  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  config.field.radio.base_loss = 0.05;
  Runtime runtime(config);
  runtime.deploy_receivers(9, 250);

  wireless::SensorField::PopulationSpec population;
  population.count = 6;
  population.interval_ms = 1000;
  runtime.deploy_population(population);

  core::Consumer monitor(runtime.bus(), "consumer.monitor");
  runtime.provision(monitor, "monitor");
  std::map<std::uint32_t, StreamRow> rows;
  monitor.set_data_handler([&](const core::Delivery& delivery) {
    StreamRow& row = rows[delivery.message.stream_id.packed()];
    ++row.messages;
    row.last_seen = delivery.first_heard;
    util::ByteReader r(delivery.message.payload);
    const double value = r.f64();
    if (r.ok()) row.last_value = value;
  });
  monitor.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));
  runtime.start_sensors();

  sim::RealtimeDriver driver(runtime.scheduler(), speed);
  std::printf("monitoring at %.0fx real time (6 sensors @ 1Hz)...\n\n", speed);
  for (int tick = 1; tick <= 5; ++tick) {
    driver.run_for(Duration::seconds(12));
    std::printf("t=%3.0fs  %-10s %-8s %-10s %-10s %s\n", runtime.scheduler().now().to_seconds(),
                "stream", "msgs", "last", "age(s)", "position estimate");
    for (const auto& [packed, row] : rows) {
      const core::StreamId id = core::StreamId::from_packed(packed);
      const auto estimate = runtime.location().estimate(id.sensor);
      char where[48] = "(unknown)";
      if (estimate) {
        std::snprintf(where, sizeof where, "(%.0f, %.0f) +/-%.0fm", estimate->position.x,
                      estimate->position.y, estimate->radius_m);
      }
      std::printf("        %-10s %-8llu %-10.2f %-10.1f %s\n", id.to_string().c_str(),
                  static_cast<unsigned long long>(row.messages), row.last_value,
                  (runtime.scheduler().now() - row.last_seen).to_seconds(), where);
    }
    std::printf("\n");
  }

  const auto& filter = runtime.filtering().stats();
  std::printf("totals: %llu unique messages (%llu duplicate radio copies removed)\n",
              static_cast<unsigned long long>(filter.messages_out),
              static_cast<unsigned long long>(filter.duplicates_dropped));
  for (const auto& report : runtime.filtering().stream_reports()) {
    if (report.estimated_lost > 0) {
      std::printf("  stream %s lost ~%llu frames to the radio\n",
                  report.id.to_string().c_str(),
                  static_cast<unsigned long long>(report.estimated_lost));
    }
  }

  const RuntimeReport status = snapshot(runtime);
  std::printf("\n%s", status.render().c_str());
  std::printf("\n-- JSON exposition (metrics + recent traces) --\n%s\n", status.to_json().c_str());
  return 0;
}
