// Water-course management — the paper's own motivating scenario (§6.1):
// "we are actively developing suitable models which could be applied to
// the management of a complex water course. In such a scenario, the
// ability of the super coordinator to anticipate changes to water bodies
// and preempt actuation requests is expected to be significant."
//
// A river is instrumented with static level gauges. A flood-watch
// consumer walks a calm -> rising -> flood state machine from the gauge
// readings and, on flood, asks the gauges for a faster sampling rate and
// opens the spillway actuator stream. The Super Coordinator learns the
// state pattern; after a few flood cycles it pre-arms the Resource
// Manager while the river is still only "rising", so the flood-time
// actuation skips the admission deliberation. The example prints the
// measured admission latency per cycle — watch it collapse once the
// coordinator has learned.
#include <cstdio>

#include "garnet/runtime.hpp"

using namespace garnet;
using util::Duration;

namespace {

constexpr std::uint32_t kCalm = 1;
constexpr std::uint32_t kRising = 2;
constexpr std::uint32_t kFlood = 3;

constexpr core::SensorId kGaugeUpstream = 1;
constexpr core::SensorId kGaugeMid = 2;
constexpr core::SensorId kGaugeDownstream = 3;

/// A level gauge: static, receive-capable, reporting water level (m).
void deploy_gauge(Runtime& runtime, core::SensorId id, sim::Vec2 position, double base_level) {
  wireless::SensorNode::Config config;
  config.id = id;
  config.capabilities.receive_capable = true;
  wireless::StreamSpec level;
  level.id = 0;
  level.interval_ms = 2000;  // relaxed cadence in calm conditions
  level.constraints = {.min_interval_ms = 100, .max_interval_ms = 60000, .max_payload = 64};
  level.generate = wireless::synthetic_reading_generator(base_level, 0.4, 120.0);
  config.streams.push_back(level);
  runtime.deploy_sensor(std::move(config), std::make_unique<sim::StaticMobility>(position));
}

}  // namespace

int main() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {2000, 400}};  // a 2km river reach
  config.resource.evaluation_delay = Duration::millis(25);
  Runtime runtime(config);
  runtime.deploy_receivers(6, 500);
  runtime.deploy_transmitters(6, 600);

  deploy_gauge(runtime, kGaugeUpstream, {200, 200}, 2.0);
  deploy_gauge(runtime, kGaugeMid, {1000, 200}, 2.4);
  deploy_gauge(runtime, kGaugeDownstream, {1800, 200}, 2.8);

  // --- flood-watch consumer ------------------------------------------------
  core::Consumer flood_watch(runtime.bus(), "consumer.flood-watch");
  runtime.provision(flood_watch, "flood-watch", /*priority=*/200,
                    core::TrustLevel::kTrusted);
  flood_watch.subscribe(core::StreamPattern::everything());

  // Teach the coordinator: when flood-watch is predicted to reach kFlood,
  // it will ask the mid gauge for 100ms sampling — pre-approve it.
  runtime.coordinator().add_rule(
      {"flood-watch", kFlood, {kGaugeMid, 0}, core::UpdateAction::kSetIntervalMs, 100});

  // During a flood the middleware should resolve conflicts by priority
  // (emergency services outrank research consumers).
  runtime.coordinator().set_policy_hook(
      [](const core::GlobalView& view) -> std::optional<core::ConflictPolicy> {
        for (const auto& [id, consumer] : view) {
          if (consumer.state == kFlood) return core::ConflictPolicy::kPriorityWins;
        }
        return core::ConflictPolicy::kMostDemandingWins;
      });

  // A mutually-unaware research consumer with a slow demand on the same
  // gauge; flood-watch never needs to know it exists.
  core::Consumer research(runtime.bus(), "consumer.hydrology-study");
  runtime.provision(research, "hydrology-study", /*priority=*/50);
  research.request_update({kGaugeMid, 0}, core::UpdateAction::kSetIntervalMs, 10000, {});

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(5));

  std::puts("cycle  admission-latency  prearm-hits  policy-during-flood");
  for (int cycle = 1; cycle <= 8; ++cycle) {
    // Calm.
    flood_watch.report_state(kCalm);
    runtime.run_for(Duration::seconds(60));

    // Rising: the coordinator may now anticipate the flood.
    flood_watch.report_state(kRising);
    runtime.run_for(Duration::seconds(60));

    // Flood: request the fast sampling rate; measure admission latency.
    flood_watch.report_state(kFlood);
    runtime.run_for(Duration::millis(5));
    const util::SimTime asked = runtime.scheduler().now();
    double latency_ms = -1;
    flood_watch.request_update(
        {kGaugeMid, 0}, core::UpdateAction::kSetIntervalMs, 100,
        [&](std::uint32_t, core::Admission, std::uint32_t) {
          latency_ms = (runtime.scheduler().now() - asked).to_millis();
        });
    runtime.run_for(Duration::seconds(30));

    std::printf("%5d  %14.2fms  %11llu  %s\n", cycle, latency_ms,
                static_cast<unsigned long long>(runtime.resource().stats().prearm_hits),
                std::string(core::to_string(runtime.resource().policy())).c_str());

    // Recede: back to the relaxed rate.
    flood_watch.request_update({kGaugeMid, 0}, core::UpdateAction::kSetIntervalMs, 2000, {});
    runtime.run_for(Duration::seconds(60));
  }

  // --- wrap-up -------------------------------------------------------------
  const auto& act = runtime.actuation().stats();
  std::printf("\nactuation over all cycles: %llu requests, %llu acked, %llu expired\n",
              static_cast<unsigned long long>(act.requests),
              static_cast<unsigned long long>(act.acked),
              static_cast<unsigned long long>(act.expired));
  std::printf("coordinator: %llu reports, %llu predictions, %llu pre-arms, %llu policy changes\n",
              static_cast<unsigned long long>(runtime.coordinator().stats().reports),
              static_cast<unsigned long long>(runtime.coordinator().stats().predictions),
              static_cast<unsigned long long>(runtime.coordinator().stats().prearms_issued),
              static_cast<unsigned long long>(runtime.coordinator().stats().policy_changes));
  std::printf("research consumer's slow demand was mediated, not destroyed: gauge interval now "
              "%ums\n",
              runtime.resource().believed_interval({kGaugeMid, 0}).value_or(0));
  return 0;
}
