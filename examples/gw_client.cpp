// gw_client: command-line peer for the garnet-gw daemon — all four
// roles a real deployment would put on the wire:
//
//   gw_client put 42/1 23.5 --count 10     push frames as an external producer
//   gw_client sub '*'                      tail matching deliveries (stream port)
//   gw_client get 42/1                     read the last value (cache port)
//   gw_client list                         enumerate cached streams
//   gw_client metrics                      Prometheus exposition via the cache port
//
// Common flags: --host H (default 127.0.0.1), --port P (defaults to the
// daemon's default port for the chosen mode), --count N, --interval-ms M.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "gw_net.hpp"
#include "gw/uri_cache.hpp"
#include "util/bytes.hpp"

using namespace garnet;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = mode default
  std::size_t count = 0;   // sub: 0 = forever; put: 0 = 1 frame
  std::uint32_t interval_ms = 0;
};

int usage() {
  std::fprintf(stderr,
               "usage: gw_client <mode> [args] [--host H] [--port P] [--count N] "
               "[--interval-ms M]\n"
               "  put <sid/tag> <value>   send frames to the ingest port (default :7070)\n"
               "  sub <pattern>           tail deliveries from the stream port (default :7071)\n"
               "  get <sid/tag>           query the last-value cache (default :7072)\n"
               "  list | metrics          cache-port introspection\n");
  return 2;
}

bool parse_flags(int argc, char** argv, int first, Options& out) {
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      out.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      out.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--count" && has_value) {
      out.count = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--interval-ms" && has_value) {
      out.interval_ms = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return false;
    }
  }
  return true;
}

int connect_or_die(const Options& opt, std::uint16_t default_port) {
  const std::uint16_t port = opt.port ? opt.port : default_port;
  const int fd = gw_client::connect_tcp(opt.host, port);
  if (fd < 0) {
    std::fprintf(stderr, "gw_client: cannot connect to %s:%u\n", opt.host.c_str(), port);
    std::exit(1);
  }
  return fd;
}

int run_put(const Options& opt, const std::string& uri, double value) {
  const auto id = gw::parse_stream_uri(uri);
  if (!id) {
    std::fprintf(stderr, "gw_client: bad stream uri '%s' (want SID/TAG)\n", uri.c_str());
    return 2;
  }
  const int fd = connect_or_die(opt, 7070);
  const std::size_t frames = opt.count ? opt.count : 1;
  for (std::size_t i = 0; i < frames; ++i) {
    core::DataMessage msg;
    msg.stream_id = *id;
    msg.sequence = static_cast<core::SequenceNo>(i);
    util::ByteWriter payload(8);
    payload.f64(value + static_cast<double>(i));
    msg.payload = std::move(payload).take();
    if (!gw_client::send_all(fd, gw_client::frame_bytes(core::encode(msg)))) {
      std::fprintf(stderr, "gw_client: peer closed mid-send\n");
      ::close(fd);
      return 1;
    }
    if (opt.interval_ms > 0 && i + 1 < frames) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
  }
  ::close(fd);
  std::printf("sent %zu frame(s) on %s\n", frames, uri.c_str());
  return 0;
}

int run_sub(const Options& opt, const std::string& pattern) {
  const int fd = connect_or_die(opt, 7071);
  if (!gw_client::send_all(fd, "SUB " + pattern + "\n")) return 1;
  const auto ack = gw_client::read_line(fd);
  if (!ack || ack->rfind("OK", 0) != 0) {
    std::fprintf(stderr, "gw_client: subscribe refused: %s\n", ack ? ack->c_str() : "(eof)");
    ::close(fd);
    return 1;
  }
  std::printf("%s; streaming...\n", ack->c_str());
  std::size_t received = 0;
  while (opt.count == 0 || received < opt.count) {
    const auto frame = gw_client::read_frame(fd);
    if (!frame) break;
    const auto delivery = core::decode_delivery(*frame);
    if (!delivery.ok()) {
      std::fprintf(stderr, "gw_client: corrupt delivery frame\n");
      ::close(fd);
      return 1;
    }
    const auto& msg = delivery.value().message;
    double value = 0;
    util::ByteReader r(msg.payload);
    value = r.f64();
    std::printf("%-10s seq=%-6u %4zuB%s\n", msg.stream_id.to_string().c_str(), msg.sequence,
                msg.payload.size(), r.ok() ? (" value=" + std::to_string(value)).c_str() : "");
    ++received;
  }
  ::close(fd);
  std::printf("received %zu delivery frame(s)\n", received);
  return 0;
}

int run_get(const Options& opt, const std::string& uri) {
  const int fd = connect_or_die(opt, 7072);
  if (!gw_client::send_all(fd, "GET " + uri + "\n")) return 1;
  const auto reply = gw_client::read_line(fd);
  if (!reply) return 1;
  std::printf("%s\n", reply->c_str());
  if (reply->rfind("VALUE ", 0) == 0) {
    // VALUE <uri> <seq> <age_ms> <len>\n<len payload bytes>\n
    const std::size_t len = std::strtoul(reply->substr(reply->rfind(' ') + 1).c_str(), nullptr, 10);
    util::Bytes payload(len);
    if (!gw_client::read_exact(fd, payload.data(), len)) return 1;
    util::ByteReader r(payload);
    const double value = r.f64();
    if (r.ok()) {
      std::printf("  payload: %g\n", value);
    } else {
      std::printf("  payload: %zu opaque bytes\n", len);
    }
  }
  ::close(fd);
  return 0;
}

int run_cache_command(const Options& opt, const std::string& command) {
  const int fd = connect_or_die(opt, 7072);
  if (!gw_client::send_all(fd, command + "\n")) return 1;
  const auto header = gw_client::read_line(fd);
  if (!header) return 1;
  std::printf("%s\n", header->c_str());
  std::size_t body_lines = 0;
  if (header->rfind("STREAMS ", 0) == 0) {
    body_lines = std::strtoul(header->c_str() + 8, nullptr, 10);
    for (std::size_t i = 0; i < body_lines; ++i) {
      const auto line = gw_client::read_line(fd);
      if (!line) return 1;
      std::printf("%s\n", line->c_str());
    }
  } else if (header->rfind("METRICS ", 0) == 0) {
    const std::size_t len = std::strtoul(header->c_str() + 8, nullptr, 10);
    std::string text(len, '\0');
    if (!gw_client::read_exact(fd, reinterpret_cast<std::byte*>(text.data()), len)) return 1;
    std::fputs(text.c_str(), stdout);
  }
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  Options opt;

  if (mode == "put" && argc >= 4) {
    if (!parse_flags(argc, argv, 4, opt)) return usage();
    return run_put(opt, argv[2], std::strtod(argv[3], nullptr));
  }
  if (mode == "sub" && argc >= 3) {
    if (!parse_flags(argc, argv, 3, opt)) return usage();
    return run_sub(opt, argv[2]);
  }
  if (mode == "get" && argc >= 3) {
    if (!parse_flags(argc, argv, 3, opt)) return usage();
    return run_get(opt, argv[2]);
  }
  if (mode == "list" || mode == "metrics") {
    if (!parse_flags(argc, argv, 2, opt)) return usage();
    return run_cache_command(opt, mode == "list" ? "LIST" : "METRICS");
  }
  return usage();
}
