// Quickstart: the smallest useful Garnet deployment.
//
//   1. build a runtime (virtual clock, radio, all middleware services)
//   2. deploy receivers and a couple of sensors
//   3. provision a consumer, subscribe, receive data
//   4. send one control message back into the field
//
// Run:  ./quickstart
#include <cstdio>

#include "garnet/runtime.hpp"

using namespace garnet;
using util::Duration;

int main() {
  // --- 1. runtime ---------------------------------------------------------
  Runtime::Config config;
  config.field.area = {{0, 0}, {500, 500}};  // metres
  config.field.radio.base_loss = 0.02;       // the radio is not perfect
  Runtime runtime(config);

  // --- 2. field -----------------------------------------------------------
  runtime.deploy_receivers(/*count=*/4, /*range_m=*/300);
  runtime.deploy_transmitters(/*count=*/4, /*range_m=*/400);

  // Two mobile temperature sensors, one receive-capable, one transmit-only:
  // Garnet lets simple and sophisticated devices coexist.
  wireless::SensorField::PopulationSpec smart;
  smart.first_id = 1;
  smart.count = 1;
  smart.capabilities = {.receive_capable = true, .location_aware = false};
  smart.interval_ms = 500;
  runtime.deploy_population(smart);

  wireless::SensorField::PopulationSpec simple;
  simple.first_id = 2;
  simple.count = 1;
  simple.capabilities = {.receive_capable = false, .location_aware = false};
  simple.interval_ms = 500;
  runtime.deploy_population(simple);

  // --- 3. consumer ---------------------------------------------------------
  core::Consumer app(runtime.bus(), "consumer.quickstart");
  runtime.provision(app, "quickstart");

  std::uint64_t readings = 0;
  app.set_data_handler([&](const core::Delivery& delivery) {
    ++readings;
    if (readings <= 3) {
      util::ByteReader r(delivery.message.payload);
      std::printf("  reading from stream %-8s seq=%-5u value=%.2f\n",
                  delivery.message.stream_id.to_string().c_str(), delivery.message.sequence,
                  r.f64());
    }
  });
  app.subscribe(core::StreamPattern::everything());
  runtime.run_for(Duration::millis(20));

  std::puts("starting sensors; first readings:");
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(30));
  std::printf("received %llu readings in 30s of virtual time\n",
              static_cast<unsigned long long>(readings));

  // Streams are discoverable even though nobody advertised them.
  const auto discovered = runtime.catalog().discover({});
  std::printf("catalog detected %zu streams on the air\n", discovered.size());

  // --- 4. control path -----------------------------------------------------
  std::puts("asking sensor 1 to sample twice as fast...");
  app.request_update({1, 0}, core::UpdateAction::kSetIntervalMs, 250,
                     [](std::uint32_t request_id, core::Admission admission,
                        std::uint32_t effective) {
                       std::printf("  admission: %s, effective interval %ums (request #%u)\n",
                                   admission == core::Admission::kApproved ? "approved"
                                   : admission == core::Admission::kModified ? "modified"
                                                                             : "denied",
                                   effective, request_id);
                     });
  runtime.run_for(Duration::seconds(10));

  const auto& actuation = runtime.actuation().stats();
  std::printf("actuation: %llu sent, %llu acknowledged by the sensor\n",
              static_cast<unsigned long long>(actuation.sent),
              static_cast<unsigned long long>(actuation.acked));

  const auto estimate = runtime.location().estimate(1);
  if (estimate) {
    std::printf("sensor 1 located near (%.0f, %.0f) +/- %.0fm without ever sending a position\n",
                estimate->position.x, estimate->position.y, estimate->radius_m);
  }
  return 0;
}
