// Tiny blocking TCP client helpers shared by the gateway examples
// (gw_client, stream_monitor --connect). Deliberately synchronous and
// minimal — the hard non-blocking work lives on the daemon side; a
// client that waits on one socket needs nothing more than connect,
// send-all, read-line, and read-frame.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include "gw/framing.hpp"
#include "util/bytes.hpp"

namespace garnet::gw_client {

/// Connects to host:port; -1 on failure. Caller closes the fd.
inline int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

inline bool send_all(int fd, util::BytesView data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

inline bool send_all(int fd, const std::string& text) {
  return send_all(fd, util::BytesView(reinterpret_cast<const std::byte*>(text.data()),
                                      text.size()));
}

/// Reads exactly n bytes; false on EOF/error.
inline bool read_exact(int fd, std::byte* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

/// Reads up to and including one '\n' (stripped, like getline).
inline std::optional<std::string> read_line(int fd, std::size_t max = 1 << 20) {
  std::string line;
  char c = 0;
  while (line.size() < max) {
    const ssize_t r = ::recv(fd, &c, 1, 0);
    if (r <= 0) return std::nullopt;
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    line.push_back(c);
  }
  return std::nullopt;
}

/// Reads one [u32 length][body] frame off the stream; nullopt on EOF,
/// error, or a length past the protocol bound.
inline std::optional<util::Bytes> read_frame(int fd) {
  std::byte prefix[gw::kLengthPrefixBytes];
  if (!read_exact(fd, prefix, sizeof prefix)) return std::nullopt;
  const std::uint32_t length = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                               (static_cast<std::uint32_t>(prefix[1]) << 16) |
                               (static_cast<std::uint32_t>(prefix[2]) << 8) |
                               static_cast<std::uint32_t>(prefix[3]);
  if (length > gw::kMaxFrameBody) return std::nullopt;
  util::Bytes body(length);
  if (!read_exact(fd, body.data(), body.size())) return std::nullopt;
  return body;
}

/// Length-prefixes `body` for the gateway's binary surfaces.
inline util::Bytes frame_bytes(util::BytesView body) {
  util::Bytes out(gw::kLengthPrefixBytes + body.size());
  gw::put_length_prefix(static_cast<std::uint32_t>(body.size()), out.data());
  std::memcpy(out.data() + gw::kLengthPrefixBytes, body.data(), body.size());
  return out;
}

}  // namespace garnet::gw_client
