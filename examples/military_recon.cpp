// Military reconnaissance — the paper's second headline application
// domain (§1: "environmental monitoring and military reconnaissance").
//
// What this exercises that the other examples do not:
//
//   * end-to-end encryption (§9): ground sensors seal their payloads;
//     the middleware forwards opaque bytes it cannot read, and only the
//     intelligence consumer holding the key can open them — a compromised
//     observer consumer subscribing to the same stream gets ciphertext;
//   * trust levels: the command consumer is kTrusted and overrides the
//     conflict policy; an untrusted liaison may subscribe but its
//     actuation requests are refused outright;
//   * location tracking of a moving asset from reception evidence, used
//     to task sensors near its predicted path.
#include <cstdio>

#include "crypto/sealed.hpp"
#include "garnet/runtime.hpp"

using namespace garnet;
using util::Duration;

namespace {

constexpr core::SensorId kPatrolTag = 50;  // tag on a friendly patrol

/// Acoustic ground sensors with sealed payloads, ids 1..9 on a grid.
void deploy_ground_sensors(Runtime& runtime, const crypto::Key& key) {
  const auto positions = sim::grid_layout(runtime.field().area(), 9);
  for (core::SensorId id = 1; id <= 9; ++id) {
    wireless::SensorNode::Config config;
    config.id = id;
    config.capabilities.receive_capable = true;
    wireless::StreamSpec acoustic;
    acoustic.id = 0;
    acoustic.interval_ms = 1000;
    acoustic.constraints = {.min_interval_ms = 100, .max_interval_ms = 30000, .max_payload = 96};
    // Each sensor seals its reading under the theatre key. The nonce is
    // derived from the sensor identity and the message sequence number —
    // the sequence counter in the generator advances in lockstep with the
    // wire sequence (one sample, one message), so the consumer can rebuild
    // the nonce from the Figure-2 header alone.
    acoustic.generate = [key, id, seq = std::uint64_t{0}](util::SimTime,
                                                          util::Rng& rng) mutable {
      util::ByteWriter w(8);
      w.f64(rng.normal(30.0, 4.0));  // ambient dB
      const crypto::Nonce nonce =
          crypto::nonce_from_counter((static_cast<std::uint64_t>(id) << 32) | (seq++ & 0xFFFF));
      return crypto::seal(key, nonce, w.view());
    };
    config.streams.push_back(acoustic);
    runtime.deploy_sensor(std::move(config),
                          std::make_unique<sim::StaticMobility>(positions[id - 1]));
  }
}

}  // namespace

int main() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {900, 900}};
  config.field.radio.base_loss = 0.08;  // contested spectrum
  config.resource.policy = core::ConflictPolicy::kRejectConflicts;
  Runtime runtime(config);
  runtime.deploy_receivers(9, 260);
  runtime.deploy_transmitters(9, 350);

  const crypto::Key theatre_key = crypto::key_from_seed(0x5EC7E7);
  deploy_ground_sensors(runtime, theatre_key);

  // A friendly patrol tag moving along a sweep route (plain payloads).
  wireless::SensorNode::Config tag;
  tag.id = kPatrolTag;
  wireless::StreamSpec beacon;
  beacon.id = 0;
  beacon.interval_ms = 2000;
  tag.streams.push_back(beacon);
  runtime.deploy_sensor(std::move(tag),
                        std::make_unique<sim::PathMobility>(
                            std::vector<sim::Vec2>{{100, 100}, {800, 100}, {800, 800},
                                                   {100, 800}},
                            2.0));

  // --- consumers -----------------------------------------------------------
  // Intelligence: trusted, holds the theatre key.
  core::Consumer intel(runtime.bus(), "consumer.intel");
  runtime.provision(intel, "intel", /*priority=*/220, core::TrustLevel::kTrusted);

  std::uint64_t opened = 0;
  std::uint64_t reject_bad = 0;
  intel.set_data_handler([&](const core::Delivery& delivery) {
    const auto sensor = delivery.message.stream_id.sensor;
    if (sensor == kPatrolTag) return;
    // The nonce is fully determined by the Figure-2 header: sensor id
    // plus sequence. Lost frames cost nothing — each message opens on
    // its own.
    const crypto::Nonce nonce = crypto::nonce_from_counter(
        (static_cast<std::uint64_t>(sensor) << 32) | delivery.message.sequence);
    const auto plain = crypto::open(theatre_key, nonce, delivery.message.payload);
    if (plain.ok()) {
      ++opened;
    } else {
      ++reject_bad;
    }
  });
  intel.subscribe(core::StreamPattern::everything());

  // A compromised observer: registered, but has no key.
  core::Consumer observer(runtime.bus(), "consumer.observer");
  runtime.provision(observer, "observer", /*priority=*/10);
  std::uint64_t observer_plaintexts = 0;
  std::uint64_t observer_ciphertexts = 0;
  observer.set_data_handler([&](const core::Delivery& delivery) {
    if (delivery.message.stream_id.sensor == kPatrolTag) return;
    const crypto::Nonce guess = crypto::nonce_from_counter(0);
    if (crypto::open(crypto::key_from_seed(0xBAD), guess, delivery.message.payload).ok()) {
      ++observer_plaintexts;
    } else {
      ++observer_ciphertexts;
    }
  });
  observer.subscribe(core::StreamPattern::everything());

  // An untrusted liaison: may watch, must not actuate.
  core::Consumer liaison(runtime.bus(), "consumer.liaison");
  runtime.provision(liaison, "liaison", /*priority=*/10, core::TrustLevel::kUntrusted);

  runtime.run_for(Duration::millis(50));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(180));

  std::printf("intel opened %llu sealed readings (%llu unrecoverable)\n",
              static_cast<unsigned long long>(opened),
              static_cast<unsigned long long>(reject_bad));
  std::printf("observer without the key decrypted %llu of %llu frames\n",
              static_cast<unsigned long long>(observer_plaintexts),
              static_cast<unsigned long long>(observer_plaintexts + observer_ciphertexts));

  // --- tasking around the patrol -------------------------------------------
  const auto patrol = runtime.location().estimate(kPatrolTag);
  if (patrol) {
    std::printf("patrol tag tracked near (%.0f, %.0f) +/- %.0fm\n", patrol->position.x,
                patrol->position.y, patrol->radius_m);
  }

  // The observer tries to slow sensor 5 down; intel wants it fast. Under
  // reject-conflicts the second, conflicting demand would normally lose —
  // but intel is trusted and overrides (§9).
  observer.request_update({5, 0}, core::UpdateAction::kSetIntervalMs, 30000,
                          [](std::uint32_t, core::Admission a, std::uint32_t v) {
                            std::printf("observer demand: %s (effective %ums)\n",
                                        a == core::Admission::kDenied ? "denied" : "admitted", v);
                          });
  runtime.run_for(Duration::seconds(2));
  intel.request_update({5, 0}, core::UpdateAction::kSetIntervalMs, 200,
                       [](std::uint32_t, core::Admission a, std::uint32_t v) {
                         std::printf("intel demand:    %s (effective %ums) via trusted override\n",
                                     a == core::Admission::kDenied ? "denied" : "admitted", v);
                       });
  runtime.run_for(Duration::seconds(2));

  // The untrusted liaison is refused at admission.
  liaison.request_update({5, 0}, core::UpdateAction::kDisableStream, 0,
                         [](std::uint32_t, core::Admission a, std::uint32_t) {
                           std::printf("liaison demand:  %s (untrusted consumers may not actuate)\n",
                                       a == core::Admission::kDenied ? "denied" : "ADMITTED?!");
                         });
  runtime.run_for(Duration::seconds(10));

  std::printf("resource manager: %llu approved, %llu modified, %llu denied, %llu overrides\n",
              static_cast<unsigned long long>(runtime.resource().stats().approved),
              static_cast<unsigned long long>(runtime.resource().stats().modified),
              static_cast<unsigned long long>(runtime.resource().stats().denied),
              static_cast<unsigned long long>(runtime.resource().stats().trusted_overrides));
  return 0;
}
