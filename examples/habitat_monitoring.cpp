// Habitat monitoring — the application driver the paper's introduction
// leans on (Cerpa et al., Mainwaring et al.): dense, unattended sensing
// of an environment, with data consumed by research teams that did not
// deploy the network and do not know about each other.
//
// This example shows the *multi-level consumption* story (§4.2):
//
//   level 0: wildlife collar tags (mobile) + static weather stations
//   level 1: zone aggregators subscribe to raw streams, publish derived
//            per-zone summaries
//   level 2: a biologist dashboard subscribes only to the derived
//            summaries — it never touches the raw firehose
//
// It also demonstrates discovery by stream class and Orphanage backlog
// claim: the dashboard arrives late and still gets the summaries it
// missed.
#include <cstdio>

#include "garnet/runtime.hpp"

using namespace garnet;
using util::Duration;

namespace {

/// Level-1 zone aggregator: average temperature over a rectangular zone.
class ZoneAggregator {
 public:
  ZoneAggregator(Runtime& runtime, std::string zone_name, core::SensorId first,
                 core::SensorId last)
      : consumer_(runtime.bus(), "consumer.zone." + zone_name), name_(std::move(zone_name)) {
    runtime.provision(consumer_, "zone." + name_);
    summary_ = runtime.create_derived_stream("summary." + name_, "zone-summary");
    consumer_.set_data_handler([this](const core::Delivery& delivery) {
      util::ByteReader r(delivery.message.payload);
      const double value = r.f64();
      if (!r.ok()) return;
      sum_ += value;
      if (++count_ % 32 == 0) publish();
    });
    for (core::SensorId id = first; id <= last; ++id) {
      consumer_.subscribe(core::StreamPattern::all_of(id));
    }
  }

  [[nodiscard]] core::StreamId summary_stream() const { return summary_; }
  [[nodiscard]] std::uint64_t raw_messages() const { return consumer_.received(); }

 private:
  void publish() {
    util::ByteWriter w(8);
    w.f64(sum_ / 32.0);
    sum_ = 0;
    consumer_.publish_derived(summary_, std::move(w).take(),
                              static_cast<std::uint8_t>(core::HeaderFlag::kFused));
  }

  core::Consumer consumer_;
  std::string name_;
  core::StreamId summary_{};
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace

int main() {
  Runtime::Config config;
  config.field.area = {{0, 0}, {1200, 1200}};  // a 1.2km square reserve
  config.field.radio.base_loss = 0.05;
  config.field.radio.edge_loss = 0.3;
  config.orphanage.retention_per_stream = 32;
  Runtime runtime(config);
  runtime.deploy_receivers(16, 260);
  runtime.deploy_transmitters(9, 400);

  // 24 wildlife collar tags roaming the reserve (simple, transmit-only),
  // ids 1..24 in two habitat zones by initial placement.
  wireless::SensorField::PopulationSpec collars;
  collars.first_id = 1;
  collars.count = 24;
  collars.capabilities = {.receive_capable = false, .location_aware = false};
  collars.interval_ms = 1000;
  collars.min_speed_mps = 0.3;
  collars.max_speed_mps = 1.5;
  runtime.deploy_population(collars);

  // 4 static weather stations (sophisticated), ids 100..103.
  for (core::SensorId id = 100; id <= 103; ++id) {
    wireless::SensorNode::Config station;
    station.id = id;
    station.capabilities.receive_capable = true;
    wireless::StreamSpec temperature;
    temperature.id = 0;
    temperature.interval_ms = 5000;
    temperature.generate = wireless::synthetic_reading_generator(14.0, 6.0, 3600.0);
    station.streams.push_back(temperature);
    wireless::StreamSpec humidity;
    humidity.id = 1;
    humidity.interval_ms = 10000;
    humidity.generate = wireless::synthetic_reading_generator(70.0, 15.0, 3600.0);
    station.streams.push_back(humidity);
    runtime.deploy_sensor(std::move(station),
                          std::make_unique<sim::StaticMobility>(sim::Vec2{
                              300.0 * static_cast<double>(id - 99), 600.0}));
  }

  // Level-1 aggregators for the two collar populations.
  ZoneAggregator north(runtime, "north", 1, 12);
  ZoneAggregator south(runtime, "south", 13, 24);

  runtime.start_sensors();
  runtime.run_for(Duration::seconds(120));

  // --- a biologist arrives late -------------------------------------------
  // Discovery by class: find the zone summaries without knowing ids.
  core::StreamCatalog::Query query;
  query.stream_class = "zone-summary";
  const auto summaries = runtime.catalog().discover(query);
  std::printf("dashboard discovered %zu zone-summary streams:\n", summaries.size());
  for (const core::StreamInfo& info : summaries) {
    std::printf("  %-16s stream %-10s %llu messages so far\n", info.name.c_str(),
                info.id.to_string().c_str(), static_cast<unsigned long long>(info.messages));
  }

  core::Consumer dashboard(runtime.bus(), "consumer.dashboard");
  runtime.provision(dashboard, "dashboard");
  std::uint64_t live_updates = 0;
  dashboard.set_data_handler([&](const core::Delivery&) { ++live_updates; });

  // Claim what was orphaned before the dashboard existed, then go live.
  std::size_t backlog_total = 0;
  for (const core::StreamInfo& info : summaries) {
    const auto backlog = runtime.orphanage().claim(info.id);
    backlog_total += backlog.size();
    dashboard.subscribe(core::StreamPattern::exact(info.id));
  }
  std::printf("claimed %zu backlog summaries from the Orphanage\n", backlog_total);

  runtime.run_for(Duration::seconds(120));
  std::printf("dashboard received %llu live summaries over the next 2 minutes\n",
              static_cast<unsigned long long>(live_updates));

  // --- what the middleware absorbed ----------------------------------------
  const auto radio = runtime.telemetry().registry.snapshot();
  const auto& filter = runtime.filtering().stats();
  std::printf("\nradio: %llu frames sent, %llu copies heard (%llu duplicates), %llu unheard\n",
              static_cast<unsigned long long>(radio.counter("garnet.radio.uplink_frames")),
              static_cast<unsigned long long>(radio.counter("garnet.radio.uplink_deliveries")),
              static_cast<unsigned long long>(radio.counter("garnet.radio.uplink_duplicates")),
              static_cast<unsigned long long>(radio.counter("garnet.radio.uplink_unheard")));
  std::printf("filter: %llu duplicates eliminated, %llu unique messages reconstructed\n",
              static_cast<unsigned long long>(filter.duplicates_dropped),
              static_cast<unsigned long long>(filter.messages_out));
  std::printf("aggregators consumed %llu raw readings the dashboard never saw\n",
              static_cast<unsigned long long>(north.raw_messages() + south.raw_messages()));

  // The collars never sent coordinates; the reserve still knows roughly
  // where they are.
  std::size_t located = 0;
  for (core::SensorId id = 1; id <= 24; ++id) {
    if (runtime.location().estimate(id)) ++located;
  }
  std::printf("location service currently tracks %zu of 24 collars from reception evidence\n",
              located);
  return 0;
}
