// Field survey: a configurable scenario runner for capacity planning.
//
// Deploys a parameterised field, runs it for a stretch of virtual time,
// and prints the full middleware status report — the tool an operator
// would use to answer "how many receivers do I need for N sensors?"
// before committing hardware.
//
// Usage: field_survey [sensors] [receivers] [minutes] [seed]
//   defaults:         24        9           5         42
#include <cstdio>
#include <cstdlib>

#include "garnet/report.hpp"
#include "garnet/runtime.hpp"

using namespace garnet;
using util::Duration;

int main(int argc, char** argv) {
  const std::size_t sensors = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t receivers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 9;
  const long minutes = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 5;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
  if (sensors == 0 || receivers == 0 || minutes <= 0) {
    std::fprintf(stderr, "usage: %s [sensors>0] [receivers>0] [minutes>0] [seed]\n", argv[0]);
    return 1;
  }

  Runtime::Config config;
  config.field.area = {{0, 0}, {1000, 1000}};
  config.field.seed = seed;
  config.field.radio.base_loss = 0.05;
  config.field.radio.edge_loss = 0.3;
  config.publish_location_stream = true;
  Runtime runtime(config);
  runtime.deploy_receivers(receivers, 1000.0 / std::max(2.0, std::sqrt(double(receivers))) + 120);
  runtime.deploy_transmitters(std::max<std::size_t>(receivers / 2, 1), 400);

  wireless::SensorField::PopulationSpec population;
  population.first_id = 1;
  population.count = sensors;
  population.interval_ms = 1000;
  runtime.deploy_population(population);

  // A survey consumer watching everything, plus a capped dashboard that
  // shows the QoS machinery in the report.
  core::Consumer firehose(runtime.bus(), "consumer.survey");
  runtime.provision(firehose, "survey");
  firehose.subscribe(core::StreamPattern::everything());

  core::Consumer dashboard(runtime.bus(), "consumer.dashboard");
  runtime.provision(dashboard, "dashboard");
  dashboard.subscribe(core::StreamPattern::everything(),
                      core::SubscribeOptions{.min_interval_ms = 5000, .max_age_ms = 0});

  std::printf("surveying %zu sensors / %zu receivers for %ld virtual minutes (seed %llu)...\n\n",
              sensors, receivers, minutes, static_cast<unsigned long long>(seed));
  runtime.run_for(Duration::millis(50));
  runtime.start_sensors();
  runtime.run_for(Duration::seconds(60 * minutes));

  const RuntimeReport report = snapshot(runtime);
  std::fputs(report.render().c_str(), stdout);

  // The planning verdict: what fraction of transmitted data reached a
  // consumer, and how well the field is localised.
  std::uint64_t transmitted = 0;
  std::size_t located = 0;
  for (std::size_t i = 0; i < runtime.field().sensor_count(); ++i) {
    transmitted += runtime.field().sensor_at(i).messages_sent();
    if (runtime.location().estimate(runtime.field().sensor_at(i).id())) ++located;
  }
  std::printf("\nverdict\n");
  std::printf("  delivery fraction                %.1f%%\n",
              100.0 * static_cast<double>(firehose.received()) /
                  static_cast<double>(std::max<std::uint64_t>(transmitted, 1)));
  std::printf("  median delivery latency          %.2fms\n",
              firehose.delivery_latency().median() / 1e6);
  std::printf("  sensors currently localised      %zu / %zu\n", located, sensors);
  return 0;
}
