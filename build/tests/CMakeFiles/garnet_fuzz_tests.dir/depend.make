# Empty dependencies file for garnet_fuzz_tests.
# This may be replaced when dependencies are built.
