file(REMOVE_RECURSE
  "CMakeFiles/garnet_fuzz_tests.dir/fuzz/test_robustness.cpp.o"
  "CMakeFiles/garnet_fuzz_tests.dir/fuzz/test_robustness.cpp.o.d"
  "garnet_fuzz_tests"
  "garnet_fuzz_tests.pdb"
  "garnet_fuzz_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_fuzz_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
