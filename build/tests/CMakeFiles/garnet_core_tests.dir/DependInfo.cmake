
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_actuation.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_actuation.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_actuation.cpp.o.d"
  "/root/repo/tests/core/test_auth.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_auth.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_auth.cpp.o.d"
  "/root/repo/tests/core/test_catalog.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_catalog.cpp.o.d"
  "/root/repo/tests/core/test_catalog_service.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_catalog_service.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_catalog_service.cpp.o.d"
  "/root/repo/tests/core/test_constraints.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_constraints.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_constraints.cpp.o.d"
  "/root/repo/tests/core/test_consumer.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_consumer.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_consumer.cpp.o.d"
  "/root/repo/tests/core/test_coordinator.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_coordinator.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_coordinator.cpp.o.d"
  "/root/repo/tests/core/test_dispatch.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_dispatch.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_dispatch.cpp.o.d"
  "/root/repo/tests/core/test_filtering.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_filtering.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_filtering.cpp.o.d"
  "/root/repo/tests/core/test_location.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_location.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_location.cpp.o.d"
  "/root/repo/tests/core/test_message.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_message.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_message.cpp.o.d"
  "/root/repo/tests/core/test_orphanage.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_orphanage.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_orphanage.cpp.o.d"
  "/root/repo/tests/core/test_pubsub.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_pubsub.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_pubsub.cpp.o.d"
  "/root/repo/tests/core/test_qos.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_qos.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_qos.cpp.o.d"
  "/root/repo/tests/core/test_recorder.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_recorder.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_recorder.cpp.o.d"
  "/root/repo/tests/core/test_replicator.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_replicator.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_replicator.cpp.o.d"
  "/root/repo/tests/core/test_resource.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_resource.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_resource.cpp.o.d"
  "/root/repo/tests/core/test_resource_property.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_resource_property.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_resource_property.cpp.o.d"
  "/root/repo/tests/core/test_retri.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_retri.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_retri.cpp.o.d"
  "/root/repo/tests/core/test_stream_update.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_stream_update.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_stream_update.cpp.o.d"
  "/root/repo/tests/core/test_wire_types.cpp" "tests/CMakeFiles/garnet_core_tests.dir/core/test_wire_types.cpp.o" "gcc" "tests/CMakeFiles/garnet_core_tests.dir/core/test_wire_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/garnet/CMakeFiles/garnet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/garnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/garnet_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_message.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/garnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/garnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
