# Empty dependencies file for garnet_core_tests.
# This may be replaced when dependencies are built.
