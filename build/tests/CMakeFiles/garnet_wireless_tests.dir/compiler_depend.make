# Empty compiler generated dependencies file for garnet_wireless_tests.
# This may be replaced when dependencies are built.
