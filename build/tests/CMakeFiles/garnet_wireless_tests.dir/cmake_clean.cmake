file(REMOVE_RECURSE
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_field.cpp.o"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_field.cpp.o.d"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_radio.cpp.o"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_radio.cpp.o.d"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_relay.cpp.o"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_relay.cpp.o.d"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_sensor.cpp.o"
  "CMakeFiles/garnet_wireless_tests.dir/wireless/test_sensor.cpp.o.d"
  "garnet_wireless_tests"
  "garnet_wireless_tests.pdb"
  "garnet_wireless_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_wireless_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
