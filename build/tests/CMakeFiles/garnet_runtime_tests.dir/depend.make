# Empty dependencies file for garnet_runtime_tests.
# This may be replaced when dependencies are built.
