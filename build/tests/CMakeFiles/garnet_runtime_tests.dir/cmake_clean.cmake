file(REMOVE_RECURSE
  "CMakeFiles/garnet_runtime_tests.dir/garnet/test_failover.cpp.o"
  "CMakeFiles/garnet_runtime_tests.dir/garnet/test_failover.cpp.o.d"
  "CMakeFiles/garnet_runtime_tests.dir/garnet/test_pipeline.cpp.o"
  "CMakeFiles/garnet_runtime_tests.dir/garnet/test_pipeline.cpp.o.d"
  "CMakeFiles/garnet_runtime_tests.dir/garnet/test_runtime.cpp.o"
  "CMakeFiles/garnet_runtime_tests.dir/garnet/test_runtime.cpp.o.d"
  "garnet_runtime_tests"
  "garnet_runtime_tests.pdb"
  "garnet_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
