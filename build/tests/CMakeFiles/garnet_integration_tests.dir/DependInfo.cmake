
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_actuation_path.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_actuation_path.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_actuation_path.cpp.o.d"
  "/root/repo/tests/integration/test_determinism.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_determinism.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_extensions.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_extensions.cpp.o.d"
  "/root/repo/tests/integration/test_failure_injection.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_failure_injection.cpp.o.d"
  "/root/repo/tests/integration/test_multilevel.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_multilevel.cpp.o.d"
  "/root/repo/tests/integration/test_scenarios.cpp" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/garnet_integration_tests.dir/integration/test_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/garnet/CMakeFiles/garnet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/garnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/garnet_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_message.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/garnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/garnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
