# Empty compiler generated dependencies file for garnet_integration_tests.
# This may be replaced when dependencies are built.
