file(REMOVE_RECURSE
  "CMakeFiles/garnet_integration_tests.dir/integration/test_actuation_path.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_actuation_path.cpp.o.d"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_determinism.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_determinism.cpp.o.d"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_extensions.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_extensions.cpp.o.d"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_multilevel.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_multilevel.cpp.o.d"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_scenarios.cpp.o"
  "CMakeFiles/garnet_integration_tests.dir/integration/test_scenarios.cpp.o.d"
  "garnet_integration_tests"
  "garnet_integration_tests.pdb"
  "garnet_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
