# Empty compiler generated dependencies file for garnet_net_tests.
# This may be replaced when dependencies are built.
