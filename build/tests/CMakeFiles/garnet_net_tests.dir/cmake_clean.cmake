file(REMOVE_RECURSE
  "CMakeFiles/garnet_net_tests.dir/net/test_bus.cpp.o"
  "CMakeFiles/garnet_net_tests.dir/net/test_bus.cpp.o.d"
  "CMakeFiles/garnet_net_tests.dir/net/test_rpc.cpp.o"
  "CMakeFiles/garnet_net_tests.dir/net/test_rpc.cpp.o.d"
  "garnet_net_tests"
  "garnet_net_tests.pdb"
  "garnet_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
