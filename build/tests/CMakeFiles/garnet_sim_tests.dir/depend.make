# Empty dependencies file for garnet_sim_tests.
# This may be replaced when dependencies are built.
