file(REMOVE_RECURSE
  "CMakeFiles/garnet_sim_tests.dir/sim/test_geometry.cpp.o"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_geometry.cpp.o.d"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_mobility.cpp.o"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_mobility.cpp.o.d"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_realtime.cpp.o"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_realtime.cpp.o.d"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_scheduler.cpp.o"
  "CMakeFiles/garnet_sim_tests.dir/sim/test_scheduler.cpp.o.d"
  "garnet_sim_tests"
  "garnet_sim_tests.pdb"
  "garnet_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
