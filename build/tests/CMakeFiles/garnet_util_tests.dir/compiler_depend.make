# Empty compiler generated dependencies file for garnet_util_tests.
# This may be replaced when dependencies are built.
