file(REMOVE_RECURSE
  "CMakeFiles/garnet_util_tests.dir/util/test_bytes.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_bytes.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_crc32c.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_crc32c.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_log.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_log.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_result.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_result.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_ring_buffer.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_ring_buffer.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_rng.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_stats.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/garnet_util_tests.dir/util/test_time.cpp.o"
  "CMakeFiles/garnet_util_tests.dir/util/test_time.cpp.o.d"
  "garnet_util_tests"
  "garnet_util_tests.pdb"
  "garnet_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
