
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bytes.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_bytes.cpp.o.d"
  "/root/repo/tests/util/test_crc32c.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_crc32c.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_crc32c.cpp.o.d"
  "/root/repo/tests/util/test_log.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_log.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_log.cpp.o.d"
  "/root/repo/tests/util/test_result.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_result.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_result.cpp.o.d"
  "/root/repo/tests/util/test_ring_buffer.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_ring_buffer.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_ring_buffer.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_time.cpp" "tests/CMakeFiles/garnet_util_tests.dir/util/test_time.cpp.o" "gcc" "tests/CMakeFiles/garnet_util_tests.dir/util/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/garnet/CMakeFiles/garnet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/garnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/garnet_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_message.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/garnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/garnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
