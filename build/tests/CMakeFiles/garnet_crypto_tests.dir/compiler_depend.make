# Empty compiler generated dependencies file for garnet_crypto_tests.
# This may be replaced when dependencies are built.
