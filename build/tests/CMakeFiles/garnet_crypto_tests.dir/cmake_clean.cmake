file(REMOVE_RECURSE
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_chacha20.cpp.o"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_chacha20.cpp.o.d"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_poly1305.cpp.o"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_poly1305.cpp.o.d"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_sealed.cpp.o"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_sealed.cpp.o.d"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_siphash.cpp.o"
  "CMakeFiles/garnet_crypto_tests.dir/crypto/test_siphash.cpp.o.d"
  "garnet_crypto_tests"
  "garnet_crypto_tests.pdb"
  "garnet_crypto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_crypto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
