# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/garnet_util_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_net_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_wireless_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_core_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/garnet_fuzz_tests[1]_include.cmake")
