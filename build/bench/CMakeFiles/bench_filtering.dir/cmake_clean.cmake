file(REMOVE_RECURSE
  "CMakeFiles/bench_filtering.dir/bench_filtering.cpp.o"
  "CMakeFiles/bench_filtering.dir/bench_filtering.cpp.o.d"
  "bench_filtering"
  "bench_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
