file(REMOVE_RECURSE
  "CMakeFiles/bench_message_codec.dir/bench_message_codec.cpp.o"
  "CMakeFiles/bench_message_codec.dir/bench_message_codec.cpp.o.d"
  "bench_message_codec"
  "bench_message_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
