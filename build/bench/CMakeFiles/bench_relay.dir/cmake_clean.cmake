file(REMOVE_RECURSE
  "CMakeFiles/bench_relay.dir/bench_relay.cpp.o"
  "CMakeFiles/bench_relay.dir/bench_relay.cpp.o.d"
  "bench_relay"
  "bench_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
