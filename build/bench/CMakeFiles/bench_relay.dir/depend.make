# Empty dependencies file for bench_relay.
# This may be replaced when dependencies are built.
