# Empty dependencies file for bench_retri.
# This may be replaced when dependencies are built.
