file(REMOVE_RECURSE
  "CMakeFiles/bench_retri.dir/bench_retri.cpp.o"
  "CMakeFiles/bench_retri.dir/bench_retri.cpp.o.d"
  "bench_retri"
  "bench_retri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
