
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_location_targeting.cpp" "bench/CMakeFiles/bench_location_targeting.dir/bench_location_targeting.cpp.o" "gcc" "bench/CMakeFiles/bench_location_targeting.dir/bench_location_targeting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/garnet/CMakeFiles/garnet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/garnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/garnet_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_message.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/garnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/garnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
