file(REMOVE_RECURSE
  "CMakeFiles/bench_location_targeting.dir/bench_location_targeting.cpp.o"
  "CMakeFiles/bench_location_targeting.dir/bench_location_targeting.cpp.o.d"
  "bench_location_targeting"
  "bench_location_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_location_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
