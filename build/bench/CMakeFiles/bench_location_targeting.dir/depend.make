# Empty dependencies file for bench_location_targeting.
# This may be replaced when dependencies are built.
