# Empty dependencies file for bench_resource_conflict.
# This may be replaced when dependencies are built.
