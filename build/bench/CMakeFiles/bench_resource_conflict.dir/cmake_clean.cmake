file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_conflict.dir/bench_resource_conflict.cpp.o"
  "CMakeFiles/bench_resource_conflict.dir/bench_resource_conflict.cpp.o.d"
  "bench_resource_conflict"
  "bench_resource_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
