# Empty dependencies file for field_survey.
# This may be replaced when dependencies are built.
