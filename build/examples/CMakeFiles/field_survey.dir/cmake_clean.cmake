file(REMOVE_RECURSE
  "CMakeFiles/field_survey.dir/field_survey.cpp.o"
  "CMakeFiles/field_survey.dir/field_survey.cpp.o.d"
  "field_survey"
  "field_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
