# Empty compiler generated dependencies file for water_course.
# This may be replaced when dependencies are built.
