file(REMOVE_RECURSE
  "CMakeFiles/water_course.dir/water_course.cpp.o"
  "CMakeFiles/water_course.dir/water_course.cpp.o.d"
  "water_course"
  "water_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
