# Empty compiler generated dependencies file for resilient_archive.
# This may be replaced when dependencies are built.
