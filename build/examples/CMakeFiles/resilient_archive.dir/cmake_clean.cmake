file(REMOVE_RECURSE
  "CMakeFiles/resilient_archive.dir/resilient_archive.cpp.o"
  "CMakeFiles/resilient_archive.dir/resilient_archive.cpp.o.d"
  "resilient_archive"
  "resilient_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
