file(REMOVE_RECURSE
  "CMakeFiles/military_recon.dir/military_recon.cpp.o"
  "CMakeFiles/military_recon.dir/military_recon.cpp.o.d"
  "military_recon"
  "military_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/military_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
