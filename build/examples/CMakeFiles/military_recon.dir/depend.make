# Empty dependencies file for military_recon.
# This may be replaced when dependencies are built.
