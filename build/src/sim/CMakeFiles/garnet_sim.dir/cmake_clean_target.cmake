file(REMOVE_RECURSE
  "libgarnet_sim.a"
)
