# Empty compiler generated dependencies file for garnet_sim.
# This may be replaced when dependencies are built.
