file(REMOVE_RECURSE
  "CMakeFiles/garnet_sim.dir/geometry.cpp.o"
  "CMakeFiles/garnet_sim.dir/geometry.cpp.o.d"
  "CMakeFiles/garnet_sim.dir/mobility.cpp.o"
  "CMakeFiles/garnet_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/garnet_sim.dir/scheduler.cpp.o"
  "CMakeFiles/garnet_sim.dir/scheduler.cpp.o.d"
  "libgarnet_sim.a"
  "libgarnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
