# Empty dependencies file for garnet_wireless.
# This may be replaced when dependencies are built.
