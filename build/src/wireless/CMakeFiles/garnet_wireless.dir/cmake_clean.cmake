file(REMOVE_RECURSE
  "CMakeFiles/garnet_wireless.dir/field.cpp.o"
  "CMakeFiles/garnet_wireless.dir/field.cpp.o.d"
  "CMakeFiles/garnet_wireless.dir/radio.cpp.o"
  "CMakeFiles/garnet_wireless.dir/radio.cpp.o.d"
  "CMakeFiles/garnet_wireless.dir/sensor.cpp.o"
  "CMakeFiles/garnet_wireless.dir/sensor.cpp.o.d"
  "libgarnet_wireless.a"
  "libgarnet_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
