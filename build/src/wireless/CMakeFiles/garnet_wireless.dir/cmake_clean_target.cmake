file(REMOVE_RECURSE
  "libgarnet_wireless.a"
)
