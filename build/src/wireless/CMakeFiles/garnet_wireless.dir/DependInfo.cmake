
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wireless/field.cpp" "src/wireless/CMakeFiles/garnet_wireless.dir/field.cpp.o" "gcc" "src/wireless/CMakeFiles/garnet_wireless.dir/field.cpp.o.d"
  "/root/repo/src/wireless/radio.cpp" "src/wireless/CMakeFiles/garnet_wireless.dir/radio.cpp.o" "gcc" "src/wireless/CMakeFiles/garnet_wireless.dir/radio.cpp.o.d"
  "/root/repo/src/wireless/sensor.cpp" "src/wireless/CMakeFiles/garnet_wireless.dir/sensor.cpp.o" "gcc" "src/wireless/CMakeFiles/garnet_wireless.dir/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/garnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/garnet_message.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
