# Empty dependencies file for garnet_message.
# This may be replaced when dependencies are built.
