file(REMOVE_RECURSE
  "libgarnet_message.a"
)
