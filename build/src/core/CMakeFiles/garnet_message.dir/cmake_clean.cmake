file(REMOVE_RECURSE
  "CMakeFiles/garnet_message.dir/message.cpp.o"
  "CMakeFiles/garnet_message.dir/message.cpp.o.d"
  "CMakeFiles/garnet_message.dir/stream_update.cpp.o"
  "CMakeFiles/garnet_message.dir/stream_update.cpp.o.d"
  "libgarnet_message.a"
  "libgarnet_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
