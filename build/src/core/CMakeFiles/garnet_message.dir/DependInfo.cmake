
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/message.cpp" "src/core/CMakeFiles/garnet_message.dir/message.cpp.o" "gcc" "src/core/CMakeFiles/garnet_message.dir/message.cpp.o.d"
  "/root/repo/src/core/stream_update.cpp" "src/core/CMakeFiles/garnet_message.dir/stream_update.cpp.o" "gcc" "src/core/CMakeFiles/garnet_message.dir/stream_update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
