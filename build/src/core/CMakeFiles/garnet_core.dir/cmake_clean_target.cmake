file(REMOVE_RECURSE
  "libgarnet_core.a"
)
