# Empty compiler generated dependencies file for garnet_core.
# This may be replaced when dependencies are built.
