
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/actuation.cpp" "src/core/CMakeFiles/garnet_core.dir/actuation.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/actuation.cpp.o.d"
  "/root/repo/src/core/auth.cpp" "src/core/CMakeFiles/garnet_core.dir/auth.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/auth.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/core/CMakeFiles/garnet_core.dir/catalog.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/catalog.cpp.o.d"
  "/root/repo/src/core/catalog_service.cpp" "src/core/CMakeFiles/garnet_core.dir/catalog_service.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/catalog_service.cpp.o.d"
  "/root/repo/src/core/constraints.cpp" "src/core/CMakeFiles/garnet_core.dir/constraints.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/constraints.cpp.o.d"
  "/root/repo/src/core/consumer.cpp" "src/core/CMakeFiles/garnet_core.dir/consumer.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/consumer.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/garnet_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/dispatch.cpp" "src/core/CMakeFiles/garnet_core.dir/dispatch.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/dispatch.cpp.o.d"
  "/root/repo/src/core/filtering.cpp" "src/core/CMakeFiles/garnet_core.dir/filtering.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/filtering.cpp.o.d"
  "/root/repo/src/core/location.cpp" "src/core/CMakeFiles/garnet_core.dir/location.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/location.cpp.o.d"
  "/root/repo/src/core/orphanage.cpp" "src/core/CMakeFiles/garnet_core.dir/orphanage.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/orphanage.cpp.o.d"
  "/root/repo/src/core/pubsub.cpp" "src/core/CMakeFiles/garnet_core.dir/pubsub.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/pubsub.cpp.o.d"
  "/root/repo/src/core/recorder.cpp" "src/core/CMakeFiles/garnet_core.dir/recorder.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/recorder.cpp.o.d"
  "/root/repo/src/core/replicator.cpp" "src/core/CMakeFiles/garnet_core.dir/replicator.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/replicator.cpp.o.d"
  "/root/repo/src/core/resource.cpp" "src/core/CMakeFiles/garnet_core.dir/resource.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/resource.cpp.o.d"
  "/root/repo/src/core/retri.cpp" "src/core/CMakeFiles/garnet_core.dir/retri.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/retri.cpp.o.d"
  "/root/repo/src/core/wire_types.cpp" "src/core/CMakeFiles/garnet_core.dir/wire_types.cpp.o" "gcc" "src/core/CMakeFiles/garnet_core.dir/wire_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/garnet_message.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/garnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/garnet_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/garnet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/garnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
