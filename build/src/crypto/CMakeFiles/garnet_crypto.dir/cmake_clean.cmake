file(REMOVE_RECURSE
  "CMakeFiles/garnet_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/garnet_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/garnet_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/garnet_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/garnet_crypto.dir/sealed.cpp.o"
  "CMakeFiles/garnet_crypto.dir/sealed.cpp.o.d"
  "CMakeFiles/garnet_crypto.dir/siphash.cpp.o"
  "CMakeFiles/garnet_crypto.dir/siphash.cpp.o.d"
  "libgarnet_crypto.a"
  "libgarnet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
