# Empty dependencies file for garnet_crypto.
# This may be replaced when dependencies are built.
