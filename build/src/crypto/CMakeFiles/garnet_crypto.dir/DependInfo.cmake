
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/garnet_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/garnet_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/poly1305.cpp" "src/crypto/CMakeFiles/garnet_crypto.dir/poly1305.cpp.o" "gcc" "src/crypto/CMakeFiles/garnet_crypto.dir/poly1305.cpp.o.d"
  "/root/repo/src/crypto/sealed.cpp" "src/crypto/CMakeFiles/garnet_crypto.dir/sealed.cpp.o" "gcc" "src/crypto/CMakeFiles/garnet_crypto.dir/sealed.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/crypto/CMakeFiles/garnet_crypto.dir/siphash.cpp.o" "gcc" "src/crypto/CMakeFiles/garnet_crypto.dir/siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/garnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
