file(REMOVE_RECURSE
  "libgarnet_crypto.a"
)
