file(REMOVE_RECURSE
  "libgarnet_net.a"
)
