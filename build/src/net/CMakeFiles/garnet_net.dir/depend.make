# Empty dependencies file for garnet_net.
# This may be replaced when dependencies are built.
