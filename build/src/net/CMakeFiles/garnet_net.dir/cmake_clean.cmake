file(REMOVE_RECURSE
  "CMakeFiles/garnet_net.dir/bus.cpp.o"
  "CMakeFiles/garnet_net.dir/bus.cpp.o.d"
  "CMakeFiles/garnet_net.dir/rpc.cpp.o"
  "CMakeFiles/garnet_net.dir/rpc.cpp.o.d"
  "libgarnet_net.a"
  "libgarnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
