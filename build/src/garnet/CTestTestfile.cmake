# CMake generated Testfile for 
# Source directory: /root/repo/src/garnet
# Build directory: /root/repo/build/src/garnet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
