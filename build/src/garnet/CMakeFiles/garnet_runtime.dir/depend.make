# Empty dependencies file for garnet_runtime.
# This may be replaced when dependencies are built.
