file(REMOVE_RECURSE
  "libgarnet_runtime.a"
)
