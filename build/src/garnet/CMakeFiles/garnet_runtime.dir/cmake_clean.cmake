file(REMOVE_RECURSE
  "CMakeFiles/garnet_runtime.dir/failover.cpp.o"
  "CMakeFiles/garnet_runtime.dir/failover.cpp.o.d"
  "CMakeFiles/garnet_runtime.dir/pipeline.cpp.o"
  "CMakeFiles/garnet_runtime.dir/pipeline.cpp.o.d"
  "CMakeFiles/garnet_runtime.dir/report.cpp.o"
  "CMakeFiles/garnet_runtime.dir/report.cpp.o.d"
  "CMakeFiles/garnet_runtime.dir/runtime.cpp.o"
  "CMakeFiles/garnet_runtime.dir/runtime.cpp.o.d"
  "libgarnet_runtime.a"
  "libgarnet_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
