# Empty dependencies file for garnet_util.
# This may be replaced when dependencies are built.
