file(REMOVE_RECURSE
  "CMakeFiles/garnet_util.dir/bytes.cpp.o"
  "CMakeFiles/garnet_util.dir/bytes.cpp.o.d"
  "CMakeFiles/garnet_util.dir/crc32c.cpp.o"
  "CMakeFiles/garnet_util.dir/crc32c.cpp.o.d"
  "CMakeFiles/garnet_util.dir/log.cpp.o"
  "CMakeFiles/garnet_util.dir/log.cpp.o.d"
  "CMakeFiles/garnet_util.dir/rng.cpp.o"
  "CMakeFiles/garnet_util.dir/rng.cpp.o.d"
  "CMakeFiles/garnet_util.dir/stats.cpp.o"
  "CMakeFiles/garnet_util.dir/stats.cpp.o.d"
  "libgarnet_util.a"
  "libgarnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
