file(REMOVE_RECURSE
  "libgarnet_util.a"
)
