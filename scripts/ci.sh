#!/usr/bin/env bash
# CI entry point: sanitized build + full test suite, then an optimised
# Release leg (-O2 -DNDEBUG via -DGARNET_ASSERTS=OFF) that smoke-runs the
# benchmark suite and emits the machine-readable BENCH_*.json reports
# (notably BENCH_dispatch.json, the zero-copy payload-path pins).
#
# Usage: scripts/ci.sh [build-dir] [perf-build-dir] [tsan-build-dir]
#        (defaults: build-ci, build-ci-perf, build-ci-tsan)
set -euo pipefail

BUILD_DIR="${1:-build-ci}"
PERF_BUILD_DIR="${2:-build-ci-perf}"
TSAN_BUILD_DIR="${3:-build-ci-tsan}"
GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

# Leg 1 — correctness: sanitizers on, asserts on, every test.
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGARNET_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Leg 2 — performance: plain Release (-O2 -DNDEBUG, no sanitizers, no
# asserts) so the bench numbers reflect what a deployment would see.
# A short min_time keeps this a smoke run; the JSON pins (allocs/copies
# per message) are time-independent.
cmake -B "$PERF_BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DGARNET_ASSERTS=OFF
cmake --build "$PERF_BUILD_DIR" -j "$(nproc)"
scripts/run_experiments.sh "$PERF_BUILD_DIR" --benchmark_min_time=0.05

# Overload gate: the flood bench's telemetry snapshot must show the
# priority invariant held — data-plane traffic was shed under the 10x
# flood, control-plane traffic never was — and the adaptive-admission
# sweep converged: the throughput-probed pool reaches >= 0.9x the best
# static ticket setting at every payload size with zero control shed.
scripts/check_overload_report.py "$PERF_BUILD_DIR/bench-results/BENCH_overload.json"

# Dispatch gate: the shard sweep in BENCH_dispatch.json must show the
# sharded plane scaling — critical-path throughput >= 2.5x at 4 shards
# vs 1 — with zero control-plane shed at any shard count, and the
# zero-copy fan-out pins (1 alloc, 0 copies per message) still holding.
scripts/check_dispatch_report.py "$PERF_BUILD_DIR/bench-results/BENCH_dispatch.json"

# Recovery gate: the crash-cycle bench's snapshot must show every
# crashed service recovered and zero duplicate deliveries after the
# promotion (checkpoint + op-log + stash replay closed the gap exactly).
scripts/check_recovery_report.py "$PERF_BUILD_DIR/bench-results/BENCH_recovery.json"

# Scale gate: the registration-scale bench must show the StreamTable
# footprint inside its bytes/stream budget at every tier (10^5 tier
# mandatory) and the incremental-capture stall inside budget — and
# genuinely cheaper than a full capture at the large tiers.
scripts/check_scale_report.py "$PERF_BUILD_DIR/bench-results/BENCH_scale.json"

# Tree gate: the depth-4 churn cell in BENCH_tree.json must show the
# routing plane holding its contract — delivery >= 95% under 1%/round
# relay churn, zero duplicate deliveries past filtering, zero TTL
# expiries (no routing loops) — and byte-identical fault/repair
# journals across advance() cadences.
scripts/check_tree_report.py "$PERF_BUILD_DIR/bench-results/BENCH_tree.json"

# Gateway gate: the fan-out bench's snapshot must show zero corrupt
# deliveries on the egress wire, zero control-frame shed while the
# frozen reader forced data sheds, and the last-value cache serving the
# newest sample (docs/GATEWAY.md contract).
scripts/check_gateway_report.py "$PERF_BUILD_DIR/bench-results/BENCH_gateway.json"

# Leg 3 — data races: TSan over the two places real threads exist.
# The gateway suite crosses kernel sockets (PosixTransport) and the
# loopback seam in one process and must stay single-threaded around
# poll(2); the worker-pool and shard-plane suites run the sharded
# dispatch rounds on genuine pinned workers and must prove the
# partition shares nothing. The admission suites ride along: the plane's
# gate runs probe ticks at the merge barrier while worker threads exist,
# and must stay off their shards. The wireless tree suites ride along:
# the router is single-threaded by design, and running the formation,
# churn and fuzz suites under TSan proves nothing in the forwarding or
# repair path ever touches the worker threads' world.
cmake -B "$TSAN_BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGARNET_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)" \
  --target garnet_gw_tests garnet_sim_tests garnet_runtime_tests garnet_net_tests \
           garnet_wireless_tests garnet_integration_tests garnet_fuzz_tests
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)" \
  --tests-regex '(Gateway|GatewaySockets|LoopbackTransport|PosixTransport|WorkerPool|ShardPlane|Admission|Tree|RouterFixture)'

echo "CI OK: tests green, bench reports in $PERF_BUILD_DIR/bench-results"
