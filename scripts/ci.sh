#!/usr/bin/env bash
# CI entry point: sanitized build + full test suite.
#
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

BUILD_DIR="${1:-build-ci}"
GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGARNET_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
