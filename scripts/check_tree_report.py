#!/usr/bin/env python3
"""CI gate over BENCH_tree.json (see bench/bench_tree.cpp).

The report is the full telemetry snapshot of the canonical E13 cell: a
depth-4 chain (three relay hops between the source and the receiver)
under 1%-per-round relay churn, advanced in 25ms strides. The gate
enforces the routing contract from docs/FAULT_MODEL.md:

  1. delivery >= 95% at depth <= 4 under churn — missed-beacon
     detection, backoff re-attach and orphan buffering must keep the
     loss to the detection windows around each relay crash;
  2. zero duplicate deliveries past filtering — per-(sensor, sequence)
     suppression plus the relay filter close every re-forward window,
     including frames wrapped toward a parent that died mid-forward;
  3. zero TTL expiries — in a loop-free chain a TTL death means the
     forest looped traffic;
  4. byte-identical fault and repair journals across advance() cadences
     (the same cell run in one 40s stride vs 25ms hops) — churn is a
     pure time trigger and the router draws no randomness;
  5. the cell actually churned (relays crashed, the source orphaned and
     re-attached — an idle gate proves nothing).
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_tree_report.py BENCH_tree.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    values = {}
    for metric in report["metrics"]:
        # Histograms carry count/sum/quantiles instead of a scalar value.
        if not metric.get("labels") and "value" in metric:
            values[metric["name"]] = metric["value"]

    failures = []

    def require(name):
        if name not in values:
            failures.append(f"{name} missing from the report")
            return None
        return values[name]

    delivery = require("bench.tree.delivery_ratio")
    offered = values.get("bench.tree.offered", 0.0)
    if offered == 0:
        failures.append("no samples were offered — the source never ran")
    if delivery is not None and delivery < 0.95:
        failures.append(
            f"delivery ratio {delivery:.3f} < 0.95 at depth 4 under 1%/round churn"
        )

    duplicates = require("bench.tree.duplicates")
    if duplicates is not None and duplicates > 0:
        failures.append(
            f"{duplicates:.0f} duplicate deliveries past filtering — "
            "the dedup window or the relay filter leaked a re-forward"
        )

    ttl_dropped = require("bench.tree.ttl_dropped")
    if ttl_dropped is not None and ttl_dropped > 0:
        failures.append(
            f"{ttl_dropped:.0f} frames died of TTL exhaustion — "
            "the loop-free chain looped traffic"
        )

    journal_match = require("bench.tree.journal_match")
    if journal_match is not None and journal_match != 1:
        failures.append(
            "fault/repair journals differ across advance() cadences — "
            "churn or repair consumed nondeterministic state"
        )

    if values.get("bench.tree.relay_crashes", 0.0) == 0:
        failures.append("no relay crashed — the churn plan was never exercised")
    if values.get("bench.tree.orphan_events", 0.0) == 0:
        failures.append("no node ever orphaned — the repair path was never exercised")

    if failures:
        for failure in failures:
            print(f"tree gate FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"tree gate OK: delivery={delivery:.3f} "
        f"({values.get('bench.tree.delivered', 0.0):.0f}/{offered:.0f}) at depth "
        f"{values.get('bench.tree.realized_depth', 0.0):.0f} with "
        f"{values.get('bench.tree.relay_crashes', 0.0):.0f} relay crash(es), "
        "duplicates=0, ttl_dropped=0, journals byte-identical across cadences"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
