#!/usr/bin/env python3
"""CI gate over BENCH_scale.json (see bench/bench_scale.cpp).

The report holds one entry per stream-count tier (10^4, 10^5, 10^6) of
the registration-scale bench: the four services' StreamTable footprint,
steady-state dispatch throughput, and the checkpoint-capture stall for
full vs incremental frames. The gate enforces the scale contract the
StreamTable migration was made for:

  1. the 10^5 tier must be present (a run that silently dropped the
     scale tiers proves nothing — 10^6 is also expected but tolerated
     missing only if explicitly allowed via --allow-missing-top-tier);
  2. bytes/stream stays inside budget at every tier — the flat index +
     arena layout must not regress toward node-per-stream costs;
  3. the incremental capture stall stays inside budget, and at the
     large tiers it must actually undercut the full-capture stall
     (otherwise the delta machinery is dead weight).
"""
import argparse
import json
import sys

# Index + arena bytes across all four services, per stream. The measured
# figure is ~250-450 B/stream depending on tier load factor; 1 KiB leaves
# headroom for field growth without tolerating a node-per-stream relapse
# (std::map was >2 KiB/stream across the services).
BYTES_PER_STREAM_BUDGET = 1024.0

# Worst single-service incremental-capture stall with ~1% of streams
# dirty. Full captures at 10^6 streams take O(seconds); the delta path
# exists to keep the steady-state stall bounded regardless of population.
DELTA_STALL_BUDGET_MS = 1000.0

REQUIRED_TIER = 100_000
TOP_TIER = 1_000_000


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("report", help="BENCH_scale.json path")
    parser.add_argument(
        "--allow-missing-top-tier",
        action="store_true",
        help="tolerate an absent 10^6 tier (smoke runs on tiny machines)",
    )
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)

    tiers = {int(t["streams"]): t for t in report.get("tiers", [])}
    failures = []

    if REQUIRED_TIER not in tiers:
        failures.append(f"the {REQUIRED_TIER:,}-stream tier is missing from the report")
    if TOP_TIER not in tiers and not args.allow_missing_top_tier:
        failures.append(
            f"the {TOP_TIER:,}-stream tier is missing from the report "
            "(pass --allow-missing-top-tier to tolerate)"
        )

    for streams, tier in sorted(tiers.items()):
        bps = float(tier.get("bytes_per_stream", float("inf")))
        if bps > BYTES_PER_STREAM_BUDGET:
            failures.append(
                f"{streams:,} streams: {bps:.0f} bytes/stream exceeds the "
                f"{BYTES_PER_STREAM_BUDGET:.0f} B budget — table layout regressed"
            )
        delta_ms = float(tier.get("delta_capture_ms", float("inf")))
        if delta_ms > DELTA_STALL_BUDGET_MS:
            failures.append(
                f"{streams:,} streams: {delta_ms:.1f}ms incremental-capture stall "
                f"exceeds the {DELTA_STALL_BUDGET_MS:.0f}ms budget"
            )
        full_ms = float(tier.get("full_capture_ms", 0.0))
        if streams >= REQUIRED_TIER and delta_ms >= full_ms and full_ms > 0:
            failures.append(
                f"{streams:,} streams: incremental capture ({delta_ms:.1f}ms) is no "
                f"cheaper than a full capture ({full_ms:.1f}ms) — deltas are dead weight"
            )
        if float(tier.get("msgs_per_sec", 0.0)) <= 0:
            failures.append(f"{streams:,} streams: no traffic measured")

    if failures:
        for failure in failures:
            print(f"scale gate FAILED: {failure}", file=sys.stderr)
        return 1

    for streams, tier in sorted(tiers.items()):
        print(
            f"scale gate OK: {streams:>9,} streams — "
            f"{tier['bytes_per_stream']:.0f} B/stream, "
            f"{tier['msgs_per_sec']:,.0f} msgs/s, "
            f"capture full {tier['full_capture_ms']:.1f}ms / "
            f"delta {tier['delta_capture_ms']:.1f}ms"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
