#!/usr/bin/env python3
"""CI gate over BENCH_gateway.json (see bench/bench_gateway.cpp).

The report is the full telemetry snapshot of the gateway bench's
harshest cell (32 subscribers x 32 KiB payloads, plus one frozen reader
whose write window never opens). The gate enforces the gateway's
contract from docs/GATEWAY.md:

  1. zero corrupt deliveries — every frame that reached a subscriber
     re-framed and re-checksummed exactly;
  2. control frames are never shed (garnet.gw.shed{class=control} must
     be zero for every policy) while the frozen reader forced data
     sheds, proving the pressure was real;
  3. the last-value cache answered a GET with the newest sequence after
     the whole sweep.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_gateway_report.py BENCH_gateway.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    shed = {"control": 0.0, "data": 0.0}
    gauges = {}
    for metric in report["metrics"]:
        name = metric["name"]
        if name == "garnet.gw.shed":
            shed[metric["labels"]["class"]] += metric["value"]
        elif name.startswith("bench.gateway."):
            gauges[name.removeprefix("bench.gateway.")] = metric["value"]

    failures = []
    corrupt = gauges.get("corrupt_deliveries")
    if corrupt is None:
        failures.append("bench.gateway.corrupt_deliveries missing from the report")
    elif corrupt > 0:
        failures.append(f"{corrupt:.0f} corrupt deliveries reached subscribers")
    if gauges.get("frames_delivered", 0) <= 0:
        failures.append("no frames were delivered — gate is vacuous")
    if shed["control"] > 0:
        failures.append(
            f"control frames were shed ({shed['control']:.0f}) — "
            "the priority invariant is broken at the socket boundary"
        )
    if shed["data"] + gauges.get("data_sheds", 0) == 0:
        failures.append("the frozen reader shed nothing — backpressure path never ran")
    if gauges.get("cache_serves_latest") != 1:
        failures.append("the last-value cache did not serve the newest sequence")

    if failures:
        for failure in failures:
            print(f"gateway gate FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"gateway gate OK: {gauges.get('frames_delivered', 0):.0f} frames delivered, "
        f"0 corrupt, control sheds=0, data sheds={shed['data']:.0f}, cache serves latest"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
