#!/usr/bin/env sh
# Regenerates every experiment in EXPERIMENTS.md.
#
# Usage: scripts/run_experiments.sh [build-dir] [extra google-benchmark args]
# e.g.   scripts/run_experiments.sh build --benchmark_min_time=0.05
#
# Benches that capture a telemetry snapshot write BENCH_*.json (metrics
# + stage-latency histogram quantiles, see docs/OBSERVABILITY.md) into
# $GARNET_BENCH_JSON_DIR, which defaults to <build-dir>/bench-results.
set -eu

BUILD_DIR="${1:-build}"
shift 2>/dev/null || true

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

# The registered bench set comes from bench/CMakeLists.txt, so a bench
# that fails to build (or a stale build dir missing a newly added one)
# stops the run immediately instead of silently thinning the tables.
SCRIPT_DIR=$(dirname "$0")
EXPECTED=$(sed -n 's/^garnet_bench(\([a-z_0-9]*\)).*/\1/p' "$SCRIPT_DIR/../bench/CMakeLists.txt")
if [ -z "$EXPECTED" ]; then
  echo "error: no benches registered in bench/CMakeLists.txt — parse failure?" >&2
  exit 1
fi
for name in $EXPECTED; do
  if [ ! -x "$BUILD_DIR/bench/$name" ]; then
    echo "error: bench binary '$BUILD_DIR/bench/$name' is missing or not executable." >&2
    echo "       Rebuild the full tree first: cmake --build $BUILD_DIR" >&2
    exit 1
  fi
done

GARNET_BENCH_JSON_DIR="${GARNET_BENCH_JSON_DIR:-$BUILD_DIR/bench-results}"
export GARNET_BENCH_JSON_DIR
mkdir -p "$GARNET_BENCH_JSON_DIR"

for name in $EXPECTED; do
  echo "==== $name ===="
  "$BUILD_DIR/bench/$name" "$@"
  echo
done

echo "==== machine-readable reports ($GARNET_BENCH_JSON_DIR) ===="
ls -1 "$GARNET_BENCH_JSON_DIR"/BENCH_*.json 2>/dev/null || echo "(none produced)"

# Every report must carry its schema's required top-level keys — the
# telemetry exposition (docs/OBSERVABILITY.md) or the structured
# experiment report (bench_scale's per-tier table); a truncated or
# malformed file fails the run instead of silently poisoning the
# downstream gates and tables.
for report in "$GARNET_BENCH_JSON_DIR"/BENCH_*.json; do
  [ -e "$report" ] || continue
  if ! python3 - "$report" <<'PY'
import json
import sys

TELEMETRY_KEYS = ("captured_at_ns", "metrics")
EXPERIMENT_KEYS = ("experiment", "tiers")

path = sys.argv[1]
try:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
except (OSError, json.JSONDecodeError) as err:
    print(f"error: {path} is not readable JSON: {err}", file=sys.stderr)
    sys.exit(1)
required = EXPERIMENT_KEYS if "experiment" in report else TELEMETRY_KEYS
missing = [key for key in required if key not in report]
if missing:
    print(f"error: {path} is missing required top-level keys: {missing}", file=sys.stderr)
    sys.exit(1)

# BENCH_overload.json additionally carries the A5b admission-probe
# comparison; a report without it means the sweep was filtered out or
# silently broke, which would turn the downstream convergence gate
# (scripts/check_overload_report.py) into a vacuous pass.
if path.endswith("BENCH_overload.json"):
    names = {metric.get("name") for metric in report.get("metrics", [])}
    probe_keys = ("bench.overload.probe_goodput", "bench.overload.probe_best_static",
                  "bench.overload.probe_final_tickets")
    absent = [key for key in probe_keys if key not in names]
    if absent:
        print(f"error: {path} is missing admission-probe metrics: {absent}", file=sys.stderr)
        sys.exit(1)
PY
  then
    echo "error: report validation failed for $report" >&2
    exit 1
  fi
done
echo "all reports carry the required top-level keys"
