#!/usr/bin/env sh
# Regenerates every experiment in EXPERIMENTS.md.
#
# Usage: scripts/run_experiments.sh [build-dir] [extra google-benchmark args]
# e.g.   scripts/run_experiments.sh build --benchmark_min_time=0.05
#
# Benches that capture a telemetry snapshot write BENCH_*.json (metrics
# + stage-latency histogram quantiles, see docs/OBSERVABILITY.md) into
# $GARNET_BENCH_JSON_DIR, which defaults to <build-dir>/bench-results.
set -eu

BUILD_DIR="${1:-build}"
shift 2>/dev/null || true

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

GARNET_BENCH_JSON_DIR="${GARNET_BENCH_JSON_DIR:-$BUILD_DIR/bench-results}"
export GARNET_BENCH_JSON_DIR
mkdir -p "$GARNET_BENCH_JSON_DIR"

for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "==== $(basename "$bench") ===="
  "$bench" "$@"
  echo
done

echo "==== machine-readable reports ($GARNET_BENCH_JSON_DIR) ===="
ls -1 "$GARNET_BENCH_JSON_DIR"/BENCH_*.json 2>/dev/null || echo "(none produced)"
