#!/usr/bin/env python3
"""CI gate over BENCH_overload.json (see bench/bench_overload.cpp).

The report is the full telemetry snapshot of the harshest flood cell
(10x offered load, one 100x-slow consumer). The gate enforces the
overload layer's contract from docs/FAULT_MODEL.md:

  1. control-plane traffic is never shed (garnet.bus.shed{class=control}
     must be zero for every policy) while data-plane traffic was shed;
  2. the flood actually exercised the shedding path (data sheds or
     quarantines are nonzero — a silently idle gate proves nothing);
  3. every control-plane probe was answered (no discovery went dark).
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_overload_report.py BENCH_overload.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    shed = {"control": 0.0, "data": 0.0}
    quarantines = 0.0
    unanswered = None
    for metric in report["metrics"]:
        name = metric["name"]
        if name == "garnet.bus.shed":
            shed[metric["labels"]["class"]] += metric["value"]
        elif name == "garnet.dispatch.quarantines":
            quarantines = metric["value"]
        elif name == "bench.overload.discoveries_unanswered":
            unanswered = metric["value"]

    failures = []
    if shed["control"] > 0:
        failures.append(
            f"control-plane traffic was shed ({shed['control']:.0f} envelopes) — "
            "the priority invariant is broken"
        )
    if shed["data"] + quarantines == 0:
        failures.append("the flood shed nothing (no data sheds, no quarantines) — gate is vacuous")
    if unanswered is None:
        failures.append("bench.overload.discoveries_unanswered missing from the report")
    elif unanswered > 0:
        failures.append(f"{unanswered:.0f} control-plane discoveries went unanswered")

    if failures:
        for failure in failures:
            print(f"overload gate FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"overload gate OK: data sheds={shed['data']:.0f}, quarantines={quarantines:.0f}, "
        f"control sheds=0, all discoveries answered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
