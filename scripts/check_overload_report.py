#!/usr/bin/env python3
"""CI gate over BENCH_overload.json (see bench/bench_overload.cpp).

The report is the full telemetry snapshot of the harshest flood cell
(10x offered load, one 100x-slow consumer). The gate enforces the
overload layer's contract from docs/FAULT_MODEL.md:

  1. control-plane traffic is never shed (garnet.bus.shed{class=control}
     must be zero for every policy) while data-plane traffic was shed;
  2. the flood actually exercised the shedding path (data sheds or
     quarantines are nonzero — a silently idle gate proves nothing);
  3. every control-plane probe was answered (no discovery went dark).

It also gates the A5b adaptive-admission sweep riding in the same
report (bench.overload.probe_* metrics): at every payload size in the
10x spread, the throughput-probed run — started from one untuned
initial pool size — must reach >= MIN_CONVERGENCE x the best static
ticket setting, with zero control-plane shed and zero unanswered
discoveries in every probe cell.
"""
import json
import sys

MIN_CONVERGENCE = 0.9


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_overload_report.py BENCH_overload.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    shed = {"control": 0.0, "data": 0.0}
    quarantines = 0.0
    unanswered = None
    probed = {}       # payload -> goodput of the probed run
    best_static = {}  # payload -> best static-ticket goodput
    probe_control_sheds = 0.0
    probe_unanswered = 0.0
    for metric in report["metrics"]:
        name = metric["name"]
        if name == "garnet.bus.shed":
            shed[metric["labels"]["class"]] += metric["value"]
        elif name == "garnet.dispatch.quarantines":
            quarantines = metric["value"]
        elif name == "bench.overload.discoveries_unanswered":
            unanswered = metric["value"]
        elif name == "bench.overload.probe_goodput":
            if metric["labels"]["mode"] == "probed":
                probed[metric["labels"]["payload"]] = metric["value"]
        elif name == "bench.overload.probe_best_static":
            best_static[metric["labels"]["payload"]] = metric["value"]
        elif name == "bench.overload.probe_control_sheds":
            probe_control_sheds += metric["value"]
        elif name == "bench.overload.probe_unanswered":
            probe_unanswered += metric["value"]

    failures = []
    if not probed or set(probed) != set(best_static):
        failures.append(
            "admission probe sweep missing or incomplete "
            f"(probed payloads {sorted(probed)} vs static {sorted(best_static)})"
        )
    for payload, goodput in sorted(probed.items()):
        target = best_static.get(payload, 0.0) * MIN_CONVERGENCE
        if goodput < target:
            failures.append(
                f"probed goodput did not converge at payload={payload}: "
                f"{goodput:.0f} < {MIN_CONVERGENCE} x best static "
                f"({best_static.get(payload, 0.0):.0f})"
            )
    if probe_control_sheds > 0:
        failures.append(
            f"admission sweep shed control-plane traffic ({probe_control_sheds:.0f} envelopes)"
        )
    if probe_unanswered > 0:
        failures.append(
            f"{probe_unanswered:.0f} discoveries went unanswered during the admission sweep"
        )
    if shed["control"] > 0:
        failures.append(
            f"control-plane traffic was shed ({shed['control']:.0f} envelopes) — "
            "the priority invariant is broken"
        )
    if shed["data"] + quarantines == 0:
        failures.append("the flood shed nothing (no data sheds, no quarantines) — gate is vacuous")
    if unanswered is None:
        failures.append("bench.overload.discoveries_unanswered missing from the report")
    elif unanswered > 0:
        failures.append(f"{unanswered:.0f} control-plane discoveries went unanswered")

    if failures:
        for failure in failures:
            print(f"overload gate FAILED: {failure}", file=sys.stderr)
        return 1
    ratios = ", ".join(
        f"payload {payload}: {goodput / best_static[payload]:.2f}x best static"
        for payload, goodput in sorted(probed.items())
        if best_static.get(payload)
    )
    print(
        f"overload gate OK: data sheds={shed['data']:.0f}, quarantines={quarantines:.0f}, "
        f"control sheds=0, all discoveries answered; probe convergence [{ratios}]"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
