#!/usr/bin/env python3
"""CI gate over BENCH_recovery.json (see bench/bench_recovery.cpp).

The report is the full telemetry snapshot of the canonical crash cycle
(250ms checkpoint cadence, 3-miss watchdog): the dispatcher is
crash-stopped mid-flood and the watchdog promotes it from checkpoint +
op-log + orphanage stash. The gate enforces the recovery contract from
docs/FAULT_MODEL.md:

  1. zero duplicates after promotion — restored dedup windows and
     sequence cursors must close the replay/duplicate leak completely;
  2. every crashed service recovered (crashes == promotions + rejoins
     and the garnet.recovery.crashed gauge ended at zero);
  3. the cycle actually exercised recovery (a crash fired, a checkpoint
     was stored, the stash replayed something — an idle gate proves
     nothing).
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_recovery_report.py BENCH_recovery.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    values = {}
    for metric in report["metrics"]:
        # Histograms carry count/sum/quantiles instead of a scalar value.
        if not metric.get("labels") and "value" in metric:
            values[metric["name"]] = metric["value"]

    def value(name, default=None):
        if name in values:
            return values[name]
        return default

    failures = []

    duplicates = value("bench.recovery.duplicates_after_promotion")
    if duplicates is None:
        failures.append("bench.recovery.duplicates_after_promotion missing from the report")
    elif duplicates > 0:
        failures.append(
            f"{duplicates:.0f} duplicate deliveries after promotion — "
            "recovery re-delivered acknowledged messages"
        )

    crashes = value("garnet.recovery.crashes", 0.0)
    recovered = value("garnet.recovery.promotions", 0.0) + value("garnet.recovery.rejoins", 0.0)
    still_down = value("garnet.recovery.crashed", 0.0)
    if crashes == 0:
        failures.append("no crash fired — the recovery path was never exercised")
    if recovered < crashes:
        failures.append(
            f"only {recovered:.0f} of {crashes:.0f} crashed services recovered"
        )
    if still_down > 0:
        failures.append(f"{still_down:.0f} services still crashed at end of run")

    if value("garnet.checkpoint.stored", 0.0) == 0:
        failures.append("no checkpoint was replicated — promotion ran stateless")
    if value("garnet.dispatch.recovery_replayed", 0.0) == 0:
        failures.append("the orphanage stash replayed nothing — crash-window traffic was lost")

    if failures:
        for failure in failures:
            print(f"recovery gate FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"recovery gate OK: {crashes:.0f} crash(es) recovered, "
        f"latency={value('garnet.recovery.latency_ns', 0.0) / 1e6:.1f}ms, "
        f"ops replayed={value('garnet.recovery.ops_replayed', 0.0):.0f}, "
        f"stash replayed={value('garnet.dispatch.recovery_replayed', 0.0):.0f}, "
        "duplicates after promotion=0"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
