#!/usr/bin/env python3
"""CI gate over BENCH_dispatch.json (see bench/bench_dispatch.cpp).

The report carries two sections in one telemetry snapshot:

  * the zero-copy fan-out pins (64 consumers x 4 KB): one payload
    allocation per message, zero payload copies;
  * the shard scaling sweep: per-shard-count throughput gauges labelled
    {shards=N}, where msgs_per_sec is the critical-path rate — total
    messages over the slowest shard's thread-CPU time, i.e. the modeled
    N-core wall rate, measurable honestly on a 1-core runner.

Gates:
  1. the sweep covers every required shard count (1, 2, 4, 8, 16);
  2. critical-path throughput at 4 shards is >= 2.5x the 1-shard rate;
  3. no shard configuration shed a single control-plane envelope;
  4. the fan-out section's allocation discipline holds (<= 1.01
     payload allocs per message, zero payload copies).
"""
import json
import sys

REQUIRED_SHARDS = (1, 2, 4, 8, 16)
MIN_SPEEDUP_AT_4 = 2.5
MAX_ALLOCS_PER_MSG = 1.01


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_dispatch_report.py BENCH_dispatch.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    rate = {}
    control_shed = {}
    allocs_per_msg = None
    copies_per_msg = None
    for metric in report["metrics"]:
        name = metric["name"]
        if name == "bench.dispatch.shard.msgs_per_sec":
            rate[int(metric["labels"]["shards"])] = metric["value"]
        elif name == "bench.dispatch.shard.control_shed":
            control_shed[int(metric["labels"]["shards"])] = metric["value"]
        elif name == "bench.dispatch.payload_allocs_per_msg":
            allocs_per_msg = metric["value"]
        elif name == "bench.dispatch.payload_copies_per_msg":
            copies_per_msg = metric["value"]

    failures = []
    missing = [n for n in REQUIRED_SHARDS if n not in rate]
    if missing:
        failures.append(f"shard sweep is missing counts {missing} — ran with --shards override?")
    if 1 in rate and 4 in rate:
        if rate[1] <= 0:
            failures.append("1-shard throughput is zero — the sweep measured nothing")
        else:
            speedup = rate[4] / rate[1]
            if speedup < MIN_SPEEDUP_AT_4:
                failures.append(
                    f"4-shard critical-path speedup {speedup:.2f}x < {MIN_SPEEDUP_AT_4}x "
                    f"({rate[4]:.0f} vs {rate[1]:.0f} msgs/s)"
                )
    shed_total = sum(control_shed.values())
    if shed_total > 0:
        failures.append(
            f"{shed_total:.0f} control-plane envelopes shed across the sweep — "
            "the priority invariant is broken"
        )
    if allocs_per_msg is None:
        failures.append("bench.dispatch.payload_allocs_per_msg missing from the report")
    elif allocs_per_msg > MAX_ALLOCS_PER_MSG:
        failures.append(
            f"payload allocs/msg {allocs_per_msg:.3f} > {MAX_ALLOCS_PER_MSG} — "
            "the zero-copy fan-out regressed"
        )
    if copies_per_msg is None:
        failures.append("bench.dispatch.payload_copies_per_msg missing from the report")
    elif copies_per_msg > 0:
        failures.append(f"payload copies/msg {copies_per_msg:.3f} > 0")

    if failures:
        for failure in failures:
            print(f"dispatch gate FAILED: {failure}", file=sys.stderr)
        return 1
    speedup = rate[4] / rate[1]
    sweep = ", ".join(f"{n}:{rate[n]:.0f}" for n in sorted(rate))
    print(
        f"dispatch gate OK: 4-shard speedup {speedup:.2f}x (>= {MIN_SPEEDUP_AT_4}x), "
        f"control sheds=0, allocs/msg={allocs_per_msg:.3f}; msgs/s by shards: {sweep}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
