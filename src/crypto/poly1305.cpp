#include "crypto/poly1305.hpp"

#include <cstring>

namespace garnet::crypto {
namespace {

// 26-bit limb implementation following the reference design.
struct Poly1305State {
  std::uint32_t r[5];
  std::uint32_t h[5] = {0, 0, 0, 0, 0};
  std::uint32_t pad[4];
};

std::uint32_t load32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void init(Poly1305State& st, const PolyKey& key) {
  // r with required clamping.
  st.r[0] = load32le(key.data() + 0) & 0x3ffffff;
  st.r[1] = (load32le(key.data() + 3) >> 2) & 0x3ffff03;
  st.r[2] = (load32le(key.data() + 6) >> 4) & 0x3ffc0ff;
  st.r[3] = (load32le(key.data() + 9) >> 6) & 0x3f03fff;
  st.r[4] = (load32le(key.data() + 12) >> 8) & 0x00fffff;
  for (int i = 0; i < 4; ++i) st.pad[i] = load32le(key.data() + 16 + 4 * i);
}

void blocks(Poly1305State& st, const std::uint8_t* m, std::size_t bytes, std::uint32_t hibit) {
  const std::uint32_t r0 = st.r[0], r1 = st.r[1], r2 = st.r[2], r3 = st.r[3], r4 = st.r[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;
  std::uint32_t h0 = st.h[0], h1 = st.h[1], h2 = st.h[2], h3 = st.h[3], h4 = st.h[4];

  while (bytes >= 16) {
    h0 += load32le(m + 0) & 0x3ffffff;
    h1 += (load32le(m + 3) >> 2) & 0x3ffffff;
    h2 += (load32le(m + 6) >> 4) & 0x3ffffff;
    h3 += (load32le(m + 9) >> 6) & 0x3ffffff;
    h4 += (load32le(m + 12) >> 8) | hibit;

    const std::uint64_t d0 = static_cast<std::uint64_t>(h0) * r0 + static_cast<std::uint64_t>(h1) * s4 +
                             static_cast<std::uint64_t>(h2) * s3 + static_cast<std::uint64_t>(h3) * s2 +
                             static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 = static_cast<std::uint64_t>(h0) * r1 + static_cast<std::uint64_t>(h1) * r0 +
                       static_cast<std::uint64_t>(h2) * s4 + static_cast<std::uint64_t>(h3) * s3 +
                       static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 = static_cast<std::uint64_t>(h0) * r2 + static_cast<std::uint64_t>(h1) * r1 +
                       static_cast<std::uint64_t>(h2) * r0 + static_cast<std::uint64_t>(h3) * s4 +
                       static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 = static_cast<std::uint64_t>(h0) * r3 + static_cast<std::uint64_t>(h1) * r2 +
                       static_cast<std::uint64_t>(h2) * r1 + static_cast<std::uint64_t>(h3) * r0 +
                       static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 = static_cast<std::uint64_t>(h0) * r4 + static_cast<std::uint64_t>(h1) * r3 +
                       static_cast<std::uint64_t>(h2) * r2 + static_cast<std::uint64_t>(h3) * r1 +
                       static_cast<std::uint64_t>(h4) * r0;

    std::uint32_t c = static_cast<std::uint32_t>(d0 >> 26);
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += c;
    c = static_cast<std::uint32_t>(d1 >> 26);
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += c;
    c = static_cast<std::uint32_t>(d2 >> 26);
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += c;
    c = static_cast<std::uint32_t>(d3 >> 26);
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += c;
    c = static_cast<std::uint32_t>(d4 >> 26);
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += c;

    m += 16;
    bytes -= 16;
  }

  st.h[0] = h0;
  st.h[1] = h1;
  st.h[2] = h2;
  st.h[3] = h3;
  st.h[4] = h4;
}

Tag finish(Poly1305State& st) {
  std::uint32_t h0 = st.h[0], h1 = st.h[1], h2 = st.h[2], h3 = st.h[3], h4 = st.h[4];

  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // compute h + -p
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  const std::uint32_t g4 = h4 + c - (1u << 26);

  // select h if h < p, or h + -p if h >= p
  std::uint32_t mask = (g4 >> 31) - 1;
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  const std::uint32_t g4m = g4 & mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4m;

  // h = h % 2^128
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  // tag = (h + pad) % 2^128
  std::uint64_t f = static_cast<std::uint64_t>(h0) + st.pad[0];
  h0 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h1) + st.pad[1] + (f >> 32);
  h1 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h2) + st.pad[2] + (f >> 32);
  h2 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h3) + st.pad[3] + (f >> 32);
  h3 = static_cast<std::uint32_t>(f);

  Tag tag{};
  const std::uint32_t words[4] = {h0, h1, h2, h3};
  for (int i = 0; i < 4; ++i) {
    tag[static_cast<std::size_t>(4 * i + 0)] = static_cast<std::uint8_t>(words[i]);
    tag[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(words[i] >> 8);
    tag[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(words[i] >> 16);
    tag[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(words[i] >> 24);
  }
  return tag;
}

}  // namespace

Tag poly1305(const PolyKey& key, util::BytesView data) {
  Poly1305State st;
  init(st, key);

  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t full = data.size() & ~std::size_t{15};
  if (full > 0) blocks(st, bytes, full, 1u << 24);

  const std::size_t rem = data.size() - full;
  if (rem > 0) {
    std::uint8_t final_block[16] = {};
    std::memcpy(final_block, bytes + full, rem);
    final_block[rem] = 1;  // pad with 0x01 then zeros; hibit 0
    blocks(st, final_block, 16, 0);
  }
  return finish(st);
}

bool tag_equal(const Tag& a, const Tag& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace garnet::crypto
