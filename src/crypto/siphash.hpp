// SipHash-2-4 keyed hash.
//
// The authentication service (core/auth) issues consumer tokens as
// SipHash MACs over the consumer identity under a service secret — small,
// fast, and adequate for the paper's "typical authentication mechanisms".
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace garnet::crypto {

using SipKey = std::array<std::uint8_t, 16>;

/// SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(const SipKey& key, util::BytesView data);

[[nodiscard]] SipKey sipkey_from_seed(std::uint64_t seed);

}  // namespace garnet::crypto
