// ChaCha20 stream cipher (RFC 8439 variant).
//
// The paper names "a high-level abstraction of data streams supporting
// end-to-end encryption" as a novel feature: payloads are opaque to the
// middleware, and producing/consuming applications encrypt underneath it.
// This module provides that cipher; crypto/sealed.hpp composes it with
// Poly1305 into an authenticated payload seal.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace garnet::crypto {

using Key = std::array<std::uint8_t, 32>;
using Nonce = std::array<std::uint8_t, 12>;

/// Computes one 64-byte ChaCha20 keystream block.
void chacha20_block(const Key& key, const Nonce& nonce, std::uint32_t counter,
                    std::array<std::uint8_t, 64>& out);

/// XORs `data` in place with the keystream starting at block `counter`.
/// Encryption and decryption are the same operation.
void chacha20_xor(const Key& key, const Nonce& nonce, std::uint32_t counter,
                  std::span<std::byte> data);

/// Convenience: returns an encrypted copy of `data` (counter starts at 1,
/// reserving block 0 for the Poly1305 one-time key as in RFC 8439).
[[nodiscard]] util::Bytes chacha20_encrypt(const Key& key, const Nonce& nonce,
                                           util::BytesView data);

/// Deterministically expands a passphrase-style seed into a key (for tests
/// and examples; not a KDF of record).
[[nodiscard]] Key key_from_seed(std::uint64_t seed);
[[nodiscard]] Nonce nonce_from_counter(std::uint64_t counter);

}  // namespace garnet::crypto
