#include "crypto/siphash.hpp"

#include <bit>

#include "util/rng.hpp"

namespace garnet::crypto {
namespace {

std::uint64_t load64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2, std::uint64_t& v3) {
  v0 += v1;
  v1 = std::rotl(v1, 13);
  v1 ^= v0;
  v0 = std::rotl(v0, 32);
  v2 += v3;
  v3 = std::rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = std::rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = std::rotl(v1, 17);
  v1 ^= v2;
  v2 = std::rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const SipKey& key, util::BytesView data) {
  const std::uint64_t k0 = load64le(key.data());
  const std::uint64_t k1 = load64le(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ull ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dull ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ull ^ k0;
  std::uint64_t v3 = 0x7465646279746573ull ^ k1;

  const auto* in = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t len = data.size();
  const std::size_t full = len & ~std::size_t{7};

  for (std::size_t off = 0; off < full; off += 8) {
    const std::uint64_t m = load64le(in + off);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = full; i < len; ++i) {
    last |= static_cast<std::uint64_t>(in[i]) << (8 * (i - full));
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);

  return v0 ^ v1 ^ v2 ^ v3;
}

SipKey sipkey_from_seed(std::uint64_t seed) {
  SipKey key{};
  std::uint64_t sm = seed;
  for (std::size_t i = 0; i < key.size(); i += 8) {
    const std::uint64_t word = util::splitmix64(sm);
    for (std::size_t j = 0; j < 8; ++j) key[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return key;
}

}  // namespace garnet::crypto
