// Authenticated payload sealing: ChaCha20-Poly1305 in the RFC 8439
// construction, applied end-to-end by data producers and consumers.
//
// The Garnet middleware never holds keys; it forwards sealed payloads as
// opaque bytes (paper §4.3: "The payload field is not interpreted and is
// opaque to the Garnet infrastructure").
#pragma once

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"
#include "util/result.hpp"

namespace garnet::crypto {

enum class SealError : std::uint8_t {
  kTruncated,  ///< Sealed blob shorter than a tag.
  kBadTag,     ///< Authentication failed: tampered or wrong key/nonce.
};

/// Encrypts `plaintext` and appends a 16-byte Poly1305 tag.
[[nodiscard]] util::Bytes seal(const Key& key, const Nonce& nonce, util::BytesView plaintext);

/// Verifies the tag and decrypts. Fails without returning plaintext if the
/// blob was modified in transit.
[[nodiscard]] util::Result<util::Bytes, SealError> open(const Key& key, const Nonce& nonce,
                                                        util::BytesView sealed);

/// Size overhead added by seal().
inline constexpr std::size_t kSealOverhead = 16;

}  // namespace garnet::crypto
