#include "crypto/sealed.hpp"

#include <cstring>

namespace garnet::crypto {
namespace {

PolyKey one_time_key(const Key& key, const Nonce& nonce) {
  std::array<std::uint8_t, 64> block{};
  chacha20_block(key, nonce, 0, block);
  PolyKey otk{};
  std::copy(block.begin(), block.begin() + 32, otk.begin());
  return otk;
}

}  // namespace

util::Bytes seal(const Key& key, const Nonce& nonce, util::BytesView plaintext) {
  util::Bytes out = chacha20_encrypt(key, nonce, plaintext);
  const Tag tag = poly1305(one_time_key(key, nonce), out);
  const auto* p = reinterpret_cast<const std::byte*>(tag.data());
  out.insert(out.end(), p, p + tag.size());
  return out;
}

util::Result<util::Bytes, SealError> open(const Key& key, const Nonce& nonce,
                                          util::BytesView sealed) {
  if (sealed.size() < kSealOverhead) return util::Err{SealError::kTruncated};

  const util::BytesView ciphertext = sealed.first(sealed.size() - kSealOverhead);
  Tag claimed{};
  std::memcpy(claimed.data(), sealed.data() + ciphertext.size(), claimed.size());

  const Tag expected = poly1305(one_time_key(key, nonce), ciphertext);
  if (!tag_equal(claimed, expected)) return util::Err{SealError::kBadTag};

  util::Bytes plain(ciphertext.begin(), ciphertext.end());
  chacha20_xor(key, nonce, 1, plain);
  return plain;
}

}  // namespace garnet::crypto
