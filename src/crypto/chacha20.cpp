#include "crypto/chacha20.hpp"

#include <bit>

#include "util/rng.hpp"

namespace garnet::crypto {
namespace {

constexpr std::array<std::uint32_t, 4> kSigma = {0x61707865u, 0x3320646Eu, 0x79622D32u,
                                                 0x6B206574u};  // "expand 32-byte k"

constexpr std::uint32_t load32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

constexpr void store32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                             std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

}  // namespace

void chacha20_block(const Key& key, const Nonce& nonce, std::uint32_t counter,
                    std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> state{};
  for (int i = 0; i < 4; ++i) state[static_cast<std::size_t>(i)] = kSigma[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8; ++i) state[static_cast<std::size_t>(4 + i)] = load32le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[static_cast<std::size_t>(13 + i)] = load32le(nonce.data() + 4 * i);

  std::array<std::uint32_t, 16> working = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store32le(out.data() + 4 * i,
              working[static_cast<std::size_t>(i)] + state[static_cast<std::size_t>(i)]);
  }
}

void chacha20_xor(const Key& key, const Nonce& nonce, std::uint32_t counter,
                  std::span<std::byte> data) {
  std::array<std::uint8_t, 64> block{};
  std::size_t offset = 0;
  while (offset < data.size()) {
    chacha20_block(key, nonce, counter++, block);
    const std::size_t n = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) {
      data[offset + i] ^= static_cast<std::byte>(block[i]);
    }
    offset += n;
  }
}

util::Bytes chacha20_encrypt(const Key& key, const Nonce& nonce, util::BytesView data) {
  util::Bytes out(data.begin(), data.end());
  chacha20_xor(key, nonce, 1, out);
  return out;
}

Key key_from_seed(std::uint64_t seed) {
  Key key{};
  std::uint64_t sm = seed;
  for (std::size_t i = 0; i < key.size(); i += 8) {
    const std::uint64_t word = util::splitmix64(sm);
    for (std::size_t j = 0; j < 8; ++j) key[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return key;
}

Nonce nonce_from_counter(std::uint64_t counter) {
  Nonce nonce{};
  for (std::size_t j = 0; j < 8; ++j) nonce[j] = static_cast<std::uint8_t>(counter >> (8 * j));
  return nonce;
}

}  // namespace garnet::crypto
