// Poly1305 one-time authenticator (RFC 8439).
//
// Used by crypto/sealed.hpp to detect tampering with end-to-end encrypted
// payloads travelling through the (untrusted) middleware.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace garnet::crypto {

using Tag = std::array<std::uint8_t, 16>;
using PolyKey = std::array<std::uint8_t, 32>;

/// Computes the Poly1305 tag of `data` under a one-time key.
[[nodiscard]] Tag poly1305(const PolyKey& key, util::BytesView data);

/// Constant-time tag comparison.
[[nodiscard]] bool tag_equal(const Tag& a, const Tag& b);

}  // namespace garnet::crypto
