// Self-organizing multi-hop tree routing (paper §8, ROADMAP item 4).
//
// The paper's single-hop radio model leaves every sensor outside a
// receiver's disk mute. This module grows a spanning forest rooted at the
// fixed receivers using nothing but the lossy medium itself: receivers
// beacon with hop count 0, relay-capable nodes overhear beacons, pick a
// parent by (hop count, smoothed RSSI) with hysteresis, re-beacon their
// own depth, and forward data frames parent-ward with a TTL and
// per-(sensor, sequence) duplicate suppression.
//
// Churn is the steady state, not the exception: parent loss is detected
// by a missed-beacon timeout, re-attachment backs off exponentially, and
// frames caught in flight during repair are buffered in a bounded orphan
// queue whose overflow spills frames as plain single-hop transmissions —
// graceful degradation instead of silent loss.
//
// Two frame kinds ride the uplink next to Figure-2 data frames. Both are
// prefixed with a magic byte (0xB7) whose version bits can never collide
// with a valid Figure-2 header (version 1 ⇒ first byte 0b01xxxxxx), and
// both carry a CRC-32C trailer so bit-flips on the air are dropped, not
// misrouted:
//
//   beacon  [0xB7]['B'][u32 origin][u16 hop][u32 root][u32 crc]
//   data    [0xB7]['D'][u8 ttl][u8 hop][u32 next_hop][u32 origin]
//           [u16 len][len bytes: inner Figure-2 frame][u32 crc]
//
// Keys: a node's key is its 24-bit SensorId; a receiver (root) key is
// kRootKeyFlag | receiver id. The router never draws randomness — tree
// formation is a pure function of the frame arrival order, so same-seed
// runs produce byte-identical repair journals at any advance() cadence.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/message.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/ring_buffer.hpp"
#include "util/time.hpp"

namespace garnet::wireless::tree {

/// High bit marks fixed-receiver (root) keys; low bits carry the id.
inline constexpr std::uint32_t kRootKeyFlag = 0x8000'0000u;

[[nodiscard]] constexpr std::uint32_t root_key(std::uint32_t receiver_id) {
  return kRootKeyFlag | receiver_id;
}
[[nodiscard]] constexpr bool is_root_key(std::uint32_t key) {
  return (key & kRootKeyFlag) != 0;
}

/// Magic first byte of every tree frame. Its version bits (7..6 = 10)
/// make it unmistakable for a Figure-2 frame (version 1 ⇒ 0b01xxxxxx).
inline constexpr std::uint8_t kTreeMagic = 0xB7;
inline constexpr std::uint8_t kBeaconType = 'B';
inline constexpr std::uint8_t kDataType = 'D';

struct Beacon {
  std::uint32_t origin = 0;  ///< Beaconing node/root key.
  std::uint16_t hop = 0;     ///< Origin's depth (0 for roots).
  std::uint32_t root = 0;    ///< Root the origin is attached to.
};

struct DataFrame {
  std::uint8_t ttl = 0;
  std::uint8_t hop = 0;          ///< Sender's depth (diagnostic).
  std::uint32_t next_hop = 0;    ///< Key the frame is addressed to.
  std::uint32_t origin = 0;      ///< Key of the wrapping node.
  util::BytesView inner;         ///< Encapsulated Figure-2 frame.
};

[[nodiscard]] bool is_tree_frame(util::BytesView frame);
[[nodiscard]] util::Bytes encode_beacon(const Beacon& beacon);
[[nodiscard]] std::optional<Beacon> decode_beacon(util::BytesView frame);
[[nodiscard]] util::Bytes encode_data(const DataFrame& frame);
/// The returned DataFrame's `inner` aliases `frame`.
[[nodiscard]] std::optional<DataFrame> decode_data(util::BytesView frame);

/// What a fixed-network uplink sink should do with one received frame.
/// Receivers opportunistically decapsulate tree data frames they overhear
/// (the inner Figure-2 frame enters Filtering as usual — relayed copies
/// stay out of location evidence via kRelayed); beacons and corrupt tree
/// frames never reach the middleware.
struct SinkDecision {
  enum class Verdict : std::uint8_t {
    kPassThrough,  ///< Not a tree frame: deliver as-is.
    kBeacon,       ///< Tree beacon: drop before Filtering.
    kInner,        ///< Tree data: deliver `inner` instead of the frame.
    kCorrupt,      ///< Malformed tree frame: drop.
  };
  Verdict verdict = Verdict::kPassThrough;
  util::Bytes inner;
};
[[nodiscard]] SinkDecision decide_at_sink(util::BytesView frame);

/// Bounded, deterministic record of tree repair events (attach /
/// reparent / orphan), text-rendered like the fault journal so same-seed
/// runs are byte-comparable.
class TreeJournal {
 public:
  explicit TreeJournal(std::size_t limit = 0) : limit_(limit) {}

  void set_limit(std::size_t limit) { limit_ = limit; }
  void record(util::SimTime at, std::string_view event, std::uint32_t node,
              std::uint32_t parent);
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// One line per event: "<ns> <event> <node>-><parent>\n".
  [[nodiscard]] std::string text() const;
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    util::SimTime at;
    std::string event;
    std::uint32_t node = 0;
    std::uint32_t parent = 0;
  };
  std::size_t limit_;
  std::vector<Entry> entries_;
};

/// "root-<id>" or "sensor-<id>" rendering used by the repair journal.
[[nodiscard]] std::string key_name(std::uint32_t key);

struct TreeConfig {
  /// Beacon cadence of attached nodes; also the maintenance-tick period.
  util::Duration beacon_interval = util::Duration::millis(400);
  /// Hop budget for forwarded data frames; ingress clamps forged values.
  std::uint8_t max_ttl = 8;
  /// A same-depth challenger must beat the parent's smoothed RSSI by this
  /// margin before a re-parent happens (damps flapping on RSSI noise).
  double hysteresis_db = 6.0;
  /// Parent declared lost after this many beacon intervals of silence.
  std::uint32_t missed_beacons = 3;
  /// Exponential re-attach backoff: base * 2^(losses-1), capped.
  util::Duration reattach_backoff = util::Duration::millis(200);
  util::Duration reattach_backoff_max = util::Duration::seconds(5);
  /// After this long attached to one parent, the backoff counter resets.
  util::Duration stable_period = util::Duration::seconds(4);
  /// EWMA weight of a new RSSI sample against the smoothed neighbour value.
  double rssi_smoothing = 0.3;
  std::size_t orphan_capacity = 32;    ///< Frames buffered while orphaned.
  std::size_t dedup_capacity = 256;    ///< (sensor, seq) fingerprints kept.
  std::size_t neighbor_capacity = 32;  ///< Beacon sources tracked.
};

struct TreeStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t beacons_heard = 0;
  std::uint64_t attaches = 0;       ///< First attach + post-orphan re-attaches.
  std::uint64_t reparents = 0;      ///< Attached-to-attached parent switches.
  std::uint64_t orphan_events = 0;  ///< Parent-loss detections.
  std::uint64_t forwarded = 0;      ///< Tree data frames forwarded parent-ward.
  std::uint64_t proxied = 0;        ///< Plain overheard frames pulled into the tree.
  std::uint64_t dup_dropped = 0;    ///< Duplicate-suppression drops.
  std::uint64_t ttl_dropped = 0;    ///< TTL-exhausted drops (loop symptom).
  std::uint64_t loop_dropped = 0;   ///< Own frame came back around.
  std::uint64_t corrupt_dropped = 0;
  std::uint64_t buffered = 0;       ///< Frames parked in the orphan queue.
  std::uint64_t spilled = 0;        ///< Overflow frames sent plain instead.
};

/// Per-node routing state machine. Owned by a relay-capable SensorNode;
/// fed overheard frames (with RSSI) and the node's own samples; emits
/// transmissions through a hook so the node keeps paying the energy bill.
/// Draws no randomness: determinism by construction.
class TreeRouter {
 public:
  TreeRouter(sim::Scheduler& scheduler, TreeConfig config, std::uint32_t self_key);

  /// Every frame the router wants on the air goes through here.
  void set_transmit(std::function<void(util::Bytes)> transmit) {
    transmit_ = std::move(transmit);
  }
  void set_journal(TreeJournal* journal) { journal_ = journal; }

  /// Starts the maintenance timer. stop() wipes all volatile state —
  /// crash semantics: a restarted relay rejoins the tree from scratch.
  void start();
  void stop();

  /// The node's own Figure-2 frame enters the tree here. Attached: wrap
  /// toward the parent (or transmit plain when the parent is a root —
  /// the receiver hears the final hop directly). Never attached:
  /// transmit plain (legacy single-hop behaviour). Orphaned: buffer,
  /// spilling the oldest frame as a plain transmission on overflow.
  void send_own(util::Bytes frame);

  /// One overheard frame (beacon, tree data, or plain Figure-2).
  void on_frame(util::BytesView frame, double rssi_dbm);

  /// Beacon-loss fault: the node stops hearing beacons (its parent will
  /// eventually be declared lost), exercising repair without a crash.
  void set_beacon_deaf(bool deaf) { beacon_deaf_ = deaf; }

  [[nodiscard]] bool attached() const noexcept { return attached_; }
  [[nodiscard]] std::uint32_t parent_key() const noexcept { return parent_; }
  [[nodiscard]] std::uint16_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t neighbor_count() const noexcept { return neighbors_.size(); }
  [[nodiscard]] std::size_t orphan_backlog() const noexcept { return orphans_.size(); }
  [[nodiscard]] const TreeStats& stats() const noexcept { return stats_; }

 private:
  struct Neighbor {
    std::uint16_t hop = 0;
    std::uint32_t root = 0;
    double rssi_dbm = -120.0;
    util::SimTime last_heard;
  };

  void on_beacon(const Beacon& beacon, double rssi_dbm);
  void on_tree_data(const DataFrame& frame);
  void on_plain_frame(util::BytesView frame);
  void maintenance_tick();
  void attach_to(std::uint32_t key);
  void detach();
  void try_attach_best();
  void send_beacon();
  /// Forwards an already-kRelayed inner frame toward the parent.
  void forward_inner(util::Bytes inner, std::uint8_t ttl);
  [[nodiscard]] bool seen_before(std::uint64_t fingerprint);
  [[nodiscard]] util::Duration parent_timeout() const;

  sim::Scheduler& scheduler_;
  TreeConfig config_;
  std::uint32_t self_key_;
  std::function<void(util::Bytes)> transmit_;
  TreeJournal* journal_ = nullptr;

  std::map<std::uint32_t, Neighbor> neighbors_;
  bool running_ = false;
  bool beacon_deaf_ = false;
  bool attached_ = false;
  bool ever_attached_ = false;
  std::uint32_t parent_ = 0;
  std::uint32_t root_ = 0;
  std::uint16_t depth_ = 0;
  util::SimTime parent_since_;
  std::uint32_t losses_ = 0;        ///< Consecutive parent losses (backoff exponent).
  util::SimTime reattach_at_;       ///< Earliest next attach attempt.
  util::RingBuffer<std::uint64_t> seen_;
  struct Orphan {
    util::Bytes inner;
    std::uint8_t ttl = 0;
  };
  std::deque<Orphan> orphans_;
  sim::EventId tick_;
  TreeStats stats_;
};

}  // namespace garnet::wireless::tree
