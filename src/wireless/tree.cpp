#include "wireless/tree.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/crc32c.hpp"

namespace garnet::wireless::tree {

namespace {

constexpr std::size_t kBeaconBytes = 2 + 4 + 2 + 4 + 4;
constexpr std::size_t kDataHeaderBytes = 2 + 1 + 1 + 4 + 4 + 2;

/// Fingerprint of the inner Figure-2 frame: (packed StreamID << 16) | seq.
std::uint64_t fingerprint_of(const core::DataMessageView& msg) {
  return (static_cast<std::uint64_t>(msg.stream_id.packed()) << 16) | msg.sequence;
}

/// Returns `inner` with the kRelayed flag set (re-encoded when it was
/// clear). The first forwarder tags the frame; the origin's own wrap
/// leaves it clear so a direct root reception still carries location
/// evidence.
std::optional<util::Bytes> with_relayed_flag(util::BytesView inner) {
  const auto decoded = core::decode(inner);
  if (!decoded.ok()) return std::nullopt;
  core::DataMessage msg = decoded.value();
  if (msg.header.has(core::HeaderFlag::kRelayed)) {
    return util::Bytes(inner.begin(), inner.end());
  }
  msg.header.set(core::HeaderFlag::kRelayed);
  return core::encode(msg);
}

}  // namespace

bool is_tree_frame(util::BytesView frame) {
  return !frame.empty() && static_cast<std::uint8_t>(frame[0]) == kTreeMagic;
}

util::Bytes encode_beacon(const Beacon& beacon) {
  util::ByteWriter w(kBeaconBytes);
  w.u8(kTreeMagic);
  w.u8(kBeaconType);
  w.u32(beacon.origin);
  w.u16(beacon.hop);
  w.u32(beacon.root);
  w.u32(util::crc32c(w.view()));
  return std::move(w).take();
}

std::optional<Beacon> decode_beacon(util::BytesView frame) {
  if (frame.size() != kBeaconBytes) return std::nullopt;
  util::ByteReader r(frame);
  if (r.u8() != kTreeMagic || r.u8() != kBeaconType) return std::nullopt;
  Beacon beacon;
  beacon.origin = r.u32();
  beacon.hop = r.u16();
  beacon.root = r.u32();
  const std::uint32_t crc = r.u32();
  if (!r.ok() || crc != util::crc32c(frame.first(frame.size() - 4))) {
    return std::nullopt;
  }
  return beacon;
}

util::Bytes encode_data(const DataFrame& frame) {
  util::ByteWriter w(kDataHeaderBytes + frame.inner.size() + 4);
  w.u8(kTreeMagic);
  w.u8(kDataType);
  w.u8(frame.ttl);
  w.u8(frame.hop);
  w.u32(frame.next_hop);
  w.u32(frame.origin);
  w.u16(static_cast<std::uint16_t>(frame.inner.size()));
  w.raw(frame.inner);
  w.u32(util::crc32c(w.view()));
  return std::move(w).take();
}

std::optional<DataFrame> decode_data(util::BytesView frame) {
  if (frame.size() < kDataHeaderBytes + 4) return std::nullopt;
  util::ByteReader r(frame);
  if (r.u8() != kTreeMagic || r.u8() != kDataType) return std::nullopt;
  DataFrame data;
  data.ttl = r.u8();
  data.hop = r.u8();
  data.next_hop = r.u32();
  data.origin = r.u32();
  const std::size_t len = r.u16();
  if (len != frame.size() - kDataHeaderBytes - 4) return std::nullopt;
  data.inner = r.view(len);
  const std::uint32_t crc = r.u32();
  if (!r.ok() || crc != util::crc32c(frame.first(frame.size() - 4))) {
    return std::nullopt;
  }
  return data;
}

SinkDecision decide_at_sink(util::BytesView frame) {
  SinkDecision decision;
  if (!is_tree_frame(frame)) return decision;
  if (frame.size() >= 2 && static_cast<std::uint8_t>(frame[1]) == kBeaconType) {
    decision.verdict = decode_beacon(frame) ? SinkDecision::Verdict::kBeacon
                                            : SinkDecision::Verdict::kCorrupt;
    return decision;
  }
  const auto data = decode_data(frame);
  if (!data) {
    decision.verdict = SinkDecision::Verdict::kCorrupt;
    return decision;
  }
  decision.verdict = SinkDecision::Verdict::kInner;
  decision.inner.assign(data->inner.begin(), data->inner.end());
  return decision;
}

std::string key_name(std::uint32_t key) {
  char buf[32];
  if (is_root_key(key)) {
    std::snprintf(buf, sizeof(buf), "root-%u", key & ~kRootKeyFlag);
  } else {
    std::snprintf(buf, sizeof(buf), "sensor-%u", key);
  }
  return buf;
}

void TreeJournal::record(util::SimTime at, std::string_view event, std::uint32_t node,
                         std::uint32_t parent) {
  if (entries_.size() >= limit_) return;
  entries_.push_back(Entry{at, std::string(event), node, parent});
}

std::string TreeJournal::text() const {
  std::string out;
  out.reserve(entries_.size() * 48);
  char line[128];
  for (const Entry& entry : entries_) {
    std::snprintf(line, sizeof(line), "%" PRId64 " %s %s->%s\n", entry.at.ns,
                  entry.event.c_str(), key_name(entry.node).c_str(),
                  key_name(entry.parent).c_str());
    out += line;
  }
  return out;
}

TreeRouter::TreeRouter(sim::Scheduler& scheduler, TreeConfig config, std::uint32_t self_key)
    : scheduler_(scheduler),
      config_(config),
      self_key_(self_key),
      seen_(config.dedup_capacity) {}

void TreeRouter::start() {
  if (running_) return;
  running_ = true;
  tick_ = scheduler_.schedule_after(config_.beacon_interval, [this] { maintenance_tick(); });
}

void TreeRouter::stop() {
  if (!running_) return;
  running_ = false;
  scheduler_.cancel(tick_);
  tick_ = sim::EventId{};
  // Crash semantics: volatile routing state does not survive a restart.
  neighbors_.clear();
  orphans_.clear();
  seen_.clear();
  attached_ = false;
  ever_attached_ = false;
  parent_ = 0;
  root_ = 0;
  depth_ = 0;
  losses_ = 0;
  reattach_at_ = util::SimTime{};
  beacon_deaf_ = false;
}

util::Duration TreeRouter::parent_timeout() const {
  return util::Duration::nanos(config_.beacon_interval.ns *
                               static_cast<std::int64_t>(config_.missed_beacons));
}

void TreeRouter::on_frame(util::BytesView frame, double rssi_dbm) {
  if (!running_) return;
  if (is_tree_frame(frame)) {
    if (frame.size() >= 2 && static_cast<std::uint8_t>(frame[1]) == kBeaconType) {
      const auto beacon = decode_beacon(frame);
      if (!beacon) {
        ++stats_.corrupt_dropped;
        return;
      }
      on_beacon(*beacon, rssi_dbm);
      return;
    }
    const auto data = decode_data(frame);
    if (!data) {
      ++stats_.corrupt_dropped;
      return;
    }
    on_tree_data(*data);
    return;
  }
  on_plain_frame(frame);
}

void TreeRouter::on_beacon(const Beacon& beacon, double rssi_dbm) {
  if (beacon_deaf_) return;
  if (beacon.origin == self_key_) return;  // own beacon echoed back
  // Implausible depth: deeper than the TTL budget can ever serve — and a
  // forged 0xFFFF would wrap hop+1 to 0, hijacking parent selection.
  if (beacon.hop >= config_.max_ttl) {
    ++stats_.corrupt_dropped;
    return;
  }
  ++stats_.beacons_heard;

  const util::SimTime now = scheduler_.now();
  auto it = neighbors_.find(beacon.origin);
  if (it == neighbors_.end()) {
    if (neighbors_.size() >= config_.neighbor_capacity) {
      // Evict the stalest non-parent entry; refuse the newcomer if the
      // table is full of fresher sources (bounded by construction).
      auto stalest = neighbors_.end();
      for (auto n = neighbors_.begin(); n != neighbors_.end(); ++n) {
        if (attached_ && n->first == parent_) continue;
        if (stalest == neighbors_.end() || n->second.last_heard < stalest->second.last_heard) {
          stalest = n;
        }
      }
      if (stalest == neighbors_.end() || stalest->second.last_heard >= now) return;
      neighbors_.erase(stalest);
    }
    Neighbor fresh;
    fresh.rssi_dbm = rssi_dbm;
    it = neighbors_.emplace(beacon.origin, fresh).first;
  } else {
    it->second.rssi_dbm = it->second.rssi_dbm * (1.0 - config_.rssi_smoothing) +
                          rssi_dbm * config_.rssi_smoothing;
  }
  it->second.hop = beacon.hop;
  it->second.root = beacon.root;
  it->second.last_heard = now;

  const std::uint16_t candidate_depth = static_cast<std::uint16_t>(beacon.hop + 1);
  if (!attached_) {
    if (now.ns >= reattach_at_.ns) attach_to(beacon.origin);
    return;
  }
  if (beacon.origin == parent_) {
    depth_ = candidate_depth;  // track the parent's own depth changes
    root_ = beacon.root;
    return;
  }
  const auto parent_it = neighbors_.find(parent_);
  const double parent_rssi =
      parent_it != neighbors_.end() ? parent_it->second.rssi_dbm : -120.0;
  const bool better = candidate_depth < depth_ ||
                      (candidate_depth == depth_ &&
                       it->second.rssi_dbm > parent_rssi + config_.hysteresis_db);
  if (better) attach_to(beacon.origin);
}

void TreeRouter::attach_to(std::uint32_t key) {
  const auto it = neighbors_.find(key);
  if (it == neighbors_.end()) return;
  const bool was_attached = attached_;
  const std::uint32_t old_parent = parent_;
  if (was_attached && key == old_parent) return;

  attached_ = true;
  ever_attached_ = true;
  parent_ = key;
  root_ = it->second.root != 0 ? it->second.root : key;
  depth_ = static_cast<std::uint16_t>(it->second.hop + 1);
  parent_since_ = scheduler_.now();

  if (was_attached) {
    ++stats_.reparents;
    if (journal_ != nullptr) {
      journal_->record(scheduler_.now(), "reparent", self_key_, parent_);
    }
  } else {
    ++stats_.attaches;
    if (journal_ != nullptr) {
      journal_->record(scheduler_.now(), "attach", self_key_, parent_);
    }
  }

  // Announce the new depth immediately so downstream nodes converge in
  // one radio hop per tree level instead of one beacon interval each.
  send_beacon();

  // Repair complete: flush the frames buffered while orphaned.
  while (!orphans_.empty()) {
    Orphan orphan = std::move(orphans_.front());
    orphans_.pop_front();
    forward_inner(std::move(orphan.inner), orphan.ttl);
  }
}

void TreeRouter::detach() {
  ++stats_.orphan_events;
  if (journal_ != nullptr) {
    journal_->record(scheduler_.now(), "orphan", self_key_, parent_);
  }
  const util::SimTime now = scheduler_.now();
  // A long stable attachment forgives past churn; otherwise the backoff
  // exponent keeps growing so a flapping parent is courted ever slower.
  if ((now - parent_since_).ns >= config_.stable_period.ns) losses_ = 0;
  ++losses_;
  std::int64_t backoff = config_.reattach_backoff.ns;
  for (std::uint32_t i = 1; i < losses_ && backoff < config_.reattach_backoff_max.ns; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.reattach_backoff_max.ns);
  reattach_at_ = now + util::Duration::nanos(backoff);

  neighbors_.erase(parent_);
  attached_ = false;
  parent_ = 0;
  root_ = 0;
  depth_ = 0;
}

void TreeRouter::try_attach_best() {
  const util::SimTime now = scheduler_.now();
  if (now.ns < reattach_at_.ns) return;
  auto best = neighbors_.end();
  for (auto it = neighbors_.begin(); it != neighbors_.end(); ++it) {
    if ((now - it->second.last_heard).ns > parent_timeout().ns) continue;  // stale
    if (best == neighbors_.end() || it->second.hop < best->second.hop ||
        (it->second.hop == best->second.hop && it->second.rssi_dbm > best->second.rssi_dbm)) {
      best = it;
    }
  }
  if (best != neighbors_.end()) attach_to(best->first);
}

void TreeRouter::maintenance_tick() {
  if (!running_) return;
  const util::SimTime now = scheduler_.now();

  if (attached_) {
    const auto it = neighbors_.find(parent_);
    const bool lost = it == neighbors_.end() ||
                      (now - it->second.last_heard).ns > parent_timeout().ns;
    if (lost) {
      detach();
    } else if ((now - parent_since_).ns >= config_.stable_period.ns) {
      losses_ = 0;
    }
  }
  if (!attached_) {
    try_attach_best();
  }
  if (attached_) {
    send_beacon();
  }

  tick_ = scheduler_.schedule_after(config_.beacon_interval, [this] { maintenance_tick(); });
}

void TreeRouter::send_beacon() {
  if (!transmit_) return;
  ++stats_.beacons_sent;
  transmit_(encode_beacon(Beacon{self_key_, depth_, root_}));
}

void TreeRouter::send_own(util::Bytes frame) {
  if (!transmit_) return;
  if (attached_) {
    if (is_root_key(parent_)) {
      // Final hop: the receiver hears the Figure-2 frame directly, so a
      // depth-1 node behaves exactly like the pre-tree single-hop radio.
      transmit_(std::move(frame));
    } else {
      transmit_(encode_data(DataFrame{config_.max_ttl, static_cast<std::uint8_t>(depth_),
                                      parent_, self_key_, frame}));
    }
    return;
  }
  if (!ever_attached_) {
    // No tree in sight (or none configured): legacy single-hop uplink.
    transmit_(std::move(frame));
    return;
  }
  // Orphaned mid-repair: buffer, spilling the oldest as a plain
  // transmission when the queue is full — it may still get lucky.
  if (orphans_.size() >= config_.orphan_capacity) {
    Orphan spill = std::move(orphans_.front());
    orphans_.pop_front();
    ++stats_.spilled;
    transmit_(std::move(spill.inner));
  }
  ++stats_.buffered;
  orphans_.push_back(Orphan{std::move(frame), config_.max_ttl});
}

bool TreeRouter::seen_before(std::uint64_t fingerprint) {
  for (std::size_t i = 0; i < seen_.size(); ++i) {
    if (seen_.at(i) == fingerprint) return true;
  }
  seen_.push(fingerprint);
  return false;
}

void TreeRouter::forward_inner(util::Bytes inner, std::uint8_t ttl) {
  if (!transmit_) return;
  if (!attached_) {
    if (orphans_.size() >= config_.orphan_capacity) {
      Orphan spill = std::move(orphans_.front());
      orphans_.pop_front();
      ++stats_.spilled;
      transmit_(std::move(spill.inner));
    }
    ++stats_.buffered;
    orphans_.push_back(Orphan{std::move(inner), ttl});
    return;
  }
  ++stats_.forwarded;
  if (is_root_key(parent_)) {
    transmit_(std::move(inner));
  } else {
    transmit_(encode_data(DataFrame{ttl, static_cast<std::uint8_t>(depth_), parent_,
                                    self_key_, inner}));
  }
}

void TreeRouter::on_tree_data(const DataFrame& frame) {
  if (frame.next_hop != self_key_) return;  // addressed to someone else
  if (frame.origin == self_key_) {
    ++stats_.loop_dropped;
    return;
  }
  const auto inner = core::decode_view(frame.inner);
  if (!inner.ok()) {
    ++stats_.corrupt_dropped;
    return;
  }
  if (inner.value().stream_id.sensor == self_key_) {
    ++stats_.loop_dropped;  // own sample came back around the tree
    return;
  }
  if (seen_before(fingerprint_of(inner.value()))) {
    ++stats_.dup_dropped;
    return;
  }
  // Clamp forged TTLs before spending the budget: a hostile 0xFF must
  // not buy more hops than the configured maximum.
  const std::uint8_t ttl = std::min(frame.ttl, config_.max_ttl);
  if (ttl == 0) {
    ++stats_.ttl_dropped;
    return;
  }
  auto tagged = with_relayed_flag(frame.inner);
  if (!tagged) {
    ++stats_.corrupt_dropped;
    return;
  }
  forward_inner(std::move(*tagged), static_cast<std::uint8_t>(ttl - 1));
}

void TreeRouter::on_plain_frame(util::BytesView frame) {
  // Tree ingress proxy: a plain single-hop frame from a non-tree sensor
  // is pulled into the tree (or blindly rebroadcast once when no tree is
  // reachable — the pre-tree relay behaviour).
  if (!transmit_) return;
  const auto decoded = core::decode(frame);
  if (!decoded.ok()) {
    ++stats_.corrupt_dropped;
    return;
  }
  const core::DataMessage& msg = decoded.value();
  if (msg.stream_id.sensor == self_key_) return;  // own traffic, echoed
  // An already-relayed frame is never proxied again: one ingress per
  // frame keeps unattached relays from ping-ponging rebroadcasts.
  if (msg.header.has(core::HeaderFlag::kRelayed)) return;
  if (seen_before(fingerprint_of(core::as_view(msg)))) {
    ++stats_.dup_dropped;
    return;
  }
  core::DataMessage relayed = msg;
  relayed.header.set(core::HeaderFlag::kRelayed);
  util::Bytes out = core::encode(relayed);
  ++stats_.proxied;
  if (attached_ && !is_root_key(parent_)) {
    transmit_(encode_data(DataFrame{config_.max_ttl, static_cast<std::uint8_t>(depth_),
                                    parent_, self_key_, out}));
  } else {
    transmit_(std::move(out));
  }
}

}  // namespace garnet::wireless::tree
