// Sensor nodes.
//
// Garnet imposes "a minimum level of sensor intelligence ... where both
// simple and sophisticated sensors could coexist" (paper §5). This module
// models that spectrum with one class and a capability set:
//
//   * simple sensors  — transmit-only; they sample their internal streams
//     on a timer and never listen;
//   * sophisticated sensors — additionally receive-capable: they accept
//     stream-update requests from the actuation path, apply them within
//     their own hard constraints, and acknowledge via the kAckPresent
//     header field of their next data message.
//
// Each sensor carries up to 256 internal streams (Figure 2's 8-bit
// internal stream id) with independent sampling intervals and payload
// generators, a 16-bit wrapping sequence counter per stream, and a simple
// energy budget so transmission-cost experiments (E7) can report lifetime.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/message.hpp"
#include "core/stream_update.hpp"
#include "obs/trace.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"
#include "util/ring_buffer.hpp"
#include "wireless/radio.hpp"
#include "wireless/tree.hpp"

namespace garnet::wireless {

/// Produces one payload for a sample at time t.
using PayloadGenerator = std::function<util::Bytes(util::SimTime, util::Rng&)>;

/// Payload generator for location-aware sensors: also receives the
/// device's own position (paper §5 keeps location out of the *header*,
/// but a location-aware application may well embed it in its opaque
/// payload — consumers then feed it back as Location Service hints).
using PositionalPayloadGenerator =
    std::function<util::Bytes(util::SimTime, util::Rng&, sim::Vec2)>;

/// What this device can do. Heterogeneity is the point (paper §6):
/// simple transmit-only devices and sophisticated ones share the network.
struct SensorCapabilities {
  bool receive_capable = false;  ///< Listens for stream-update requests.
  bool location_aware = false;   ///< Knows its own position (app-level use).
  /// Runs a tree::TreeRouter over the overhearing substrate — the
  /// paper's §8 multi-hop extension. When receivers beacon, relays
  /// self-organize into a spanning forest and forward frames parent-ward
  /// with TTL + duplicate suppression; without beacons they fall back to
  /// the historical behaviour (rebroadcast an overheard frame once,
  /// tagged kRelayed, never forwarding an already-relayed frame).
  bool relay_capable = false;
};

/// Static, device-imposed limits a stream-update request cannot override.
/// The Resource Manager keeps an approximate copy of these (paper §6) to
/// pre-filter inadmissible requests.
struct StreamConstraints {
  std::uint32_t min_interval_ms = 100;     ///< Fastest the hardware can sample.
  std::uint32_t max_interval_ms = 600000;  ///< Slowest useful rate.
  std::uint16_t max_payload = 256;
};

/// Configuration of one internal stream.
struct StreamSpec {
  core::InternalStreamId id = 0;
  bool enabled = true;
  std::uint32_t interval_ms = 1000;
  StreamConstraints constraints;
  PayloadGenerator generate;  ///< Defaults to an 8-byte reading if empty.
  /// Used instead of `generate` when set AND the sensor is
  /// location-aware; a non-location-aware device cannot know its
  /// position, so the spec falls back to `generate` (or the default).
  PositionalPayloadGenerator generate_at;
  std::uint32_t mode = 0;     ///< Opaque sensing mode (kSetMode target).
};

/// Result of applying a stream-update request at the device.
enum class UpdateOutcome : std::uint8_t {
  kApplied,          ///< Request applied as-is.
  kClamped,          ///< Applied after clamping to device constraints.
  kDuplicate,        ///< Request id already handled; re-acknowledged only.
  kRejected,         ///< Violates constraints or unknown stream.
  kNotReceiveCapable,
};

class SensorNode {
 public:
  struct Config {
    core::SensorId id = 0;
    SensorCapabilities capabilities;
    std::vector<StreamSpec> streams;
    double battery_joules = 1e9;          ///< Effectively infinite by default.
    double tx_cost_joules_per_byte = 50e-6;
    double downlink_listen_range_m = 1e9; ///< Receiver sensitivity bound.
    double relay_overhear_range_m = 150;  ///< Peer-overhearing radius.
    tree::TreeConfig tree;                ///< Routing knobs (relay_capable only).
  };

  SensorNode(sim::Scheduler& scheduler, RadioMedium& medium, Config config,
             std::unique_ptr<sim::MobilityModel> mobility, util::Rng rng);
  ~SensorNode();

  SensorNode(const SensorNode&) = delete;
  SensorNode& operator=(const SensorNode&) = delete;

  /// Begins sampling all enabled streams.
  void start();

  /// Stops all sampling (battery exhaustion does this automatically).
  void stop();

  [[nodiscard]] core::SensorId id() const noexcept { return config_.id; }
  [[nodiscard]] const SensorCapabilities& capabilities() const noexcept {
    return config_.capabilities;
  }
  [[nodiscard]] sim::Vec2 position() const { return mobility_->position_at(scheduler_.now()); }
  [[nodiscard]] double battery_joules() const noexcept { return battery_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t updates_applied() const noexcept { return updates_applied_; }
  [[nodiscard]] std::uint64_t updates_rejected() const noexcept { return updates_rejected_; }
  /// Frames this node moved on behalf of others (tree forwards + proxied
  /// rebroadcasts). Zero for non-relay sensors.
  [[nodiscard]] std::uint64_t frames_relayed() const noexcept {
    return router_ ? router_->stats().forwarded + router_->stats().proxied : 0;
  }

  /// The node's tree router, or nullptr for non-relay sensors.
  [[nodiscard]] tree::TreeRouter* router() noexcept { return router_.get(); }
  [[nodiscard]] const tree::TreeRouter* router() const noexcept { return router_.get(); }

  /// Repair events (attach/reparent/orphan) are recorded here, if set.
  void set_tree_journal(tree::TreeJournal* journal) {
    if (router_) router_->set_journal(journal);
  }

  /// Current spec of one internal stream, if it exists.
  [[nodiscard]] const StreamSpec* stream(core::InternalStreamId id) const;

  /// Applies an update directly (the downlink path calls this; tests may
  /// call it to model out-of-band configuration).
  UpdateOutcome apply_update(const core::StreamUpdateRequest& request);

  /// Test/diagnostic hook: called with every update outcome.
  void set_update_observer(std::function<void(const core::StreamUpdateRequest&, UpdateOutcome)> fn) {
    update_observer_ = std::move(fn);
  }

  /// Message traces originate here: each uplink sample opens a "radio"
  /// span keyed by its (StreamID, sequence). Relayed frames are not
  /// traced (the origin sensor already opened the trace).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void schedule_sample(std::size_t stream_index);
  void emit_sample(std::size_t stream_index);
  void on_downlink_frame(util::BytesView frame);
  void spend(double joules);

  sim::Scheduler& scheduler_;
  RadioMedium& medium_;
  Config config_;
  std::unique_ptr<sim::MobilityModel> mobility_;
  util::Rng rng_;

  std::vector<core::SequenceNo> sequences_;
  std::vector<sim::EventId> timers_;
  std::optional<std::uint32_t> pending_ack_;  ///< Next data message carries it.
  /// Recently handled request ids: the replicator broadcasts through
  /// several transmitters and retransmits on silence, so the same request
  /// arrives many times; only the first copy may change configuration.
  util::RingBuffer<std::uint32_t> recent_requests_{64};
  double battery_;
  bool alive_ = false;
  bool registered_downlink_ = false;
  bool registered_overhear_ = false;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t updates_applied_ = 0;
  std::uint64_t updates_rejected_ = 0;
  std::unique_ptr<tree::TreeRouter> router_;  ///< Set iff relay_capable.
  std::function<void(const core::StreamUpdateRequest&, UpdateOutcome)> update_observer_;
  obs::Tracer* tracer_ = nullptr;
};

/// Default payload generator: an 8-byte big-endian reading derived from a
/// smooth pseudo-signal plus noise; stands in for a real transducer.
[[nodiscard]] PayloadGenerator synthetic_reading_generator(double base, double amplitude,
                                                           double period_s);

/// GPS-beacon payload for location-aware sensors: [f64 x][f64 y] plus a
/// reading. `fix_noise_m` models receiver error. Parse with
/// decode_gps_beacon.
[[nodiscard]] PositionalPayloadGenerator gps_beacon_generator(double fix_noise_m = 5.0);

struct GpsBeacon {
  sim::Vec2 position;
  double reading = 0.0;
};
[[nodiscard]] std::optional<GpsBeacon> decode_gps_beacon(util::BytesView payload);

}  // namespace garnet::wireless
