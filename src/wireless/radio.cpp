#include "wireless/radio.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace garnet::wireless {

RadioMedium::RadioMedium(sim::Scheduler& scheduler, Config config, util::Rng rng)
    : scheduler_(scheduler), config_(config), rng_(rng) {}

RadioMedium::~RadioMedium() {
  // The collector captures `this`; standalone tests may tear the medium
  // down before the registry, so deregister eagerly.
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void RadioMedium::add_receiver(Receiver receiver) { receivers_.push_back(receiver); }

void RadioMedium::set_uplink_sink(std::function<void(const ReceptionReport&)> sink) {
  uplink_sink_ = std::move(sink);
}

void RadioMedium::add_transmitter(Transmitter transmitter) {
  transmitters_.push_back(transmitter);
}

void RadioMedium::add_downlink_endpoint(DownlinkEndpoint endpoint) {
  assert(endpoint.position && endpoint.deliver);
  endpoints_.push_back(std::move(endpoint));
}

void RadioMedium::remove_downlink_endpoint(std::uint32_t key) {
  std::erase_if(endpoints_, [key](const DownlinkEndpoint& e) { return e.key == key; });
}

void RadioMedium::add_overhear_endpoint(OverhearEndpoint endpoint) {
  assert(endpoint.position && endpoint.deliver);
  overhearers_.push_back(std::move(endpoint));
}

void RadioMedium::remove_overhear_endpoint(std::uint32_t key) {
  std::erase_if(overhearers_, [key](const OverhearEndpoint& e) { return e.key == key; });
}

bool RadioMedium::copy_survives(double dist, double range) {
  const double frac = range > 0 ? std::min(dist / range, 1.0) : 1.0;
  const double loss = config_.base_loss + config_.edge_loss * frac * frac;
  return !rng_.chance(loss);
}

double RadioMedium::rssi_for(double dist) {
  const double d = std::max(dist, 1.0);
  return config_.tx_power_dbm - 10.0 * config_.path_loss_exponent * std::log10(d) +
         rng_.normal(0.0, config_.rssi_noise_stddev);
}

util::Duration RadioMedium::delivery_delay() {
  const auto jitter_ns = static_cast<std::int64_t>(
      rng_.uniform() * static_cast<double>(config_.max_jitter.ns));
  return config_.hop_latency + util::Duration::nanos(jitter_ns);
}

void RadioMedium::set_metrics(obs::MetricsRegistry& registry) {
  hop_delay_histogram_ = &registry.histogram("garnet.radio.hop_delay_ns");
  frame_size_histogram_ =
      &registry.histogram("garnet.radio.frame_bytes", obs::Histogram::Layout::bytes());
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) {
    out.counter("garnet.radio.uplink_frames", stats_.uplink_frames);
    out.counter("garnet.radio.uplink_deliveries", stats_.uplink_deliveries);
    out.counter("garnet.radio.uplink_duplicates", stats_.uplink_duplicates);
    out.counter("garnet.radio.uplink_unheard", stats_.uplink_unheard);
    out.counter("garnet.radio.uplink_bytes_sent", stats_.uplink_bytes_sent);
    out.counter("garnet.radio.downlink_broadcasts", stats_.downlink_broadcasts);
    out.counter("garnet.radio.downlink_deliveries", stats_.downlink_deliveries);
    out.counter("garnet.radio.downlink_bytes_sent", stats_.downlink_bytes_sent);
    out.counter("garnet.radio.overheard", stats_.overheard);
  });
}

void RadioMedium::uplink(sim::Vec2 from, util::Bytes frame, std::uint32_t sender_key) {
  ++stats_.uplink_frames;
  stats_.uplink_bytes_sent += frame.size();
  if (frame_size_histogram_ != nullptr) {
    frame_size_histogram_->observe(static_cast<double>(frame.size()));
  }

  // Peer overhearing (multi-hop substrate): nearby relay-capable nodes
  // may hear the transmission too, subject to the same loss model.
  for (const OverhearEndpoint& peer : overhearers_) {
    if (sender_key != 0 && peer.key == sender_key) continue;  // not own frames
    const double dist = sim::distance(from, peer.position());
    if (dist > peer.range_m) continue;
    if (!copy_survives(dist, peer.range_m)) continue;
    ++stats_.overheard;
    const std::uint32_t key = peer.key;
    const double rssi = rssi_for(dist);
    scheduler_.schedule_after(delivery_delay(), [this, key, frame, rssi]() {
      const auto target =
          std::find_if(overhearers_.begin(), overhearers_.end(),
                       [key](const OverhearEndpoint& e) { return e.key == key; });
      if (target != overhearers_.end()) target->deliver(frame, rssi);
    });
  }

  std::size_t copies = 0;
  for (const Receiver& rx : receivers_) {
    const double dist = sim::distance(from, rx.position);
    if (dist > rx.range_m) continue;
    if (!copy_survives(dist, rx.range_m)) continue;

    ++copies;
    ++stats_.uplink_deliveries;
    if (copies > 1) ++stats_.uplink_duplicates;

    ReceptionReport report{rx.id, rssi_for(dist), {}, copies == 1 ? frame : frame};
    const util::Duration delay = delivery_delay();
    if (hop_delay_histogram_ != nullptr) {
      hop_delay_histogram_->observe(static_cast<double>(delay.ns));
    }
    scheduler_.schedule_after(delay, [this, report = std::move(report)]() mutable {
      if (!uplink_sink_) return;
      report.received_at = scheduler_.now();
      uplink_sink_(report);
    });
  }
  if (copies == 0) ++stats_.uplink_unheard;
}

std::size_t RadioMedium::downlink(TransmitterId tx, util::Bytes frame) {
  const auto it = std::find_if(transmitters_.begin(), transmitters_.end(),
                               [tx](const Transmitter& t) { return t.id == tx; });
  assert(it != transmitters_.end() && "unknown transmitter");

  ++stats_.downlink_broadcasts;
  stats_.downlink_bytes_sent += frame.size();

  std::size_t scheduled = 0;
  for (const DownlinkEndpoint& endpoint : endpoints_) {
    const double dist = sim::distance(it->position, endpoint.position());
    if (dist > it->range_m) continue;
    if (!copy_survives(dist, it->range_m)) continue;

    ++scheduled;
    ++stats_.downlink_deliveries;
    const util::Duration delay = delivery_delay();
    // Capture by key, not reference: the endpoint may deregister (sensor
    // death) before delivery fires.
    const std::uint32_t key = endpoint.key;
    scheduler_.schedule_after(delay, [this, key, frame]() {
      const auto target = std::find_if(endpoints_.begin(), endpoints_.end(),
                                       [key](const DownlinkEndpoint& e) { return e.key == key; });
      if (target != endpoints_.end()) target->deliver(frame);
    });
  }
  return scheduled;
}

}  // namespace garnet::wireless
