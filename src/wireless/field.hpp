// SensorField: owns the radio medium and the population of sensor nodes,
// receivers and transmitters for one deployment, and offers builder
// helpers the examples and benches use to lay out realistic fields.
#pragma once

#include <memory>
#include <vector>

#include "wireless/radio.hpp"
#include "wireless/sensor.hpp"
#include "wireless/tree.hpp"

namespace garnet::wireless {

class SensorField {
 public:
  struct Config {
    sim::Rect area{{0, 0}, {1000, 1000}};
    RadioMedium::Config radio;
    std::uint64_t seed = 1;
    /// When set, every receiver beacons hop-0 tree frames on the radio so
    /// relay-capable sensors self-organize into a multi-hop forest.
    bool tree_beacons = false;
    /// Routing knobs applied to every sensor added via add_population.
    tree::TreeConfig tree;
    /// Repair-journal capacity (0 = journalling disabled).
    std::size_t tree_journal_limit = 0;
  };

  SensorField(sim::Scheduler& scheduler, Config config);

  /// Places `count` receivers on a grid, each with the given range. With
  /// range > grid spacing the coverage disks overlap and duplicates arise.
  void add_receiver_grid(std::size_t count, double range_m);

  /// Places `count` transmitters on a grid for the actuation return path.
  void add_transmitter_grid(std::size_t count, double range_m);

  /// Adds a sensor with explicit config and mobility. Returns it.
  SensorNode& add_sensor(SensorNode::Config config,
                         std::unique_ptr<sim::MobilityModel> mobility);

  /// Adds `count` sensors with ids starting at `first_id`, random-waypoint
  /// mobility across the field, and one default stream each.
  struct PopulationSpec {
    core::SensorId first_id = 1;
    std::size_t count = 10;
    SensorCapabilities capabilities{.receive_capable = true, .location_aware = false};
    std::uint32_t interval_ms = 1000;
    StreamConstraints constraints;
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;
  };
  void add_population(const PopulationSpec& spec);

  /// Starts sampling on every sensor (and root beaconing, when enabled).
  void start_all();
  void stop_all();

  /// Root beaconing on its own — start_all() calls this when
  /// Config::tree_beacons is set; tests may drive it directly.
  void start_roots();
  void stop_roots();

  /// Tree routing statistics summed over every relay-capable sensor.
  [[nodiscard]] tree::TreeStats tree_stats() const;
  /// Deepest attachment in the forest right now (0 = nothing attached).
  [[nodiscard]] std::uint16_t max_tree_depth() const;
  [[nodiscard]] tree::TreeJournal& tree_journal() noexcept { return tree_journal_; }

  /// Installs the tracer on every current and future sensor, so data
  /// traces open at the moment of radio transmission.
  void set_tracer(obs::Tracer* tracer);

  [[nodiscard]] RadioMedium& medium() noexcept { return medium_; }
  [[nodiscard]] const RadioMedium& medium() const noexcept { return medium_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] const sim::Rect& area() const noexcept { return config_.area; }

  [[nodiscard]] std::size_t sensor_count() const noexcept { return sensors_.size(); }
  [[nodiscard]] SensorNode& sensor_at(std::size_t i) { return *sensors_.at(i); }
  [[nodiscard]] SensorNode* find_sensor(core::SensorId id);

 private:
  void beacon_roots();

  sim::Scheduler& scheduler_;
  Config config_;
  util::Rng rng_;
  RadioMedium medium_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  obs::Tracer* tracer_ = nullptr;
  ReceiverId next_receiver_id_ = 1;
  TransmitterId next_transmitter_id_ = 1;
  tree::TreeJournal tree_journal_;
  bool beaconing_ = false;
  sim::EventId beacon_tick_;
};

}  // namespace garnet::wireless
