// SensorField: owns the radio medium and the population of sensor nodes,
// receivers and transmitters for one deployment, and offers builder
// helpers the examples and benches use to lay out realistic fields.
#pragma once

#include <memory>
#include <vector>

#include "wireless/radio.hpp"
#include "wireless/sensor.hpp"

namespace garnet::wireless {

class SensorField {
 public:
  struct Config {
    sim::Rect area{{0, 0}, {1000, 1000}};
    RadioMedium::Config radio;
    std::uint64_t seed = 1;
  };

  SensorField(sim::Scheduler& scheduler, Config config);

  /// Places `count` receivers on a grid, each with the given range. With
  /// range > grid spacing the coverage disks overlap and duplicates arise.
  void add_receiver_grid(std::size_t count, double range_m);

  /// Places `count` transmitters on a grid for the actuation return path.
  void add_transmitter_grid(std::size_t count, double range_m);

  /// Adds a sensor with explicit config and mobility. Returns it.
  SensorNode& add_sensor(SensorNode::Config config,
                         std::unique_ptr<sim::MobilityModel> mobility);

  /// Adds `count` sensors with ids starting at `first_id`, random-waypoint
  /// mobility across the field, and one default stream each.
  struct PopulationSpec {
    core::SensorId first_id = 1;
    std::size_t count = 10;
    SensorCapabilities capabilities{.receive_capable = true, .location_aware = false};
    std::uint32_t interval_ms = 1000;
    StreamConstraints constraints;
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;
  };
  void add_population(const PopulationSpec& spec);

  /// Starts sampling on every sensor.
  void start_all();
  void stop_all();

  /// Installs the tracer on every current and future sensor, so data
  /// traces open at the moment of radio transmission.
  void set_tracer(obs::Tracer* tracer);

  [[nodiscard]] RadioMedium& medium() noexcept { return medium_; }
  [[nodiscard]] const RadioMedium& medium() const noexcept { return medium_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] const sim::Rect& area() const noexcept { return config_.area; }

  [[nodiscard]] std::size_t sensor_count() const noexcept { return sensors_.size(); }
  [[nodiscard]] SensorNode& sensor_at(std::size_t i) { return *sensors_.at(i); }
  [[nodiscard]] SensorNode* find_sensor(core::SensorId id);

 private:
  sim::Scheduler& scheduler_;
  Config config_;
  util::Rng rng_;
  RadioMedium medium_;
  std::vector<std::unique_ptr<SensorNode>> sensors_;
  obs::Tracer* tracer_ = nullptr;
  ReceiverId next_receiver_id_ = 1;
  TransmitterId next_transmitter_id_ = 1;
};

}  // namespace garnet::wireless
