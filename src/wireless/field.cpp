#include "wireless/field.hpp"

namespace garnet::wireless {

SensorField::SensorField(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler),
      config_(config),
      rng_(config.seed),
      medium_(scheduler, config.radio, util::Rng(config.seed ^ 0x5ADD1E5Cull)) {}

void SensorField::add_receiver_grid(std::size_t count, double range_m) {
  for (const sim::Vec2 pos : sim::grid_layout(config_.area, count)) {
    medium_.add_receiver(Receiver{next_receiver_id_++, pos, range_m});
  }
}

void SensorField::add_transmitter_grid(std::size_t count, double range_m) {
  for (const sim::Vec2 pos : sim::grid_layout(config_.area, count)) {
    medium_.add_transmitter(Transmitter{next_transmitter_id_++, pos, range_m});
  }
}

SensorNode& SensorField::add_sensor(SensorNode::Config config,
                                    std::unique_ptr<sim::MobilityModel> mobility) {
  sensors_.push_back(std::make_unique<SensorNode>(scheduler_, medium_, std::move(config),
                                                  std::move(mobility), rng_.fork()));
  sensors_.back()->set_tracer(tracer_);
  return *sensors_.back();
}

void SensorField::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (const auto& sensor : sensors_) sensor->set_tracer(tracer);
}

void SensorField::add_population(const PopulationSpec& spec) {
  for (std::size_t i = 0; i < spec.count; ++i) {
    SensorNode::Config config;
    config.id = spec.first_id + static_cast<core::SensorId>(i);
    config.capabilities = spec.capabilities;
    StreamSpec stream;
    stream.id = 0;
    stream.interval_ms = spec.interval_ms;
    stream.constraints = spec.constraints;
    config.streams.push_back(std::move(stream));

    const sim::Vec2 start{rng_.uniform(config_.area.min.x, config_.area.max.x),
                          rng_.uniform(config_.area.min.y, config_.area.max.y)};
    sim::RandomWaypoint::Config mobility_config{
        .area = config_.area,
        .min_speed_mps = spec.min_speed_mps,
        .max_speed_mps = spec.max_speed_mps,
        .pause = util::Duration::seconds(5),
    };
    add_sensor(std::move(config),
               std::make_unique<sim::RandomWaypoint>(mobility_config, start, rng_.fork()));
  }
}

void SensorField::start_all() {
  for (const auto& sensor : sensors_) sensor->start();
}

void SensorField::stop_all() {
  for (const auto& sensor : sensors_) sensor->stop();
}

SensorNode* SensorField::find_sensor(core::SensorId id) {
  for (const auto& sensor : sensors_) {
    if (sensor->id() == id) return sensor.get();
  }
  return nullptr;
}

}  // namespace garnet::wireless
