#include "wireless/field.hpp"

#include <algorithm>

namespace garnet::wireless {

SensorField::SensorField(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler),
      config_(config),
      rng_(config.seed),
      medium_(scheduler, config.radio, util::Rng(config.seed ^ 0x5ADD1E5Cull)),
      tree_journal_(config.tree_journal_limit) {}

void SensorField::add_receiver_grid(std::size_t count, double range_m) {
  for (const sim::Vec2 pos : sim::grid_layout(config_.area, count)) {
    medium_.add_receiver(Receiver{next_receiver_id_++, pos, range_m});
  }
}

void SensorField::add_transmitter_grid(std::size_t count, double range_m) {
  for (const sim::Vec2 pos : sim::grid_layout(config_.area, count)) {
    medium_.add_transmitter(Transmitter{next_transmitter_id_++, pos, range_m});
  }
}

SensorNode& SensorField::add_sensor(SensorNode::Config config,
                                    std::unique_ptr<sim::MobilityModel> mobility) {
  sensors_.push_back(std::make_unique<SensorNode>(scheduler_, medium_, std::move(config),
                                                  std::move(mobility), rng_.fork()));
  sensors_.back()->set_tracer(tracer_);
  sensors_.back()->set_tree_journal(&tree_journal_);
  return *sensors_.back();
}

void SensorField::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (const auto& sensor : sensors_) sensor->set_tracer(tracer);
}

void SensorField::add_population(const PopulationSpec& spec) {
  for (std::size_t i = 0; i < spec.count; ++i) {
    SensorNode::Config config;
    config.id = spec.first_id + static_cast<core::SensorId>(i);
    config.capabilities = spec.capabilities;
    config.tree = config_.tree;
    StreamSpec stream;
    stream.id = 0;
    stream.interval_ms = spec.interval_ms;
    stream.constraints = spec.constraints;
    config.streams.push_back(std::move(stream));

    const sim::Vec2 start{rng_.uniform(config_.area.min.x, config_.area.max.x),
                          rng_.uniform(config_.area.min.y, config_.area.max.y)};
    sim::RandomWaypoint::Config mobility_config{
        .area = config_.area,
        .min_speed_mps = spec.min_speed_mps,
        .max_speed_mps = spec.max_speed_mps,
        .pause = util::Duration::seconds(5),
    };
    add_sensor(std::move(config),
               std::make_unique<sim::RandomWaypoint>(mobility_config, start, rng_.fork()));
  }
}

void SensorField::start_all() {
  for (const auto& sensor : sensors_) sensor->start();
  if (config_.tree_beacons) start_roots();
}

void SensorField::stop_all() {
  for (const auto& sensor : sensors_) sensor->stop();
  stop_roots();
}

void SensorField::start_roots() {
  if (beaconing_) return;
  beaconing_ = true;
  beacon_roots();  // beacon immediately so the forest forms within hops
}

void SensorField::stop_roots() {
  if (!beaconing_) return;
  beaconing_ = false;
  scheduler_.cancel(beacon_tick_);
  beacon_tick_ = sim::EventId{};
}

void SensorField::beacon_roots() {
  if (!beaconing_) return;
  // Roots are mains-powered fixed receivers: beaconing costs them nothing,
  // and each beacon rides the same lossy uplink medium as data frames.
  for (const Receiver& rx : medium_.receivers()) {
    const std::uint32_t key = tree::root_key(rx.id);
    medium_.uplink(rx.position, tree::encode_beacon(tree::Beacon{key, 0, key}), key);
  }
  beacon_tick_ =
      scheduler_.schedule_after(config_.tree.beacon_interval, [this] { beacon_roots(); });
}

tree::TreeStats SensorField::tree_stats() const {
  tree::TreeStats total;
  for (const auto& sensor : sensors_) {
    const tree::TreeRouter* router = sensor->router();
    if (router == nullptr) continue;
    const tree::TreeStats& s = router->stats();
    total.beacons_sent += s.beacons_sent;
    total.beacons_heard += s.beacons_heard;
    total.attaches += s.attaches;
    total.reparents += s.reparents;
    total.orphan_events += s.orphan_events;
    total.forwarded += s.forwarded;
    total.proxied += s.proxied;
    total.dup_dropped += s.dup_dropped;
    total.ttl_dropped += s.ttl_dropped;
    total.loop_dropped += s.loop_dropped;
    total.corrupt_dropped += s.corrupt_dropped;
    total.buffered += s.buffered;
    total.spilled += s.spilled;
  }
  return total;
}

std::uint16_t SensorField::max_tree_depth() const {
  std::uint16_t depth = 0;
  for (const auto& sensor : sensors_) {
    const tree::TreeRouter* router = sensor->router();
    if (router != nullptr && router->attached()) depth = std::max(depth, router->depth());
  }
  return depth;
}

SensorNode* SensorField::find_sensor(core::SensorId id) {
  for (const auto& sensor : sensors_) {
    if (sensor->id() == id) return sensor.get();
  }
  return nullptr;
}

}  // namespace garnet::wireless
