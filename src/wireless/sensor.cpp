#include "wireless/sensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "util/log.hpp"

namespace garnet::wireless {

SensorNode::SensorNode(sim::Scheduler& scheduler, RadioMedium& medium, Config config,
                       std::unique_ptr<sim::MobilityModel> mobility, util::Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      mobility_(std::move(mobility)),
      rng_(rng),
      battery_(config_.battery_joules) {
  assert(config_.id <= core::kMaxSensorId);
  assert(mobility_);
  sequences_.assign(config_.streams.size(), 0);
  timers_.assign(config_.streams.size(), sim::EventId{});

  if (config_.capabilities.relay_capable) {
    assert(config_.id != 0 && "relay-capable sensors need a nonzero id");
    router_ = std::make_unique<tree::TreeRouter>(scheduler_, config_.tree, config_.id);
    // Every frame the router emits rides this node's radio and drains
    // this node's battery — forwarding for others is not free.
    router_->set_transmit([this](util::Bytes frame) {
      spend(static_cast<double>(frame.size()) * config_.tx_cost_joules_per_byte);
      if (!alive_) return;  // battery died paying for this frame
      medium_.uplink(position(), std::move(frame), config_.id);
    });
  }
}

SensorNode::~SensorNode() { stop(); }

void SensorNode::start() {
  if (alive_) return;
  alive_ = true;

  if (config_.capabilities.receive_capable && !registered_downlink_) {
    registered_downlink_ = true;
    medium_.add_downlink_endpoint(RadioMedium::DownlinkEndpoint{
        config_.id,
        [this] { return position(); },
        [this](util::BytesView frame) { on_downlink_frame(frame); },
    });
  }

  if (router_ && !registered_overhear_) {
    registered_overhear_ = true;
    medium_.add_overhear_endpoint(RadioMedium::OverhearEndpoint{
        config_.id,
        config_.relay_overhear_range_m,
        [this] { return position(); },
        [this](util::BytesView frame, double rssi_dbm) {
          if (alive_) router_->on_frame(frame, rssi_dbm);
        },
    });
    router_->start();
  }

  for (std::size_t i = 0; i < config_.streams.size(); ++i) {
    if (config_.streams[i].enabled) schedule_sample(i);
  }
}

void SensorNode::stop() {
  if (!alive_) return;
  alive_ = false;
  for (auto& timer : timers_) {
    scheduler_.cancel(timer);
    timer = sim::EventId{};
  }
  if (registered_downlink_) {
    medium_.remove_downlink_endpoint(config_.id);
    registered_downlink_ = false;
  }
  if (registered_overhear_) {
    medium_.remove_overhear_endpoint(config_.id);
    registered_overhear_ = false;
  }
  if (router_) router_->stop();  // crash semantics: routing state is volatile
}

const StreamSpec* SensorNode::stream(core::InternalStreamId id) const {
  const auto it = std::find_if(config_.streams.begin(), config_.streams.end(),
                               [id](const StreamSpec& s) { return s.id == id; });
  return it == config_.streams.end() ? nullptr : &*it;
}

void SensorNode::schedule_sample(std::size_t stream_index) {
  const StreamSpec& spec = config_.streams[stream_index];
  if (!alive_ || !spec.enabled) return;
  // Small phase jitter prevents the whole field sampling in lockstep.
  const auto base = util::Duration::millis(spec.interval_ms);
  const auto jitter = util::Duration::nanos(
      static_cast<std::int64_t>(rng_.uniform() * 0.05 * static_cast<double>(base.ns)));
  timers_[stream_index] =
      scheduler_.schedule_after(base + jitter, [this, stream_index] { emit_sample(stream_index); });
}

void SensorNode::emit_sample(std::size_t stream_index) {
  if (!alive_) return;
  StreamSpec& spec = config_.streams[stream_index];

  core::DataMessage msg;
  msg.stream_id = {config_.id, spec.id};
  msg.sequence = sequences_[stream_index]++;
  if (spec.generate_at && config_.capabilities.location_aware) {
    msg.payload = spec.generate_at(scheduler_.now(), rng_, position());
  } else if (spec.generate) {
    msg.payload = spec.generate(scheduler_.now(), rng_);
  } else {
    util::ByteWriter w(8);
    w.f64(rng_.normal(20.0, 1.0));
    msg.payload = std::move(w).take();
  }
  if (msg.payload.size() > spec.constraints.max_payload) {
    msg.payload.resize(spec.constraints.max_payload);
  }
  if (pending_ack_) {
    msg.header.set(core::HeaderFlag::kAckPresent);
    msg.ack_request_id = *pending_ack_;
    pending_ack_.reset();
  }

  util::Bytes frame = core::encode(msg);
  if (tracer_ != nullptr) {
    tracer_->begin_span({msg.stream_id.packed(), msg.sequence}, "radio", scheduler_.now().ns);
  }
  if (router_) {
    // The router decides the first hop (plain to a root, wrapped to a
    // relay parent, or buffered while orphaned); its transmit hook pays
    // the energy cost at actual transmission time.
    ++messages_sent_;
    router_->send_own(std::move(frame));
    if (!alive_) return;  // battery died paying for this frame
  } else {
    spend(static_cast<double>(frame.size()) * config_.tx_cost_joules_per_byte);
    if (!alive_) return;  // battery died paying for this frame
    ++messages_sent_;
    medium_.uplink(position(), std::move(frame), config_.id);
  }

  schedule_sample(stream_index);
}

void SensorNode::on_downlink_frame(util::BytesView frame) {
  if (!alive_) return;
  const auto decoded = core::decode_update(frame);
  if (!decoded.ok()) return;  // corrupt or foreign frame; drop silently
  const core::StreamUpdateRequest& request = decoded.value();
  if (request.target.sensor != config_.id) return;  // broadcast meant for another node
  apply_update(request);
}

UpdateOutcome SensorNode::apply_update(const core::StreamUpdateRequest& request) {
  const auto finish = [&](UpdateOutcome outcome) {
    if (outcome == UpdateOutcome::kApplied || outcome == UpdateOutcome::kClamped) {
      ++updates_applied_;
      // Acknowledged in the next data message (untracked id 0 excepted).
      if (request.request_id != 0) pending_ack_ = request.request_id;
    } else {
      ++updates_rejected_;
    }
    if (update_observer_) update_observer_(request, outcome);
    return outcome;
  };

  if (!config_.capabilities.receive_capable) return finish(UpdateOutcome::kNotReceiveCapable);

  // Request id 0 means "untracked" (out-of-band configuration); anything
  // else is deduplicated — the replicator broadcasts through several
  // transmitters and retransmits on silence, so the same request arrives
  // many times, and only the first copy may change configuration.
  if (request.request_id != 0) {
    for (std::size_t i = 0; i < recent_requests_.size(); ++i) {
      if (recent_requests_.at(i) == request.request_id) {
        // Re-acknowledge (the earlier ack may have been lost) but do not
        // re-apply.
        pending_ack_ = request.request_id;
        if (update_observer_) update_observer_(request, UpdateOutcome::kDuplicate);
        return UpdateOutcome::kDuplicate;
      }
    }
    recent_requests_.push(request.request_id);
  }

  const auto it = std::find_if(config_.streams.begin(), config_.streams.end(),
                               [&](const StreamSpec& s) { return s.id == request.target.stream; });
  if (it == config_.streams.end()) return finish(UpdateOutcome::kRejected);
  StreamSpec& spec = *it;
  const auto index = static_cast<std::size_t>(it - config_.streams.begin());

  switch (request.action) {
    case core::UpdateAction::kSetIntervalMs: {
      const std::uint32_t clamped = std::clamp(request.value, spec.constraints.min_interval_ms,
                                               spec.constraints.max_interval_ms);
      spec.interval_ms = clamped;
      // Re-arm the timer so the new cadence takes effect immediately.
      scheduler_.cancel(timers_[index]);
      if (alive_ && spec.enabled) schedule_sample(index);
      return finish(clamped == request.value ? UpdateOutcome::kApplied : UpdateOutcome::kClamped);
    }
    case core::UpdateAction::kEnableStream: {
      if (!spec.enabled) {
        spec.enabled = true;
        if (alive_) schedule_sample(index);
      }
      return finish(UpdateOutcome::kApplied);
    }
    case core::UpdateAction::kDisableStream: {
      spec.enabled = false;
      scheduler_.cancel(timers_[index]);
      timers_[index] = sim::EventId{};
      return finish(UpdateOutcome::kApplied);
    }
    case core::UpdateAction::kSetMode: {
      spec.mode = request.value;
      return finish(UpdateOutcome::kApplied);
    }
    case core::UpdateAction::kSetPayloadHint: {
      if (request.value > spec.constraints.max_payload) {
        return finish(UpdateOutcome::kRejected);
      }
      return finish(UpdateOutcome::kApplied);
    }
  }
  return finish(UpdateOutcome::kRejected);
}

void SensorNode::spend(double joules) {
  battery_ -= joules;
  if (battery_ <= 0.0) {
    battery_ = 0.0;
    util::log_debug("sensor", "sensor %u battery exhausted", config_.id);
    stop();
  }
}

PositionalPayloadGenerator gps_beacon_generator(double fix_noise_m) {
  return [fix_noise_m](util::SimTime, util::Rng& rng, sim::Vec2 position) {
    util::ByteWriter w(24);
    w.f64(position.x + rng.normal(0.0, fix_noise_m));
    w.f64(position.y + rng.normal(0.0, fix_noise_m));
    w.f64(rng.normal(20.0, 1.0));
    return std::move(w).take();
  };
}

std::optional<GpsBeacon> decode_gps_beacon(util::BytesView payload) {
  util::ByteReader r(payload);
  GpsBeacon beacon;
  beacon.position.x = r.f64();
  beacon.position.y = r.f64();
  beacon.reading = r.f64();
  if (!r.ok()) return std::nullopt;
  return beacon;
}

PayloadGenerator synthetic_reading_generator(double base, double amplitude, double period_s) {
  return [=](util::SimTime t, util::Rng& rng) {
    const double phase = 2.0 * std::numbers::pi * t.to_seconds() / period_s;
    const double value = base + amplitude * std::sin(phase) + rng.normal(0.0, amplitude * 0.05);
    util::ByteWriter w(8);
    w.f64(value);
    return std::move(w).take();
  };
}

}  // namespace garnet::wireless
