// The wireless medium: unreliable, lossy, duplicating — by construction.
//
// Uplink: a sensor transmission is heard independently by every receiver
// whose coverage disk contains the sensor; each hearing may be lost with a
// distance-dependent probability. Overlapping receivers therefore yield
// duplicate copies of the same frame (paper §4.2: "Such coverage improves
// data reception but causes potential duplication of data messages"), and
// a sensor that has roamed out of all coverage loses the frame entirely.
//
// Downlink: fixed transmitters broadcast control frames; mobile sensors
// within range may hear them, subject to the same loss model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/geometry.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace garnet::wireless {

using ReceiverId = std::uint32_t;
using TransmitterId = std::uint32_t;

/// One copy of an uplink frame as heard by one receiver. This is what the
/// fixed network ingests; the Location Service additionally mines it for
/// position inference (receiver identity + signal strength).
struct ReceptionReport {
  ReceiverId receiver;
  double rssi_dbm = 0.0;
  util::SimTime received_at;
  util::Bytes frame;
};

/// Fixed receive antenna with a circular coverage zone.
struct Receiver {
  ReceiverId id = 0;
  sim::Vec2 position;
  double range_m = 100.0;
};

/// Fixed transmit antenna for the return (actuation) path.
struct Transmitter {
  TransmitterId id = 0;
  sim::Vec2 position;
  double range_m = 150.0;
};

/// Counters for the radio experiments (E2, E4, E6, E7).
struct RadioStats {
  std::uint64_t uplink_frames = 0;        ///< Sensor transmissions attempted.
  std::uint64_t uplink_deliveries = 0;    ///< Receiver copies delivered (>= frames heard).
  std::uint64_t uplink_duplicates = 0;    ///< Deliveries beyond the first per frame.
  std::uint64_t uplink_unheard = 0;       ///< Frames no receiver delivered.
  std::uint64_t uplink_bytes_sent = 0;    ///< Bytes leaving sensor radios.
  std::uint64_t downlink_broadcasts = 0;  ///< Transmitter activations.
  std::uint64_t downlink_deliveries = 0;  ///< Copies delivered to sensors.
  std::uint64_t downlink_bytes_sent = 0;
  std::uint64_t overheard = 0;            ///< Uplink copies overheard by peers.
};

class RadioMedium {
 public:
  struct Config {
    /// Probability a frame copy is lost even in perfect range.
    double base_loss = 0.02;
    /// Additional loss grows with (distance/range)^2 up to this at the edge.
    double edge_loss = 0.35;
    /// Fixed propagation/processing latency per hop.
    util::Duration hop_latency = util::Duration::micros(500);
    /// Uniform extra jitter bound added per delivery.
    util::Duration max_jitter = util::Duration::millis(4);
    /// Free-space-style RSSI model: rssi = tx_power - 10 n log10(d).
    double tx_power_dbm = 0.0;
    double path_loss_exponent = 2.4;
    double rssi_noise_stddev = 1.5;
  };

  RadioMedium(sim::Scheduler& scheduler, Config config, util::Rng rng);

  // --- topology -----------------------------------------------------------

  /// Adds a receive antenna. The sink receives every surviving frame copy.
  void add_receiver(Receiver receiver);

  /// All frame copies surviving the uplink are delivered here.
  void set_uplink_sink(std::function<void(const ReceptionReport&)> sink);

  /// Adds a fixed transmitter for the actuation return path.
  void add_transmitter(Transmitter transmitter);

  /// Registers a mobile downlink listener (a receive-capable sensor).
  /// `position` is sampled at delivery-decision time so mobility matters.
  struct DownlinkEndpoint {
    std::uint32_t key;
    std::function<sim::Vec2()> position;
    std::function<void(util::BytesView)> deliver;
  };
  void add_downlink_endpoint(DownlinkEndpoint endpoint);
  void remove_downlink_endpoint(std::uint32_t key);

  /// Registers a node that overhears *uplink* transmissions of nearby
  /// sensors (the substrate for multi-hop relaying, paper §8). The
  /// overhearing node never receives its own transmissions. `deliver`
  /// gets the frame plus the RSSI at which it was heard — tree routing
  /// ranks candidate parents by smoothed RSSI.
  struct OverhearEndpoint {
    std::uint32_t key;
    double range_m = 100.0;
    std::function<sim::Vec2()> position;
    std::function<void(util::BytesView, double rssi_dbm)> deliver;
  };
  void add_overhear_endpoint(OverhearEndpoint endpoint);
  void remove_overhear_endpoint(std::uint32_t key);

  // --- traffic ------------------------------------------------------------

  /// A sensor at `from` transmits one uplink frame. `sender_key`
  /// identifies the transmitting node so it does not overhear itself
  /// (0 = anonymous, never matches an overhear endpoint).
  void uplink(sim::Vec2 from, util::Bytes frame, std::uint32_t sender_key = 0);

  /// Broadcasts `frame` from the given transmitter. Returns the number of
  /// endpoint deliveries scheduled (before loss is decided per copy).
  std::size_t downlink(TransmitterId tx, util::Bytes frame);

  // --- introspection ------------------------------------------------------

  /// Registers native telemetry in `registry`: uplink hop delay and frame
  /// size distributions, plus a pull collector exporting every RadioStats
  /// counter as `garnet.radio.*`. There is no stats() accessor — consumers
  /// read the medium through a metrics snapshot like every other service.
  void set_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] const std::vector<Receiver>& receivers() const noexcept { return receivers_; }
  [[nodiscard]] const std::vector<Transmitter>& transmitters() const noexcept { return transmitters_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  ~RadioMedium();
  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

 private:
  [[nodiscard]] bool copy_survives(double dist, double range);
  [[nodiscard]] double rssi_for(double dist);
  [[nodiscard]] util::Duration delivery_delay();

  sim::Scheduler& scheduler_;
  Config config_;
  util::Rng rng_;
  std::vector<Receiver> receivers_;
  std::vector<Transmitter> transmitters_;
  std::vector<DownlinkEndpoint> endpoints_;
  std::vector<OverhearEndpoint> overhearers_;
  std::function<void(const ReceptionReport&)> uplink_sink_;
  RadioStats stats_;
  obs::Histogram* hop_delay_histogram_ = nullptr;
  obs::Histogram* frame_size_histogram_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet::wireless
