// garnet-gw daemon core: bridges the sim bus to real sockets.
//
// Three listening surfaces (sensd's gateway/hub/cache trio, recast onto
// Garnet's middleware):
//
//   * ingest — external producers push length-prefixed Figure-2 frames;
//     each frame is CRC-verified (it crossed an untrusted medium) and
//     injected into the Runtime pipeline at the dispatch stage, where it
//     fans out to every subscriber, in-process and remote alike.
//   * stream — subscribers send one text line (`SUB <sid|*>/<tag|*>`)
//     and then receive every matching delivery as a length-prefixed
//     delivery frame, written via scatter-gather directly from the
//     dispatcher's shared wire buffer: N sockets alias one allocation,
//     zero payload copies between decode and writev (PR-3 invariant,
//     now across the kernel boundary).
//   * cache — a sensd-style last-value store addressed by `SID/TAG`
//     URIs over a minimal line protocol (GET/LIST/METRICS/QUIT), updated
//     from the same delivery path, serving pull-style readers that do
//     not want a live stream.
//
// Overload behaviour reuses the PR-4 vocabulary (net/overload.hpp):
// every subscriber carries a bounded outbox of data frames shed by an
// OverflowPolicy when the peer reads too slowly — one slow consumer
// never head-of-line-blocks the others — while control frames (protocol
// replies) are never shed and jump ahead of queued data. A shed
// subscriber recovers the latest value through the cache.
//
// The core is transport-agnostic (gw/transport.hpp): production runs on
// PosixTransport, tests drive the identical state machine through
// LoopbackTransport deterministically.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/consumer.hpp"
#include "garnet/runtime.hpp"
#include "gw/framing.hpp"
#include "gw/transport.hpp"
#include "gw/uri_cache.hpp"
#include "net/overload.hpp"
#include "obs/metrics.hpp"

namespace garnet::gw {

/// Parses a `SUB` pattern: `*`, `<sid>/<tag>`, `<sid>/*`, or `*/<tag>`.
[[nodiscard]] std::optional<core::StreamPattern> parse_stream_pattern(std::string_view spec);

/// Canonical text form of a pattern (`*` fields for wildcards).
[[nodiscard]] std::string pattern_uri(const core::StreamPattern& pattern);

struct GatewayConfig {
  /// Bus endpoint + AuthService name for the gateway's internal
  /// consumer (unique per bus; override when embedding two gateways).
  std::string endpoint_name = "consumer.gw";
  std::string consumer_name = "gateway";
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 1024;
  /// Bounded per-subscriber outbox, in data frames. Control frames are
  /// not bounded (they are small and never shed).
  std::size_t outbox_frames = 256;
  /// When the embedding Runtime has admission control enabled, the
  /// effective outbox bound follows the probed data-pool size:
  /// clamp(pool_size × outbox_frames_per_ticket, 1, outbox_frames).
  /// A pool the prober shrank (the pipeline is the bottleneck) shrinks
  /// the egress queues with it, so slow TCP readers shed early instead
  /// of buffering deliveries the middleware already regrets admitting.
  /// 0 = ignore admission and keep the static outbox_frames bound.
  std::size_t outbox_frames_per_ticket = 4;
  /// What to do with the data frame that does not fit. kRejectNack has
  /// no TCP meaning and degrades to kDropNewest.
  net::OverflowPolicy shed_policy = net::OverflowPolicy::kDropNewest;
  /// Longest accepted text-protocol line; a peer exceeding it is cut.
  std::size_t max_line_bytes = 512;
  /// Transport read chunk.
  std::size_t read_chunk = 16 * 1024;
};

struct GatewayStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;             ///< By us or by the peer.
  std::uint64_t rejected_capacity = 0;  ///< Accepts refused at max_connections.
  std::uint64_t ingest_frames = 0;      ///< Valid Figure-2 frames injected.
  std::uint64_t ingest_bytes = 0;       ///< Raw bytes read on ingest conns.
  std::uint64_t ingest_malformed = 0;   ///< Frames failing decode/CRC.
  std::uint64_t ingest_oversized = 0;   ///< Length prefixes past the bound.
  std::uint64_t egress_frames = 0;      ///< Data frames fully written.
  std::uint64_t egress_bytes = 0;       ///< All bytes written (head + body).
  std::uint64_t partial_writes = 0;     ///< writev rounds that came up short.
  std::uint64_t bad_requests = 0;       ///< Unparseable protocol lines.
  std::uint64_t cache_requests = 0;     ///< GET/LIST/METRICS commands served.
  /// PR-4 shed accounting; control_* stay zero by construction and the
  /// exposition proves it (garnet.gw.shed{class=control} == 0).
  net::ShedStats shed;
};

class Gateway {
 public:
  /// The registry inside `runtime.telemetry()` must outlive the
  /// Gateway (it deregisters its collector on destruction).
  Gateway(Runtime& runtime, Transport& transport, GatewayConfig config = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// One transport round: poll, then service every event (accepts,
  /// reads, resumed writes). Non-blocking; returns events handled.
  /// Deliveries flow while the runtime's scheduler runs — interleave
  /// pump() with scheduler progress (see step()).
  std::size_t pump();

  /// pump + run the scheduler for `span` of virtual time + pump: one
  /// convenient turn of the daemon crank for tests and embedders.
  void step(util::Duration span);

  [[nodiscard]] const GatewayStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LastValueCache& cache() const noexcept { return cache_; }
  [[nodiscard]] LastValueCache& cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t connections() const noexcept { return conns_.size(); }
  [[nodiscard]] std::size_t connections(Listener listener) const;
  /// Stream connections currently holding a subscription.
  [[nodiscard]] std::size_t subscribers() const;
  /// The gateway's internal bus consumer (its delivery feed).
  [[nodiscard]] core::Consumer& consumer() noexcept { return consumer_; }

 private:
  /// One queued egress frame: a small owned head (length prefix or
  /// text line) plus an optional shared body aliasing the delivery's
  /// wire buffer — the zero-copy half.
  struct OutFrame {
    util::Bytes head;
    util::SharedBytes body;
    net::TrafficClass cls = net::TrafficClass::kControl;

    [[nodiscard]] std::size_t size() const noexcept { return head.size() + body.size(); }
  };

  struct Conn {
    ConnId id = 0;
    Listener listener = Listener::kIngest;
    FrameAssembler frames;  ///< Ingest reassembly.
    std::string line;       ///< Stream/cache text accumulation.
    std::deque<OutFrame> outbox;
    std::size_t head_offset = 0;  ///< Bytes of outbox.front() already written.
    std::size_t data_frames = 0;  ///< Data-class frames queued (the bound).
    std::optional<core::StreamPattern> subscription;
    bool blocked = false;            ///< writev said would-block.
    bool close_when_drained = false; ///< QUIT acknowledged.
    bool dead = false;               ///< Reaped after the current sweep.
  };

  void on_event(const TransportEvent& event);
  void on_readable(Conn& conn);
  void on_ingest_chunk(Conn& conn, util::BytesView chunk);
  void on_text_chunk(Conn& conn, util::BytesView chunk);
  void on_stream_line(Conn& conn, std::string_view line);
  void on_cache_line(Conn& conn, std::string_view line);
  void on_delivery(const core::DeliveryView& delivery);

  void send_control(Conn& conn, std::string_view text, util::SharedBytes body = {});
  /// Current per-subscriber data-frame bound (admission-derived when the
  /// runtime gates ingress, config_.outbox_frames otherwise).
  [[nodiscard]] std::size_t effective_outbox_frames();
  void enqueue_data(Conn& conn, OutFrame frame);
  void flush(Conn& conn);
  /// Consumes `written` bytes off the front of the outbox.
  void advance_outbox(Conn& conn, std::size_t written);
  void close_conn(Conn& conn);
  void reap();
  void collect(obs::SnapshotBuilder& out) const;

  Runtime& runtime_;
  Transport& transport_;
  GatewayConfig config_;
  core::Consumer consumer_;
  LastValueCache cache_;
  GatewayStats stats_;
  std::map<ConnId, Conn> conns_;  ///< Ordered: deterministic fan-out order.
  std::vector<TransportEvent> events_;
  std::vector<std::byte> scratch_;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
  obs::Histogram* ingest_frame_bytes_ = nullptr;
  obs::Histogram* egress_frame_bytes_ = nullptr;
  obs::Histogram* delivery_latency_ = nullptr;
};

}  // namespace garnet::gw
