#include "gw/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace garnet::gw {

std::string_view to_string(Listener listener) {
  switch (listener) {
    case Listener::kIngest: return "ingest";
    case Listener::kStream: return "stream";
    case Listener::kCache: return "cache";
  }
  return "?";
}

// --- PosixTransport ---------------------------------------------------------

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int listen_on(std::uint16_t port, int backlog, std::uint16_t& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("gw: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    throw std::runtime_error("gw: cannot listen on port " + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  bound = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

}  // namespace

PosixTransport::PosixTransport(const Config& config) {
  const std::uint16_t requested[kListenerCount] = {config.ingest_port, config.stream_port,
                                                   config.cache_port};
  for (std::size_t i = 0; i < kListenerCount; ++i) {
    listener_fds_[i] = listen_on(requested[i], config.backlog, ports_[i]);
  }
}

PosixTransport::~PosixTransport() {
  for (const int fd : listener_fds_) {
    if (fd >= 0) ::close(fd);
  }
  for (auto& [id, conn] : conns_) ::close(conn.fd);
}

std::uint16_t PosixTransport::port(Listener listener) const {
  return ports_[static_cast<std::size_t>(listener)];
}

void PosixTransport::poll(std::vector<TransportEvent>& out) {
  std::vector<pollfd> fds;
  std::vector<ConnId> ids;  ///< ids[i] maps fds[kListenerCount + i].
  fds.reserve(kListenerCount + conns_.size());
  for (const int fd : listener_fds_) fds.push_back({fd, POLLIN, 0});
  for (const auto& [id, conn] : conns_) {
    short events = POLLIN;
    if (conn.want_write) events |= POLLOUT;
    fds.push_back({conn.fd, events, 0});
    ids.push_back(id);
  }
  if (::poll(fds.data(), fds.size(), 0) <= 0) return;

  for (std::size_t i = 0; i < kListenerCount; ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    for (;;) {
      const int fd = ::accept(listener_fds_[i], nullptr, nullptr);
      if (fd < 0) break;
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const ConnId id = next_id_++;
      conns_[id] = Conn{fd, static_cast<Listener>(i), false};
      out.push_back({TransportEvent::Kind::kAccepted, id, static_cast<Listener>(i)});
    }
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const pollfd& p = fds[kListenerCount + i];
    const auto it = conns_.find(ids[i]);
    if (it == conns_.end()) continue;
    // Errors and hangups surface as readable: the next read() returns
    // -1 and the gateway tears the connection down through one path.
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      out.push_back({TransportEvent::Kind::kReadable, ids[i], it->second.listener});
    }
    if ((p.revents & POLLOUT) != 0 && it->second.want_write) {
      out.push_back({TransportEvent::Kind::kWritable, ids[i], it->second.listener});
    }
  }
}

std::ptrdiff_t PosixTransport::read(ConnId conn, std::span<std::byte> buf) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return -1;
  const ssize_t n = ::recv(it->second.fd, buf.data(), buf.size(), 0);
  if (n > 0) return n;
  if (n == 0) return -1;  // orderly EOF
  return (errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : -1;
}

std::ptrdiff_t PosixTransport::writev(ConnId conn, std::span<const util::IoSlice> slices) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return -1;
  // struct iovec wants a mutable pointer; the kernel only reads from it.
  std::vector<iovec> iov(slices.size());
  for (std::size_t i = 0; i < slices.size(); ++i) {
    iov[i].iov_base = const_cast<std::byte*>(slices[i].data);
    iov[i].iov_len = slices[i].size;
  }
  msghdr msg{};
  msg.msg_iov = iov.data();
  msg.msg_iovlen = iov.size();
  const ssize_t n = ::sendmsg(it->second.fd, &msg, MSG_NOSIGNAL);
  if (n >= 0) return n;
  return (errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : -1;
}

void PosixTransport::want_writable(ConnId conn, bool want) {
  const auto it = conns_.find(conn);
  if (it != conns_.end()) it->second.want_write = want;
}

void PosixTransport::close(ConnId conn) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
}

// --- LoopbackTransport ------------------------------------------------------

LoopbackTransport::Conn* LoopbackTransport::live(ConnId conn) {
  const auto it = conns_.find(conn);
  return it == conns_.end() || it->second.gateway_closed ? nullptr : &it->second;
}

const LoopbackTransport::Conn* LoopbackTransport::live(ConnId conn) const {
  const auto it = conns_.find(conn);
  return it == conns_.end() || it->second.gateway_closed ? nullptr : &it->second;
}

ConnId LoopbackTransport::connect(Listener listener) {
  const ConnId id = next_id_++;
  conns_[id].listener = listener;
  return id;
}

void LoopbackTransport::peer_send(ConnId conn, util::BytesView data) {
  if (Conn* c = live(conn)) c->to_gateway.insert(c->to_gateway.end(), data.begin(), data.end());
}

util::Bytes LoopbackTransport::peer_take(ConnId conn) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return {};
  return std::exchange(it->second.to_peer, {});
}

std::size_t LoopbackTransport::peer_pending(ConnId conn) const {
  const auto it = conns_.find(conn);
  return it == conns_.end() ? 0 : it->second.to_peer.size();
}

void LoopbackTransport::peer_close(ConnId conn) {
  if (Conn* c = live(conn)) c->peer_closed = true;
}

void LoopbackTransport::set_write_limit(ConnId conn, std::size_t per_call) {
  if (Conn* c = live(conn)) c->write_limit = per_call;
}

void LoopbackTransport::set_write_window(ConnId conn, std::size_t window) {
  if (Conn* c = live(conn)) c->write_window = window;
}

void LoopbackTransport::open_write_window(ConnId conn, std::size_t more) {
  if (Conn* c = live(conn)) {
    if (c->write_window != SIZE_MAX) c->write_window += more;
  }
}

bool LoopbackTransport::gateway_closed(ConnId conn) const {
  const auto it = conns_.find(conn);
  return it == conns_.end() || it->second.gateway_closed;
}

std::size_t LoopbackTransport::open_connections() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn.gateway_closed) ++n;
  }
  return n;
}

void LoopbackTransport::poll(std::vector<TransportEvent>& out) {
  for (auto& [id, conn] : conns_) {
    if (conn.gateway_closed) continue;
    if (!conn.announced) {
      conn.announced = true;
      out.push_back({TransportEvent::Kind::kAccepted, id, conn.listener});
    }
    if (!conn.to_gateway.empty() || conn.peer_closed) {
      out.push_back({TransportEvent::Kind::kReadable, id, conn.listener});
    }
    if (conn.want_write && conn.write_window > 0) {
      conn.want_write = false;  // edge-style, like a POLLOUT wakeup
      out.push_back({TransportEvent::Kind::kWritable, id, conn.listener});
    }
  }
}

std::ptrdiff_t LoopbackTransport::read(ConnId conn, std::span<std::byte> buf) {
  Conn* c = live(conn);
  if (c == nullptr) return -1;
  if (c->to_gateway.empty()) return c->peer_closed ? -1 : 0;
  const std::size_t n = std::min(buf.size(), c->to_gateway.size());
  std::copy_n(c->to_gateway.begin(), n, buf.begin());
  c->to_gateway.erase(c->to_gateway.begin(), c->to_gateway.begin() + static_cast<std::ptrdiff_t>(n));
  return static_cast<std::ptrdiff_t>(n);
}

std::ptrdiff_t LoopbackTransport::writev(ConnId conn, std::span<const util::IoSlice> slices) {
  Conn* c = live(conn);
  if (c == nullptr || c->peer_closed) return -1;
  std::size_t budget = std::min(c->write_limit, c->write_window);
  std::size_t written = 0;
  for (const util::IoSlice& slice : slices) {
    if (budget == 0) break;
    const std::size_t n = std::min(slice.size, budget);
    c->to_peer.insert(c->to_peer.end(), slice.data, slice.data + n);
    written += n;
    budget -= n;
    if (n < slice.size) break;
  }
  if (c->write_window != SIZE_MAX) c->write_window -= written;
  return static_cast<std::ptrdiff_t>(written);
}

void LoopbackTransport::want_writable(ConnId conn, bool want) {
  if (Conn* c = live(conn)) c->want_write = want;
}

void LoopbackTransport::close(ConnId conn) {
  const auto it = conns_.find(conn);
  if (it != conns_.end()) it->second.gateway_closed = true;
}

}  // namespace garnet::gw
