#include "gw/gateway.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "obs/export.hpp"

namespace garnet::gw {

namespace {

constexpr std::string_view kSubPrefix = "SUB ";
constexpr std::string_view kGetPrefix = "GET ";

util::Bytes text_bytes(std::string_view text) {
  util::Bytes out(text.size());
  std::transform(text.begin(), text.end(), out.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return out;
}

std::string_view trim_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

std::optional<core::StreamPattern> parse_stream_pattern(std::string_view spec) {
  if (spec == "*") return core::StreamPattern::everything();
  const auto slash = spec.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  std::string_view sensor_field = spec.substr(0, slash);
  std::string_view stream_field = spec.substr(slash + 1);
  core::StreamPattern pattern = core::StreamPattern::everything();
  if (sensor_field != "*") {
    const auto sensor = detail::parse_decimal(sensor_field, core::kMaxSensorId);
    if (!sensor || !sensor_field.empty()) return std::nullopt;
    pattern.sensor = *sensor;
  }
  if (stream_field != "*") {
    const auto stream = detail::parse_decimal(stream_field, 0xFF);
    if (!stream || !stream_field.empty()) return std::nullopt;
    pattern.stream = static_cast<core::InternalStreamId>(*stream);
  }
  return pattern;
}

std::string pattern_uri(const core::StreamPattern& pattern) {
  std::string out = pattern.sensor ? std::to_string(*pattern.sensor) : std::string("*");
  out += '/';
  out += pattern.stream ? std::to_string(*pattern.stream) : std::string("*");
  return out;
}

Gateway::Gateway(Runtime& runtime, Transport& transport, GatewayConfig config)
    : runtime_(runtime),
      transport_(transport),
      config_(std::move(config)),
      consumer_(runtime.bus(), config_.endpoint_name) {
  scratch_.resize(config_.read_chunk);
  runtime_.provision(consumer_, config_.consumer_name);
  consumer_.set_data_handler([this](const core::DeliveryView& d) { on_delivery(d); });
  consumer_.subscribe(core::StreamPattern::everything());

  auto& registry = runtime_.telemetry().registry;
  ingest_frame_bytes_ =
      &registry.histogram("garnet.gw.ingest.frame_bytes", obs::Histogram::Layout::bytes());
  egress_frame_bytes_ =
      &registry.histogram("garnet.gw.egress.frame_bytes", obs::Histogram::Layout::bytes());
  delivery_latency_ = &registry.histogram("garnet.gw.delivery_latency_ns",
                                          obs::Histogram::Layout::latency_ns());
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) { collect(out); });
}

Gateway::~Gateway() { runtime_.telemetry().registry.remove_collector(collector_id_); }

std::size_t Gateway::pump() {
  events_.clear();
  transport_.poll(events_);
  for (const TransportEvent& event : events_) on_event(event);
  reap();
  return events_.size();
}

void Gateway::step(util::Duration span) {
  pump();
  runtime_.run_for(span);
  pump();
}

std::size_t Gateway::connections(Listener listener) const {
  std::size_t n = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn.dead && conn.listener == listener) ++n;
  }
  return n;
}

std::size_t Gateway::subscribers() const {
  std::size_t n = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn.dead && conn.listener == Listener::kStream && conn.subscription) ++n;
  }
  return n;
}

void Gateway::on_event(const TransportEvent& event) {
  if (event.kind == TransportEvent::Kind::kAccepted) {
    if (conns_.size() >= config_.max_connections) {
      ++stats_.rejected_capacity;
      transport_.close(event.conn);
      return;
    }
    ++stats_.accepted;
    Conn& conn = conns_[event.conn];
    conn.id = event.conn;
    conn.listener = event.listener;
    return;
  }
  const auto it = conns_.find(event.conn);
  if (it == conns_.end() || it->second.dead) return;
  if (event.kind == TransportEvent::Kind::kReadable) {
    on_readable(it->second);
  } else {  // kWritable
    it->second.blocked = false;
    flush(it->second);
  }
}

void Gateway::on_readable(Conn& conn) {
  for (;;) {
    const std::ptrdiff_t n = transport_.read(conn.id, scratch_);
    if (n == 0) return;  // drained for now
    if (n < 0) {         // EOF or error
      close_conn(conn);
      return;
    }
    const util::BytesView chunk(scratch_.data(), static_cast<std::size_t>(n));
    if (conn.listener == Listener::kIngest) {
      on_ingest_chunk(conn, chunk);
    } else {
      on_text_chunk(conn, chunk);
    }
    if (conn.dead) return;
  }
}

void Gateway::on_ingest_chunk(Conn& conn, util::BytesView chunk) {
  stats_.ingest_bytes += chunk.size();
  if (!conn.frames.push(chunk)) {
    // A declared length past the frame bound: the stream cannot be
    // resynchronised, so the producer is cut, not skipped past.
    ++stats_.ingest_oversized;
    close_conn(conn);
    return;
  }
  while (const auto body = conn.frames.frame()) {
    // Frames crossed a real network: verify the CRC trailer, unlike the
    // trusted in-process delivery path.
    const auto decoded = core::decode_view(*body, core::ChecksumPolicy::kVerify);
    if (decoded.ok()) {
      ++stats_.ingest_frames;
      ingest_frame_bytes_->observe(static_cast<double>(body->size()));
      runtime_.inject_external(decoded.value());
    } else {
      // One bad frame does not poison the stream — the length prefix
      // was sane, so the next frame boundary is still trustworthy.
      ++stats_.ingest_malformed;
    }
    conn.frames.pop();
  }
}

void Gateway::on_text_chunk(Conn& conn, util::BytesView chunk) {
  for (const std::byte b : chunk) {
    const char c = static_cast<char>(b);
    if (c == '\n') {
      const std::string line = std::move(conn.line);
      conn.line.clear();
      if (conn.listener == Listener::kStream) {
        on_stream_line(conn, trim_cr(line));
      } else {
        on_cache_line(conn, trim_cr(line));
      }
      if (conn.dead || conn.close_when_drained) return;
      continue;
    }
    if (conn.line.size() >= config_.max_line_bytes) {
      ++stats_.bad_requests;
      close_conn(conn);
      return;
    }
    conn.line.push_back(c);
  }
}

void Gateway::on_stream_line(Conn& conn, std::string_view line) {
  if (line.empty()) return;
  if (line.rfind(kSubPrefix, 0) == 0) {
    const auto pattern = parse_stream_pattern(line.substr(kSubPrefix.size()));
    if (!pattern) {
      ++stats_.bad_requests;
      send_control(conn, "ERR bad pattern\n");
      return;
    }
    conn.subscription = *pattern;
    send_control(conn, "OK SUB " + pattern_uri(*pattern) + "\n");
    return;
  }
  if (line == "UNSUB") {
    conn.subscription.reset();
    send_control(conn, "OK UNSUB\n");
    return;
  }
  ++stats_.bad_requests;
  send_control(conn, "ERR unknown command\n");
}

void Gateway::on_cache_line(Conn& conn, std::string_view line) {
  if (line.empty()) return;
  const util::SimTime now = runtime_.scheduler().now();
  if (line.rfind(kGetPrefix, 0) == 0) {
    ++stats_.cache_requests;
    const std::string_view uri_text = line.substr(kGetPrefix.size());
    const auto id = parse_stream_uri(uri_text);
    if (!id) {
      ++stats_.bad_requests;
      send_control(conn, "ERR bad uri\n");
      return;
    }
    const LastValueCache::Entry* entry = cache_.get(*id);
    if (entry == nullptr) {
      send_control(conn, std::string("MISS ") + stream_uri(*id) + "\n");
      return;
    }
    const std::int64_t age_ms = (now.ns - entry->updated_at.ns) / 1'000'000;
    std::string head = "VALUE " + stream_uri(*id) + " " + std::to_string(entry->sequence) + " " +
                       std::to_string(age_ms) + " " + std::to_string(entry->payload.size()) + "\n";
    // The payload rides as the cached SharedBytes view: GET serves the
    // same allocation every stream subscriber aliased, copy-free.
    send_control(conn, head, entry->payload);
    send_control(conn, "\n");
    return;
  }
  if (line == "LIST") {
    ++stats_.cache_requests;
    std::string reply = "STREAMS " + std::to_string(cache_.size()) + "\n";
    for (const auto& [packed, entry] : cache_.entries()) {
      reply += stream_uri(core::StreamId::from_packed(packed)) + " " +
               std::to_string(entry.sequence) + " " + std::to_string(entry.payload.size()) + "\n";
    }
    send_control(conn, reply);
    return;
  }
  if (line == "METRICS") {
    ++stats_.cache_requests;
    const std::string text = obs::render_prometheus(
        runtime_.telemetry().registry.snapshot(static_cast<std::uint64_t>(now.ns)));
    send_control(conn, "METRICS " + std::to_string(text.size()) + "\n" + text);
    return;
  }
  if (line == "QUIT") {
    conn.close_when_drained = true;
    send_control(conn, "BYE\n");
    return;
  }
  ++stats_.bad_requests;
  send_control(conn, "ERR unknown command\n");
}

void Gateway::on_delivery(const core::DeliveryView& d) {
  const util::SimTime now = runtime_.scheduler().now();
  delivery_latency_->observe(static_cast<double>(now.ns - d.first_heard.ns));

  // The shared delivery frame every subscriber socket will alias. A
  // wire-less view (owned-delivery replay paths) is re-framed once.
  const util::SharedBytes frame =
      d.wire.empty() ? core::encode_delivery(d.message, d.first_heard) : d.wire;

  util::SharedBytes payload;
  if (!d.message.payload.empty()) {
    // Payload offset inside the frame: aliased directly when the view
    // points into it, recomputed from the layout when re-framed.
    std::size_t offset = 8 + core::kFixedHeaderBytes +
                         (d.message.ack_request_id ? core::kAckExtensionBytes : 0);
    if (!d.wire.empty()) {
      offset = static_cast<std::size_t>(d.message.payload.data() - frame.data());
    }
    payload = frame.view(offset, d.message.payload.size());
  }
  cache_.update(d.message.stream_id, d.message.sequence, d.message.header.flags, now,
                std::move(payload));

  std::byte prefix[kLengthPrefixBytes];
  put_length_prefix(static_cast<std::uint32_t>(frame.size()), prefix);
  for (auto& [id, conn] : conns_) {
    if (conn.dead || conn.listener != Listener::kStream || !conn.subscription ||
        !conn.subscription->matches(d.message.stream_id)) {
      continue;
    }
    OutFrame out;
    out.head.assign(prefix, prefix + kLengthPrefixBytes);
    out.body = frame;  // refcount bump, no bytes copied
    out.cls = net::TrafficClass::kData;
    enqueue_data(conn, std::move(out));
  }
  reap();
}

void Gateway::send_control(Conn& conn, std::string_view text, util::SharedBytes body) {
  OutFrame frame;
  frame.head = text_bytes(text);
  frame.body = std::move(body);
  frame.cls = net::TrafficClass::kControl;
  // Control jumps the data queue but never preempts a frame already
  // partially on the wire, and keeps FIFO order among control frames.
  std::size_t idx = (conn.head_offset > 0 && !conn.outbox.empty()) ? 1 : 0;
  while (idx < conn.outbox.size() && conn.outbox[idx].cls == net::TrafficClass::kControl) ++idx;
  conn.outbox.insert(conn.outbox.begin() + static_cast<std::ptrdiff_t>(idx), std::move(frame));
  if (!conn.blocked) flush(conn);
}

std::size_t Gateway::effective_outbox_frames() {
  net::AdmissionGate* gate = runtime_.admission();
  if (gate == nullptr || config_.outbox_frames_per_ticket == 0) return config_.outbox_frames;
  const std::size_t derived =
      static_cast<std::size_t>(gate->data_pool_size()) * config_.outbox_frames_per_ticket;
  return std::clamp<std::size_t>(derived, 1, config_.outbox_frames);
}

void Gateway::enqueue_data(Conn& conn, OutFrame frame) {
  if (conn.data_frames >= effective_outbox_frames()) {
    switch (config_.shed_policy) {
      case net::OverflowPolicy::kDropOldest: {
        std::size_t idx = conn.head_offset > 0 ? 1 : 0;
        while (idx < conn.outbox.size() && conn.outbox[idx].cls != net::TrafficClass::kData) {
          ++idx;
        }
        if (idx < conn.outbox.size()) {
          conn.outbox.erase(conn.outbox.begin() + static_cast<std::ptrdiff_t>(idx));
          --conn.data_frames;
          ++stats_.shed.data_drop_oldest;
          break;
        }
        // Every queued data frame is partially on the wire; the arriving
        // frame is the only one still droppable.
        ++stats_.shed.data_drop_newest;
        return;
      }
      case net::OverflowPolicy::kRejectNack:
        // No NACK exists on a TCP stream; the drop is still counted
        // under the policy that caused it.
        ++stats_.shed.data_reject_nack;
        return;
      case net::OverflowPolicy::kDropNewest:
        ++stats_.shed.data_drop_newest;
        return;
    }
  }
  conn.outbox.push_back(std::move(frame));
  ++conn.data_frames;
  if (!conn.blocked) flush(conn);
}

void Gateway::flush(Conn& conn) {
  if (conn.dead) return;
  while (!conn.outbox.empty()) {
    // Gather as many queued frames as fit one writev: heads and shared
    // bodies interleave without ever being copied into a staging buffer.
    std::array<util::IoSlice, 64> slices;
    std::size_t nslices = 0;
    std::size_t total = 0;
    std::size_t first_offset = conn.head_offset;
    for (const OutFrame& frame : conn.outbox) {
      if (nslices + 2 > slices.size()) break;
      std::size_t off = first_offset;
      first_offset = 0;
      if (off < frame.head.size()) {
        slices[nslices++] = {frame.head.data() + off, frame.head.size() - off};
        total += frame.head.size() - off;
        off = 0;
      } else {
        off -= frame.head.size();
      }
      if (off < frame.body.size()) {
        slices[nslices++] = {frame.body.data() + off, frame.body.size() - off};
        total += frame.body.size() - off;
      }
    }
    const std::ptrdiff_t n = transport_.writev(conn.id, {slices.data(), nslices});
    if (n < 0) {
      close_conn(conn);
      return;
    }
    if (n == 0) {
      conn.blocked = true;
      transport_.want_writable(conn.id, true);
      return;
    }
    stats_.egress_bytes += static_cast<std::uint64_t>(n);
    advance_outbox(conn, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < total) {
      ++stats_.partial_writes;
      conn.blocked = true;
      transport_.want_writable(conn.id, true);
      return;
    }
  }
  conn.blocked = false;
  transport_.want_writable(conn.id, false);
  if (conn.close_when_drained) close_conn(conn);
}

void Gateway::advance_outbox(Conn& conn, std::size_t written) {
  while (written > 0) {
    OutFrame& frame = conn.outbox.front();
    const std::size_t remaining = frame.size() - conn.head_offset;
    const std::size_t take = std::min(written, remaining);
    conn.head_offset += take;
    written -= take;
    if (conn.head_offset < frame.size()) break;
    if (frame.cls == net::TrafficClass::kData) {
      ++stats_.egress_frames;
      --conn.data_frames;
      egress_frame_bytes_->observe(static_cast<double>(frame.size()));
    }
    conn.outbox.pop_front();
    conn.head_offset = 0;
  }
}

void Gateway::close_conn(Conn& conn) {
  if (conn.dead) return;
  conn.dead = true;
  ++stats_.closed;
  transport_.close(conn.id);
}

void Gateway::reap() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    it = it->second.dead ? conns_.erase(it) : std::next(it);
  }
}

void Gateway::collect(obs::SnapshotBuilder& out) const {
  out.counter("garnet.gw.accepted", stats_.accepted);
  out.counter("garnet.gw.closed", stats_.closed);
  out.counter("garnet.gw.rejected_capacity", stats_.rejected_capacity);
  out.counter("garnet.gw.ingest.frames", stats_.ingest_frames);
  out.counter("garnet.gw.ingest.bytes", stats_.ingest_bytes);
  out.counter("garnet.gw.ingest.malformed", stats_.ingest_malformed);
  out.counter("garnet.gw.ingest.oversized", stats_.ingest_oversized);
  out.counter("garnet.gw.egress.frames", stats_.egress_frames);
  out.counter("garnet.gw.egress.bytes", stats_.egress_bytes);
  out.counter("garnet.gw.partial_writes", stats_.partial_writes);
  out.counter("garnet.gw.bad_requests", stats_.bad_requests);
  out.counter("garnet.gw.cache.requests", stats_.cache_requests);
  out.counter("garnet.gw.cache.updates", cache_.stats().updates);
  out.counter("garnet.gw.cache.hits", cache_.stats().hits);
  out.counter("garnet.gw.cache.misses", cache_.stats().misses);
  out.gauge("garnet.gw.cache.entries", static_cast<double>(cache_.size()));
  out.gauge("garnet.gw.subscribers", static_cast<double>(subscribers()));
  for (const Listener listener : {Listener::kIngest, Listener::kStream, Listener::kCache}) {
    out.gauge("garnet.gw.connections", static_cast<double>(connections(listener)),
              {{"listener", std::string(to_string(listener))}});
  }
  // Shed split by (class, policy). The control rows are emitted even
  // though the gateway never sheds control frames: a zero that is
  // *present* is the checkable form of the invariant (ci gates on it).
  const net::ShedStats& shed = stats_.shed;
  out.counter("garnet.gw.shed", shed.data_drop_newest,
              {{"class", "data"}, {"policy", "drop_newest"}});
  out.counter("garnet.gw.shed", shed.data_drop_oldest,
              {{"class", "data"}, {"policy", "drop_oldest"}});
  out.counter("garnet.gw.shed", shed.data_reject_nack,
              {{"class", "data"}, {"policy", "reject_nack"}});
  out.counter("garnet.gw.shed", shed.control_drop_newest,
              {{"class", "control"}, {"policy", "drop_newest"}});
  out.counter("garnet.gw.shed", shed.control_drop_oldest,
              {{"class", "control"}, {"policy", "drop_oldest"}});
  out.counter("garnet.gw.shed", shed.control_reject_nack,
              {{"class", "control"}, {"policy", "reject_nack"}});
}

}  // namespace garnet::gw
