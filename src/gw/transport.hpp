// Transport seam between the gateway daemon core and the operating
// system's sockets.
//
// The daemon logic (accept, frame reassembly, fan-out, shedding, cache
// protocol) is pure state-machine code driven by TransportEvents; the
// Transport interface is the only place bytes enter or leave. Two
// implementations:
//
//   * PosixTransport   — real non-blocking TCP listeners driven by
//                        poll(2), scatter-gather writes via sendmsg
//                        (MSG_NOSIGNAL), SO_REUSEADDR, ephemeral-port
//                        friendly (bind port 0, read back the port).
//   * LoopbackTransport — deterministic in-memory peers for unit and
//                        fuzz tests: scripted connects, byte feeds,
//                        capped write windows (short writes and slow
//                        consumers on demand), mid-frame disconnects.
//
// Contract shared by both: read() returns >0 bytes, 0 for would-block,
// -1 for EOF/error (the caller closes); writev() returns bytes accepted
// (possibly short), 0 for would-block, -1 for a dead peer. Writable
// events are edge-style and only reported while want_writable(conn,
// true) is in force.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace garnet::gw {

/// Connection identifier, unique for the transport's lifetime (slots
/// are never recycled, so a stale id cannot alias a new peer).
using ConnId = std::uint64_t;

/// Which of the gateway's three listening sockets a connection came in
/// on (ISSUE/docs: ingest producers, stream subscribers, URI cache).
enum class Listener : std::uint8_t { kIngest, kStream, kCache };
inline constexpr std::size_t kListenerCount = 3;

[[nodiscard]] std::string_view to_string(Listener listener);

struct TransportEvent {
  enum class Kind : std::uint8_t {
    kAccepted,  ///< New connection on `listener`.
    kReadable,  ///< Bytes (or EOF) pending; drain with read().
    kWritable,  ///< A previously full connection can accept bytes again.
  };
  Kind kind = Kind::kReadable;
  ConnId conn = 0;
  Listener listener = Listener::kIngest;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Appends pending events (non-blocking). Event order is
  /// deterministic for LoopbackTransport (connection-id order).
  virtual void poll(std::vector<TransportEvent>& out) = 0;

  /// Reads up to buf.size() bytes. >0 = bytes read, 0 = would block,
  /// -1 = peer closed or errored.
  virtual std::ptrdiff_t read(ConnId conn, std::span<std::byte> buf) = 0;

  /// Scatter-gather write. Returns bytes accepted across the slices
  /// (may be short), 0 = would block, -1 = dead peer.
  virtual std::ptrdiff_t writev(ConnId conn, std::span<const util::IoSlice> slices) = 0;

  /// Arms (or disarms) kWritable reporting for a connection whose
  /// writev came up short.
  virtual void want_writable(ConnId conn, bool want) = 0;

  virtual void close(ConnId conn) = 0;
};

/// Real sockets. Construction binds and listens; throws
/// std::runtime_error when a port cannot be bound.
class PosixTransport final : public Transport {
 public:
  struct Config {
    /// 0 binds an ephemeral port; read it back with port().
    std::uint16_t ingest_port = 0;
    std::uint16_t stream_port = 0;
    std::uint16_t cache_port = 0;
    int backlog = 64;
  };

  explicit PosixTransport(const Config& config);
  ~PosixTransport() override;

  PosixTransport(const PosixTransport&) = delete;
  PosixTransport& operator=(const PosixTransport&) = delete;

  /// Actual bound port of one listener (resolves port-0 binds).
  [[nodiscard]] std::uint16_t port(Listener listener) const;

  void poll(std::vector<TransportEvent>& out) override;
  std::ptrdiff_t read(ConnId conn, std::span<std::byte> buf) override;
  std::ptrdiff_t writev(ConnId conn, std::span<const util::IoSlice> slices) override;
  void want_writable(ConnId conn, bool want) override;
  void close(ConnId conn) override;

  [[nodiscard]] std::size_t open_connections() const noexcept { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    Listener listener = Listener::kIngest;
    bool want_write = false;
  };

  int listener_fds_[kListenerCount] = {-1, -1, -1};
  std::uint16_t ports_[kListenerCount] = {0, 0, 0};
  std::map<ConnId, Conn> conns_;
  ConnId next_id_ = 1;
};

/// Deterministic in-memory transport. The test owns the "peer" side:
/// it connects, feeds bytes, drains output, caps write windows, and
/// closes — all synchronously, no sockets, no threads.
class LoopbackTransport final : public Transport {
 public:
  // --- peer (test) side ---------------------------------------------------

  /// Creates a connection; a kAccepted event surfaces on the next poll.
  ConnId connect(Listener listener);

  /// Appends bytes the gateway will read().
  void peer_send(ConnId conn, util::BytesView data);

  /// Drains everything the gateway wrote to this peer.
  [[nodiscard]] util::Bytes peer_take(ConnId conn);

  /// Bytes written to the peer and not yet taken.
  [[nodiscard]] std::size_t peer_pending(ConnId conn) const;

  /// Peer hangs up; the gateway's next read() returns -1 (after any
  /// already-queued bytes), modelling a mid-stream disconnect.
  void peer_close(ConnId conn);

  /// Caps bytes accepted per writev call (forces short writes).
  void set_write_limit(ConnId conn, std::size_t per_call);

  /// Total further bytes the peer will absorb before writev returns
  /// would-block — a slow consumer with a full kernel buffer.
  void set_write_window(ConnId conn, std::size_t window);

  /// Widens the window (the slow peer drained some); a kWritable event
  /// surfaces on the next poll if the gateway asked for one.
  void open_write_window(ConnId conn, std::size_t more);

  [[nodiscard]] bool gateway_closed(ConnId conn) const;
  [[nodiscard]] std::size_t open_connections() const noexcept;

  // --- Transport (gateway) side -------------------------------------------

  void poll(std::vector<TransportEvent>& out) override;
  std::ptrdiff_t read(ConnId conn, std::span<std::byte> buf) override;
  std::ptrdiff_t writev(ConnId conn, std::span<const util::IoSlice> slices) override;
  void want_writable(ConnId conn, bool want) override;
  void close(ConnId conn) override;

 private:
  struct Conn {
    Listener listener = Listener::kIngest;
    std::deque<std::byte> to_gateway;
    util::Bytes to_peer;
    std::size_t write_limit = SIZE_MAX;
    std::size_t write_window = SIZE_MAX;
    bool announced = false;     ///< kAccepted already emitted.
    bool peer_closed = false;
    bool gateway_closed = false;
    bool want_write = false;
  };

  [[nodiscard]] Conn* live(ConnId conn);
  [[nodiscard]] const Conn* live(ConnId conn) const;

  std::map<ConnId, Conn> conns_;  ///< Ordered: deterministic poll order.
  ConnId next_id_ = 1;
};

}  // namespace garnet::gw
