// TCP framing for the gateway's socket surfaces.
//
// The radio and the in-process bus carry self-delimiting frames; a TCP
// byte stream does not, so every binary frame the gateway sends or
// receives rides behind a 4-byte big-endian length prefix:
//
//     [u32 length][length bytes of frame body]
//
// Ingest bodies are Figure-2 data messages (core/message.hpp); egress
// bodies are delivery frames (core/wire_types.hpp: i64 first-heard +
// Figure-2 message). The prefix bounds are enforced *before* any body
// byte is buffered: a declared length past kMaxFrameBody poisons the
// connection immediately, so a hostile peer cannot make the gateway
// allocate 4GB or stall mid-frame forever. See docs/GATEWAY.md.
#pragma once

#include <cstdint>
#include <optional>

#include "core/message.hpp"
#include "util/bytes.hpp"

namespace garnet::gw {

/// Bytes of the big-endian length prefix.
inline constexpr std::size_t kLengthPrefixBytes = 4;

/// Largest legal frame body: a delivery frame carrying a maximum-size
/// Figure-2 message (8-byte first-heard prefix + header + ack extension
/// + 64K payload + CRC). Ingest frames (no first-heard) fit a fortiori.
inline constexpr std::size_t kMaxFrameBody =
    8 + core::kFixedHeaderBytes + core::kAckExtensionBytes + core::kMaxPayload +
    core::kChecksumBytes;

/// Renders `length` as the 4-byte prefix into `out`.
void put_length_prefix(std::uint32_t length, std::byte out[kLengthPrefixBytes]);

/// Reassembles length-prefixed frames from arbitrary TCP chunk
/// boundaries. Bounded: buffers at most one maximum frame plus one read
/// chunk; a declared length past `max_body` poisons the assembler (the
/// stream is unrecoverable — resynchronising on a length-prefixed
/// stream after a bad prefix is guesswork) and the caller must close
/// the connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_body = kMaxFrameBody) : max_body_(max_body) {}

  /// Appends one received chunk. Returns false once poisoned (a frame
  /// declared longer than max_body); the connection should be closed.
  [[nodiscard]] bool push(util::BytesView data);

  /// Next complete frame body, or nullopt while incomplete. The view
  /// aliases the assembler's buffer: valid until the next push()/pop().
  [[nodiscard]] std::optional<util::BytesView> frame() const;

  /// Discards the frame last returned by frame().
  void pop();

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  /// Declared body length once the prefix is complete.
  [[nodiscard]] std::optional<std::uint32_t> declared() const;

  util::Bytes buf_;
  std::size_t pos_ = 0;  ///< Consumed prefix of buf_.
  std::size_t max_body_;
  bool poisoned_ = false;
};

}  // namespace garnet::gw
