// sensd-style last-value cache, addressable as `SID/TAG` text URIs.
//
// The sensd WSN gateway caches each mote's last report in the file
// system as SID/TAG paths so any HTTP proxy can serve "the latest
// value" without touching the radio. Garnet's equivalent keys the cache
// by StreamId — SID is the 24-bit sensor id, TAG the 8-bit internal
// stream number — and retains the delivery's shared wire buffer instead
// of copying the payload: a cache entry is a SharedBytes sub-view, so
// updating the cache on the delivery path costs a refcount bump, and a
// GET writev-s the payload straight from the same allocation every
// subscriber aliases (docs/GATEWAY.md).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/message.hpp"
#include "util/shared_bytes.hpp"
#include "util/time.hpp"

namespace garnet::gw {

namespace detail {
/// Consumes a decimal field up to `max` from the front of `s`; nullopt
/// on an empty field or overflow. Shared by URI and pattern parsers.
[[nodiscard]] std::optional<std::uint32_t> parse_decimal(std::string_view& s, std::uint32_t max);
}  // namespace detail

/// Parses "SID/TAG" (two decimal fields) into a StreamId. Rejects
/// anything malformed, out of range, or trailed by junk.
[[nodiscard]] std::optional<core::StreamId> parse_stream_uri(std::string_view uri);

/// Renders the canonical URI for one stream ("17/3").
[[nodiscard]] std::string stream_uri(core::StreamId id);

struct CacheStats {
  std::uint64_t updates = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class LastValueCache {
 public:
  struct Entry {
    core::SequenceNo sequence = 0;
    std::uint8_t flags = 0;           ///< Header flags of the cached message.
    util::SimTime updated_at;         ///< Virtual time of the update.
    util::SharedBytes payload;        ///< Aliases the delivery wire buffer.
  };

  /// Records the newest report for `id`. `payload` must alias a retained
  /// wire buffer (the delivery's SharedBytes view).
  void update(core::StreamId id, core::SequenceNo sequence, std::uint8_t flags,
              util::SimTime at, util::SharedBytes payload);

  /// Latest entry, or nullptr. Counts a hit or a miss.
  [[nodiscard]] const Entry* get(core::StreamId id);

  /// Lookup without touching hit/miss accounting (introspection).
  [[nodiscard]] const Entry* peek(core::StreamId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Sorted (by packed StreamId) iteration for LIST replies.
  [[nodiscard]] const std::map<std::uint32_t, Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<std::uint32_t, Entry> entries_;  ///< Keyed by StreamId::packed().
  CacheStats stats_;
};

}  // namespace garnet::gw
