#include "gw/framing.hpp"

#include <cstring>

namespace garnet::gw {

void put_length_prefix(std::uint32_t length, std::byte out[kLengthPrefixBytes]) {
  out[0] = static_cast<std::byte>(length >> 24);
  out[1] = static_cast<std::byte>(length >> 16);
  out[2] = static_cast<std::byte>(length >> 8);
  out[3] = static_cast<std::byte>(length);
}

std::optional<std::uint32_t> FrameAssembler::declared() const {
  if (buf_.size() - pos_ < kLengthPrefixBytes) return std::nullopt;
  const std::byte* p = buf_.data() + pos_;
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

bool FrameAssembler::push(util::BytesView data) {
  if (poisoned_) return false;
  // Compact before growing: everything before pos_ is consumed frames.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
  // The bound is checked as soon as the prefix is readable, before the
  // body accumulates — frame() never sees an oversized declaration.
  if (const auto len = declared(); len && *len > max_body_) {
    poisoned_ = true;
    return false;
  }
  return true;
}

std::optional<util::BytesView> FrameAssembler::frame() const {
  if (poisoned_) return std::nullopt;
  const auto len = declared();
  if (!len || buf_.size() - pos_ - kLengthPrefixBytes < *len) return std::nullopt;
  return util::BytesView(buf_.data() + pos_ + kLengthPrefixBytes, *len);
}

void FrameAssembler::pop() {
  const auto len = declared();
  if (!len) return;
  pos_ += kLengthPrefixBytes + *len;
  // A following frame's oversized prefix may only now become readable.
  if (const auto next = declared(); next && *next > max_body_) poisoned_ = true;
}

}  // namespace garnet::gw
