#include "gw/uri_cache.hpp"

namespace garnet::gw {

namespace detail {

/// Parses a decimal field up to `max`; advances `s`. Rejects empty
/// fields, leading-zero padding is allowed (it is unambiguous).
std::optional<std::uint32_t> parse_decimal(std::string_view& s, std::uint32_t max) {
  std::uint64_t value = 0;
  std::size_t digits = 0;
  while (!s.empty() && s.front() >= '0' && s.front() <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(s.front() - '0');
    if (value > max) return std::nullopt;
    s.remove_prefix(1);
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  return static_cast<std::uint32_t>(value);
}

}  // namespace detail

std::optional<core::StreamId> parse_stream_uri(std::string_view uri) {
  const auto sensor = detail::parse_decimal(uri, core::kMaxSensorId);
  if (!sensor || uri.empty() || uri.front() != '/') return std::nullopt;
  uri.remove_prefix(1);
  const auto stream = detail::parse_decimal(uri, 0xFF);
  if (!stream || !uri.empty()) return std::nullopt;
  return core::StreamId{*sensor, static_cast<core::InternalStreamId>(*stream)};
}

std::string stream_uri(core::StreamId id) {
  return std::to_string(id.sensor) + "/" + std::to_string(id.stream);
}

void LastValueCache::update(core::StreamId id, core::SequenceNo sequence, std::uint8_t flags,
                            util::SimTime at, util::SharedBytes payload) {
  ++stats_.updates;
  entries_[id.packed()] = Entry{sequence, flags, at, std::move(payload)};
}

const LastValueCache::Entry* LastValueCache::get(core::StreamId id) {
  const auto it = entries_.find(id.packed());
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const LastValueCache::Entry* LastValueCache::peek(core::StreamId id) const {
  const auto it = entries_.find(id.packed());
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace garnet::gw
