// garnet-gw: the gateway daemon. Runs a full Garnet runtime with an
// embedded simulated sensor field and bridges its data streams to real
// TCP sockets on loopback: external producers push Figure-2 frames into
// the ingest port, subscribers tail deliveries from the stream port, and
// pull-style readers query the last-value URI cache. See docs/GATEWAY.md
// and examples/gw_client.cpp for the client side.
//
// Usage: garnet-gw [--ingest P] [--stream P] [--cache P] [--sensors N]
//                  [--interval MS] [--speed X] [--duration S] [--quiet]
//
// Ports default to 7070/7071/7072; pass 0 for an ephemeral port (the
// bound port is printed either way). --sensors 0 disables the embedded
// field, leaving only externally ingested traffic. --duration 0 runs
// until interrupted.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>

#include "garnet/runtime.hpp"
#include "gw/gateway.hpp"
#include "gw/transport.hpp"
#include "sim/realtime.hpp"

using namespace garnet;
using util::Duration;

namespace {

struct Options {
  std::uint16_t ingest_port = 7070;
  std::uint16_t stream_port = 7071;
  std::uint16_t cache_port = 7072;
  std::size_t sensors = 4;
  std::uint32_t interval_ms = 1000;
  double speed = 1.0;
  double duration_s = 0;  // 0 = run forever
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--ingest P] [--stream P] [--cache P] [--sensors N]\n"
               "          [--interval MS] [--speed X] [--duration S] [--quiet]\n",
               argv0);
  return 2;
}

bool parse_options(int argc, char** argv, Options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg == "--ingest" && has_value) {
      out.ingest_port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--stream" && has_value) {
      out.stream_port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--cache" && has_value) {
      out.cache_port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--sensors" && has_value) {
      out.sensors = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--interval" && has_value) {
      out.interval_ms = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--speed" && has_value) {
      out.speed = std::strtod(argv[++i], nullptr);
    } else if (arg == "--duration" && has_value) {
      out.duration_s = std::strtod(argv[++i], nullptr);
    } else {
      return false;
    }
  }
  return out.speed > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) return usage(argv[0]);

  Runtime::Config config;
  config.field.area = {{0, 0}, {600, 600}};
  Runtime runtime(config);
  runtime.deploy_receivers(9, 250);
  if (opt.sensors > 0) {
    wireless::SensorField::PopulationSpec population;
    population.count = opt.sensors;
    population.interval_ms = opt.interval_ms;
    runtime.deploy_population(population);
  }

  gw::PosixTransport::Config ports;
  ports.ingest_port = opt.ingest_port;
  ports.stream_port = opt.stream_port;
  ports.cache_port = opt.cache_port;
  gw::PosixTransport transport(ports);
  gw::Gateway gateway(runtime, transport);

  runtime.run_for(Duration::millis(20));  // let the subscribe RPC settle
  runtime.start_sensors();

  std::printf("garnet-gw up on 127.0.0.1 — ingest :%u  stream :%u  cache :%u\n",
              transport.port(gw::Listener::kIngest), transport.port(gw::Listener::kStream),
              transport.port(gw::Listener::kCache));
  if (!opt.quiet) {
    std::printf("  %zu embedded sensors @ %ums, %.0fx real time; try:\n", opt.sensors,
                opt.interval_ms, opt.speed);
    std::printf("    gw_client sub '*' --port %u\n", transport.port(gw::Listener::kStream));
    std::printf("    gw_client get 1/0 --port %u\n\n", transport.port(gw::Listener::kCache));
  }

  sim::RealtimeDriver driver(runtime.scheduler(), opt.speed);
  const auto wall_start = std::chrono::steady_clock::now();
  auto last_status = wall_start;
  // ~10ms of wall time per iteration keeps socket latency low while the
  // scheduler tracks the wall clock in between pumps.
  const Duration slice = Duration::nanos(static_cast<std::int64_t>(10e6 * opt.speed));
  for (;;) {
    gateway.pump();
    driver.run_for(slice);
    const auto now = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(now - wall_start).count();
    if (opt.duration_s > 0 && elapsed >= opt.duration_s) break;
    if (!opt.quiet && now - last_status >= std::chrono::seconds(5)) {
      last_status = now;
      const gw::GatewayStats& s = gateway.stats();
      std::printf("[%6.1fs] conns=%zu subs=%zu ingest=%llu egress=%llu shed=%llu cache=%zu\n",
                  elapsed, gateway.connections(), gateway.subscribers(),
                  static_cast<unsigned long long>(s.ingest_frames),
                  static_cast<unsigned long long>(s.egress_frames),
                  static_cast<unsigned long long>(s.shed.data_total()), gateway.cache().size());
    }
  }

  const gw::GatewayStats& s = gateway.stats();
  std::printf("garnet-gw done: accepted=%llu ingest=%llu (%llu bad) egress=%llu shed=%llu\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.ingest_frames),
              static_cast<unsigned long long>(s.ingest_malformed + s.ingest_oversized),
              static_cast<unsigned long long>(s.egress_frames),
              static_cast<unsigned long long>(s.shed.data_total()));
  return 0;
}
