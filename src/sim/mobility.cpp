#include "sim/mobility.hpp"

#include <cassert>

namespace garnet::sim {

RandomWaypoint::RandomWaypoint(Config config, Vec2 start, util::Rng rng)
    : config_(config), rng_(rng), from_(start), to_(start) {
  leg_start_ = leg_end_ = pause_end_ = util::SimTime::zero();
  advance_leg();
}

void RandomWaypoint::advance_leg() {
  from_ = to_;
  to_ = {rng_.uniform(config_.area.min.x, config_.area.max.x),
         rng_.uniform(config_.area.min.y, config_.area.max.y)};
  const double speed = rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
  const double dist = distance(from_, to_);
  leg_start_ = pause_end_;
  const auto travel_ns = static_cast<std::int64_t>(dist / std::max(speed, 1e-9) * 1e9);
  leg_end_ = leg_start_ + util::Duration::nanos(travel_ns);
  pause_end_ = leg_end_ + config_.pause;
}

Vec2 RandomWaypoint::position_at(util::SimTime t) {
  while (t >= pause_end_) advance_leg();
  if (t >= leg_end_) return to_;  // pausing at destination
  if (t <= leg_start_) return from_;
  const double frac = static_cast<double>((t - leg_start_).ns) /
                      static_cast<double>(std::max<std::int64_t>((leg_end_ - leg_start_).ns, 1));
  return from_ + (to_ - from_) * frac;
}

PathMobility::PathMobility(std::vector<Vec2> waypoints, double speed_mps)
    : waypoints_(std::move(waypoints)), speed_(speed_mps) {
  assert(waypoints_.size() >= 2);
  assert(speed_ > 0);
  cumulative_.reserve(waypoints_.size() + 1);
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    cumulative_.push_back(cumulative_.back() + distance(waypoints_[i - 1], waypoints_[i]));
  }
  // closing segment back to the start
  cumulative_.push_back(cumulative_.back() + distance(waypoints_.back(), waypoints_.front()));
  loop_length_ = cumulative_.back();
  assert(loop_length_ > 0);
}

Vec2 PathMobility::position_at(util::SimTime t) {
  const double travelled = std::fmod(speed_ * t.to_seconds(), loop_length_);
  // find the segment containing `travelled`
  for (std::size_t i = 1; i < cumulative_.size(); ++i) {
    if (travelled <= cumulative_[i]) {
      const Vec2 a = waypoints_[i - 1];
      const Vec2 b = waypoints_[i % waypoints_.size()];
      const double seg = cumulative_[i] - cumulative_[i - 1];
      const double frac = seg > 0 ? (travelled - cumulative_[i - 1]) / seg : 0.0;
      return a + (b - a) * frac;
    }
  }
  return waypoints_.front();
}

}  // namespace garnet::sim
