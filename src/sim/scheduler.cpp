#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace garnet::sim {

EventId Scheduler::schedule_at(util::SimTime at, EventFn fn) {
  assert(fn);
  const util::SimTime when = std::max(at, now_);
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, std::move(fn)});
  pending_.insert(seq);
  return EventId{seq};
}

EventId Scheduler::schedule_after(util::Duration delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) { return id.valid() && pending_.erase(id.value) > 0; }

bool Scheduler::settle_head() {
  while (!queue_.empty() && !pending_.contains(queue_.top().seq)) {
    queue_.pop();  // cancelled entry
  }
  return !queue_.empty();
}

void Scheduler::pop_and_run() {
  Entry top = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  pending_.erase(top.seq);
  now_ = top.at;
  ++executed_;
  top.fn();
}

std::optional<util::SimTime> Scheduler::next_event_time() {
  if (!settle_head()) return std::nullopt;
  return queue_.top().at;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && settle_head()) {
    pop_and_run();
    ++count;
  }
  return count;
}

std::size_t Scheduler::run_until(util::SimTime deadline) {
  std::size_t count = 0;
  while (settle_head() && queue_.top().at <= deadline) {
    pop_and_run();
    ++count;
  }
  now_ = std::max(now_, deadline);
  return count;
}

}  // namespace garnet::sim
