#include "sim/worker_pool.hpp"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <time.h>
#endif

namespace garnet::sim {

std::uint64_t thread_cpu_now_ns() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

WorkerPool::WorkerPool(Config config) {
  threads_.reserve(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i) {
    threads_.emplace_back([this, i, pin = config.pin_threads] { worker_main(i, pin); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::vector<Task>& tasks) {
  if (threads_.empty()) {
    for (const Task& task : tasks) task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_ = &tasks;
    remaining_ = threads_.size();
    ++round_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  tasks_ = nullptr;
}

void WorkerPool::worker_main(std::size_t index, bool pin) {
#if defined(__linux__)
  if (pin) {
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores > 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(index % cores, &set);
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
  }
#else
  (void)pin;
#endif
  std::uint64_t seen = 0;
  for (;;) {
    const std::vector<Task>* tasks = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
      tasks = tasks_;
    }
    for (std::size_t i = index; i < tasks->size(); i += threads_.size()) {
      (*tasks)[i]();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace garnet::sim
