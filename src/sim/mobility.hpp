// Sensor mobility models.
//
// The paper's model has *mobile* sensors that "occasionally roam outside
// the reception zone, which may cause data messages to be lost" (§4.2).
// Mobility is what produces that behaviour in the reproduction.
#pragma once

#include <memory>
#include <vector>

#include "sim/geometry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace garnet::sim {

/// Position as a function of virtual time. Implementations must be
/// deterministic given their constructor arguments.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at time t. Calls must be non-decreasing in t.
  [[nodiscard]] virtual Vec2 position_at(util::SimTime t) = 0;
};

/// A sensor that never moves (e.g. a moored water-level gauge).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}
  [[nodiscard]] Vec2 position_at(util::SimTime) override { return position_; }

 private:
  Vec2 position_;
};

/// Random-waypoint: pick a uniform destination in the area, travel at a
/// uniform speed from [min,max], pause, repeat. The standard WSN mobility
/// model; sensors drift in and out of receiver coverage.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Config {
    Rect area{{0, 0}, {1000, 1000}};
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;
    util::Duration pause = util::Duration::seconds(5);
  };

  RandomWaypoint(Config config, Vec2 start, util::Rng rng);

  [[nodiscard]] Vec2 position_at(util::SimTime t) override;

 private:
  void advance_leg();

  Config config_;
  util::Rng rng_;
  Vec2 from_;
  Vec2 to_;
  util::SimTime leg_start_;
  util::SimTime leg_end_;    // arrival at `to_`
  util::SimTime pause_end_;  // departure on the next leg
};

/// Follows a fixed closed loop of waypoints at constant speed; used by
/// scenario examples for patrol-style movement.
class PathMobility final : public MobilityModel {
 public:
  PathMobility(std::vector<Vec2> waypoints, double speed_mps);

  [[nodiscard]] Vec2 position_at(util::SimTime t) override;

 private:
  std::vector<Vec2> waypoints_;
  std::vector<double> cumulative_;  // distance to each waypoint along loop
  double speed_;
  double loop_length_;
};

}  // namespace garnet::sim
