// Pinned worker pool for the sharded dispatch plane.
//
// The deterministic scheduler is single-threaded by design; the shard
// plane (garnet/shard_plane.hpp) gets multi-core out of it by running N
// independent shards — each with its own scheduler, bus, and service
// state — and handing each shard's batch to a dedicated worker. This
// pool is that execution substrate:
//
//   * task i of a round always runs on worker (i mod workers) — a fixed,
//     deterministic assignment with no work stealing, so a shard's state
//     is only ever touched by one thread and same-seed runs schedule
//     identically;
//   * run() is a barrier: it returns only after every task of the round
//     has finished, which is the plane's cross-shard merge point;
//   * workers are pinned round-robin to CPUs (Linux; elsewhere pinning
//     is a no-op), so shard caches stay warm across rounds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace garnet::sim {

/// Monotonic per-thread CPU time in nanoseconds. Unlike a wall clock it
/// excludes time the thread spends descheduled, so per-shard busy time
/// measures the shard's *critical path* — comparable across hosts even
/// when more workers than cores timeshare (bench_dispatch's scaling
/// sweep is built on this).
[[nodiscard]] std::uint64_t thread_cpu_now_ns();

class WorkerPool {
 public:
  struct Config {
    /// Worker threads. 0 = no threads: run() executes tasks inline on
    /// the caller, in index order (the deterministic serial mode).
    std::size_t workers = 0;
    /// Pin worker i to CPU (i mod hardware cores). Linux only.
    bool pin_threads = true;
  };

  using Task = std::function<void()>;

  explicit WorkerPool(Config config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs every task of `tasks` and blocks until all have returned.
  /// Task i runs on worker (i mod workers); tasks sharing a worker run
  /// in ascending index order. Tasks must not throw and must not touch
  /// state owned by another task of the same round.
  void run(const std::vector<Task>& tasks);

  /// Live worker threads (0 in inline mode).
  [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

 private:
  void worker_main(std::size_t index, bool pin);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::vector<Task>* tasks_ = nullptr;  ///< Valid for the active round.
  std::uint64_t round_ = 0;                   ///< Generation counter.
  std::size_t remaining_ = 0;                 ///< Workers still in the round.
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace garnet::sim
