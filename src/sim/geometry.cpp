#include "sim/geometry.hpp"

#include <algorithm>
#include <cassert>

namespace garnet::sim {

Vec2 Rect::clamp(Vec2 p) const {
  return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
}

std::vector<Vec2> grid_layout(const Rect& area, std::size_t count) {
  assert(count > 0);
  std::vector<Vec2> points;
  points.reserve(count);

  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count) * area.width() / std::max(area.height(), 1e-9))));
  const std::size_t safe_cols = std::max<std::size_t>(cols, 1);
  const std::size_t rows = (count + safe_cols - 1) / safe_cols;

  const double dx = area.width() / static_cast<double>(safe_cols);
  const double dy = area.height() / static_cast<double>(std::max<std::size_t>(rows, 1));

  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = i / safe_cols;
    const std::size_t col = i % safe_cols;
    points.push_back({area.min.x + dx * (static_cast<double>(col) + 0.5),
                      area.min.y + dy * (static_cast<double>(row) + 0.5)});
  }
  return points;
}

}  // namespace garnet::sim
