// 2-D geometry for the sensor field: positions, regions, coverage tests.
#pragma once

#include <cmath>
#include <vector>

namespace garnet::sim {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Axis-aligned rectangle [min, max].
struct Rect {
  Vec2 min;
  Vec2 max;

  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
  [[nodiscard]] constexpr Vec2 center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }
  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// Nearest point inside the rectangle to p (p itself if contained).
  [[nodiscard]] Vec2 clamp(Vec2 p) const;
};

struct Circle {
  Vec2 center;
  double radius = 0.0;

  [[nodiscard]] bool contains(Vec2 p) const { return distance(center, p) <= radius; }
  [[nodiscard]] bool intersects(const Circle& other) const {
    return distance(center, other.center) <= radius + other.radius;
  }
  /// True if any point of the rectangle lies within the circle.
  [[nodiscard]] bool intersects(const Rect& r) const { return distance(center, r.clamp(center)) <= radius; }
};

/// Lays out `count` points in a near-square grid covering `area`; used to
/// place receiver/transmitter arrays with controllable overlap.
[[nodiscard]] std::vector<Vec2> grid_layout(const Rect& area, std::size_t count);

}  // namespace garnet::sim
