// Deterministic discrete-event scheduler.
//
// Everything in the reproduction — radio propagation delays, fixed-network
// message latency, sensor sampling timers, service timeouts — runs as
// events on one virtual clock. Ties are broken by insertion order, so a
// given seed always replays identically.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace garnet::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
};

class Scheduler {
 public:
  /// Current virtual time.
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  EventId schedule_at(util::SimTime at, EventFn fn);

  /// Schedules `fn` after `delay` from now.
  EventId schedule_after(util::Duration delay, EventFn fn);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs events until the queue drains or `limit` is reached. Returns
  /// the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances the clock to
  /// the deadline.
  std::size_t run_until(util::SimTime deadline);

  /// Runs for `span` of virtual time from now.
  std::size_t run_for(util::Duration span) { return run_until(now_ + span); }

  /// Advances the clock to `at` without expecting any work: the shard
  /// plane's merge barrier re-aligns every per-shard virtual clock to
  /// the round's maximum with this. Events due at or before `at` (there
  /// normally are none — shards drain before merging) still run, so
  /// time never jumps over pending work. Returns the events executed.
  std::size_t advance_to(util::SimTime at) { return run_until(at); }

  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Time of the next live event, if any (real-time drivers sleep until
  /// it). Non-const: discards cancelled entries at the head.
  [[nodiscard]] std::optional<util::SimTime> next_event_time();

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq;  // insertion order breaks ties
    EventFn fn;

    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// Discards cancelled entries at the head; returns whether a live event
  /// remains on top.
  bool settle_head();
  void pop_and_run();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_;  // seq of live (not-yet-run, not-cancelled) events
  util::SimTime now_ = util::SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace garnet::sim
