// Real-time pacing for the discrete-event scheduler.
//
// The simulation itself is virtual-time-only (and deterministic); this
// driver maps virtual time onto the wall clock so interactive runs feel
// live — the paper's own prototype ran against real 802.11b hardware,
// and a deployment of this library would, too. `speed` accelerates
// (e.g. 60.0 replays an hour per minute); events that fall behind the
// wall clock run immediately, so slow hosts degrade to as-fast-as-
// possible rather than drifting.
#pragma once

#include <chrono>
#include <thread>

#include "sim/scheduler.hpp"

namespace garnet::sim {

class RealtimeDriver {
 public:
  explicit RealtimeDriver(Scheduler& scheduler, double speed = 1.0)
      : scheduler_(scheduler), speed_(speed) {}

  /// Runs events for `span` of virtual time, sleeping between events so
  /// virtual time tracks wall time / speed. Returns events executed.
  std::size_t run_for(util::Duration span) {
    const util::SimTime deadline = scheduler_.now() + span;
    const auto wall_start = std::chrono::steady_clock::now();
    const util::SimTime virtual_start = scheduler_.now();
    std::size_t executed = 0;

    for (;;) {
      const auto next = scheduler_.next_event_time();
      const util::SimTime target = next && *next <= deadline ? *next : deadline;

      // Sleep until the wall clock catches up with the target instant.
      const auto virtual_elapsed = target - virtual_start;
      const auto wall_target =
          wall_start + std::chrono::nanoseconds(
                           static_cast<std::int64_t>(static_cast<double>(virtual_elapsed.ns) /
                                                     speed_));
      const auto now = std::chrono::steady_clock::now();
      if (wall_target > now) std::this_thread::sleep_for(wall_target - now);

      if (!next || *next > deadline) break;
      executed += scheduler_.run_until(target);
    }
    scheduler_.run_until(deadline);
    return executed;
  }

 private:
  Scheduler& scheduler_;
  double speed_;
};

}  // namespace garnet::sim
