#include "garnet/report.hpp"

#include <cstdio>

#include "garnet/runtime.hpp"

namespace garnet {

RuntimeReport snapshot(Runtime& runtime) {
  RuntimeReport report;
  report.captured_at = runtime.scheduler().now();
  report.radio = runtime.field().medium().stats();
  report.filtering = runtime.filtering().stats();
  report.dispatch = runtime.dispatch().stats();
  report.qos = runtime.dispatch().subscriptions().qos_stats();
  report.location = runtime.location().stats();
  report.resource = runtime.resource().stats();
  report.replicator = runtime.replicator().stats();
  report.actuation = runtime.actuation().stats();
  report.coordinator = runtime.coordinator().stats();
  report.bus = runtime.bus().stats();
  report.sensors_deployed = runtime.field().sensor_count();
  report.streams_catalogued = runtime.catalog().size();
  report.subscriptions = runtime.dispatch().subscriptions().size();
  report.orphaned_messages = runtime.orphanage().total_received();
  return report;
}

namespace {

void line(std::string& out, const char* label, std::uint64_t value) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "  %-32s %12llu\n", label,
                static_cast<unsigned long long>(value));
  out += buffer;
}

void header(std::string& out, const char* title) {
  out += title;
  out += '\n';
}

}  // namespace

std::string RuntimeReport::render() const {
  std::string out;
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "== Garnet status at t=%.3fs ==\n",
                captured_at.to_seconds());
  out += buffer;

  header(out, "radio");
  line(out, "uplink frames", radio.uplink_frames);
  line(out, "uplink copies delivered", radio.uplink_deliveries);
  line(out, "uplink duplicates", radio.uplink_duplicates);
  line(out, "uplink unheard", radio.uplink_unheard);
  line(out, "frames overheard by relays", radio.overheard);
  line(out, "downlink broadcasts", radio.downlink_broadcasts);

  header(out, "filtering");
  line(out, "copies in", filtering.copies_in);
  line(out, "malformed rejected", filtering.malformed);
  line(out, "duplicates dropped", filtering.duplicates_dropped);
  line(out, "relayed copies", filtering.relayed_copies);
  line(out, "unique messages out", filtering.messages_out);
  line(out, "streams reconstructed", filtering.streams_seen);

  header(out, "dispatch");
  line(out, "messages in", dispatch.messages_in);
  line(out, "derived published", dispatch.derived_in);
  line(out, "copies delivered", dispatch.copies_delivered);
  line(out, "orphaned", dispatch.orphaned);
  line(out, "qos rate-suppressed", qos.suppressed_rate);
  line(out, "qos stale-suppressed", qos.suppressed_stale);
  line(out, "active subscriptions", subscriptions);

  header(out, "location");
  line(out, "observations", location.observations);
  line(out, "hints", location.hints);
  line(out, "queries answered", location.queries_answered);

  header(out, "actuation path");
  line(out, "requests", actuation.requests);
  line(out, "denied", actuation.denied);
  line(out, "frames sent", actuation.sent);
  line(out, "retries", actuation.retries);
  line(out, "acknowledged", actuation.acked);
  line(out, "expired", actuation.expired);
  line(out, "replicator targeted sends", replicator.targeted_sends);
  line(out, "replicator flooded sends", replicator.flooded_sends);

  header(out, "governance");
  line(out, "admissions evaluated", resource.evaluated);
  line(out, "approved", resource.approved);
  line(out, "modified", resource.modified);
  line(out, "denied", resource.denied);
  line(out, "trusted overrides", resource.trusted_overrides);
  line(out, "pre-arm hits", resource.prearm_hits);
  line(out, "coordinator reports", coordinator.reports);
  line(out, "coordinator predictions", coordinator.predictions);
  line(out, "pre-arms issued", coordinator.prearms_issued);
  line(out, "policy changes", coordinator.policy_changes);

  header(out, "inventory");
  line(out, "sensors deployed", sensors_deployed);
  line(out, "streams catalogued", streams_catalogued);
  line(out, "orphaned messages stored", orphaned_messages);
  line(out, "bus envelopes", bus.posted);
  return out;
}

}  // namespace garnet
