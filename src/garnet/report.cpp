#include "garnet/report.hpp"

#include <cmath>
#include <cstdio>

#include "garnet/runtime.hpp"
#include "obs/export.hpp"

namespace garnet {

RuntimeReport snapshot(Runtime& runtime) {
  RuntimeReport report;
  report.captured_at = runtime.scheduler().now();
  report.metrics =
      runtime.telemetry().registry.snapshot(static_cast<std::uint64_t>(report.captured_at.ns));
  report.recent_traces = runtime.telemetry().tracer.completed_snapshot();
  return report;
}

std::uint64_t RuntimeReport::value(std::string_view name, const obs::Labels& labels) const {
  const obs::Sample* sample = metrics.find(name, labels);
  if (sample == nullptr) return 0;
  return static_cast<std::uint64_t>(std::llround(sample->numeric()));
}

namespace {

void line(std::string& out, const char* label, std::uint64_t value) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "  %-32s %12llu\n", label,
                static_cast<unsigned long long>(value));
  out += buffer;
}

void header(std::string& out, const char* title) {
  out += title;
  out += '\n';
}

/// "  deliver  count 42  p50 1.2ms  p99 3.4ms" from a stage histogram.
void latency_line(std::string& out, const char* stage, const obs::HistogramSnapshot& h) {
  char buffer[112];
  std::snprintf(buffer, sizeof buffer, "  %-12s count %10llu   p50 %10.0fns   p99 %10.0fns\n",
                stage, static_cast<unsigned long long>(h.count), h.quantile(0.5),
                h.quantile(0.99));
  out += buffer;
}

}  // namespace

std::string RuntimeReport::render() const {
  std::string out;
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "== Garnet status at t=%.3fs ==\n",
                captured_at.to_seconds());
  out += buffer;

  header(out, "radio");
  line(out, "uplink frames", value("garnet.radio.uplink_frames"));
  line(out, "uplink copies delivered", value("garnet.radio.uplink_deliveries"));
  line(out, "uplink duplicates", value("garnet.radio.uplink_duplicates"));
  line(out, "uplink unheard", value("garnet.radio.uplink_unheard"));
  line(out, "frames overheard by relays", value("garnet.radio.overheard"));
  line(out, "downlink broadcasts", value("garnet.radio.downlink_broadcasts"));

  header(out, "filtering");
  line(out, "copies in", value("garnet.filtering.copies_in"));
  line(out, "malformed rejected", value("garnet.filtering.malformed"));
  line(out, "duplicates dropped", value("garnet.filtering.duplicates_dropped"));
  line(out, "relayed copies", value("garnet.filtering.relayed_copies"));
  line(out, "unique messages out", value("garnet.filtering.messages_out"));
  line(out, "streams reconstructed", value("garnet.filtering.streams_seen"));

  header(out, "dispatch");
  line(out, "messages in", value("garnet.dispatch.messages_in"));
  line(out, "derived published", value("garnet.dispatch.derived_in"));
  line(out, "copies delivered", value("garnet.dispatch.copies_delivered"));
  line(out, "orphaned", value("garnet.dispatch.orphaned"));
  line(out, "qos rate-suppressed", value("garnet.qos.suppressed_rate"));
  line(out, "qos stale-suppressed", value("garnet.qos.suppressed_stale"));
  line(out, "active subscriptions", value("garnet.dispatch.subscriptions"));

  header(out, "location");
  line(out, "observations", value("garnet.location.observations"));
  line(out, "hints", value("garnet.location.hints"));
  line(out, "queries answered", value("garnet.location.queries_answered"));

  header(out, "actuation path");
  line(out, "requests", value("garnet.actuation.requests"));
  line(out, "denied", value("garnet.actuation.denied"));
  line(out, "frames sent", value("garnet.actuation.sent"));
  line(out, "retries", value("garnet.actuation.retries"));
  line(out, "acknowledged", value("garnet.actuation.acked"));
  line(out, "expired", value("garnet.actuation.expired"));
  line(out, "replicator targeted sends", value("garnet.replicator.targeted_sends"));
  line(out, "replicator flooded sends", value("garnet.replicator.flooded_sends"));

  header(out, "governance");
  line(out, "admissions evaluated", value("garnet.resource.evaluated"));
  line(out, "approved", value("garnet.resource.approved"));
  line(out, "modified", value("garnet.resource.modified"));
  line(out, "denied", value("garnet.resource.denied"));
  line(out, "trusted overrides", value("garnet.resource.trusted_overrides"));
  line(out, "pre-arm hits", value("garnet.resource.prearm_hits"));
  line(out, "coordinator reports", value("garnet.coordinator.reports"));
  line(out, "coordinator predictions", value("garnet.coordinator.predictions"));
  line(out, "pre-arms issued", value("garnet.coordinator.prearms_issued"));
  line(out, "policy changes", value("garnet.coordinator.policy_changes"));

  header(out, "inventory");
  line(out, "sensors deployed", value("garnet.field.sensors"));
  line(out, "streams catalogued", value("garnet.catalog.streams"));
  line(out, "orphaned messages stored", value("garnet.orphanage.messages"));
  line(out, "bus envelopes", value("garnet.bus.posted"));

  // Per-stage pipeline latencies, fed by the tracer as spans close.
  bool latency_header = false;
  for (const char* stage : {"radio", "filter", "dispatch", "deliver", "actuation"}) {
    const obs::HistogramSnapshot* h =
        metrics.histogram(obs::kStageLatencyMetric, {{"stage", stage}});
    if (h == nullptr || h->count == 0) continue;
    if (!latency_header) {
      header(out, "stage latency");
      latency_header = true;
    }
    latency_line(out, stage, *h);
  }
  return out;
}

std::string RuntimeReport::to_json() const { return obs::render_json(metrics, recent_traces); }

std::string RuntimeReport::to_prometheus() const { return obs::render_prometheus(metrics); }

}  // namespace garnet
