#include "garnet/pipeline.hpp"

#include <algorithm>

#include "garnet/runtime.hpp"

namespace garnet {

DerivedStage::DerivedStage(Runtime& runtime, const std::string& name,
                           std::vector<core::StreamPattern> inputs, StageTransform transform,
                           const std::string& output_class, core::SubscribeOptions qos)
    : consumer_(runtime.bus(), "consumer.stage." + name), transform_(std::move(transform)) {
  runtime.provision(consumer_, "stage." + name);
  output_ = runtime.create_derived_stream(name, output_class);

  consumer_.set_data_handler([this](const core::DeliveryView& delivery) {
    auto produced = transform_(delivery);
    if (!produced) return;
    ++published_;
    consumer_.publish_derived(output_, std::move(*produced),
                              static_cast<std::uint8_t>(core::HeaderFlag::kFused));
  });
  for (const core::StreamPattern& pattern : inputs) consumer_.subscribe(pattern, qos, {});
}

StageTransform windowed_mean(std::size_t window) {
  return [window, values = std::vector<double>()](const core::DeliveryView& delivery) mutable
         -> std::optional<util::Bytes> {
    util::ByteReader r(delivery.message.payload);
    const double value = r.f64();
    if (!r.ok()) return std::nullopt;
    values.push_back(value);
    if (values.size() < window) return std::nullopt;
    double sum = 0;
    for (const double x : values) sum += x;
    values.clear();
    util::ByteWriter w(8);
    w.f64(sum / static_cast<double>(window));
    return std::move(w).take();
  };
}

StageTransform threshold_alert(double threshold) {
  return [threshold, above = false](const core::DeliveryView& delivery) mutable
         -> std::optional<util::Bytes> {
    util::ByteReader r(delivery.message.payload);
    const double value = r.f64();
    if (!r.ok()) return std::nullopt;
    const bool now_above = value > threshold;
    const bool rising_edge = now_above && !above;
    above = now_above;
    if (!rising_edge) return std::nullopt;
    util::ByteWriter w(8);
    w.f64(value);
    return std::move(w).take();
  };
}

StageTransform windowed_minmaxmean(std::size_t window) {
  return [window, values = std::vector<double>()](const core::DeliveryView& delivery) mutable
         -> std::optional<util::Bytes> {
    util::ByteReader r(delivery.message.payload);
    const double value = r.f64();
    if (!r.ok()) return std::nullopt;
    values.push_back(value);
    if (values.size() < window) return std::nullopt;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    double sum = 0;
    for (const double x : values) sum += x;
    util::ByteWriter w(24);
    w.f64(*lo);
    w.f64(*hi);
    w.f64(sum / static_cast<double>(window));
    values.clear();
    return std::move(w).take();
  };
}

}  // namespace garnet
