#include "garnet/runtime.hpp"

#include <cassert>

namespace garnet {

namespace {

net::MessageBus::Config bus_config(const Runtime::Config& config) {
  net::MessageBus::Config bus = config.bus;
  if (config.faults.enabled()) bus.faults = config.faults;
  // Fold the overload layer in: inbox shapes, breaker contract, journal.
  if (config.overload.default_inbox.active()) bus.default_inbox = config.overload.default_inbox;
  for (const auto& [name, inbox] : config.overload.inboxes) bus.inboxes[name] = inbox;
  if (config.overload.breaker.enabled()) bus.breaker = config.overload.breaker;
  if (config.overload.shed_journal_limit > 0) {
    bus.shed_journal_limit = config.overload.shed_journal_limit;
  }
  // Control-plane app types: actuation/coordination state, location
  // hints, and the flow-control credits themselves — shedding credits
  // under load would deadlock the very mechanism that relieves it.
  bus.control_types.push_back(core::kStateChange);
  bus.control_types.push_back(core::kLocationHint);
  bus.control_types.push_back(core::kDeliveryCredit);
  // Recovery replication is control plane too: shedding checkpoints or
  // op-log records under a data flood would corrupt the very standby
  // that the flood makes more likely to be needed.
  bus.control_types.push_back(core::kCheckpointReplica);
  bus.control_types.push_back(core::kOpLogRecord);
  // Admission's own wire surface is control plane: ticket releases and
  // goodput reports are what let the gate relax, so shedding them under
  // a data flood would lock the pool at its most pessimistic size.
  bus.control_types.push_back(core::kAdmissionRelease);
  bus.control_types.push_back(core::kGoodputReport);
  return bus;
}

}  // namespace

Runtime::Runtime(Config config)
    : config_(config),
      telemetry_(config.trace),
      field_(scheduler_, config.field),
      bus_(scheduler_, bus_config(config)),
      auth_(config.auth),
      filtering_(scheduler_, config.filtering),
      dispatch_(bus_, auth_, catalog_),
      orphanage_(bus_, config.orphanage),
      location_(bus_, auth_, config.location),
      resource_(bus_, auth_, config.resource),
      replicator_(field_.medium(), location_, config.replicator),
      actuation_(bus_, auth_, replicator_, config.actuation),
      coordinator_(bus_, auth_, resource_, config.coordinator),
      catalog_service_(bus_, auth_, catalog_) {
  if (config_.overload.credit_window > 0) {
    core::FlowControlConfig flow;
    flow.credit_window = config_.overload.credit_window;
    flow.resume_threshold = config_.overload.resume_threshold;
    dispatch_.set_flow_control(flow);
  }
  if (config_.admission.enabled) {
    admission_ = std::make_unique<net::AdmissionGate>(config_.admission);
    admission_->set_metrics(telemetry_.registry);
    // Goodput the controller steers on: deliveries that reached a
    // consumer, minus work admitted and then shed downstream anyway
    // (bounded-inbox data sheds + zero-credit quarantine sheds) —
    // admitting more than the pipeline can serve scores zero.
    admission_->set_goodput_source([this](std::uint64_t& delivered, std::uint64_t& wasted) {
      delivered = dispatch_.stats().copies_delivered;
      wasted = bus_.shed_stats().data_total() + dispatch_.stats().quarantine_sheds;
    });
    if (config_.admission.derive_credit_window && config_.overload.credit_window > 0) {
      admission_->set_resize_listener([this](std::uint32_t size) {
        core::FlowControlConfig flow;
        flow.credit_window = size;
        flow.resume_threshold = config_.overload.resume_threshold;
        dispatch_.set_flow_control(flow);
      });
    }
  }
  if (config_.recovery.enabled) {
    recovery_ = std::make_unique<RecoveryHarness>(scheduler_, bus_, config_.recovery);
  }
  if (config_.shard_plane_enabled || config_.shard_plane.shards > 1) {
    ShardPlaneConfig plane = config_.shard_plane;
    if (plane.shards == 0) plane.shards = 1;
    shard_plane_ = std::make_unique<ShardedDispatchPlane>(plane);
    shard_plane_->set_metrics(telemetry_.registry);
    if (recovery_ != nullptr) shard_plane_->register_recovery(*recovery_);
  }
  wire_services();
}

void Runtime::wire_services() {
  // Telemetry: trace spans at every pipeline hop, push-style histograms
  // on the radio and bus, and a pull collector surfacing the services'
  // plain counters through the registry's exposition formats.
  field_.set_tracer(&telemetry_.tracer);
  filtering_.set_tracer(&telemetry_.tracer);
  dispatch_.set_tracer(&telemetry_.tracer);
  actuation_.set_tracer(&telemetry_.tracer);
  field_.medium().set_metrics(telemetry_.registry);
  bus_.set_metrics(telemetry_.registry);
  replicator_.set_metrics(telemetry_.registry);
  telemetry_.registry.add_collector(
      [this](obs::SnapshotBuilder& out) { collect_service_stats(out); });

  // Receivers feed the Filtering Service. A crashed filtering has no
  // process to ingest into: its inputs are counted lost (the radio does
  // not buffer; the sensors keep transmitting regardless).
  field_.medium().set_uplink_sink([this](const wireless::ReceptionReport& report) {
    // Tree traffic is radio substrate, not middleware input: beacons and
    // corrupt tree frames die here (before admission — they must not burn
    // data tickets), and an overheard tree data frame is opportunistically
    // decapsulated so the receiver ingests the inner Figure-2 frame.
    auto decision = wireless::tree::decide_at_sink(report.frame);
    using Verdict = wireless::tree::SinkDecision::Verdict;
    if (decision.verdict == Verdict::kBeacon || decision.verdict == Verdict::kCorrupt) return;
    // Admission gates the door before any middleware work: a refused
    // copy costs the pipeline nothing downstream.
    if (admission_ && !admission_->admit_data(scheduler_.now())) return;
    if (recovery_ && recovery_->crashed("filtering")) {
      recovery_->note_lost_input("filtering");
      return;
    }
    if (decision.verdict == Verdict::kInner) {
      wireless::ReceptionReport inner = report;
      inner.frame = std::move(decision.inner);
      filtering_.ingest(inner);
      return;
    }
    filtering_.ingest(report);
  });

  // Admission's wire surface: peers (remote gateways, external delivery
  // sinks) release tickets early or report goodput the gate cannot see.
  if (admission_ != nullptr) {
    bus_.add_endpoint("admission", [this](net::Envelope envelope) {
      if (envelope.type == core::kAdmissionRelease) {
        admission_->on_wire_release(envelope.payload, scheduler_.now());
      } else if (envelope.type == core::kGoodputReport) {
        admission_->on_wire_goodput(envelope.payload);
      }
    });
  }

  // Filtering feeds Dispatching (unique messages) and Location (copies).
  filtering_.set_message_sink([this](const core::DataMessage& message, util::SimTime heard) {
    if (recovery_ != nullptr) {
      // Log the forwarded (stream, seq) so a promoted filtering replica
      // advances its dedup cursors past everything already delivered.
      util::ByteWriter w(6);
      w.u32(message.stream_id.packed());
      w.u16(message.sequence);
      recovery_->log_op("filtering", core::kFilteringOpSeen, w.view());
      if (recovery_->crashed("dispatch")) {
        // Park the frame in the Orphanage stash; dispatch's post-restart
        // replay_stash() fetches everything past its restored cursors.
        bus_.post(dispatch_.address(), orphanage_.address(), core::kDataDelivery,
                  core::encode_delivery(core::as_view(message), heard));
        return;
      }
    }
    dispatch_.on_filtered(message, heard);
  });
  filtering_.set_reception_sink([this](const core::ReceptionEvent& event) {
    if (recovery_ && recovery_->crashed("location")) {
      recovery_->note_lost_input("location");
      return;
    }
    location_.observe(event);
  });

  if (recovery_ != nullptr) wire_recovery();

  // Wireless churn from the fault plan: relay crash/restart maps to the
  // sensor's own stop()/start() (its router forgets all routing state —
  // crash semantics), beacon loss/restore flips the router deaf. Wired
  // regardless of recovery: relay churn is a radio regime, not a
  // middleware-process failure.
  if (net::FaultInjector* injector = bus_.fault_injector()) {
    injector->set_relay_fault_handler([this](std::uint32_t node, bool restart) {
      wireless::SensorNode* sensor = field_.find_sensor(node);
      if (sensor == nullptr) return;
      if (restart) {
        sensor->start();
      } else {
        sensor->stop();
      }
    });
    injector->set_beacon_fault_handler([this](std::uint32_t node, bool deaf) {
      wireless::SensorNode* sensor = field_.find_sensor(node);
      if (sensor != nullptr && sensor->router() != nullptr) {
        sensor->router()->set_beacon_deaf(deaf);
      }
    });
  }

  // Unclaimed data goes to the Orphanage; observed acks to Actuation.
  dispatch_.set_orphan_sink(orphanage_.address());
  dispatch_.set_ack_observer(
      [this](std::uint32_t request_id, core::SensorId sensor, util::SimTime at) {
        actuation_.on_ack(request_id, sensor, at);
      });

  // Location as a data stream of its own (optional).
  if (config_.publish_location_stream) {
    location_stream_ = catalog_.allocate_derived();
    catalog_.advertise(*location_stream_, "location", "location", /*derived=*/true);
    location_.set_update_sink(
        [this](core::SensorId sensor, const core::LocationEstimate& estimate) {
          publish_location(sensor, estimate);
        });
  }
}

void Runtime::wire_recovery() {
  recovery_->set_metrics(telemetry_.registry);

  // Dispatch streams its subscription/cursor mutations into the
  // replicated op log; the other direction is the promotion replay.
  dispatch_.set_op_sink([this](std::uint16_t kind, util::BytesView payload) {
    recovery_->log_op("dispatch", kind, payload);
  });

  recovery_->manage({
      .name = "filtering",
      .endpoints = {},  // no bus endpoint; fed directly by the radio sink
      .capture = [this] { return filtering_.capture_full(); },
      .restore = [this](util::BytesView state) { return filtering_.restore_state(state); },
      .capture_delta = [this] { return filtering_.capture_delta(); },
      .apply_delta = [this](util::BytesView delta) { return filtering_.apply_delta(delta); },
      .wipe = [this] { filtering_.reset(); },
      .apply_op =
          [this](std::uint16_t kind, util::BytesView payload) {
            if (kind != core::kFilteringOpSeen) return;
            util::ByteReader r(payload);
            const std::uint32_t packed = r.u32();
            const core::SequenceNo seq = r.u16();
            if (r.ok()) filtering_.note_seen(core::StreamId::from_packed(packed), seq);
          },
      .on_restart = {},
  });

  recovery_->manage({
      .name = "dispatch",
      .endpoints = {core::DispatchingService::kEndpointName},
      .capture = [this] { return dispatch_.capture_full(); },
      .restore = [this](util::BytesView state) { return dispatch_.restore_state(state); },
      .capture_delta = [this] { return dispatch_.capture_delta(); },
      .apply_delta = [this](util::BytesView delta) { return dispatch_.apply_delta(delta); },
      .wipe = [this] { dispatch_.reset_state(); },
      .apply_op = [this](std::uint16_t kind,
                         util::BytesView payload) { dispatch_.apply_op(kind, payload); },
      .on_restart = [this] { dispatch_.replay_stash(); },
  });

  // Location and catalog are checkpoint-only: their state is soft
  // (re-learnable from the ongoing stream), so gaps cost accuracy, not
  // correctness, and an op log would buy nothing.
  recovery_->manage({
      .name = "location",
      .endpoints = {core::LocationService::kEndpointName},
      .capture = [this] { return location_.capture_full(); },
      .restore = [this](util::BytesView state) { return location_.restore_state(state); },
      .capture_delta = [this] { return location_.capture_delta(); },
      .apply_delta = [this](util::BytesView delta) { return location_.apply_delta(delta); },
      .wipe = [this] { location_.reset_state(); },
      .apply_op = {},
      .on_restart = [this] { location_.set_receiver_layout(field_.medium().receivers()); },
  });

  recovery_->manage({
      .name = "catalog",
      .endpoints = {core::CatalogService::kEndpointName},
      .capture = [this] { return catalog_.capture_full(); },
      .restore = [this](util::BytesView state) { return catalog_.restore_state(state); },
      .capture_delta = [this] { return catalog_.capture_delta(); },
      .apply_delta = [this](util::BytesView delta) { return catalog_.apply_delta(delta); },
      .wipe = [this] { catalog_.clear(); },
      .apply_op = {},
      .on_restart = {},
  });

  // FaultPlan::crashes fire through the injector into the harness.
  if (net::FaultInjector* injector = bus_.fault_injector()) {
    injector->set_crash_handler([this](const std::string& service, bool restart) {
      if (restart) {
        recovery_->restart(service);
      } else {
        recovery_->crash(service);
      }
    });
  }
}

void Runtime::collect_service_stats(obs::SnapshotBuilder& out) {
  // garnet.radio.* comes from the medium's own collector (set_metrics).

  const wireless::tree::TreeStats tree = field_.tree_stats();
  out.counter("garnet.tree.beacons_sent", tree.beacons_sent);
  out.counter("garnet.tree.attaches", tree.attaches);
  out.counter("garnet.tree.reparents", tree.reparents);
  out.counter("garnet.tree.orphaned", tree.orphan_events);
  out.counter("garnet.tree.forwarded", tree.forwarded);
  out.counter("garnet.tree.proxied", tree.proxied);
  out.counter("garnet.tree.dup_dropped", tree.dup_dropped);
  out.counter("garnet.tree.ttl_dropped", tree.ttl_dropped);
  out.counter("garnet.tree.loop_dropped", tree.loop_dropped);
  out.counter("garnet.tree.buffered", tree.buffered);
  out.counter("garnet.tree.spilled", tree.spilled);
  out.gauge("garnet.tree.depth", static_cast<double>(field_.max_tree_depth()));

  const core::FilteringStats& filtering = filtering_.stats();
  out.counter("garnet.filtering.copies_in", filtering.copies_in);
  out.counter("garnet.filtering.malformed", filtering.malformed);
  out.counter("garnet.filtering.duplicates_dropped", filtering.duplicates_dropped);
  out.counter("garnet.filtering.stale_dropped", filtering.stale_dropped);
  out.counter("garnet.filtering.messages_out", filtering.messages_out);
  out.counter("garnet.filtering.reordered", filtering.reordered);
  out.counter("garnet.filtering.streams_seen", filtering.streams_seen);
  out.counter("garnet.filtering.relayed_copies", filtering.relayed_copies);

  const core::DispatchStats& dispatch = dispatch_.stats();
  out.counter("garnet.runtime.external_in", external_in_);
  out.counter("garnet.dispatch.messages_in", dispatch.messages_in);
  out.counter("garnet.dispatch.derived_in", dispatch.derived_in);
  out.counter("garnet.dispatch.copies_delivered", dispatch.copies_delivered);
  out.counter("garnet.dispatch.orphaned", dispatch.orphaned);
  out.counter("garnet.dispatch.acks_observed", dispatch.acks_observed);
  out.counter("garnet.dispatch.rejected_publishes", dispatch.rejected_publishes);
  out.counter("garnet.dispatch.credits_exhausted", dispatch.credits_exhausted);
  out.counter("garnet.dispatch.quarantines", dispatch.quarantines);
  out.counter("garnet.dispatch.quarantine_sheds", dispatch.quarantine_sheds);
  out.counter("garnet.dispatch.credit_acks", dispatch.credit_acks);
  out.counter("garnet.dispatch.resumes", dispatch.resumes);
  out.counter("garnet.dispatch.resume_redelivered", dispatch.resume_redelivered);
  out.counter("garnet.dispatch.resume_discarded", dispatch.resume_discarded);
  out.counter("garnet.dispatch.resume_returned", dispatch.resume_returned);
  out.counter("garnet.dispatch.recovery_replayed", dispatch.recovery_replayed);
  out.counter("garnet.dispatch.recovery_returned", dispatch.recovery_returned);

  const core::QosStats& qos = dispatch_.subscriptions().qos_stats();
  out.counter("garnet.qos.suppressed_rate", qos.suppressed_rate);
  out.counter("garnet.qos.suppressed_stale", qos.suppressed_stale);

  const core::LocationStats& location = location_.stats();
  out.counter("garnet.location.observations", location.observations);
  out.counter("garnet.location.hints", location.hints);
  out.counter("garnet.location.hints_rejected", location.hints_rejected);
  out.counter("garnet.location.queries", location.queries);
  out.counter("garnet.location.queries_answered", location.queries_answered);

  const core::ResourceStats& resource = resource_.stats();
  out.counter("garnet.resource.evaluated", resource.evaluated);
  out.counter("garnet.resource.approved", resource.approved);
  out.counter("garnet.resource.modified", resource.modified);
  out.counter("garnet.resource.denied", resource.denied);
  out.counter("garnet.resource.trusted_overrides", resource.trusted_overrides);
  out.counter("garnet.resource.prearm_hits", resource.prearm_hits);
  out.counter("garnet.resource.policy_changes", resource.policy_changes);

  // garnet.replicator.* comes from the replicator's own collector.

  const core::ActuationStats& actuation = actuation_.stats();
  out.counter("garnet.actuation.requests", actuation.requests);
  out.counter("garnet.actuation.denied", actuation.denied);
  out.counter("garnet.actuation.sent", actuation.sent);
  out.counter("garnet.actuation.retries", actuation.retries);
  out.counter("garnet.actuation.acked", actuation.acked);
  out.counter("garnet.actuation.expired", actuation.expired);
  out.counter("garnet.actuation.approval_unreachable", actuation.approval_unreachable);

  const core::CoordinatorStats& coordinator = coordinator_.stats();
  out.counter("garnet.coordinator.reports", coordinator.reports);
  out.counter("garnet.coordinator.rejected_reports", coordinator.rejected_reports);
  out.counter("garnet.coordinator.predictions", coordinator.predictions);
  out.counter("garnet.coordinator.prearms_issued", coordinator.prearms_issued);
  out.counter("garnet.coordinator.policy_changes", coordinator.policy_changes);

  // garnet.bus.* comes from the bus's own collector (set_metrics).

  out.gauge("garnet.field.sensors", static_cast<double>(field_.sensor_count()));
  out.gauge("garnet.catalog.streams", static_cast<double>(catalog_.size()));
  out.gauge("garnet.dispatch.subscriptions",
            static_cast<double>(dispatch_.subscriptions().size()));
  out.gauge("garnet.orphanage.messages", static_cast<double>(orphanage_.total_received()));
}

void Runtime::publish_location(core::SensorId sensor, const core::LocationEstimate& estimate) {
  const util::SimTime now = scheduler_.now();
  const auto last = last_location_publish_.find(sensor);
  if (last != last_location_publish_.end() &&
      now - last->second < config_.location_publish_interval) {
    return;
  }
  last_location_publish_[sensor] = now;

  util::ByteWriter w(3 + 8 * 4);
  w.u24(sensor);
  w.f64(estimate.position.x);
  w.f64(estimate.position.y);
  w.f64(estimate.radius_m);
  w.f64(estimate.confidence);

  core::DataMessage message;
  message.header.set(core::HeaderFlag::kDerived);
  message.stream_id = *location_stream_;
  message.sequence = location_sequence_++;
  message.payload = std::move(w).take();
  dispatch_.on_filtered(message, now);
}

void Runtime::inject_external(const core::DataMessageView& message) {
  const util::SimTime now = scheduler_.now();
  if (admission_ && !admission_->admit_data(now)) return;
  ++external_in_;
  if (recovery_ && recovery_->crashed("dispatch")) {
    // Same parking contract as filtered traffic: the stash holds the
    // crash-window frame until dispatch's replay_stash() sweeps it.
    bus_.post(dispatch_.address(), orphanage_.address(), core::kDataDelivery,
              core::encode_delivery(message, now));
    return;
  }
  dispatch_.on_filtered(message, now);
}

void Runtime::deploy_receivers(std::size_t count, double range_m) {
  field_.add_receiver_grid(count, range_m);
  location_.set_receiver_layout(field_.medium().receivers());
}

void Runtime::deploy_transmitters(std::size_t count, double range_m) {
  field_.add_transmitter_grid(count, range_m);
}

void Runtime::deploy_population(const wireless::SensorField::PopulationSpec& spec) {
  field_.add_population(spec);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const auto id = spec.first_id + static_cast<core::SensorId>(i);
    core::SensorProfile profile;
    profile.id = id;
    profile.receive_capable = spec.capabilities.receive_capable;
    profile.constraints[0] = spec.constraints;
    resource_.register_profile(std::move(profile));
  }
}

wireless::SensorNode& Runtime::deploy_sensor(wireless::SensorNode::Config config,
                                             std::unique_ptr<sim::MobilityModel> mobility) {
  core::SensorProfile profile;
  profile.id = config.id;
  profile.receive_capable = config.capabilities.receive_capable;
  for (const wireless::StreamSpec& stream : config.streams) {
    profile.constraints[stream.id] = stream.constraints;
  }
  resource_.register_profile(std::move(profile));
  return field_.add_sensor(std::move(config), std::move(mobility));
}

core::ConsumerIdentity Runtime::provision(core::Consumer& consumer, const std::string& name,
                                          std::uint8_t priority,
                                          std::optional<core::TrustLevel> trust) {
  if (trust) auth_.grant_trust(name, *trust);
  auto identity = auth_.register_consumer(name, consumer.address(), priority);
  assert(identity.ok() && "consumer name already registered");
  consumer.set_identity(identity.value());
  consumer.set_tracer(&telemetry_.tracer);
  consumer.set_metrics(telemetry_.registry);
  return identity.value();
}

void Runtime::deprovision(core::Consumer& consumer) {
  const core::ConsumerToken token = consumer.identity().token;
  auth_.revoke(token);
  dispatch_.drop_consumer(consumer.address());
  resource_.withdraw_consumer(token);
}

core::StreamId Runtime::create_derived_stream(const std::string& name,
                                              const std::string& stream_class) {
  const core::StreamId id = catalog_.allocate_derived();
  catalog_.advertise(id, name, stream_class, /*derived=*/true);
  return id;
}

}  // namespace garnet
