#include "garnet/runtime.hpp"

#include <cassert>

namespace garnet {

Runtime::Runtime(Config config)
    : config_(config),
      field_(scheduler_, config.field),
      bus_(scheduler_, config.bus),
      auth_(config.auth),
      filtering_(scheduler_, config.filtering),
      dispatch_(bus_, auth_, catalog_),
      orphanage_(bus_, config.orphanage),
      location_(bus_, auth_, config.location),
      resource_(bus_, auth_, config.resource),
      replicator_(field_.medium(), location_, config.replicator),
      actuation_(bus_, auth_, resource_, replicator_, config.actuation),
      coordinator_(bus_, auth_, resource_, config.coordinator),
      catalog_service_(bus_, auth_, catalog_) {
  wire_services();
}

void Runtime::wire_services() {
  // Receivers feed the Filtering Service.
  field_.medium().set_uplink_sink(
      [this](const wireless::ReceptionReport& report) { filtering_.ingest(report); });

  // Filtering feeds Dispatching (unique messages) and Location (copies).
  filtering_.set_message_sink([this](const core::DataMessage& message, util::SimTime heard) {
    dispatch_.on_filtered(message, heard);
  });
  filtering_.set_reception_sink(
      [this](const core::ReceptionEvent& event) { location_.observe(event); });

  // Unclaimed data goes to the Orphanage; observed acks to Actuation.
  dispatch_.set_orphan_sink(orphanage_.address());
  dispatch_.set_ack_observer(
      [this](std::uint32_t request_id, core::SensorId sensor, util::SimTime at) {
        actuation_.on_ack(request_id, sensor, at);
      });

  // Location as a data stream of its own (optional).
  if (config_.publish_location_stream) {
    location_stream_ = catalog_.allocate_derived();
    catalog_.advertise(*location_stream_, "location", "location", /*derived=*/true);
    location_.set_update_sink(
        [this](core::SensorId sensor, const core::LocationEstimate& estimate) {
          publish_location(sensor, estimate);
        });
  }
}

void Runtime::publish_location(core::SensorId sensor, const core::LocationEstimate& estimate) {
  const util::SimTime now = scheduler_.now();
  const auto last = last_location_publish_.find(sensor);
  if (last != last_location_publish_.end() &&
      now - last->second < config_.location_publish_interval) {
    return;
  }
  last_location_publish_[sensor] = now;

  util::ByteWriter w(3 + 8 * 4);
  w.u24(sensor);
  w.f64(estimate.position.x);
  w.f64(estimate.position.y);
  w.f64(estimate.radius_m);
  w.f64(estimate.confidence);

  core::DataMessage message;
  message.header.set(core::HeaderFlag::kDerived);
  message.stream_id = *location_stream_;
  message.sequence = location_sequence_++;
  message.payload = std::move(w).take();
  dispatch_.on_filtered(message, now);
}

void Runtime::deploy_receivers(std::size_t count, double range_m) {
  field_.add_receiver_grid(count, range_m);
  location_.set_receiver_layout(field_.medium().receivers());
}

void Runtime::deploy_transmitters(std::size_t count, double range_m) {
  field_.add_transmitter_grid(count, range_m);
}

void Runtime::deploy_population(const wireless::SensorField::PopulationSpec& spec) {
  field_.add_population(spec);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const auto id = spec.first_id + static_cast<core::SensorId>(i);
    core::SensorProfile profile;
    profile.id = id;
    profile.receive_capable = spec.capabilities.receive_capable;
    profile.constraints[0] = spec.constraints;
    resource_.register_profile(std::move(profile));
  }
}

wireless::SensorNode& Runtime::deploy_sensor(wireless::SensorNode::Config config,
                                             std::unique_ptr<sim::MobilityModel> mobility) {
  core::SensorProfile profile;
  profile.id = config.id;
  profile.receive_capable = config.capabilities.receive_capable;
  for (const wireless::StreamSpec& stream : config.streams) {
    profile.constraints[stream.id] = stream.constraints;
  }
  resource_.register_profile(std::move(profile));
  return field_.add_sensor(std::move(config), std::move(mobility));
}

core::ConsumerIdentity Runtime::provision(core::Consumer& consumer, const std::string& name,
                                          std::uint8_t priority,
                                          std::optional<core::TrustLevel> trust) {
  if (trust) auth_.grant_trust(name, *trust);
  auto identity = auth_.register_consumer(name, consumer.address(), priority);
  assert(identity.ok() && "consumer name already registered");
  consumer.set_identity(identity.value());
  return identity.value();
}

void Runtime::deprovision(core::Consumer& consumer) {
  const core::ConsumerToken token = consumer.identity().token;
  auth_.revoke(token);
  dispatch_.drop_consumer(consumer.address());
  resource_.withdraw_consumer(token);
}

core::StreamId Runtime::create_derived_stream(const std::string& name,
                                              const std::string& stream_class) {
  const core::StreamId id = catalog_.allocate_derived();
  catalog_.advertise(id, name, stream_class, /*derived=*/true);
  return id;
}

}  // namespace garnet
