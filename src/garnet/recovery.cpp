#include "garnet/recovery.hpp"

#include <utility>

#include "core/wire_types.hpp"
#include "util/log.hpp"

namespace garnet {

RecoveryHarness::RecoveryHarness(sim::Scheduler& scheduler, net::MessageBus& bus,
                                 RecoveryConfig config)
    : scheduler_(scheduler), bus_(bus), config_(config) {
  primary_ = bus_.add_endpoint(kPrimaryEndpointName, [](net::Envelope) {});
  replica_ = bus_.add_endpoint(kReplicaEndpointName,
                               [this](net::Envelope envelope) { on_replica(std::move(envelope)); });
  arm_heartbeat();
  arm_checkpoint();
}

RecoveryHarness::~RecoveryHarness() {
  scheduler_.cancel(heartbeat_);
  scheduler_.cancel(checkpoint_timer_);
  bus_.remove_endpoint(primary_);
  bus_.remove_endpoint(replica_);
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void RecoveryHarness::manage(Service service) {
  std::string name = service.name;
  services_.emplace(std::move(name), Managed(std::move(service), config_.oplog_capacity));
}

void RecoveryHarness::arm_heartbeat() {
  heartbeat_ = scheduler_.schedule_after(config_.heartbeat_interval, [this] {
    on_heartbeat();
    arm_heartbeat();
  });
}

void RecoveryHarness::arm_checkpoint() {
  checkpoint_timer_ = scheduler_.schedule_after(config_.checkpoint_interval, [this] {
    take_checkpoints();
    arm_checkpoint();
  });
}

void RecoveryHarness::on_heartbeat() {
  for (auto& [name, managed] : services_) {
    if (!managed.is_crashed) continue;
    if (++managed.misses < config_.miss_threshold) continue;
    util::log_info("recovery", "watchdog promoting '%s' after %u misses at t=%.3fs",
                   name.c_str(), managed.misses, scheduler_.now().to_seconds());
    recover(managed, /*promotion=*/true);
  }
}

void RecoveryHarness::take_checkpoints() {
  for (auto& [name, managed] : services_) {
    if (managed.is_crashed || !managed.spec.capture) continue;
    // A delta rides only when the service supports the incremental pair,
    // the config asks for it, and the chain since the last full frame
    // still has room. Everything else — including the first capture and
    // the one right after a recovery — is a full frame.
    const bool incremental = static_cast<bool>(managed.spec.capture_delta) &&
                             static_cast<bool>(managed.spec.apply_delta) &&
                             config_.full_checkpoint_interval > 1;
    const bool want_delta = incremental && !managed.force_full &&
                            managed.deltas_since_full + 1 < config_.full_checkpoint_interval;

    const std::uint64_t base_epoch = managed.epoch;
    core::checkpoint::Header header;
    header.service = name;
    header.epoch = ++managed.epoch;
    header.taken_at = scheduler_.now();

    util::Bytes frame;
    if (want_delta) {
      frame = core::checkpoint::encode_delta(header, base_epoch, managed.spec.capture_delta());
      ++managed.deltas_since_full;
      ++stats_.deltas_taken;
      stats_.delta_bytes_last = frame.size();
    } else {
      frame = core::checkpoint::encode(header, managed.spec.capture());
      managed.deltas_since_full = 0;
      managed.force_full = false;
      ++stats_.checkpoints_taken;
      stats_.checkpoint_bytes_last = frame.size();
    }

    // The watermark is the next lsn the primary will assign: every op
    // below it is already inside this snapshot.
    util::ByteWriter w(2 + name.size() + 8 + 4 + frame.size());
    w.str(name);
    w.u64(managed.next_lsn);
    w.u32(static_cast<std::uint32_t>(frame.size()));
    w.raw(frame);
    bus_.post(primary_, replica_, core::kCheckpointReplica, util::take_shared(std::move(w)));
  }
}

void RecoveryHarness::log_op(const std::string& service, std::uint16_t kind,
                             util::BytesView payload) {
  const auto it = services_.find(service);
  if (it == services_.end()) return;
  Managed& managed = it->second;
  if (managed.is_crashed) return;  // a dead process logs nothing

  const std::uint64_t lsn = managed.next_lsn++;
  util::ByteWriter w(2 + service.size() + 8 + 2 + 2 + payload.size());
  w.str(service);
  w.u64(lsn);
  w.u16(kind);
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.raw(payload);
  bus_.post(primary_, replica_, core::kOpLogRecord, util::take_shared(std::move(w)));
  ++stats_.ops_logged;
}

void RecoveryHarness::on_replica(net::Envelope envelope) {
  util::ByteReader r(envelope.payload.span());
  const std::string name = r.str();
  const auto it = services_.find(name);
  if (!r.ok() || it == services_.end()) return;
  Managed& managed = it->second;

  if (envelope.type == core::kCheckpointReplica) {
    const std::uint64_t watermark = r.u64();
    const std::uint32_t len = r.u32();
    const util::BytesView frame = r.view(len);
    if (!r.ok() || r.remaining() != 0) {
      ++stats_.checkpoints_rejected;
      return;
    }
    // Validate at receipt, not at promotion: a corrupt frame discovered
    // mid-recovery would leave the standby with nothing to restore from.
    const auto decoded = core::checkpoint::decode_any(frame);
    if (!decoded.ok() || decoded.value().header.service != name) {
      ++stats_.checkpoints_rejected;
      return;
    }
    if (decoded.value().kind == core::checkpoint::FrameKind::kFull) {
      managed.checkpoint.assign(frame.begin(), frame.end());
      managed.checkpoint_lsn = watermark;
      managed.deltas.clear();
      managed.chain_epoch = decoded.value().header.epoch;
      managed.log.truncate_through(watermark - 1);
      ++stats_.checkpoints_stored;
    } else {
      // A delta chains only onto the exact frame it was captured
      // against: no stored full frame, or a gap in the epoch sequence
      // (a lost replica envelope), breaks the chain until the next
      // full capture resyncs it.
      if (managed.checkpoint.empty() || decoded.value().base_epoch != managed.chain_epoch) {
        ++stats_.deltas_rejected;
        return;
      }
      managed.deltas.emplace_back(watermark, util::Bytes(frame.begin(), frame.end()));
      managed.chain_epoch = decoded.value().header.epoch;
      managed.log.truncate_through(watermark - 1);
      ++stats_.deltas_stored;
    }
  } else if (envelope.type == core::kOpLogRecord) {
    const std::uint64_t lsn = r.u64();
    const std::uint16_t kind = r.u16();
    const std::uint16_t len = r.u16();
    const util::BytesView payload = r.view(len);
    if (!r.ok() || r.remaining() != 0) return;
    managed.log.append({lsn, kind, util::Bytes(payload.begin(), payload.end())});
    ++stats_.ops_replicated;
  }
}

void RecoveryHarness::crash(const std::string& service) {
  const auto it = services_.find(service);
  if (it == services_.end()) return;
  Managed& managed = it->second;
  if (managed.is_crashed) return;
  managed.is_crashed = true;
  managed.misses = 0;
  managed.crashed_at = scheduler_.now();
  ++stats_.crashes;
  if (managed.spec.wipe) managed.spec.wipe();
  for (const std::string& endpoint : managed.spec.endpoints) {
    bus_.set_endpoint_down(endpoint, true);
  }
  util::log_info("recovery", "service '%s' crash-stopped at t=%.3fs", service.c_str(),
                 scheduler_.now().to_seconds());
}

void RecoveryHarness::restart(const std::string& service) {
  const auto it = services_.find(service);
  if (it == services_.end() || !it->second.is_crashed) return;
  recover(it->second, /*promotion=*/false);
}

bool RecoveryHarness::crashed(const std::string& service) const {
  const auto it = services_.find(service);
  return it != services_.end() && it->second.is_crashed;
}

void RecoveryHarness::note_lost_input(const std::string& service) {
  const auto it = services_.find(service);
  if (it == services_.end()) return;
  ++it->second.inputs_lost;
  ++stats_.inputs_lost;
}

void RecoveryHarness::recover(Managed& managed, bool promotion) {
  // Endpoints first: restore hooks and on_restart may post to them.
  for (const std::string& endpoint : managed.spec.endpoints) {
    bus_.set_endpoint_down(endpoint, false);
  }

  bool restored = false;
  std::uint64_t restored_lsn = 1;
  if (!managed.checkpoint.empty() && managed.spec.restore) {
    const auto decoded = core::checkpoint::decode(managed.checkpoint);
    if (!decoded.ok()) {
      ++stats_.checkpoints_rejected;
    } else if (!managed.spec.restore(decoded.value().state).ok()) {
      ++stats_.checkpoints_rejected;
    } else {
      restored = true;
      restored_lsn = managed.checkpoint_lsn;
      // Stack the delta chain on the full base, oldest first. Each frame
      // was CRC- and epoch-validated at receipt; a frame that still
      // fails here truncates the chain and the op replay below covers
      // the gap from the last good watermark.
      if (managed.spec.apply_delta) {
        for (const auto& [watermark, frame] : managed.deltas) {
          const auto delta = core::checkpoint::decode_any(frame);
          if (!delta.ok() || delta.value().kind != core::checkpoint::FrameKind::kDelta ||
              !managed.spec.apply_delta(delta.value().state).ok()) {
            ++stats_.deltas_rejected;
            break;
          }
          restored_lsn = watermark;
          ++stats_.deltas_applied;
        }
      }
    }
  }

  // Replay: everything at or past the watermark when a checkpoint
  // landed; everything since boot when none did (the bounded log covers
  // early crashes until its capacity is exceeded).
  const std::uint64_t start_lsn = restored ? restored_lsn : 1;
  if (managed.spec.apply_op) {
    for (const core::checkpoint::OpLog::Record& record : managed.log.records()) {
      if (record.lsn < start_lsn) continue;
      managed.spec.apply_op(record.kind, record.payload);
      ++stats_.ops_replayed;
    }
  }

  managed.is_crashed = false;
  managed.misses = 0;
  // The promoted state (base + deltas + op replay) no longer matches
  // what the replica chain describes; re-anchor with a full frame. A
  // grouped service (one shard of a plane) re-anchors its whole group:
  // the plane's slices checkpoint as one logical state.
  managed.force_full = true;
  if (!managed.spec.group.empty()) {
    for (auto& [name, other] : services_) {
      if (other.spec.group == managed.spec.group) other.force_full = true;
    }
  }
  stats_.last_recovery_latency = scheduler_.now() - managed.crashed_at;
  if (promotion) {
    ++stats_.promotions;
  } else {
    ++stats_.rejoins;
  }
  if (managed.spec.on_restart) managed.spec.on_restart();
  util::log_info("recovery", "service '%s' %s at t=%.3fs (latency %.3fms)",
                 managed.spec.name.c_str(), promotion ? "promoted" : "rejoined",
                 scheduler_.now().to_seconds(),
                 static_cast<double>(stats_.last_recovery_latency.ns) / 1e6);
}

void RecoveryHarness::set_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) {
    out.counter("garnet.checkpoint.taken", stats_.checkpoints_taken);
    out.counter("garnet.checkpoint.stored", stats_.checkpoints_stored);
    out.counter("garnet.checkpoint.rejected", stats_.checkpoints_rejected);
    out.gauge("garnet.checkpoint.last_bytes", static_cast<double>(stats_.checkpoint_bytes_last));
    out.counter("garnet.checkpoint.deltas_taken", stats_.deltas_taken);
    out.counter("garnet.checkpoint.deltas_stored", stats_.deltas_stored);
    out.counter("garnet.checkpoint.deltas_rejected", stats_.deltas_rejected);
    out.counter("garnet.checkpoint.deltas_applied", stats_.deltas_applied);
    out.gauge("garnet.checkpoint.delta_last_bytes", static_cast<double>(stats_.delta_bytes_last));
    out.counter("garnet.recovery.ops_logged", stats_.ops_logged);
    out.counter("garnet.recovery.ops_replicated", stats_.ops_replicated);
    out.counter("garnet.recovery.ops_replayed", stats_.ops_replayed);
    out.counter("garnet.recovery.crashes", stats_.crashes);
    out.counter("garnet.recovery.promotions", stats_.promotions);
    out.counter("garnet.recovery.rejoins", stats_.rejoins);
    out.counter("garnet.recovery.inputs_lost", stats_.inputs_lost);
    out.gauge("garnet.recovery.latency_ns",
              static_cast<double>(stats_.last_recovery_latency.ns));
    std::uint64_t down = 0;
    for (const auto& [name, managed] : services_) {
      if (managed.is_crashed) ++down;
      out.counter("garnet.recovery.service_inputs_lost", managed.inputs_lost,
                  {{"service", name}});
    }
    out.gauge("garnet.recovery.crashed", static_cast<double>(down));
  });
}

}  // namespace garnet
