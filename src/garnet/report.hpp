// Operator-facing status report, backed by the telemetry subsystem.
//
// A report is one MetricsSnapshot (every registry instrument plus the
// service counters surfaced by the Runtime's pull collector) together
// with the flight recorder's recent message traces. The same snapshot
// renders three ways: aligned text for terminals, JSON for the bench
// harness, and Prometheus exposition for scrapers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace garnet {

class Runtime;

/// Immutable copy of every service counter and distribution at one
/// instant, plus the most recent completed message traces.
struct RuntimeReport {
  util::SimTime captured_at;
  obs::MetricsSnapshot metrics;
  std::vector<obs::Trace> recent_traces;  ///< Flight recorder, oldest first.

  /// Counter or gauge by metric name (see Runtime::collect_service_stats
  /// for the naming scheme), rounded to integer; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name, const obs::Labels& labels = {}) const;

  /// Multi-section aligned text rendering.
  [[nodiscard]] std::string render() const;
  /// {"captured_at_ns":...,"metrics":[...],"traces":[...]}.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition format v0.0.4.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Captures the current counters of every service in `runtime`.
[[nodiscard]] RuntimeReport snapshot(Runtime& runtime);

}  // namespace garnet
