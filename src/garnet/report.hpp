// Operator-facing status report: one snapshot of every middleware
// service's counters, renderable as aligned text. Examples print it;
// tests assert on the struct; a deployment would export it to metrics.
#pragma once

#include <string>

#include "core/actuation.hpp"
#include "core/coordinator.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "core/location.hpp"
#include "core/replicator.hpp"
#include "core/resource.hpp"
#include "net/bus.hpp"
#include "wireless/radio.hpp"

namespace garnet {

class Runtime;

/// Immutable copy of all service counters at one instant.
struct RuntimeReport {
  util::SimTime captured_at;
  wireless::RadioStats radio;
  core::FilteringStats filtering;
  core::DispatchStats dispatch;
  core::QosStats qos;
  core::LocationStats location;
  core::ResourceStats resource;
  core::ReplicatorStats replicator;
  core::ActuationStats actuation;
  core::CoordinatorStats coordinator;
  net::BusStats bus;
  std::size_t sensors_deployed = 0;
  std::size_t streams_catalogued = 0;
  std::size_t subscriptions = 0;
  std::uint64_t orphaned_messages = 0;

  /// Multi-section aligned text rendering.
  [[nodiscard]] std::string render() const;
};

/// Captures the current counters of every service in `runtime`.
[[nodiscard]] RuntimeReport snapshot(Runtime& runtime);

}  // namespace garnet
