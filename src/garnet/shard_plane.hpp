// Sharded multi-core dispatch plane with a deterministic cross-shard
// merge.
//
// Everything from filtering to delivery used to run on one thread inside
// the deterministic scheduler; the paper sizes Garnet at 2^24 sensors ×
// 256 streams, which no single core serves. This plane partitions the
// dispatch/filtering hot path by StreamKey hash into N *shards*. Each
// shard is a vertical slice of the data plane with its own:
//
//   * virtual clock (sim::Scheduler) — the shard's deterministic world;
//   * fixed-network bus with bounded prioritized inboxes, shed ledger,
//     and shed journal (net/bus.hpp, net/overload.hpp);
//   * FilteringService + DispatchingService with shard-local StreamTable
//     slices (dedup state, cursors, credit ledger);
//   * Orphanage (unclaimed data + the quarantine stash);
//   * checkpoint/delta stream (capture_full / capture_delta per shard).
//
// Shards share no mutable state, so a round of work — every shard
// draining its batch to idle — runs the shards on pinned worker threads
// (sim/worker_pool.hpp) with no locks in the hot path and no barrier
// *inside* the round. Determinism survives the threads because the
// cross-shard effects are merged, not raced:
//
//   * Arrival stamping. Every injected message is stamped with the next
//     tick of a plane-global virtual timeline before it is routed, so a
//     message's arrival time is a function of injection order only —
//     never of shard count or thread interleaving.
//   * Merge barrier. run_round() waits for every shard, then re-aligns
//     all shard clocks to the round's maximum (Scheduler::advance_to)
//     and re-bases the timeline there. Within a shard, event chains are
//     pure functions of arrival times (shard buses run jitter-free), so
//     the merged clock itself is reproducible.
//   * Journal merge. Each shard's shed journal is merged into one
//     sequence under a total order — ascending (virtual time, to, from,
//     type, class, policy), ties broken by shard-local order — so
//     same-seed runs render byte-identical merged journals, and a
//     workload whose endpoints are shard-pure (every endpoint's traffic
//     lives on one shard, e.g. per-stream consumers) renders the *same*
//     journal at any shard count.
//
// At N=1 the plane is exactly the classic single-threaded pipeline:
// shard 0's checkpoint frames are byte-identical to an unsharded
// DispatchingService driven with the same operations (the PR-7 golden
// frames), which is what lets a deployment turn sharding on without a
// wire-visible state change.
//
// Control plane (subscribe/unsubscribe/credits) is routed, not sharded:
// exact patterns go to the owning shard, wildcards fan to every shard,
// and credit replenishment targets the shard whose ledger granted the
// window. Control calls and merged views (journals, stats, checkpoints,
// metrics collection) must run between rounds — the merge barrier is
// the only synchronisation point.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "core/orphanage.hpp"
#include "garnet/recovery.hpp"
#include "net/admission.hpp"
#include "net/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/worker_pool.hpp"
#include "wireless/radio.hpp"

namespace garnet {

struct ShardPlaneConfig {
  /// Data-plane shards. Clamped to at least 1.
  std::uint32_t shards = 1;
  /// Run rounds on pinned worker threads (one per shard). Off = every
  /// shard runs inline on the caller, in shard order — same results,
  /// one core (the execution mode is invisible to the merge products).
  bool use_workers = true;
  bool pin_threads = true;
  /// Virtual-time spacing between consecutive injected arrivals on the
  /// plane-global timeline.
  util::Duration inject_tick = util::Duration::micros(10);
  /// Per-shard bus template: latency, inbox shapes, control types, shed
  /// journal limit. Jitter is forced to zero — shard event chains must
  /// be pure functions of arrival times for the merge to reproduce.
  net::MessageBus::Config bus;
  core::FilteringService::Config filtering;
  core::Orphanage::Config orphanage;
  /// Per-shard credit ledger (dispatch flow control). Window semantics
  /// are per (consumer, shard): a consumer subscribed on two shards
  /// holds two independent windows.
  core::FlowControlConfig flow;
  /// Adaptive admission in front of inject()/ingest(). The gate is
  /// plane-global on purpose: admission decisions are made while
  /// stamping arrivals on the injection timeline — before routing — so
  /// they are a function of injection order only, identical at any
  /// shard count, and probe ticks run at the merge barrier so every
  /// shard's credit window resizes in lockstep between rounds.
  net::AdmissionConfig admission;
};

/// Plane-level consumer handle: one logical consumer, one bus endpoint
/// per shard (delivery for a stream always originates on its owning
/// shard's bus).
using PlaneConsumerId = std::uint32_t;
/// Plane-level subscription handle mapping to one or more shard-local
/// subscriptions (one for exact patterns, N for wildcards).
using PlaneSubscriptionId = std::uint64_t;

class ShardedDispatchPlane {
 public:
  /// Delivery callback. Runs on the owning shard's worker thread during
  /// a round: it may touch that shard (e.g. post a credit ack on the
  /// same bus) but nothing cross-shard. A consumer subscribed on
  /// several shards must tolerate concurrent invocations.
  using Handler = std::function<void(std::uint32_t shard, const net::Envelope& envelope)>;

  explicit ShardedDispatchPlane(ShardPlaneConfig config);
  ~ShardedDispatchPlane();

  ShardedDispatchPlane(const ShardedDispatchPlane&) = delete;
  ShardedDispatchPlane& operator=(const ShardedDispatchPlane&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Owning shard of a stream: splitmix64(packed StreamKey) mod N. A
  /// mixed hash, not the raw packed id — Figure-2 ids are sensor<<8, so
  /// low-bit modulo would alias every sensor onto shard 0.
  [[nodiscard]] std::uint32_t shard_of(core::StreamId id) const noexcept;

  // --- control plane (between rounds only) --------------------------------

  /// Registers `name` as an endpoint on every shard bus.
  PlaneConsumerId add_consumer(const std::string& name, Handler handler);
  [[nodiscard]] net::Address consumer_address(PlaneConsumerId consumer,
                                              std::uint32_t shard) const;

  /// Cross-shard subscribe routing: exact patterns land on the owning
  /// shard's table; wildcards land on every shard (each shard matches
  /// its own slice of the stream space).
  PlaneSubscriptionId subscribe(PlaneConsumerId consumer, core::StreamPattern pattern,
                                core::SubscribeOptions qos = {});
  bool unsubscribe(PlaneSubscriptionId id);
  /// Drops every subscription and flow the consumer holds on any shard.
  std::size_t drop_consumer(PlaneConsumerId consumer);

  /// Cross-shard credit routing: replenishes the consumer's delivery
  /// window on the shard that granted it (a kDeliveryCredit envelope on
  /// that shard's bus, so it rides the same control-class path as any
  /// consumer ack).
  void grant_credits(PlaneConsumerId consumer, std::uint32_t shard, std::uint32_t credits);

  // --- data plane ---------------------------------------------------------

  /// Queues one already-filtered message for its owning shard's
  /// dispatcher (the gateway/archive ingress shape). With admission
  /// enabled the message must first win a data ticket at its would-be
  /// arrival stamp; refused messages are shed at the door without
  /// consuming an injection tick, so accepted arrivals keep identical
  /// stamps at any shard count.
  void inject(const core::DataMessage& message);
  /// Queues one raw receiver copy for its owning shard's filtering
  /// (dedup + reorder run shard-locally). Copies whose frame does not
  /// parse route to shard 0, whose filtering counts them malformed.
  /// Subject to the same admission gate as inject().
  void ingest(const wireless::ReceptionReport& report);

  /// Runs one round: hands every shard its queued batch, drains each
  /// shard to idle (worker pool or inline), then merges — re-aligns all
  /// shard clocks to the round's maximum and re-bases the injection
  /// timeline. Returns total events executed.
  std::size_t run_round();
  /// Rounds until no queued input remains.
  std::size_t run_until_idle();

  // --- merged views (between rounds only) ---------------------------------

  /// The merged virtual clock (every shard sits here after a round).
  [[nodiscard]] util::SimTime now() const;
  [[nodiscard]] util::SimTime shard_now(std::uint32_t shard) const;

  /// Every shard's shed journal, merged under the deterministic total
  /// order (net::shed_merge_before) and rendered with the bus's own
  /// record renderer — same-seed runs compare byte-for-byte.
  [[nodiscard]] std::string merged_shed_journal() const;
  [[nodiscard]] net::ShedStats merged_shed_stats() const;
  [[nodiscard]] core::DispatchStats merged_dispatch_stats() const;
  [[nodiscard]] core::FilteringStats merged_filtering_stats() const;

  // --- checkpoints / recovery ---------------------------------------------

  /// Per-shard checkpoint stream: shard-local full and delta frames
  /// (core/dispatch capture surfaces). At N=1 these are byte-identical
  /// to an unsharded DispatchingService's frames.
  [[nodiscard]] util::Bytes capture_full(std::uint32_t shard);
  [[nodiscard]] util::Bytes capture_delta(std::uint32_t shard);
  [[nodiscard]] util::Status<util::DecodeError> restore(std::uint32_t shard,
                                                        util::BytesView state);

  /// Registers every shard's dispatcher with the harness as
  /// "<prefix>.shard<i>", all under one re-anchor group: each shard
  /// checkpoints on the harness cadence (full/delta per its own dirty
  /// sets), and a promotion of any shard forces the next capture of
  /// *every* shard full, re-anchoring the plane as one logical state.
  void register_recovery(RecoveryHarness& harness,
                         const std::string& prefix = "dispatch-plane");

  // --- telemetry ----------------------------------------------------------

  /// Pull collector exposing, per shard i (label {shard="i"}):
  ///   garnet.shard.msgs        — messages routed to the shard so far;
  ///   garnet.shard.inbox_depth — queued envelopes across its inboxes;
  ///   garnet.shard.merge_lag   — ns the shard's clock trailed the
  ///                              round maximum at the last merge.
  /// Collect between rounds only. Deregistered on destruction.
  void set_metrics(obs::MetricsRegistry& registry);

  // --- per-shard access (tests, benches; between rounds only) -------------

  [[nodiscard]] core::DispatchingService& dispatch(std::uint32_t shard);
  [[nodiscard]] core::FilteringService& filtering(std::uint32_t shard);
  [[nodiscard]] core::Orphanage& orphanage(std::uint32_t shard);
  [[nodiscard]] net::MessageBus& bus(std::uint32_t shard);
  [[nodiscard]] sim::Scheduler& scheduler(std::uint32_t shard);

  /// Plane admission gate; nullptr unless config.admission.enabled.
  /// Journal/stats reads between rounds only.
  [[nodiscard]] net::AdmissionGate* admission() noexcept { return gate_.get(); }

  /// Messages routed to the shard (inject + ingest).
  [[nodiscard]] std::uint64_t processed(std::uint32_t shard) const;
  /// Cumulative thread-CPU ns the shard's worker spent inside rounds —
  /// the shard's critical path (sim::thread_cpu_now_ns discipline).
  [[nodiscard]] std::uint64_t busy_ns(std::uint32_t shard) const;
  /// Inputs queued for the next round, across all shards.
  [[nodiscard]] std::uint64_t pending_inputs() const;

 private:
  struct PendingInput {
    util::SimTime at;
    std::variant<core::DataMessage, wireless::ReceptionReport> input;
  };

  /// One vertical slice of the data plane. Construction order is the
  /// classic pipeline's: scheduler, bus, auth, catalog, filtering,
  /// dispatch, orphanage — so at N=1 every endpoint receives the same
  /// bus address it would in the unsharded wiring.
  struct Shard {
    sim::Scheduler scheduler;
    net::MessageBus bus;
    core::AuthService auth;
    core::StreamCatalog catalog;
    core::FilteringService filtering;
    core::DispatchingService dispatch;
    core::Orphanage orphanage;

    std::vector<PendingInput> pending;
    std::uint64_t processed = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t merge_lag_ns = 0;      ///< Clock lag at the last merge.
    std::size_t last_round_events = 0;   ///< Events executed last round.

    Shard(const net::MessageBus::Config& bus_config,
          const core::FilteringService::Config& filtering_config,
          const core::Orphanage::Config& orphanage_config);
  };

  struct ConsumerEntry {
    std::string name;
    Handler handler;                     ///< Shared by every shard endpoint.
    std::vector<net::Address> address;   ///< [shard] -> endpoint address.
  };

  struct SubscriptionEntry {
    PlaneConsumerId consumer = 0;
    /// (shard, shard-local id) pairs; one for exact, N for wildcard.
    std::vector<std::pair<std::uint32_t, core::SubscriptionId>> parts;
  };

  void run_shard(Shard& shard);
  void merge_round();
  void collect(obs::SnapshotBuilder& out) const;

  ShardPlaneConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Plane-global admission gate (null when disabled). Touched only on
  /// the caller thread: at inject/ingest and at the merge barrier.
  std::unique_ptr<net::AdmissionGate> gate_;
  std::unique_ptr<sim::WorkerPool> pool_;  ///< Null in inline mode.
  std::vector<sim::WorkerPool::Task> round_tasks_;

  /// Plane-global injection timeline: arrival k of the current round is
  /// stamped timeline_ + k * inject_tick, re-based at every merge.
  util::SimTime timeline_;
  std::uint64_t inject_seq_ = 0;

  std::vector<ConsumerEntry> consumers_;
  std::map<PlaneSubscriptionId, SubscriptionEntry> subscriptions_;
  PlaneSubscriptionId next_subscription_ = 1;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet
