#include "garnet/failover.hpp"

#include "util/log.hpp"

namespace garnet {

FilteringFailover::FilteringFailover(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler), config_(config), oplog_(config.oplog_capacity) {
  for (std::size_t i = 0; i < 2; ++i) {
    replicas_[i] = std::make_unique<core::FilteringService>(scheduler, config.filtering);
    replicas_[i]->set_message_sink(
        [this, i](const core::DataMessage& message, util::SimTime first_heard) {
          forward_message(i, message, first_heard);
        });
    replicas_[i]->set_reception_sink(
        [this, i](const core::ReceptionEvent& event) { forward_reception(i, event); });
  }
  arm_watchdog();
  if (config_.mode == Mode::kCold) arm_checkpoint();
}

FilteringFailover::FilteringFailover(sim::Scheduler& scheduler, net::MessageBus& bus,
                                     Config config)
    : FilteringFailover(scheduler, config) {
  primary_node_ = std::make_unique<net::RpcNode>(bus, kPrimaryEndpointName);
  watchdog_node_ = std::make_unique<net::RpcNode>(bus, kWatchdogEndpointName);
  primary_node_->expose_async(
      kPing, [this](net::Address, util::BytesView, net::RpcResponder respond) {
        // A dead primary answers nothing — the watchdog's ping times out,
        // which is exactly how a crashed process looks from the network.
        if (primary_alive_ && !failed_over_) respond(util::Bytes{});
      });
}

FilteringFailover::~FilteringFailover() {
  scheduler_.cancel(watchdog_);
  scheduler_.cancel(checkpoint_timer_);
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void FilteringFailover::set_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) {
    out.counter("garnet.failover.heartbeats", stats_.heartbeats);
    out.counter("garnet.failover.misses", stats_.misses);
    out.counter("garnet.failover.failovers", stats_.failovers);
    out.counter("garnet.failover.suppressed_standby_outputs", stats_.suppressed_standby_outputs);
    out.counter("garnet.failover.lost_in_window", stats_.lost_in_window);
    out.counter("garnet.failover.checkpoints", stats_.checkpoints);
    out.counter("garnet.failover.ops_replayed", stats_.ops_replayed);
    out.gauge("garnet.failover.failed_over", failed_over_ ? 1.0 : 0.0);
    out.gauge("garnet.failover.detection_latency_ns",
              static_cast<double>(stats_.last_detection_latency.ns));
  });
}

void FilteringFailover::set_message_sink(core::FilteringService::MessageSink sink) {
  message_sink_ = std::move(sink);
}

void FilteringFailover::set_reception_sink(core::FilteringService::ReceptionSink sink) {
  reception_sink_ = std::move(sink);
}

void FilteringFailover::ingest(const wireless::ReceptionReport& report) {
  if (failed_over_) {
    // Steady state after promotion: the former standby is the service.
    replicas_[active_]->ingest(report);
    return;
  }

  if (primary_alive_) {
    replicas_[0]->ingest(report);
    // Hot standby shadows every ingest to keep its dedup state current;
    // its outputs are suppressed in forward_message.
    if (config_.mode == Mode::kHot) replicas_[1]->ingest(report);
    return;
  }

  // Detection window: the primary is dead but not yet declared so. The
  // fixed network sees nothing; a hot standby still tracks state so the
  // loss is bounded by the window, a cold one starts blank at promotion.
  ++stats_.lost_in_window;
  if (config_.mode == Mode::kHot) replicas_[1]->ingest(report);
}

void FilteringFailover::kill_primary() {
  if (!primary_alive_) return;
  primary_alive_ = false;
  crashed_at_ = scheduler_.now();
  util::log_info("failover", "filtering primary killed at t=%.3fs",
                 scheduler_.now().to_seconds());
}

const core::FilteringStats& FilteringFailover::active_stats() const {
  return replicas_[active_]->stats();
}

void FilteringFailover::arm_watchdog() {
  watchdog_ = scheduler_.schedule_after(config_.heartbeat_interval, [this] { on_heartbeat(); });
}

void FilteringFailover::arm_checkpoint() {
  checkpoint_timer_ = scheduler_.schedule_after(config_.checkpoint_interval, [this] {
    take_checkpoint();
    arm_checkpoint();
  });
}

void FilteringFailover::take_checkpoint() {
  if (failed_over_ || !primary_alive_) return;  // nobody left to snapshot
  core::checkpoint::Header header;
  header.service = "filtering";
  header.epoch = ++checkpoint_epoch_;
  header.taken_at = scheduler_.now();
  standby_checkpoint_ = core::checkpoint::encode(header, replicas_[0]->capture_state());
  checkpoint_lsn_ = next_lsn_;
  oplog_.truncate_through(next_lsn_ - 1);
  ++stats_.checkpoints;
}

void FilteringFailover::seed_cold_standby() {
  bool restored = false;
  if (!standby_checkpoint_.empty()) {
    const auto decoded = core::checkpoint::decode(standby_checkpoint_);
    if (decoded.ok() && replicas_[active_]->restore_state(decoded.value().state).ok()) {
      restored = true;
    }
  }
  // Replay what the checkpoint missed — or, before the first checkpoint
  // ever lands, everything the primary forwarded since boot.
  const std::uint64_t start_lsn = restored ? checkpoint_lsn_ : 1;
  for (const core::checkpoint::OpLog::Record& record : oplog_.records()) {
    if (record.lsn < start_lsn) continue;
    util::ByteReader r(record.payload);
    const std::uint32_t packed = r.u32();
    const core::SequenceNo seq = r.u16();
    if (!r.ok()) continue;
    replicas_[active_]->note_seen(core::StreamId::from_packed(packed), seq);
    ++stats_.ops_replayed;
  }
}

void FilteringFailover::on_heartbeat() {
  ++stats_.heartbeats;
  if (watchdog_node_) {
    // Bus transport: liveness is whatever the network says it is. The
    // verdict lands in ping_primary's callback, not here.
    if (!failed_over_) ping_primary();
  } else if (primary_alive_ || failed_over_) {
    consecutive_misses_ = 0;
  } else {
    record_miss();
  }
  arm_watchdog();
}

void FilteringFailover::ping_primary() {
  net::CallOptions options;
  // One attempt per heartbeat; the deadline leaves room for the next
  // beat. Retrying here would only blur the miss count.
  options.timeout = config_.heartbeat_interval / 2;
  options.idempotent = true;
  watchdog_node_->call(primary_node_->address(), kPing, {}, options,
                       [this](net::RpcResult result) {
                         if (failed_over_) return;
                         if (result.ok()) {
                           consecutive_misses_ = 0;
                           return;
                         }
                         record_miss();
                       });
}

void FilteringFailover::record_miss() {
  ++stats_.misses;
  if (consecutive_misses_ == 0) first_miss_at_ = scheduler_.now();
  if (++consecutive_misses_ >= config_.miss_threshold) promote();
}

void FilteringFailover::promote() {
  failed_over_ = true;
  active_ = 1 - active_;
  ++stats_.failovers;
  // Cold promotion: seed the blank standby with the primary's last
  // checkpoint + op-log replay so no already-delivered message leaks
  // through its empty dedup windows as a duplicate.
  if (config_.mode == Mode::kCold) seed_cold_standby();
  // A partition promotes without any crash; anchor the detection window
  // at the first missed heartbeat in that case.
  const util::SimTime since = primary_alive_ ? first_miss_at_ : crashed_at_;
  stats_.last_detection_latency = scheduler_.now() - since;
  util::log_info("failover", "standby promoted after %.1fms",
                 stats_.last_detection_latency.to_millis());
}

void FilteringFailover::forward_message(std::size_t source, const core::DataMessage& message,
                                        util::SimTime first_heard) {
  if (source != active_) {
    ++stats_.suppressed_standby_outputs;
    return;
  }
  // Cold mode logs every forwarded (stream, seq) so the standby's
  // promotion seed covers the interval since the last checkpoint.
  if (config_.mode == Mode::kCold && !failed_over_) {
    util::ByteWriter w(6);
    w.u32(message.stream_id.packed());
    w.u16(message.sequence);
    oplog_.append({next_lsn_++, core::kFilteringOpSeen, std::move(w).take()});
  }
  if (message_sink_) message_sink_(message, first_heard);
}

void FilteringFailover::forward_reception(std::size_t source, const core::ReceptionEvent& event) {
  if (source != active_) return;
  if (reception_sink_) reception_sink_(event);
}

}  // namespace garnet
