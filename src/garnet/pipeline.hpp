// Declarative multi-level consumer stages.
//
// Paper §4.2: "Consumer processes may generate further derived data
// streams by performing additional processing on received data. By
// supporting multi-level data consumption where each layer offers
// increasingly enhanced services to successive levels, an arbitrarily
// rich application infrastructure can be assembled."
//
// DerivedStage packages the recurring pattern: subscribe to inputs,
// transform, re-publish on an advertised derived stream. Stages chain
// by subscribing to each other's outputs, building the consumer graph
// the paper describes with a few lines per level:
//
//   DerivedStage smooth(runtime, "smooth", {StreamPattern::all_of(1)},
//                       windowed_mean(8), "smoothed");
//   DerivedStage alarm(runtime, "alarm",
//                      {StreamPattern::exact(smooth.output())},
//                      threshold_alert(25.0), "alert");
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/consumer.hpp"

namespace garnet {

class Runtime;

/// Transform applied to each input delivery. Returning an empty optional
/// publishes nothing for this input (aggregating transforms emit only
/// when their window closes). The delivery is a zero-copy view: its
/// payload aliases the wire buffer and is valid for the call's duration
/// (call to_owned() to keep it longer).
using StageTransform = std::function<std::optional<util::Bytes>(const core::DeliveryView&)>;

class DerivedStage {
 public:
  /// Creates the stage's consumer, allocates + advertises its output
  /// stream, subscribes to every input pattern, and wires the transform.
  DerivedStage(Runtime& runtime, const std::string& name,
               std::vector<core::StreamPattern> inputs, StageTransform transform,
               const std::string& output_class, core::SubscribeOptions qos = {});

  [[nodiscard]] core::StreamId output() const noexcept { return output_; }
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumer_.received(); }
  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] core::Consumer& consumer() noexcept { return consumer_; }

 private:
  core::Consumer consumer_;
  core::StreamId output_;
  StageTransform transform_;
  std::uint64_t published_ = 0;
};

// --- stock transforms --------------------------------------------------------

/// Mean of every `window` consecutive f64 readings.
[[nodiscard]] StageTransform windowed_mean(std::size_t window);

/// Emits the reading when it crosses `threshold` (rising edge only).
[[nodiscard]] StageTransform threshold_alert(double threshold);

/// Emits min/max/mean over each `window` readings as 3 packed f64s.
[[nodiscard]] StageTransform windowed_minmaxmean(std::size_t window);

}  // namespace garnet
