// Garnet runtime: one deployable instance of the whole Figure-1 system.
//
// Owns the virtual clock, the wireless substrate, the fixed-network bus
// and every middleware service, and wires them exactly as the paper's
// architecture diagram shows:
//
//   sensors --radio--> receivers -> Filtering -> Dispatching -> consumers
//                          |             |            +--> Orphanage (unclaimed)
//                          |       (copy metadata)    +--> ack observations
//                          v             v                      |
//                      Location  <---  hints                    v
//   sensors <--radio-- Transmitters <- Replicator <- Actuation <--- Resource Mgr
//                                                                       ^
//                consumers --state changes--> Super Coordinator --------+
//
// Applications normally construct a Runtime, deploy receivers /
// transmitters / sensors, provision consumers, and run the scheduler.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/actuation.hpp"
#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/catalog_service.hpp"
#include "core/consumer.hpp"
#include "core/coordinator.hpp"
#include "core/dispatch.hpp"
#include "core/filtering.hpp"
#include "core/location.hpp"
#include "core/orphanage.hpp"
#include "core/replicator.hpp"
#include "core/resource.hpp"
#include "garnet/recovery.hpp"
#include "garnet/shard_plane.hpp"
#include "net/admission.hpp"
#include "net/bus.hpp"
#include "obs/telemetry.hpp"
#include "sim/scheduler.hpp"
#include "wireless/field.hpp"

namespace garnet {

/// Overload-control knobs folded into the bus and dispatcher at
/// construction. Everything defaults off: a Runtime without an
/// OverloadConfig behaves exactly as before the overload layer existed.
struct OverloadConfig {
  /// Bounded inbox applied to every bus endpoint without an override.
  net::InboxConfig default_inbox;
  /// Per-endpoint inbox overrides, keyed by endpoint name.
  std::map<std::string, net::InboxConfig> inboxes;
  /// Circuit-breaker contract inherited by every RpcNode on the bus.
  net::BreakerConfig breaker;
  /// Dispatch credit window per subscriber; 0 disables backpressure.
  std::uint32_t credit_window = 0;
  /// Credits required before a quarantined consumer resumes (0 = window/2).
  std::uint32_t resume_threshold = 0;
  /// Record the first N shed events in the bus's byte-comparable journal.
  std::size_t shed_journal_limit = 0;
};

class Runtime {
 public:
  struct Config {
    wireless::SensorField::Config field;
    net::MessageBus::Config bus;
    /// Deterministic network chaos (drops, duplicates, delays,
    /// partitions). A non-empty plan here overrides `bus.faults`.
    net::FaultPlan faults;
    /// Overload control (bounded inboxes, breakers, backpressure).
    /// Inbox/breaker fields override their `bus` counterparts.
    OverloadConfig overload;
    /// Adaptive admission control (net/admission.hpp): throughput-probed
    /// ticket pools gating the data-ingest door (radio uplinks and
    /// inject_external). Off by default. When enabled alongside
    /// overload.credit_window and derive_credit_window, the dispatch
    /// credit window tracks the probed data-pool size instead of staying
    /// a hand-tuned constant. Control-plane traffic (heartbeats, breaker
    /// probes, credits) never touches the data pool.
    net::AdmissionConfig admission;
    /// Crash recovery: checkpoints + replicated op-logs for the stateful
    /// services (filtering, dispatch, location, catalog). Off by default;
    /// when enabled, FaultPlan::crashes can kill and revive any of them
    /// mid-run and the harness restores state and replays the gap.
    RecoveryConfig recovery;
    core::AuthService::Config auth;
    core::FilteringService::Config filtering;
    core::Orphanage::Config orphanage;
    core::LocationService::Config location;
    core::ResourceManager::Config resource;
    core::MessageReplicator::Config replicator;
    core::ActuationService::Config actuation;
    core::SuperCoordinator::Config coordinator;
    obs::Tracer::Config trace;

    /// Opt-in multi-core dispatch: a hash-partitioned plane of shard
    /// pipelines beside the classic single-threaded one (embedders route
    /// bulk ingress through it; the radio path is untouched). Enabled by
    /// setting shard_plane.shards > 1, or shard_plane_enabled for N=1.
    ShardPlaneConfig shard_plane;
    bool shard_plane_enabled = false;

    /// Re-publish location estimates as a subscribable derived stream
    /// (paper §2 treats location as "any other data stream").
    bool publish_location_stream = false;
    /// Per-sensor floor between two location-stream messages.
    util::Duration location_publish_interval = util::Duration::seconds(1);
  };

  Runtime() : Runtime(Config{}) {}
  explicit Runtime(Config config);

  // --- deployment helpers -------------------------------------------------

  /// Grid of receivers; re-announces the layout to the Location Service.
  void deploy_receivers(std::size_t count, double range_m);
  void deploy_transmitters(std::size_t count, double range_m);

  /// Adds a random-waypoint population and registers Resource Manager
  /// profiles for it.
  void deploy_population(const wireless::SensorField::PopulationSpec& spec);

  /// Adds one explicit sensor and registers its profile.
  wireless::SensorNode& deploy_sensor(wireless::SensorNode::Config config,
                                      std::unique_ptr<sim::MobilityModel> mobility);

  /// Issues credentials to a consumer (out-of-band provisioning) and
  /// installs them on it. `trust` overrides the auth default when set.
  core::ConsumerIdentity provision(core::Consumer& consumer, const std::string& name,
                                   std::uint8_t priority = 100,
                                   std::optional<core::TrustLevel> trust = std::nullopt);

  /// Allocates + advertises a derived stream for a multi-level consumer.
  core::StreamId create_derived_stream(const std::string& name, const std::string& stream_class);

  /// Tears down a consumer's presence in the middleware: revokes its
  /// token, drops its subscriptions, and withdraws its actuation demands
  /// so mediation stops honouring them. The Consumer object itself stays
  /// usable as a bus endpoint (it simply has no rights left).
  void deprovision(core::Consumer& consumer);

  /// Injects one externally-produced Figure-2 message into the pipeline
  /// at the dispatch stage — the embedding hook for ingress that did not
  /// cross the radio (the garnet-gw socket gateway, replayed archives).
  /// The view's payload may alias the caller's receive buffer; fan-out
  /// re-encodes into the shared delivery frame without a counted copy.
  /// External frames bypass Filtering (the producer's TCP stream is
  /// already loss-free and in order), so no dedup state is touched.
  /// First-heard is stamped "now". With crash recovery enabled and
  /// dispatch down, the frame parks in the Orphanage stash exactly like
  /// filtered traffic, and replay_stash() recovers it after promotion.
  /// With admission enabled, the frame must first win a data ticket;
  /// refused frames are shed at the door (admission stats count them)
  /// and are not counted in external_in().
  void inject_external(const core::DataMessageView& message);

  /// Externally-injected messages accepted so far (inject_external).
  [[nodiscard]] std::uint64_t external_in() const noexcept { return external_in_; }

  // --- execution ------------------------------------------------------------

  void start_sensors() { field_.start_all(); }
  void run_for(util::Duration span) { scheduler_.run_for(span); }
  void run_until_idle() { scheduler_.run(); }

  // --- component access -----------------------------------------------------

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] wireless::SensorField& field() noexcept { return field_; }
  [[nodiscard]] net::MessageBus& bus() noexcept { return bus_; }
  [[nodiscard]] core::AuthService& auth() noexcept { return auth_; }
  [[nodiscard]] core::StreamCatalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] core::FilteringService& filtering() noexcept { return filtering_; }
  [[nodiscard]] core::DispatchingService& dispatch() noexcept { return dispatch_; }
  [[nodiscard]] core::Orphanage& orphanage() noexcept { return orphanage_; }
  [[nodiscard]] core::LocationService& location() noexcept { return location_; }
  [[nodiscard]] core::ResourceManager& resource() noexcept { return resource_; }
  [[nodiscard]] core::MessageReplicator& replicator() noexcept { return replicator_; }
  [[nodiscard]] core::ActuationService& actuation() noexcept { return actuation_; }
  [[nodiscard]] core::SuperCoordinator& coordinator() noexcept { return coordinator_; }
  [[nodiscard]] core::CatalogService& catalog_service() noexcept { return catalog_service_; }
  /// Crash-recovery harness; nullptr unless Config::recovery.enabled.
  [[nodiscard]] RecoveryHarness* recovery() noexcept { return recovery_.get(); }
  /// Admission gate; nullptr unless Config::admission.enabled. Also
  /// reachable over the wire: the runtime registers an "admission" bus
  /// endpoint accepting kAdmissionRelease / kGoodputReport frames.
  [[nodiscard]] net::AdmissionGate* admission() noexcept { return admission_.get(); }
  /// Sharded dispatch plane; nullptr unless Config::shard_plane_enabled
  /// or Config::shard_plane.shards > 1. When recovery is also enabled,
  /// every shard checkpoints under the "dispatch-plane" re-anchor group.
  [[nodiscard]] ShardedDispatchPlane* shard_plane() noexcept { return shard_plane_.get(); }
  /// Metrics registry + message tracer; every service is wired into it.
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return telemetry_; }

  /// Id of the derived stream carrying location updates (when enabled).
  [[nodiscard]] std::optional<core::StreamId> location_stream() const noexcept {
    return location_stream_;
  }

 private:
  void wire_services();
  /// Registers the four stateful services with the recovery harness and
  /// binds the fault injector's crash events to it.
  void wire_recovery();
  void publish_location(core::SensorId sensor, const core::LocationEstimate& estimate);
  /// Pull-collector surfacing every service's plain stats struct.
  void collect_service_stats(obs::SnapshotBuilder& out);

  Config config_;
  obs::Telemetry telemetry_;
  sim::Scheduler scheduler_;
  wireless::SensorField field_;
  net::MessageBus bus_;
  core::AuthService auth_;
  core::StreamCatalog catalog_;
  core::FilteringService filtering_;
  core::DispatchingService dispatch_;
  core::Orphanage orphanage_;
  core::LocationService location_;
  core::ResourceManager resource_;
  core::MessageReplicator replicator_;
  core::ActuationService actuation_;
  core::SuperCoordinator coordinator_;
  core::CatalogService catalog_service_;
  /// Optional admission gate (Config::admission). Declared before the
  /// plane/harness so its resize listener outlives neither.
  std::unique_ptr<net::AdmissionGate> admission_;
  /// Optional multi-core dispatch plane (Config::shard_plane).
  std::unique_ptr<ShardedDispatchPlane> shard_plane_;
  /// Declared after every service it manages: destroyed first, so its
  /// collector/timers never outlive the services its hooks capture.
  std::unique_ptr<RecoveryHarness> recovery_;

  std::optional<core::StreamId> location_stream_;
  std::uint64_t external_in_ = 0;
  core::SequenceNo location_sequence_ = 0;
  std::unordered_map<core::SensorId, util::SimTime> last_location_publish_;
};

}  // namespace garnet
