// Service-level replication for the Filtering Service.
//
// Paper §3: "Service-level parallelism and replication are not
// explicitly featured, although their existence shall be presumed for
// efficiency, data-integrity, and fault-tolerance." This module makes
// that presumption concrete for the service with the most at stake —
// Filtering, whose per-stream dedup state guards the exactly-once
// property — and makes the replication trade-offs measurable:
//
//   * kHot  — primary and standby both ingest every reception report;
//     the standby's outputs are suppressed. Promotion is seamless for
//     dedup state, at 2x ingest cost.
//   * kCold — the standby idles until promoted. Instead of 2x ingest it
//     is seeded at promotion from the primary's latest checkpoint plus a
//     replay of the op log recorded since (core/checkpoint.hpp), so the
//     promoted replica's dedup cursors cover everything the old primary
//     already delivered and no duplicates leak through after failover.
//
// A watchdog heartbeats the primary; after `miss_threshold` consecutive
// misses the standby is promoted. The interval between the crash and the
// promotion is a detection window during which filtered output stops
// (hot) or is lost entirely (cold) — also measurable. Failures are
// injected with kill_primary(), the simulation's stand-in for a crashed
// service process.
//
// Two heartbeat transports:
//   * In-process (scheduler-only ctor): the watchdog inspects the
//     primary's liveness flag directly. Detects crashes only.
//   * Bus (MessageBus ctor): the watchdog is a real RPC client pinging
//     the primary's "garnet.filtering.primary" endpoint; a dead primary
//     simply never answers and the ping times out. This path also
//     detects network partitions between watchdog and primary, so a
//     seeded FaultPlan partition promotes the standby just like a crash.
#pragma once

#include <memory>

#include "core/checkpoint.hpp"
#include "core/filtering.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"

namespace garnet {

/// Watchdog/promotion counters. Surfaced as garnet.failover.* via
/// set_metrics — there is no accessor; tests read registry snapshots.
struct FailoverStats {
  std::uint64_t heartbeats = 0;
  std::uint64_t misses = 0;
  std::uint64_t failovers = 0;
  std::uint64_t suppressed_standby_outputs = 0;  ///< Hot-standby duplicates dropped.
  std::uint64_t lost_in_window = 0;              ///< Copies ingested while headless.
  std::uint64_t checkpoints = 0;    ///< Cold-mode snapshots of the primary.
  std::uint64_t ops_replayed = 0;   ///< Op-log records replayed at promotion.
  util::Duration last_detection_latency{0};      ///< Crash -> promotion.
};

class FilteringFailover {
 public:
  enum class Mode : std::uint8_t { kHot, kCold };

  /// The primary's liveness probe endpoint (bus transport only).
  static constexpr const char* kPrimaryEndpointName = "garnet.filtering.primary";
  static constexpr const char* kWatchdogEndpointName = "garnet.filtering.watchdog";
  enum Method : net::MethodId {
    kPing = 1,  ///< [] -> [] while the primary lives; no answer when dead.
  };

  struct Config {
    Mode mode = Mode::kHot;
    util::Duration heartbeat_interval = util::Duration::millis(100);
    std::uint32_t miss_threshold = 3;
    /// Cold mode: how often the primary's dedup state is checkpointed
    /// for the standby's promotion seed.
    util::Duration checkpoint_interval = util::Duration::millis(250);
    /// Cold mode: bound on ops retained between checkpoints.
    std::size_t oplog_capacity = 4096;
    core::FilteringService::Config filtering;
  };

  FilteringFailover(sim::Scheduler& scheduler, Config config);
  /// Bus transport: the watchdog pings over `bus` and therefore also
  /// notices partitions injected by the bus's FaultPlan.
  FilteringFailover(sim::Scheduler& scheduler, net::MessageBus& bus, Config config);
  ~FilteringFailover();

  FilteringFailover(const FilteringFailover&) = delete;
  FilteringFailover& operator=(const FilteringFailover&) = delete;

  /// Same surface as FilteringService, so the runtime can wire either.
  void set_message_sink(core::FilteringService::MessageSink sink);
  void set_reception_sink(core::FilteringService::ReceptionSink sink);
  void ingest(const wireless::ReceptionReport& report);

  /// Failure injection: the primary stops responding (and stops
  /// processing). The watchdog notices within
  /// heartbeat_interval * miss_threshold.
  void kill_primary();

  /// Registers a pull collector exposing garnet.failover.heartbeats/
  /// misses/failovers/suppressed_standby_outputs/lost_in_window counters
  /// plus the garnet.failover.failed_over and detection_latency_ns
  /// gauges. Deregistered automatically on destruction (the registry
  /// must outlive the failover pair).
  void set_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] bool failed_over() const noexcept { return failed_over_; }
  /// Counters of whichever replica is currently active.
  [[nodiscard]] const core::FilteringStats& active_stats() const;

 private:
  void arm_watchdog();
  void arm_checkpoint();
  void take_checkpoint();
  void seed_cold_standby();
  void on_heartbeat();
  void ping_primary();
  void record_miss();
  void promote();
  void forward_message(std::size_t source, const core::DataMessage& message,
                       util::SimTime first_heard);
  void forward_reception(std::size_t source, const core::ReceptionEvent& event);

  sim::Scheduler& scheduler_;
  Config config_;
  std::unique_ptr<core::FilteringService> replicas_[2];
  std::size_t active_ = 0;
  bool primary_alive_ = true;
  bool failed_over_ = false;
  std::uint32_t consecutive_misses_ = 0;
  util::SimTime crashed_at_;
  util::SimTime first_miss_at_;  ///< Detection anchor when nobody crashed (partition).
  sim::EventId watchdog_;
  // Cold-mode promotion seed: the primary's latest checkpoint frame plus
  // the op log of messages it forwarded since (core/checkpoint.hpp).
  sim::EventId checkpoint_timer_;
  util::Bytes standby_checkpoint_;
  std::uint64_t checkpoint_epoch_ = 0;
  std::uint64_t checkpoint_lsn_ = 1;  ///< Ops < this are inside the checkpoint.
  std::uint64_t next_lsn_ = 1;
  core::checkpoint::OpLog oplog_;
  /// Bus transport (null in in-process mode).
  std::unique_ptr<net::RpcNode> primary_node_;
  std::unique_ptr<net::RpcNode> watchdog_node_;
  core::FilteringService::MessageSink message_sink_;
  core::FilteringService::ReceptionSink reception_sink_;
  FailoverStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet
