#include "garnet/shard_plane.hpp"

#include <algorithm>
#include <utility>

#include "core/wire_types.hpp"
#include "util/rng.hpp"

namespace garnet {
namespace {

/// splitmix64 finaliser over the packed StreamKey. The packed id is
/// sensor<<8|tag, so taking it modulo a power-of-two shard count would
/// select on the tag bits alone and alias every single-stream sensor
/// onto shard 0; the mix spreads every key bit into the low word.
[[nodiscard]] std::uint64_t mix_stream_key(std::uint32_t packed) {
  std::uint64_t state = packed;
  return util::splitmix64(state);
}

[[nodiscard]] net::MessageBus::Config shard_bus_config(const ShardPlaneConfig& config) {
  net::MessageBus::Config bus = config.bus;
  // Shard event chains must be pure functions of arrival times for the
  // merge barrier to reproduce clocks across shard counts: the bus's
  // jitter stream advances once per post, in post order, which varies
  // with the partition.
  bus.max_jitter = util::Duration::nanos(0);
  const auto is_credit = [](net::MessageType t) { return t == core::kDeliveryCredit; };
  if (std::none_of(bus.control_types.begin(), bus.control_types.end(), is_credit)) {
    bus.control_types.push_back(core::kDeliveryCredit);
  }
  return bus;
}

}  // namespace

ShardedDispatchPlane::Shard::Shard(const net::MessageBus::Config& bus_config,
                                   const core::FilteringService::Config& filtering_config,
                                   const core::Orphanage::Config& orphanage_config)
    : bus(scheduler, bus_config),
      auth(core::AuthService::Config{}),
      catalog(),
      filtering(scheduler, filtering_config),
      dispatch(bus, auth, catalog),
      orphanage(bus, orphanage_config) {}

ShardedDispatchPlane::ShardedDispatchPlane(ShardPlaneConfig config)
    : config_(std::move(config)), timeline_(util::SimTime::zero()) {
  if (config_.shards == 0) config_.shards = 1;
  const net::MessageBus::Config bus_config = shard_bus_config(config_);
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(bus_config, config_.filtering, config_.orphanage);
    Shard& s = *shard;
    s.filtering.set_message_sink([&s](const core::DataMessage& message,
                                      util::SimTime first_heard) {
      s.dispatch.on_filtered(message, first_heard);
    });
    s.dispatch.set_orphan_sink(s.orphanage.address());
    s.dispatch.set_flow_control(config_.flow);
    shards_.push_back(std::move(shard));
  }
  if (config_.admission.enabled) {
    gate_ = std::make_unique<net::AdmissionGate>(config_.admission);
    // Merged sums are N-invariant at tick time: ticks run on the caller
    // thread while every shard is quiescent (inject phase or the merge
    // barrier), and a round drains all shards before the next tick, so
    // the sums only ever reflect whole completed rounds.
    gate_->set_goodput_source([this](std::uint64_t& delivered, std::uint64_t& wasted) {
      delivered = 0;
      wasted = 0;
      for (const auto& shard : shards_) {
        delivered += shard->dispatch.stats().copies_delivered;
        wasted += shard->bus.shed_stats().data_total() +
                  shard->dispatch.stats().quarantine_sheds;
      }
    });
    if (config_.admission.derive_credit_window && config_.flow.enabled()) {
      // Every shard's credit ledger resizes to the probed pool size in
      // the same probe tick — lockstep by construction.
      gate_->set_resize_listener([this](std::uint32_t size) {
        core::FlowControlConfig flow = config_.flow;
        flow.credit_window = size;
        for (auto& shard : shards_) shard->dispatch.set_flow_control(flow);
      });
    }
  }
  if (config_.use_workers && config_.shards > 1) {
    sim::WorkerPool::Config pool;
    pool.workers = config_.shards;
    pool.pin_threads = config_.pin_threads;
    pool_ = std::make_unique<sim::WorkerPool>(pool);
  }
  round_tasks_.reserve(shards_.size());
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    round_tasks_.push_back([this, s] { run_shard(*s); });
  }
}

ShardedDispatchPlane::~ShardedDispatchPlane() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

std::uint32_t ShardedDispatchPlane::shard_of(core::StreamId id) const noexcept {
  return static_cast<std::uint32_t>(mix_stream_key(id.packed()) % shards_.size());
}

PlaneConsumerId ShardedDispatchPlane::add_consumer(const std::string& name, Handler handler) {
  const auto id = static_cast<PlaneConsumerId>(consumers_.size());
  ConsumerEntry entry;
  entry.name = name;
  entry.handler = std::move(handler);
  entry.address.reserve(shards_.size());
  for (std::uint32_t shard = 0; shard < shard_count(); ++shard) {
    // Every shard bus gets the same logical endpoint; the wrapper tags
    // deliveries with the shard so the handler knows which slice of the
    // plane it is running on (and which bus a credit ack belongs to).
    entry.address.push_back(shards_[shard]->bus.add_endpoint(
        name, [this, id, shard](net::Envelope envelope) {
          consumers_[id].handler(shard, std::move(envelope));
        }));
  }
  consumers_.push_back(std::move(entry));
  return id;
}

net::Address ShardedDispatchPlane::consumer_address(PlaneConsumerId consumer,
                                                    std::uint32_t shard) const {
  return consumers_.at(consumer).address.at(shard);
}

PlaneSubscriptionId ShardedDispatchPlane::subscribe(PlaneConsumerId consumer,
                                                    core::StreamPattern pattern,
                                                    core::SubscribeOptions qos) {
  SubscriptionEntry entry;
  entry.consumer = consumer;
  if (pattern.is_exact()) {
    const std::uint32_t shard = shard_of({*pattern.sensor, *pattern.stream});
    entry.parts.emplace_back(
        shard, shards_[shard]->dispatch.subscribe(consumer_address(consumer, shard),
                                                  pattern, qos));
  } else {
    // A wildcard's matching streams hash across every shard; each shard
    // installs the pattern against its own slice of the stream space.
    for (std::uint32_t shard = 0; shard < shard_count(); ++shard) {
      entry.parts.emplace_back(
          shard, shards_[shard]->dispatch.subscribe(consumer_address(consumer, shard),
                                                    pattern, qos));
    }
  }
  const PlaneSubscriptionId id = next_subscription_++;
  subscriptions_.emplace(id, std::move(entry));
  return id;
}

bool ShardedDispatchPlane::unsubscribe(PlaneSubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return false;
  for (const auto& [shard, sub] : it->second.parts) {
    shards_[shard]->dispatch.unsubscribe(sub);
  }
  subscriptions_.erase(it);
  return true;
}

std::size_t ShardedDispatchPlane::drop_consumer(PlaneConsumerId consumer) {
  std::size_t dropped = 0;
  for (std::uint32_t shard = 0; shard < shard_count(); ++shard) {
    dropped += shards_[shard]->dispatch.drop_consumer(consumer_address(consumer, shard));
  }
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    it = it->second.consumer == consumer ? subscriptions_.erase(it) : std::next(it);
  }
  return dropped;
}

void ShardedDispatchPlane::grant_credits(PlaneConsumerId consumer, std::uint32_t shard,
                                         std::uint32_t credits) {
  // The replenishment rides the owning shard's bus as a control-class
  // envelope — identical to what core::Consumer::send_credit posts — so
  // it shares fate (latency, inbox policy) with real consumer acks.
  Shard& s = *shards_[shard];
  util::ByteWriter w(4);
  w.u32(credits);
  s.bus.post(consumer_address(consumer, shard), s.dispatch.address(), core::kDeliveryCredit,
             util::take_shared(std::move(w)));
}

void ShardedDispatchPlane::inject(const core::DataMessage& message) {
  // Admission runs at the message's would-be arrival stamp, before the
  // stamp is consumed: a refused message leaves the timeline untouched,
  // so the accepted arrivals' stamps — and everything downstream of
  // them — are identical at any shard count.
  const util::SimTime at =
      timeline_ + config_.inject_tick * static_cast<std::int64_t>(inject_seq_ + 1);
  if (gate_ && !gate_->admit_data(at)) return;
  ++inject_seq_;
  Shard& s = *shards_[shard_of(message.stream_id)];
  s.pending.push_back(PendingInput{at, message});
  ++s.processed;
}

void ShardedDispatchPlane::ingest(const wireless::ReceptionReport& report) {
  // Route by the frame's stream id (a header peek, checksum deferred to
  // the shard's filtering). Frames that do not parse cannot name an
  // owner; shard 0 adopts them and its filtering counts them malformed.
  std::uint32_t shard = 0;
  const auto decoded =
      core::decode_view(util::BytesView(report.frame), core::ChecksumPolicy::kTrusted);
  if (decoded.ok()) shard = shard_of(decoded.value().stream_id);
  const util::SimTime at =
      timeline_ + config_.inject_tick * static_cast<std::int64_t>(inject_seq_ + 1);
  if (gate_ && !gate_->admit_data(at)) return;
  ++inject_seq_;
  Shard& s = *shards_[shard];
  s.pending.push_back(PendingInput{at, report});
  ++s.processed;
}

void ShardedDispatchPlane::run_shard(Shard& shard) {
  const std::uint64_t start = sim::thread_cpu_now_ns();
  std::vector<PendingInput> batch = std::move(shard.pending);
  shard.pending.clear();
  for (auto& input : batch) {
    if (auto* message = std::get_if<core::DataMessage>(&input.input)) {
      shard.scheduler.schedule_at(
          input.at, [&shard, msg = std::move(*message), at = input.at] {
            shard.dispatch.on_filtered(msg, at);
          });
    } else {
      shard.scheduler.schedule_at(
          input.at,
          [&shard, report = std::move(std::get<wireless::ReceptionReport>(input.input))] {
            shard.filtering.ingest(report);
          });
    }
  }
  shard.last_round_events = shard.scheduler.run();
  shard.busy_ns += sim::thread_cpu_now_ns() - start;
}

std::size_t ShardedDispatchPlane::run_round() {
  if (pool_ != nullptr) {
    pool_->run(round_tasks_);
  } else {
    for (auto& task : round_tasks_) task();
  }
  std::size_t executed = 0;
  for (const auto& shard : shards_) executed += shard->last_round_events;
  merge_round();
  return executed;
}

std::size_t ShardedDispatchPlane::run_until_idle() {
  std::size_t executed = 0;
  while (pending_inputs() > 0) executed += run_round();
  return executed;
}

void ShardedDispatchPlane::merge_round() {
  // The merged clock is the maximum over the shards' post-drain clocks.
  // For a given workload that maximum is a function of arrival stamps
  // and per-shard latency chains only — not of the partition — which is
  // what keeps the timeline (and so the next round's stamps) invariant
  // across shard counts.
  util::SimTime merged = timeline_;
  for (const auto& shard : shards_) merged = std::max(merged, shard->scheduler.now());
  for (auto& shard : shards_) {
    const util::SimTime at = shard->scheduler.now();
    shard->merge_lag_ns = static_cast<std::uint64_t>((merged - at).ns);
    shard->last_round_events += shard->scheduler.advance_to(merged);
  }
  timeline_ = merged;
  inject_seq_ = 0;
  // Probe ticks fire here, at the merge barrier: the merged clock is
  // partition-invariant, the goodput sums cover whole rounds, and any
  // credit-window resize lands on every shard before the next round.
  if (gate_) gate_->advance(timeline_);
}

util::SimTime ShardedDispatchPlane::now() const { return timeline_; }

util::SimTime ShardedDispatchPlane::shard_now(std::uint32_t shard) const {
  return shards_.at(shard)->scheduler.now();
}

std::string ShardedDispatchPlane::merged_shed_journal() const {
  std::vector<const net::ShedRecord*> records;
  for (const auto& shard : shards_) {
    for (const auto& record : shard->bus.shed_journal()) records.push_back(&record);
  }
  // stable_sort under the cross-shard total order: records that compare
  // equal keep concatenation (shard-index, then shard-local) order, so
  // the rendering is reproducible even for byte-identical sheds.
  std::stable_sort(records.begin(), records.end(),
                   [](const net::ShedRecord* a, const net::ShedRecord* b) {
                     return net::shed_merge_before(*a, *b);
                   });
  std::string out;
  for (const net::ShedRecord* record : records) out += net::render_shed_record(*record);
  return out;
}

net::ShedStats ShardedDispatchPlane::merged_shed_stats() const {
  net::ShedStats merged;
  for (const auto& shard : shards_) merged += shard->bus.shed_stats();
  return merged;
}

core::DispatchStats ShardedDispatchPlane::merged_dispatch_stats() const {
  core::DispatchStats merged;
  for (const auto& shard : shards_) merged += shard->dispatch.stats();
  return merged;
}

core::FilteringStats ShardedDispatchPlane::merged_filtering_stats() const {
  core::FilteringStats merged;
  for (const auto& shard : shards_) merged += shard->filtering.stats();
  return merged;
}

util::Bytes ShardedDispatchPlane::capture_full(std::uint32_t shard) {
  return shards_.at(shard)->dispatch.capture_full();
}

util::Bytes ShardedDispatchPlane::capture_delta(std::uint32_t shard) {
  return shards_.at(shard)->dispatch.capture_delta();
}

util::Status<util::DecodeError> ShardedDispatchPlane::restore(std::uint32_t shard,
                                                              util::BytesView state) {
  return shards_.at(shard)->dispatch.restore_state(state);
}

void ShardedDispatchPlane::register_recovery(RecoveryHarness& harness,
                                             const std::string& prefix) {
  for (std::uint32_t i = 0; i < shard_count(); ++i) {
    Shard& s = *shards_[i];
    RecoveryHarness::Service spec;
    spec.name = prefix + ".shard" + std::to_string(i);
    spec.group = prefix;
    // The shard's endpoints live on its own bus, not the harness's, so
    // there is nothing to silence here; a crash is modelled as the
    // wipe + restore cycle on the shard's dispatcher state.
    spec.capture = [this, i] { return capture_full(i); };
    spec.capture_delta = [this, i] { return capture_delta(i); };
    spec.apply_delta = [&s](util::BytesView delta) { return s.dispatch.apply_delta(delta); };
    spec.restore = [this, i](util::BytesView state) { return restore(i, state); };
    spec.wipe = [&s] { s.dispatch.reset_state(); };
    spec.apply_op = [&s](std::uint16_t kind, util::BytesView payload) {
      s.dispatch.apply_op(kind, payload);
    };
    spec.on_restart = [&s] { s.dispatch.replay_stash(); };
    const std::string name = spec.name;
    harness.manage(std::move(spec));
    s.dispatch.set_op_sink([&harness, name](std::uint16_t kind, util::BytesView payload) {
      harness.log_op(name, kind, payload);
    });
  }
}

void ShardedDispatchPlane::set_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) { collect(out); });
  if (gate_) gate_->set_metrics(registry);
}

void ShardedDispatchPlane::collect(obs::SnapshotBuilder& out) const {
  for (std::uint32_t i = 0; i < shard_count(); ++i) {
    const Shard& s = *shards_[i];
    const obs::Labels labels{{"shard", std::to_string(i)}};
    out.counter("garnet.shard.msgs", s.processed, labels);
    out.gauge("garnet.shard.inbox_depth", static_cast<double>(s.bus.total_inbox_depth()),
              labels);
    out.gauge("garnet.shard.merge_lag", static_cast<double>(s.merge_lag_ns), labels);
  }
}

core::DispatchingService& ShardedDispatchPlane::dispatch(std::uint32_t shard) {
  return shards_.at(shard)->dispatch;
}

core::FilteringService& ShardedDispatchPlane::filtering(std::uint32_t shard) {
  return shards_.at(shard)->filtering;
}

core::Orphanage& ShardedDispatchPlane::orphanage(std::uint32_t shard) {
  return shards_.at(shard)->orphanage;
}

net::MessageBus& ShardedDispatchPlane::bus(std::uint32_t shard) {
  return shards_.at(shard)->bus;
}

sim::Scheduler& ShardedDispatchPlane::scheduler(std::uint32_t shard) {
  return shards_.at(shard)->scheduler;
}

std::uint64_t ShardedDispatchPlane::processed(std::uint32_t shard) const {
  return shards_.at(shard)->processed;
}

std::uint64_t ShardedDispatchPlane::busy_ns(std::uint32_t shard) const {
  return shards_.at(shard)->busy_ns;
}

std::uint64_t ShardedDispatchPlane::pending_inputs() const {
  std::uint64_t pending = 0;
  for (const auto& shard : shards_) pending += shard->pending.size();
  return pending;
}

}  // namespace garnet
