// Service-agnostic crash recovery: checkpoints + replicated op-log.
//
// Generalises the FilteringFailover experiment (garnet/failover.hpp) into
// the harness the paper's presumption of "service-level ... replication
// ... for efficiency, data-integrity, and fault-tolerance" (§3) demands
// for *every* stateful service. Each managed service registers four
// hooks — capture, restore, wipe, and (optionally) apply_op/on_restart —
// and the harness does the rest:
//
//   * On a checkpoint cadence, the primary's state is captured into a
//     core/checkpoint frame and replicated to a standby endpoint over
//     the bus as a control-class kCheckpointReplica envelope. With
//     full_checkpoint_interval > 1 and a service that provides the
//     capture_delta/apply_delta hooks, most frames are *deltas* — only
//     the state dirtied since the previous capture — chained on the
//     last full frame by epoch; the replica CRC-validates every frame
//     at receipt and refuses deltas whose base epoch does not match
//     its chain head (a lost frame breaks the chain until the next
//     full capture resyncs it).
//   * Between checkpoints, logged mutations stream to the standby as
//     kOpLogRecord envelopes into a bounded core::checkpoint::OpLog.
//   * A crash (injected by net::FaultPlan::crashes or called directly)
//     wipes the service's volatile state and marks its bus endpoints
//     down — peers keep posting, the bus counts and discards.
//   * A heartbeat watchdog notices the dead service after
//     miss_threshold beats and *promotes*: restore the latest replica
//     checkpoint, replay ops at or past its watermark, bring endpoints
//     back up, and run the service's on_restart hook (e.g. dispatch
//     replays stashed deliveries; location re-learns receiver layout).
//     A scheduled restart does the same immediately (rejoin).
//
// Replication rides the same bus as everything else, so checkpoints and
// ops are subject to the configured latency — a standby is always a
// little behind, which is exactly the gap the op-log replay closes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "net/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace garnet {

struct RecoveryConfig {
  bool enabled = false;
  /// Watchdog beat; a crashed service is promoted after miss_threshold
  /// consecutive beats find it dead.
  util::Duration heartbeat_interval = util::Duration::millis(100);
  std::uint32_t miss_threshold = 3;
  /// Checkpoint cadence per managed service. Longer intervals mean more
  /// ops to replay at promotion; shorter intervals cost capture time.
  util::Duration checkpoint_interval = util::Duration::millis(250);
  /// Every Nth checkpoint is a full frame; the N-1 between are delta
  /// frames carrying only state dirtied since the previous capture
  /// (services must provide the capture_delta/apply_delta hooks; ones
  /// that don't always get full frames). 1 disables deltas entirely.
  std::uint32_t full_checkpoint_interval = 1;
  /// Replicated op-log bound per service (oldest evicted first).
  std::size_t oplog_capacity = 4096;
};

/// Recovery counters. Surfaced as garnet.recovery.* / garnet.checkpoint.*
/// via set_metrics — tests read registry snapshots.
struct RecoveryStats {
  std::uint64_t checkpoints_taken = 0;     ///< Full frames captured on the primary.
  std::uint64_t checkpoints_stored = 0;    ///< Full frames accepted by the replica.
  std::uint64_t checkpoints_rejected = 0;  ///< Frames failing decode/restore.
  std::uint64_t checkpoint_bytes_last = 0;
  std::uint64_t deltas_taken = 0;    ///< Delta frames captured on the primary.
  std::uint64_t deltas_stored = 0;   ///< Delta frames chained by the replica.
  std::uint64_t deltas_rejected = 0; ///< Deltas refused (no base / epoch skew / CRC).
  std::uint64_t deltas_applied = 0;  ///< Deltas replayed onto a restored base.
  std::uint64_t delta_bytes_last = 0;
  std::uint64_t ops_logged = 0;      ///< Mutations appended by primaries.
  std::uint64_t ops_replicated = 0;  ///< Records accepted by the replica.
  std::uint64_t ops_replayed = 0;    ///< Records re-applied at recovery.
  std::uint64_t crashes = 0;
  std::uint64_t promotions = 0;  ///< Watchdog-detected recoveries.
  std::uint64_t rejoins = 0;     ///< Scheduled-restart recoveries.
  std::uint64_t inputs_lost = 0; ///< Inputs that arrived while crashed.
  util::Duration last_recovery_latency{0};  ///< Crash -> state restored.
};

class RecoveryHarness {
 public:
  static constexpr const char* kPrimaryEndpointName = "garnet.recovery.primary";
  static constexpr const char* kReplicaEndpointName = "garnet.recovery.replica";

  /// One stateful service under management. All hooks run on the sim
  /// thread; capture/restore use the service's core/checkpoint framing.
  struct Service {
    std::string name;
    /// Optional re-anchor group. Services sharing a non-empty group are
    /// slices of one logical plane (the shard plane registers each shard
    /// as "dispatch.shard<i>" under one group): when any member is
    /// recovered, *every* member's next checkpoint is forced full, so
    /// the replica's delta chains for all slices re-anchor together and
    /// a cross-shard restore never mixes pre- and post-promotion bases.
    std::string group;
    /// Bus endpoint names silenced while the service is crashed.
    std::vector<std::string> endpoints;
    /// Serialise current state (deterministic bytes; see checkpoint.hpp).
    /// When the delta hooks below are set, this must also rebase the
    /// service's dirty baseline (capture_full(), not capture_state()).
    std::function<util::Bytes()> capture;
    /// Replace state from a decoded checkpoint body. Must parse fully
    /// into temporaries before committing (never partially applies).
    std::function<util::Status<util::DecodeError>(util::BytesView)> restore;
    /// Optional incremental pair. capture_delta serialises only state
    /// touched since the previous capture (full or delta) and rebases;
    /// apply_delta stacks one such body onto restored state, atomically.
    /// Both must be set for the harness to emit delta frames.
    std::function<util::Bytes()> capture_delta;
    std::function<util::Status<util::DecodeError>(util::BytesView)> apply_delta;
    /// Drop all volatile state (the crash itself).
    std::function<void()> wipe;
    /// Re-apply one replicated op (optional; checkpoint-only services
    /// such as location/catalog leave it unset).
    std::function<void(std::uint16_t kind, util::BytesView payload)> apply_op;
    /// Runs after state is restored and endpoints are back up (optional):
    /// replay stashed deliveries, re-announce layouts, resume flows.
    std::function<void()> on_restart;
  };

  RecoveryHarness(sim::Scheduler& scheduler, net::MessageBus& bus, RecoveryConfig config);
  ~RecoveryHarness();

  RecoveryHarness(const RecoveryHarness&) = delete;
  RecoveryHarness& operator=(const RecoveryHarness&) = delete;

  void manage(Service service);

  /// Primary-side mutation log: replicates one op to the standby. Ops
  /// from a crashed service are dropped (a dead process logs nothing).
  void log_op(const std::string& service, std::uint16_t kind, util::BytesView payload);

  /// Crash-stop the named service now: wipe volatile state, silence its
  /// endpoints. The watchdog promotes after miss_threshold beats unless
  /// restart() revives it first.
  void crash(const std::string& service);
  /// Revive immediately (restore + replay + on_restart). No-op unless
  /// crashed.
  void restart(const std::string& service);
  [[nodiscard]] bool crashed(const std::string& service) const;

  /// Accounting hook for inputs the runtime observed dying with the
  /// crashed service (e.g. reception reports to a dead filtering).
  void note_lost_input(const std::string& service);

  /// Registers a pull collector exposing garnet.checkpoint.taken/stored/
  /// rejected counters and last_bytes gauge plus garnet.recovery.*
  /// counters and the crashed/latency gauges. Deregistered on
  /// destruction (the registry must outlive the harness).
  void set_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] const RecoveryStats& stats() const noexcept { return stats_; }

 private:
  struct Managed {
    Service spec;
    bool is_crashed = false;
    std::uint32_t misses = 0;
    util::SimTime crashed_at;
    // Primary-side replication cursors (live in the harness, not the
    // service process, so they survive the crash like a peer would).
    std::uint64_t epoch = 0;
    std::uint64_t next_lsn = 1;
    std::uint32_t deltas_since_full = 0;
    /// Next capture must be a full frame (set after every recovery: the
    /// promoted service's state no longer matches the replica's chain).
    bool force_full = true;
    // Replica-side copy of the service's durable state: the newest full
    // frame plus the validated delta chain stacked on it.
    util::Bytes checkpoint;
    std::uint64_t checkpoint_lsn = 1;  ///< Ops < this are inside the checkpoint.
    /// (watermark, delta frame) in arrival order; each frame's base_epoch
    /// was checked against chain_epoch when it was accepted.
    std::vector<std::pair<std::uint64_t, util::Bytes>> deltas;
    std::uint64_t chain_epoch = 0;  ///< Epoch of the newest stored frame.
    core::checkpoint::OpLog log;
    std::uint64_t inputs_lost = 0;

    explicit Managed(Service s, std::size_t oplog_capacity)
        : spec(std::move(s)), log(oplog_capacity) {}
  };

  void arm_heartbeat();
  void arm_checkpoint();
  void on_heartbeat();
  void take_checkpoints();
  void on_replica(net::Envelope envelope);
  void recover(Managed& managed, bool promotion);

  sim::Scheduler& scheduler_;
  net::MessageBus& bus_;
  RecoveryConfig config_;
  net::Address primary_;
  net::Address replica_;
  std::map<std::string, Managed> services_;  ///< Sorted: deterministic ticks.
  sim::EventId heartbeat_;
  sim::EventId checkpoint_timer_;
  RecoveryStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet
