#include "net/overload.hpp"

namespace garnet::net {

std::string_view to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kDropNewest: return "drop_newest";
    case OverflowPolicy::kDropOldest: return "drop_oldest";
    case OverflowPolicy::kRejectNack: return "reject_nack";
  }
  return "unknown";
}

std::string_view to_string(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kData: return "data";
  }
  return "unknown";
}

}  // namespace garnet::net
