#include "net/fault.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "util/log.hpp"

namespace garnet::net {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kRelayCrash: return "relay-crash";
    case FaultKind::kRelayRestart: return "relay-restart";
    case FaultKind::kBeaconLoss: return "beacon-loss";
    case FaultKind::kBeaconRestore: return "beacon-restore";
  }
  return "unknown";
}

namespace {

std::string relay_name(std::uint32_t node) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "sensor-%u", node);
  return buf;
}

}  // namespace

FaultInjector::FaultInjector(sim::Scheduler& scheduler, FaultPlan plan)
    : scheduler_(scheduler), plan_(std::move(plan)), rng_(plan_.seed) {
  partitions_.reserve(plan_.partitions.size());
  for (const FaultPlan::PartitionSpec& spec : plan_.partitions) {
    PartitionState state;
    state.spec = spec;
    state.members.insert(spec.members.begin(), spec.members.end());
    state.open = spec.opens_at.ns <= scheduler_.now().ns;
    partitions_.push_back(std::move(state));

    PartitionState& installed = partitions_.back();
    const std::size_t index = partitions_.size() - 1;
    if (!installed.open) {
      scheduler_.schedule_at(spec.opens_at, [this, index] {
        partitions_[index].open = true;
        util::log_info("fault", "partition '%s' opened at t=%.3fs",
                       partitions_[index].spec.name.c_str(), scheduler_.now().to_seconds());
      });
    }
    if (spec.heals_at.has_value()) {
      scheduler_.schedule_at(*spec.heals_at, [this, index] {
        partitions_[index].open = false;
        util::log_info("fault", "partition '%s' healed at t=%.3fs",
                       partitions_[index].spec.name.c_str(), scheduler_.now().to_seconds());
      });
    }
  }

  // Crash/restart events are pure time triggers, like partition edges:
  // they never touch the rng, so a plan with crashes produces the same
  // link-fault verdict stream as the same plan without them.
  for (std::size_t index = 0; index < plan_.crashes.size(); ++index) {
    const FaultPlan::CrashSpec& spec = plan_.crashes[index];
    scheduler_.schedule_at(spec.at, [this, index] { fire_crash(index); });
    if (spec.restart_after.has_value()) {
      scheduler_.schedule_at(spec.at + *spec.restart_after,
                             [this, index] { fire_restart(index); });
    }
  }

  // Wireless churn events follow the same discipline: pure time triggers,
  // zero RNG draws, journalled like every other fault.
  for (std::size_t index = 0; index < plan_.relay_faults.size(); ++index) {
    const FaultPlan::RelayFaultSpec& spec = plan_.relay_faults[index];
    scheduler_.schedule_at(spec.at, [this, index] { fire_relay(index, /*restart=*/false); });
    if (spec.restart_after.has_value()) {
      scheduler_.schedule_at(spec.at + *spec.restart_after,
                             [this, index] { fire_relay(index, /*restart=*/true); });
    }
  }
  for (std::size_t index = 0; index < plan_.beacon_faults.size(); ++index) {
    const FaultPlan::BeaconFaultSpec& spec = plan_.beacon_faults[index];
    scheduler_.schedule_at(spec.at, [this, index] { fire_beacon(index, /*deaf=*/true); });
    if (spec.restore_after.has_value()) {
      scheduler_.schedule_at(spec.at + *spec.restore_after,
                             [this, index] { fire_beacon(index, /*deaf=*/false); });
    }
  }
}

void FaultInjector::fire_relay(std::size_t index, bool restart) {
  const FaultPlan::RelayFaultSpec& spec = plan_.relay_faults[index];
  const std::string name = relay_name(spec.node);
  if (restart) {
    ++counters_.relay_restarted;
    record(FaultKind::kRelayRestart, name, name);
  } else {
    ++counters_.relay_crashed;
    record(FaultKind::kRelayCrash, name, name);
  }
  util::log_info("fault", "relay '%s' %s at t=%.3fs", name.c_str(),
                 restart ? "restarted" : "crashed", scheduler_.now().to_seconds());
  if (relay_fault_handler_) relay_fault_handler_(spec.node, restart);
}

void FaultInjector::fire_beacon(std::size_t index, bool deaf) {
  const FaultPlan::BeaconFaultSpec& spec = plan_.beacon_faults[index];
  const std::string name = relay_name(spec.node);
  if (deaf) {
    ++counters_.beacon_lost;
    record(FaultKind::kBeaconLoss, name, name);
  } else {
    ++counters_.beacon_restored;
    record(FaultKind::kBeaconRestore, name, name);
  }
  util::log_info("fault", "relay '%s' beacon reception %s at t=%.3fs", name.c_str(),
                 deaf ? "lost" : "restored", scheduler_.now().to_seconds());
  if (beacon_fault_handler_) beacon_fault_handler_(spec.node, deaf);
}

void FaultInjector::fire_crash(std::size_t index) {
  const FaultPlan::CrashSpec& spec = plan_.crashes[index];
  ++counters_.crashed;
  record(FaultKind::kCrash, spec.service, spec.service);
  util::log_info("fault", "service '%s' crashed at t=%.3fs", spec.service.c_str(),
                 scheduler_.now().to_seconds());
  if (crash_handler_) crash_handler_(spec.service, /*restart=*/false);
}

void FaultInjector::fire_restart(std::size_t index) {
  const FaultPlan::CrashSpec& spec = plan_.crashes[index];
  ++counters_.restarted;
  record(FaultKind::kRestart, spec.service, spec.service);
  util::log_info("fault", "service '%s' restarted at t=%.3fs", spec.service.c_str(),
                 scheduler_.now().to_seconds());
  if (crash_handler_) crash_handler_(spec.service, /*restart=*/true);
}

const LinkFaults& FaultInjector::faults_for(const std::string& from,
                                            const std::string& to) const {
  const auto it = plan_.links.find(std::make_pair(from, to));
  return it != plan_.links.end() ? it->second : plan_.global;
}

bool FaultInjector::partition_blocks(const std::string& from, const std::string& to) const {
  for (const PartitionState& partition : partitions_) {
    if (!partition.open) continue;
    const bool from_inside = partition.members.contains(from);
    const bool to_inside = partition.members.contains(to);
    if (from_inside != to_inside) return true;
  }
  return false;
}

FaultInjector::Verdict FaultInjector::decide(const std::string& from, const std::string& to) {
  Verdict verdict;

  if (partition_blocks(from, to)) {
    ++counters_.partitioned;
    record(FaultKind::kPartition, from, to);
    verdict.deliver = false;
    return verdict;
  }

  const LinkFaults& link = faults_for(from, to);
  if (!link.any()) return verdict;

  if (link.drop_first > 0) {
    const std::uint64_t seen = ++link_posts_[std::make_pair(from, to)];
    if (seen <= link.drop_first) {
      ++counters_.dropped;
      record(FaultKind::kDrop, from, to);
      verdict.deliver = false;
      return verdict;
    }
  }

  // Fixed draw order — one Bernoulli per configured fault class — keeps
  // the rng stream a pure function of the plan and the post sequence.
  if (link.drop > 0.0 && rng_.chance(link.drop)) {
    ++counters_.dropped;
    record(FaultKind::kDrop, from, to);
    verdict.deliver = false;
    return verdict;
  }
  if (link.extra_latency.ns > 0) {
    ++counters_.delayed;
    record(FaultKind::kDelay, from, to);
    verdict.extra_delay = verdict.extra_delay + link.extra_latency;
  }
  if (link.reorder > 0.0 && rng_.chance(link.reorder)) {
    ++counters_.reordered;
    record(FaultKind::kReorder, from, to);
    const auto window = static_cast<std::uint64_t>(link.reorder_window.ns);
    if (window > 0) {
      verdict.extra_delay =
          verdict.extra_delay + util::Duration::nanos(static_cast<std::int64_t>(rng_.below(window)));
    }
  }
  if (link.duplicate > 0.0 && rng_.chance(link.duplicate)) {
    ++counters_.duplicated;
    record(FaultKind::kDuplicate, from, to);
    verdict.duplicate = true;
    // The copy trails the original by a deterministic sub-window offset,
    // so duplicates interleave with unrelated traffic.
    const auto window = static_cast<std::uint64_t>(
        link.reorder_window.ns > 0 ? link.reorder_window.ns : util::Duration::millis(1).ns);
    verdict.duplicate_delay = util::Duration::nanos(static_cast<std::int64_t>(rng_.below(window)));
  }
  return verdict;
}

void FaultInjector::open_partition(std::string_view name) {
  for (PartitionState& partition : partitions_) {
    if (partition.spec.name == name) partition.open = true;
  }
}

void FaultInjector::heal_partition(std::string_view name) {
  for (PartitionState& partition : partitions_) {
    if (partition.spec.name == name) partition.open = false;
  }
}

bool FaultInjector::partition_open(std::string_view name) const {
  for (const PartitionState& partition : partitions_) {
    if (partition.spec.name == name) return partition.open;
  }
  return false;
}

void FaultInjector::record(FaultKind kind, const std::string& from, const std::string& to) {
  if (journal_.size() >= plan_.journal_limit) return;
  journal_.push_back(FaultRecord{kind, from, to, scheduler_.now()});
}

std::string FaultInjector::journal_text() const {
  std::string out;
  out.reserve(journal_.size() * 48);
  char line[256];
  for (const FaultRecord& record : journal_) {
    std::snprintf(line, sizeof(line), "%" PRId64 " %s %s->%s\n", record.at.ns,
                  std::string(to_string(record.kind)).c_str(), record.from.c_str(),
                  record.to.c_str());
    out += line;
  }
  return out;
}

}  // namespace garnet::net
