// Adaptive admission control: throughput-probing ticket pools in front
// of the filtering→dispatch path.
//
// PR 4 made overload *survivable* with hand-tuned constants: fixed inbox
// capacities, fixed credit windows. This header makes the front door
// *self-tuning*, borrowing MongoDB's execution-control design (dynamic
// ticket pools sized by throughput probing): before a data message may
// enter the pipeline it must take a ticket from a bounded pool, and a
// controller probes the pool size up and down on an exponentially-
// weighted goodput signal — concurrency that raises goodput is kept,
// concurrency that only raises downstream shedding is given back.
//
// Two pools, mirroring the control/data split the overload layer already
// enforces on the bus:
//
//   * data-ingest pool — hard-gates bulk ingress (radio uplinks,
//     gateway/archive injection). Exhausted means the arriving message
//     is shed at the door, before it can queue work downstream.
//   * control/actuation pool — *never* refuses. Control-plane work
//     (circuit-breaker half-open probes, recovery heartbeats, credit
//     replenishment, actuation) takes an overdraft ticket past the pool
//     size; the overdraft is counted so the exposition shows pressure,
//     but a saturated data plane can never delay watchdog promotion or
//     breaker recovery. This is the same invariant as "control is never
//     shed while data queues", lifted to admission.
//
// Deterministic by construction: tickets are released by virtual-time
// lease expiry (no completion callbacks, no wall clock), probe ticks
// fire at exact multiples of the probe interval on the sim clock, the
// controller draws no randomness, and every probe decision is journaled
// in a byte-comparable text form (the shed-journal contract) — same-seed
// runs render byte-identical admission journals at any shard count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/overload.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace garnet::net {

/// Which ticket pool a record or metric refers to.
enum class PoolKind : std::uint8_t { kControl, kData };

/// One probe-tick outcome. kProbeUp/kProbeDown start an excursion,
/// kAccept commits the probed size as the new stable point, kBackoff
/// reverts to the last stable size after goodput fell, kHold keeps the
/// current size (at a bound, or nothing to learn this interval).
enum class ProbeDecision : std::uint8_t { kHold, kProbeUp, kProbeDown, kAccept, kBackoff };

[[nodiscard]] std::string_view to_string(PoolKind kind);
[[nodiscard]] std::string_view to_string(ProbeDecision decision);

/// Throughput-probing controller knobs (MongoDB's server parameters,
/// renamed to this codebase's vocabulary).
struct ProbeConfig {
  /// Starting data-pool size; also the fixed size when probing is off.
  std::uint32_t initial_concurrency = 16;
  std::uint32_t min_concurrency = 2;
  std::uint32_t max_concurrency = 256;
  /// Probe-tick cadence. Decisions land at exact multiples of this on
  /// the virtual clock, which is what keeps journals shard-invariant.
  util::Duration interval = util::Duration::millis(50);
  /// Virtual time one admission holds its ticket. With arrival rate R,
  /// steady-state holders ≈ R × lease, so the pool size is a concurrency
  /// bound that doubles as an admission-rate bound of size/lease.
  util::Duration lease = util::Duration::micros(500);
  /// Probe excursion step, as a fraction of the current size (≥1 ticket).
  double step = 0.25;
  /// Weight of the newest interval's goodput in the EWMA.
  double ewma_weight = 0.5;
  /// A down-probe keeps the smaller size only while goodput stays at or
  /// above backoff_ratio × the best seen; below that it backs off.
  double backoff_ratio = 0.9;
};

/// Admission-control configuration folded into Runtime::Config and
/// ShardPlaneConfig. Defaults off: nothing is gated, nothing changes.
struct AdmissionConfig {
  bool enabled = false;
  /// false = static pools frozen at initial_concurrency (the PR-4 world,
  /// kept reachable so old sweeps stay reproducible: --admission=static).
  bool probing = true;
  ProbeConfig probe;
  /// Control-pool size. Purely an accounting watermark — control
  /// admission never refuses — but overdrafts past it are counted.
  std::uint32_t control_tickets = 64;
  /// Record the first N probe decisions in the byte-comparable journal.
  std::size_t journal_limit = 0;
  /// Derive the PR-4 credit window from the live data-pool size (the
  /// embedder installs the listener; this just gates it).
  bool derive_credit_window = true;

  [[nodiscard]] bool active() const noexcept { return enabled; }
};

/// Admission accounting, exposed as garnet.admission.* by the collector.
struct AdmissionStats {
  std::uint64_t data_admitted = 0;
  std::uint64_t data_rejected = 0;       ///< Shed at the door (pool exhausted).
  std::uint64_t control_admitted = 0;
  std::uint64_t control_overdrafts = 0;  ///< Control grants past the pool size.
  std::uint64_t probes = 0;              ///< Probe ticks evaluated.
  std::uint64_t resizes = 0;             ///< Ticks that changed the pool size.
  std::uint64_t wire_releases = 0;       ///< Tickets released by kAdmissionRelease.
  std::uint64_t spurious_releases = 0;   ///< Releases with no outstanding ticket.
  std::uint64_t goodput_reports = 0;     ///< kGoodputReport frames applied.
  std::uint64_t wire_malformed = 0;      ///< Frames failing decode (ignored).

  AdmissionStats& operator+=(const AdmissionStats& other) noexcept;
};

/// One journaled probe decision (determinism tests compare the text
/// rendering byte-for-byte across runs and shard counts).
struct ProbeRecord {
  util::SimTime at;               ///< The tick's deadline (k × interval).
  ProbeDecision decision = ProbeDecision::kHold;
  std::uint32_t from_size = 0;
  std::uint32_t to_size = 0;
  std::uint64_t goodput = 0;      ///< Interval goodput (useful deliveries).
  std::int64_t ewma_milli = 0;    ///< EWMA × 1000, integer for exact rendering.
};

/// Canonical one-line rendering (shed-journal contract: shared by the
/// gate's own journal and the shard plane's merged view).
[[nodiscard]] std::string render_probe_record(const ProbeRecord& record);

/// Deterministic counting semaphore with virtual-time lease release.
/// Not thread-safe: the unsharded runtime drives it from the sim thread;
/// the shard plane touches its pools only between rounds.
class TicketPool {
 public:
  explicit TicketPool(std::uint32_t size) : size_(size) {}

  /// Takes one ticket held until `now + lease`. Fails when every ticket
  /// is out (data-pool semantics). Expired leases are collected first,
  /// so callers never need a separate sweep.
  [[nodiscard]] bool try_acquire(util::SimTime now, util::Duration lease);

  /// Control-pool semantics: always grants. Returns true when the grant
  /// fit inside the pool size, false when it was an overdraft.
  bool acquire_overdraft(util::SimTime now, util::Duration lease);

  /// Releases every ticket whose lease expired at or before `now`.
  std::size_t release_expired(util::SimTime now);

  /// Releases the oldest outstanding ticket early (the wire-release
  /// path). Returns false — and changes nothing — when none is out.
  bool release_one();

  /// Resizing never cancels outstanding leases; a shrink below the
  /// holder count simply refuses new admissions until leases drain.
  void resize(std::uint32_t size) { size_ = size; }

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t holders() const noexcept {
    return static_cast<std::uint32_t>(leases_.size());
  }

  /// True when the pool refused an admission or ran full since the last
  /// call; reading clears the flag (one probe interval's saturation).
  [[nodiscard]] bool take_saturated() noexcept {
    const bool was = saturated_;
    saturated_ = false;
    return was;
  }

 private:
  void push_lease(util::SimTime expiry);

  std::uint32_t size_;
  std::deque<util::SimTime> leases_;  ///< Expiry times, kept ascending.
  bool saturated_ = false;
};

/// The probe state machine, pure and allocation-free: feed it one
/// interval's goodput + saturation, get the next pool size. Stable →
/// probe up while saturated (there may be unmet demand), probe down
/// while not (the pool may be larger than the offered load needs);
/// excursions that raise the EWMA are accepted as the new stable point,
/// ones that lower it are backed off.
class ThroughputProbe {
 public:
  explicit ThroughputProbe(const ProbeConfig& config);

  struct Outcome {
    ProbeDecision decision = ProbeDecision::kHold;
    std::uint32_t size = 0;   ///< Pool size for the next interval.
    double ewma = 0.0;
  };

  [[nodiscard]] Outcome on_interval(std::uint64_t goodput, bool saturated);

  [[nodiscard]] std::uint32_t concurrency() const noexcept { return size_; }
  [[nodiscard]] double ewma() const noexcept { return ewma_; }

 private:
  enum class State : std::uint8_t { kStable, kProbingUp, kProbingDown };

  [[nodiscard]] std::uint32_t step_up(std::uint32_t size) const;
  [[nodiscard]] std::uint32_t step_down(std::uint32_t size) const;

  ProbeConfig config_;
  State state_ = State::kStable;
  std::uint32_t size_;         ///< Current (possibly probing) size.
  std::uint32_t stable_size_;  ///< Last accepted size (backoff target).
  double ewma_ = 0.0;
  bool seeded_ = false;
  double best_goodput_ = 0.0;
};

/// The assembled gate: two pools, one controller, a probe journal, an
/// optional wire surface, and a metrics collector. Scheduler-free by
/// design — every entry point takes `now` — so one class serves both the
/// unsharded runtime (a repeating timer calls advance()) and the shard
/// plane (the merge barrier calls advance() with the merged clock; the
/// plane keeps per-shard data pools sized in lockstep via the resize
/// listener and uses the gate's pool as shard 0's).
class AdmissionGate {
 public:
  explicit AdmissionGate(AdmissionConfig config);
  ~AdmissionGate();

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Data admission: true = a ticket was taken (lease-released later);
  /// false = shed at the door. Control admission never returns false.
  bool admit(TrafficClass cls, util::SimTime now);
  bool admit_data(util::SimTime now) { return admit(TrafficClass::kData, now); }
  bool admit_control(util::SimTime now) { return admit(TrafficClass::kControl, now); }

  /// Cumulative downstream accounting the controller derives goodput
  /// from: `delivered` = useful deliveries so far, `wasted` = work shed
  /// after admission (bounded-inbox data sheds). Interval goodput is
  /// max(0, Δdelivered − Δwasted): overshoot that only feeds the
  /// shedders scores zero, which is what bends the curve down past the
  /// knee and lets the probe find it.
  using GoodputSource = std::function<void(std::uint64_t& delivered, std::uint64_t& wasted)>;
  void set_goodput_source(GoodputSource source) { goodput_source_ = std::move(source); }

  /// Fires after any probe tick that changed the data-pool size (derive
  /// credit windows, resize mirrored per-shard pools, gw outboxes).
  using ResizeListener = std::function<void(std::uint32_t data_pool_size)>;
  void set_resize_listener(ResizeListener listener) { resize_listener_ = std::move(listener); }

  /// Releases expired leases and runs every probe deadline at or before
  /// `now` (deadlines are exact multiples of the probe interval, so a
  /// late caller produces the same journal as a punctual one).
  void advance(util::SimTime now);

  /// Wire surface (core::kAdmissionRelease / kGoodputReport payloads).
  /// Hostile input is survivable by construction: malformed frames are
  /// counted and ignored, releases never underflow the pool, and report
  /// values are clamped so a forged flood cannot wedge the EWMA.
  void on_wire_release(util::BytesView payload, util::SimTime now);
  void on_wire_goodput(util::BytesView payload);
  /// Per-frame clamp on reported delivered/wasted deltas.
  static constexpr std::uint64_t kWireReportClamp = 1u << 20;

  /// Registers a pull collector exposing garnet.admission.tickets/
  /// holders{pool=...}, garnet.admission.probes, garnet.admission.
  /// goodput and the admitted/rejected/overdraft counters. Deregistered
  /// on destruction (the registry must outlive the gate).
  void set_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TicketPool& data_pool() const noexcept { return data_; }
  [[nodiscard]] const TicketPool& control_pool() const noexcept { return control_; }
  [[nodiscard]] std::uint32_t data_pool_size() const noexcept { return data_.size(); }
  [[nodiscard]] double probe_ewma() const noexcept { return probe_.ewma(); }
  [[nodiscard]] const AdmissionConfig& config() const noexcept { return config_; }

  /// PR-4 ledger derivation: the credit window a subscriber should be
  /// granted under the current pool size (never below one credit).
  [[nodiscard]] std::uint32_t derived_credit_window() const noexcept {
    return data_.size() > 0 ? data_.size() : 1;
  }

  /// Byte-comparable probe-decision journal (empty unless
  /// AdmissionConfig::journal_limit > 0).
  [[nodiscard]] const std::vector<ProbeRecord>& journal() const noexcept { return journal_; }
  [[nodiscard]] std::string journal_text() const;

 private:
  void tick(util::SimTime at);
  void collect(obs::SnapshotBuilder& out) const;

  AdmissionConfig config_;
  TicketPool data_;
  TicketPool control_;
  ThroughputProbe probe_;
  util::SimTime next_deadline_;
  GoodputSource goodput_source_;
  ResizeListener resize_listener_;
  std::uint64_t last_delivered_ = 0;
  std::uint64_t last_wasted_ = 0;
  std::uint64_t wire_delivered_ = 0;  ///< Externally reported, drained per tick.
  std::uint64_t wire_wasted_ = 0;
  AdmissionStats stats_;
  std::vector<ProbeRecord> journal_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet::net
