// Fixed-network messaging substrate.
//
// Figure 1 shows two interaction styles among Garnet's services:
// event-based asynchronous message passing (the default — "unless
// otherwise indicated, communication is based on asynchronous message
// exchange", §3) and remote procedure call (net/rpc.hpp, layered on this
// bus). Services are logically separate entities exchanging serialised
// envelopes; a configurable delivery latency models the fixed network.
//
// Delivery is *not* unconditionally reliable: a FaultPlan (net/fault.hpp)
// installs a deterministic FaultInjector that can drop, delay, duplicate,
// reorder, or partition traffic — the substrate the chaos suite and the
// RPC retry layer are exercised against. With no plan configured the bus
// behaves exactly as before: every envelope arrives after latency+jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"
#include "util/time.hpp"

namespace garnet::net {

/// Endpoint address on the fixed network. 0 is never a valid address.
struct Address {
  std::uint32_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const Address&) const = default;
};

/// Application-level message type tag. Values below 100 are reserved for
/// the substrate (RPC framing); services define their own above that.
enum class MessageType : std::uint16_t {
  kRpcRequest = 1,
  kRpcResponse = 2,
  kAppBase = 100,
};

[[nodiscard]] constexpr MessageType app_type(std::uint16_t offset) {
  return static_cast<MessageType>(static_cast<std::uint16_t>(MessageType::kAppBase) + offset);
}

/// One message in flight. The payload is an immutable shared buffer:
/// fan-out posts, fault-injected duplicates and retry re-sends all alias
/// one allocation, and copying an Envelope is a refcount bump.
struct Envelope {
  Address from;
  Address to;
  MessageType type = MessageType::kAppBase;
  util::SharedBytes payload;
  util::SimTime sent_at;
};

struct BusStats {
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_endpoint = 0;
  std::uint64_t bytes = 0;
};

/// Caller/callee-side RPC reliability counters, aggregated on the bus
/// because RpcNodes are ephemeral (services create and destroy them) while
/// the bus spans the deployment. Surfaced as garnet.rpc.* by the bus's
/// telemetry collector.
struct RpcStats {
  std::uint64_t calls = 0;      ///< call() invocations (first attempts).
  std::uint64_t retries = 0;    ///< Re-sent attempts after a timeout.
  std::uint64_t exhausted = 0;  ///< Calls that failed after the full budget.
  std::uint64_t deduped = 0;    ///< Requests answered from the callee cache.
};

class MessageBus {
 public:
  struct Config {
    util::Duration latency = util::Duration::micros(200);
    util::Duration max_jitter = util::Duration::micros(100);
    /// Deterministic chaos regime; default-constructed = fully reliable.
    FaultPlan faults;
  };

  MessageBus(sim::Scheduler& scheduler, Config config);

  using Handler = std::function<void(Envelope)>;

  /// Registers a named endpoint; the name supports discovery. Names must
  /// be unique. Returns the new address.
  Address add_endpoint(std::string name, Handler handler);

  void remove_endpoint(Address address);

  /// Name-based discovery (paper §3: "typical ... discovery" mechanisms).
  [[nodiscard]] std::optional<Address> lookup(const std::string& name) const;

  /// Posts an envelope for asynchronous delivery after latency + jitter.
  /// The payload is shared, not copied: posting the same SharedBytes to N
  /// destinations is N refcount bumps on one buffer. The fault injector
  /// (when configured) may drop, delay, or duplicate it; links are
  /// identified by endpoint names, so plans are stable across runs.
  void post(Address from, Address to, MessageType type, util::SharedBytes payload);

  /// Registers native telemetry instruments (envelope transit-time and
  /// size distributions) and a pull collector exposing the bus counters
  /// (garnet.bus.posted/delivered/dropped_no_endpoint/bytes), the
  /// payload-path accounting (garnet.bus.payload_allocs /
  /// payload_alloc_bytes / payload_copies), the fault counters
  /// (garnet.bus.faults{kind=...}), and the RPC reliability counters
  /// (garnet.rpc.*).
  void set_metrics(obs::MetricsRegistry& registry);

  /// Fault injector installed by Config::faults; nullptr when the plan is
  /// disabled. Non-owning — used for manual partition control and for
  /// reading fault counters / the replay journal.
  [[nodiscard]] FaultInjector* fault_injector() noexcept { return injector_.get(); }
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept { return injector_.get(); }

  [[nodiscard]] RpcStats& rpc_stats() noexcept { return rpc_stats_; }
  [[nodiscard]] const RpcStats& rpc_stats() const noexcept { return rpc_stats_; }

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] util::SimTime now() const noexcept { return scheduler_.now(); }

 private:
  struct EndpointEntry {
    std::string name;
    Handler handler;
  };

  void deliver_after(util::Duration delay, Envelope envelope);
  [[nodiscard]] const std::string& name_of(Address address) const;
  void collect(obs::SnapshotBuilder& out) const;

  sim::Scheduler& scheduler_;
  Config config_;
  std::unordered_map<std::uint32_t, EndpointEntry> endpoints_;
  std::unordered_map<std::string, std::uint32_t> names_;
  std::uint32_t next_address_ = 1;
  std::uint64_t jitter_state_ = 0x6A1B2C3D4E5F6071ull;
  BusStats stats_;
  RpcStats rpc_stats_;
  std::unique_ptr<FaultInjector> injector_;
  obs::Histogram* transit_histogram_ = nullptr;
  obs::Histogram* size_histogram_ = nullptr;
};

}  // namespace garnet::net
