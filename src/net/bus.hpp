// Fixed-network messaging substrate.
//
// Figure 1 shows two interaction styles among Garnet's services:
// event-based asynchronous message passing (the default — "unless
// otherwise indicated, communication is based on asynchronous message
// exchange", §3) and remote procedure call (net/rpc.hpp, layered on this
// bus). Services are logically separate entities exchanging serialised
// envelopes; a configurable delivery latency models the fixed network.
//
// Delivery is *not* unconditionally reliable: a FaultPlan (net/fault.hpp)
// installs a deterministic FaultInjector that can drop, delay, duplicate,
// reorder, or partition traffic — the substrate the chaos suite and the
// RPC retry layer are exercised against. With no plan configured the bus
// behaves exactly as before: every envelope arrives after latency+jitter.
//
// Endpoints may additionally carry a *bounded inbox* (net/overload.hpp):
// a finite two-class queue with a per-envelope service time. Control
// traffic (RPC framing plus registered control types) is dequeued ahead
// of data deliveries and is never shed while data remains to shed; data
// past capacity is shed by the endpoint's OverflowPolicy, optionally
// echoing a kNack to the sender. Endpoints without an inbox config keep
// the historical hand-to-handler-on-arrival behaviour exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/fault.hpp"
#include "net/overload.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"
#include "util/time.hpp"

namespace garnet::net {

/// Endpoint address on the fixed network. 0 is never a valid address.
struct Address {
  std::uint32_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const Address&) const = default;
};

/// Application-level message type tag. Values below 100 are reserved for
/// the substrate (RPC framing, overload NACKs); services define their own
/// above that.
enum class MessageType : std::uint16_t {
  kRpcRequest = 1,
  kRpcResponse = 2,
  /// Overload rejection: a kRejectNack inbox shed this sender's envelope.
  /// Payload: [u16 original type][first 8 bytes of the original payload]
  /// — enough for the RPC layer to fail the attempt fast (net/rpc.hpp).
  kNack = 3,
  kAppBase = 100,
};

[[nodiscard]] constexpr MessageType app_type(std::uint16_t offset) {
  return static_cast<MessageType>(static_cast<std::uint16_t>(MessageType::kAppBase) + offset);
}

/// One message in flight. The payload is an immutable shared buffer:
/// fan-out posts, fault-injected duplicates and retry re-sends all alias
/// one allocation, and copying an Envelope is a refcount bump.
struct Envelope {
  Address from;
  Address to;
  MessageType type = MessageType::kAppBase;
  util::SharedBytes payload;
  util::SimTime sent_at;
};

struct BusStats {
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_endpoint = 0;
  std::uint64_t dropped_endpoint_down = 0;  ///< Arrived while the endpoint was crashed.
  std::uint64_t bytes = 0;
};

/// Caller/callee-side RPC reliability counters, aggregated on the bus
/// because RpcNodes are ephemeral (services create and destroy them) while
/// the bus spans the deployment. Surfaced as garnet.rpc.* by the bus's
/// telemetry collector.
struct RpcStats {
  std::uint64_t calls = 0;      ///< call() invocations (first attempts).
  std::uint64_t retries = 0;    ///< Re-sent attempts after a timeout.
  std::uint64_t exhausted = 0;  ///< Calls that failed after the full budget.
  std::uint64_t deduped = 0;    ///< Requests answered from the callee cache.
  std::uint64_t nacked = 0;     ///< Attempts failed fast by an inbox NACK.
  std::uint64_t breaker_opens = 0;      ///< closed/half-open -> open edges.
  std::uint64_t breaker_fast_fails = 0; ///< Calls rejected while not closed.
  std::uint64_t open_breakers = 0;      ///< Breakers currently not closed.
};

/// One shed event, for the replay journal (determinism tests compare the
/// text rendering byte-for-byte across runs).
struct ShedRecord {
  util::SimTime at;
  std::string from;
  std::string to;
  TrafficClass cls = TrafficClass::kData;
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
  std::uint16_t type = 0;
};

/// Canonical one-line rendering of one shed event — shared by the bus's
/// own journal and the shard plane's cross-shard merge, so both produce
/// byte-identical text for identical records.
[[nodiscard]] std::string render_shed_record(const ShedRecord& record);

/// Total order used by the shard plane's deterministic merge: ascending
/// (virtual time, destination, source, type, class, policy). Records a
/// single endpoint pair sheds at distinct times sort by time alone, so
/// a link that lives wholly on one shard renders identically at any
/// shard count; cross-link ties break by name, never by shard index.
[[nodiscard]] bool shed_merge_before(const ShedRecord& a, const ShedRecord& b);

class MessageBus {
 public:
  struct Config {
    util::Duration latency = util::Duration::micros(200);
    util::Duration max_jitter = util::Duration::micros(100);
    /// Deterministic chaos regime; default-constructed = fully reliable.
    FaultPlan faults;

    /// Inbox applied to every endpoint without a per-name override. The
    /// default is inactive: direct delivery, no queueing, no shedding.
    InboxConfig default_inbox;
    /// Per-endpoint inbox overrides, keyed by endpoint name (stable
    /// across runs, like FaultPlan links).
    std::map<std::string, InboxConfig> inboxes;
    /// App-level message types scheduled as control plane in addition to
    /// the substrate types (< kAppBase), e.g. actuation and credit
    /// replenishment. The runtime registers core's control types here.
    std::vector<MessageType> control_types;
    /// Default circuit-breaker contract for every RpcNode on this bus.
    BreakerConfig breaker;
    /// When > 0, record the first N shed events in a byte-comparable
    /// journal (same contract as FaultPlan::journal_limit).
    std::size_t shed_journal_limit = 0;
  };

  MessageBus(sim::Scheduler& scheduler, Config config);
  ~MessageBus();

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  using Handler = std::function<void(Envelope)>;

  /// Registers a named endpoint; the name supports discovery. Names must
  /// be unique. Returns the new address. The endpoint's inbox comes from
  /// Config::inboxes[name], falling back to Config::default_inbox.
  Address add_endpoint(std::string name, Handler handler);

  void remove_endpoint(Address address);

  /// Name-based discovery (paper §3: "typical ... discovery" mechanisms).
  [[nodiscard]] std::optional<Address> lookup(const std::string& name) const;

  /// Posts an envelope for asynchronous delivery after latency + jitter.
  /// The payload is shared, not copied: posting the same SharedBytes to N
  /// destinations is N refcount bumps on one buffer. The fault injector
  /// (when configured) may drop, delay, or duplicate it; links are
  /// identified by endpoint names, so plans are stable across runs.
  void post(Address from, Address to, MessageType type, util::SharedBytes payload);

  /// Installs (or replaces) an endpoint's inbox at runtime; queued
  /// envelopes are preserved. Used by tests and operator tooling.
  void set_inbox(Address address, InboxConfig config);

  /// Marks a named endpoint down (crashed) or back up. While down, the
  /// endpoint keeps its name and address — discovery still resolves, and
  /// senders keep posting — but every arrival is counted and discarded,
  /// modelling a crash-stop process whose peers cannot tell it is gone.
  /// Going down also wipes any queued inbox envelopes (volatile memory
  /// dies with the process). Unknown names are ignored.
  void set_endpoint_down(const std::string& name, bool down);
  [[nodiscard]] bool endpoint_down(const std::string& name) const;

  /// Registers native telemetry instruments (envelope transit-time and
  /// size distributions) and a pull collector exposing the bus counters
  /// (garnet.bus.posted/delivered/dropped_no_endpoint/bytes), the
  /// payload-path accounting (garnet.bus.payload_*), the fault counters
  /// (garnet.bus.faults{kind=...}), the overload accounting
  /// (garnet.bus.shed{class,policy}, garnet.bus.nacks,
  /// garnet.bus.inbox_depth), and the RPC reliability + breaker counters
  /// (garnet.rpc.*).
  void set_metrics(obs::MetricsRegistry& registry);

  /// Fault injector installed by Config::faults; nullptr when the plan is
  /// disabled. Non-owning — used for manual partition control and for
  /// reading fault counters / the replay journal.
  [[nodiscard]] FaultInjector* fault_injector() noexcept { return injector_.get(); }
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept { return injector_.get(); }

  [[nodiscard]] RpcStats& rpc_stats() noexcept { return rpc_stats_; }
  [[nodiscard]] const RpcStats& rpc_stats() const noexcept { return rpc_stats_; }

  /// Shed accounting across every bounded inbox on the bus.
  [[nodiscard]] const ShedStats& shed_stats() const noexcept { return shed_stats_; }
  /// Deterministic one-line-per-shed rendering for replay comparison
  /// (empty unless Config::shed_journal_limit > 0).
  [[nodiscard]] std::string shed_journal_text() const;
  /// The raw journal records (the shard plane merges these across its
  /// per-shard buses before rendering).
  [[nodiscard]] const std::vector<ShedRecord>& shed_journal() const noexcept {
    return shed_journal_;
  }

  /// Queued envelopes at one endpoint (0 for inactive inboxes or unknown
  /// addresses); the in-service envelope is not counted.
  [[nodiscard]] std::size_t inbox_depth(Address address) const;
  /// Sum of all endpoint inbox depths.
  [[nodiscard]] std::size_t total_inbox_depth() const;

  /// Scheduling class of a message type under this bus's configuration.
  [[nodiscard]] TrafficClass classify(MessageType type) const;

  /// Default circuit-breaker contract RpcNodes inherit at construction.
  [[nodiscard]] const BreakerConfig& breaker_config() const noexcept { return config_.breaker; }

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] util::SimTime now() const noexcept { return scheduler_.now(); }

 private:
  /// Two-class bounded queue with a serial server: one envelope is in
  /// service for `service_time`; arrivals meanwhile queue, control ahead
  /// of data; past capacity the OverflowPolicy decides who is shed.
  struct Inbox {
    InboxConfig config;
    std::deque<Envelope> control;
    std::deque<Envelope> data;
    bool busy = false;

    [[nodiscard]] std::size_t depth() const noexcept { return control.size() + data.size(); }
    explicit Inbox(InboxConfig c) : config(c) {}
  };

  struct EndpointEntry {
    std::string name;
    Handler handler;
    std::unique_ptr<Inbox> inbox;  ///< Null when the inbox is inactive.
    bool down = false;             ///< Crashed: arrivals counted and discarded.
  };

  void deliver_after(util::Duration delay, Envelope envelope);
  void arrive(Envelope envelope);
  void enqueue(EndpointEntry& entry, Envelope envelope);
  void serve(EndpointEntry& entry, Envelope envelope);
  void service_done(Address address);
  void shed(const Envelope& envelope, TrafficClass cls, OverflowPolicy policy);
  void nack(const Envelope& envelope);
  [[nodiscard]] const std::string& name_of(Address address) const;
  void collect(obs::SnapshotBuilder& out) const;

  sim::Scheduler& scheduler_;
  Config config_;
  std::unordered_set<std::uint16_t> control_types_;
  std::unordered_map<std::uint32_t, EndpointEntry> endpoints_;
  std::unordered_map<std::string, std::uint32_t> names_;
  std::uint32_t next_address_ = 1;
  std::uint64_t jitter_state_ = 0x6A1B2C3D4E5F6071ull;
  BusStats stats_;
  RpcStats rpc_stats_;
  ShedStats shed_stats_;
  std::vector<ShedRecord> shed_journal_;
  std::unique_ptr<FaultInjector> injector_;
  obs::Histogram* transit_histogram_ = nullptr;
  obs::Histogram* size_histogram_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet::net
