// Fixed-network messaging substrate.
//
// Figure 1 shows two interaction styles among Garnet's services:
// event-based asynchronous message passing (the default — "unless
// otherwise indicated, communication is based on asynchronous message
// exchange", §3) and remote procedure call (net/rpc.hpp, layered on this
// bus). Services are logically separate entities exchanging serialised
// envelopes; a configurable delivery latency models the fixed network.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace garnet::net {

/// Endpoint address on the fixed network. 0 is never a valid address.
struct Address {
  std::uint32_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const Address&) const = default;
};

/// Application-level message type tag. Values below 100 are reserved for
/// the substrate (RPC framing); services define their own above that.
enum class MessageType : std::uint16_t {
  kRpcRequest = 1,
  kRpcResponse = 2,
  kAppBase = 100,
};

[[nodiscard]] constexpr MessageType app_type(std::uint16_t offset) {
  return static_cast<MessageType>(static_cast<std::uint16_t>(MessageType::kAppBase) + offset);
}

struct Envelope {
  Address from;
  Address to;
  MessageType type = MessageType::kAppBase;
  util::Bytes payload;
  util::SimTime sent_at;
};

struct BusStats {
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_endpoint = 0;
  std::uint64_t bytes = 0;
};

class MessageBus {
 public:
  struct Config {
    util::Duration latency = util::Duration::micros(200);
    util::Duration max_jitter = util::Duration::micros(100);
  };

  MessageBus(sim::Scheduler& scheduler, Config config);

  using Handler = std::function<void(Envelope)>;

  /// Registers a named endpoint; the name supports discovery. Names must
  /// be unique. Returns the new address.
  Address add_endpoint(std::string name, Handler handler);

  void remove_endpoint(Address address);

  /// Name-based discovery (paper §3: "typical ... discovery" mechanisms).
  [[nodiscard]] std::optional<Address> lookup(const std::string& name) const;

  /// Posts an envelope for asynchronous delivery. Delivery is reliable
  /// (the fixed network, unlike the radio) but takes latency + jitter.
  void post(Address from, Address to, MessageType type, util::Bytes payload);

  /// Registers native telemetry instruments (envelope transit-time and
  /// size distributions) in `registry`.
  void set_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] util::SimTime now() const noexcept { return scheduler_.now(); }

 private:
  struct EndpointEntry {
    std::string name;
    Handler handler;
  };

  sim::Scheduler& scheduler_;
  Config config_;
  std::unordered_map<std::uint32_t, EndpointEntry> endpoints_;
  std::unordered_map<std::string, std::uint32_t> names_;
  std::uint32_t next_address_ = 1;
  std::uint64_t jitter_state_ = 0x6A1B2C3D4E5F6071ull;
  BusStats stats_;
  obs::Histogram* transit_histogram_ = nullptr;
  obs::Histogram* size_histogram_ = nullptr;
};

}  // namespace garnet::net
