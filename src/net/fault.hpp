// Deterministic fault injection for the fixed-network bus.
//
// The paper presumes "service-level parallelism and replication ... for
// efficiency, data-integrity, and fault-tolerance" (§3), which only
// matters if the network can actually fail. A FaultPlan describes the
// failure regime — per-link and global drop probability, extra latency,
// duplication, reordering, and named partitions that open and heal at
// sim times — and a FaultInjector executes it from one seed, so every
// chaos run replays exactly: same plan + same workload ⇒ byte-identical
// fault sequence and identical telemetry counters.
//
// The injector sits inside MessageBus::post. Links are identified by
// endpoint *names* (stable across runs), not addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace garnet::net {

enum class FaultKind : std::uint8_t {
  kDrop,       ///< Envelope silently discarded.
  kDuplicate,  ///< A second copy delivered after the first.
  kDelay,      ///< Deterministic extra latency added.
  kReorder,    ///< Randomised extra latency; may overtake later posts.
  kPartition,  ///< Dropped because an open partition separates the link.
  kCrash,      ///< A service process killed at a scheduled sim time.
  kRestart,    ///< A crashed service process revived after its delay.
  kRelayCrash,    ///< A relay sensor node killed at a scheduled sim time.
  kRelayRestart,  ///< A crashed relay revived (rejoins the tree cold).
  kBeaconLoss,    ///< A relay stops hearing tree beacons (radio fault).
  kBeaconRestore, ///< Beacon reception restored.
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// Fault parameters for one link (or the global default). Probabilities
/// are evaluated independently per envelope, in a fixed draw order.
struct LinkFaults {
  double drop = 0.0;       ///< P(envelope never arrives).
  double duplicate = 0.0;  ///< P(envelope arrives twice).
  double reorder = 0.0;    ///< P(envelope gets a random extra delay).
  util::Duration extra_latency{};  ///< Added to every envelope on the link.
  util::Duration reorder_window = util::Duration::millis(2);  ///< U[0, window) when reordered.
  /// Drops exactly the first N envelopes on the link — a deterministic
  /// loss primitive for tests that need "the first response is lost"
  /// without tuning seeds.
  std::uint32_t drop_first = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || extra_latency.ns > 0 ||
           drop_first > 0;
  }
};

/// A complete, replayable description of a chaos run.
struct FaultPlan {
  std::uint64_t seed = 0xC4A05FA017ull;

  /// Applied to every envelope whose link has no dedicated entry.
  LinkFaults global;

  /// Per-link overrides, keyed by (from endpoint name, to endpoint name).
  std::map<std::pair<std::string, std::string>, LinkFaults> links;

  /// A named partition isolates `members` from every other endpoint (both
  /// directions) while open; traffic among members still flows.
  struct PartitionSpec {
    std::string name;
    std::vector<std::string> members;
    util::SimTime opens_at{};                  ///< <= 0 opens immediately.
    std::optional<util::SimTime> heals_at;     ///< Unset: heals only manually.
  };
  std::vector<PartitionSpec> partitions;

  /// A scheduled process crash: the named service (a garnet/recovery
  /// service name, e.g. "dispatch") dies at `at` and, when `restart_after`
  /// is set, rejoins that much later. Crash events are time-scheduled like
  /// partitions — they consume no RNG draws, so adding one never perturbs
  /// the link-fault decision stream of an otherwise identical plan.
  struct CrashSpec {
    std::string service;
    util::SimTime at{};
    std::optional<util::Duration> restart_after;
  };
  std::vector<CrashSpec> crashes;

  /// A scheduled wireless relay crash: sensor `node` dies at `at` and,
  /// when `restart_after` is set, rejoins that much later — with cold
  /// routing state, so the tree must re-absorb it. Pure time triggers,
  /// exactly like CrashSpec: zero RNG draws, so adding relay churn never
  /// perturbs the link-fault decision stream of the same plan.
  struct RelayFaultSpec {
    std::uint32_t node = 0;
    util::SimTime at{};
    std::optional<util::Duration> restart_after;
  };
  std::vector<RelayFaultSpec> relay_faults;

  /// A scheduled beacon-reception fault: sensor `node` goes deaf to tree
  /// beacons at `at` (its parent will be declared lost after the missed-
  /// beacon timeout) and recovers `restore_after` later, when set. Also a
  /// pure time trigger — zero RNG draws.
  struct BeaconFaultSpec {
    std::uint32_t node = 0;
    util::SimTime at{};
    std::optional<util::Duration> restore_after;
  };
  std::vector<BeaconFaultSpec> beacon_faults;

  /// When > 0, the injector records the first N faults in a journal whose
  /// text rendering is byte-comparable across runs (determinism tests).
  std::size_t journal_limit = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return global.any() || !links.empty() || !partitions.empty() || !crashes.empty() ||
           !relay_faults.empty() || !beacon_faults.empty();
  }
};

/// One injected fault, for the replay journal.
struct FaultRecord {
  FaultKind kind = FaultKind::kDrop;
  std::string from;
  std::string to;
  util::SimTime at;
};

struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partitioned = 0;
  std::uint64_t crashed = 0;
  std::uint64_t restarted = 0;
  std::uint64_t relay_crashed = 0;
  std::uint64_t relay_restarted = 0;
  std::uint64_t beacon_lost = 0;
  std::uint64_t beacon_restored = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return dropped + duplicated + delayed + reordered + partitioned + crashed + restarted +
           relay_crashed + relay_restarted + beacon_lost + beacon_restored;
  }
};

class FaultInjector {
 public:
  /// Schedules partition open/heal events on `scheduler` per the plan.
  FaultInjector(sim::Scheduler& scheduler, FaultPlan plan);

  /// What MessageBus::post must do with one envelope. Draws are made in a
  /// fixed order (partition check, drop, duplicate, reorder), so the
  /// decision stream is a pure function of (plan, call sequence).
  struct Verdict {
    bool deliver = true;
    bool duplicate = false;
    util::Duration extra_delay{};      ///< Applied to the (first) copy.
    util::Duration duplicate_delay{};  ///< Additional delay of the copy.
  };

  [[nodiscard]] Verdict decide(const std::string& from, const std::string& to);

  /// Executes the plan's CrashSpec events. The handler receives the
  /// service name and restart=false at crash time, restart=true at
  /// revival. Bind it before the scheduler reaches the first crash time;
  /// without one, crashes are still counted and journalled.
  using CrashHandler = std::function<void(const std::string& service, bool restart)>;
  void set_crash_handler(CrashHandler handler) { crash_handler_ = std::move(handler); }

  /// Executes RelayFaultSpec events: restart=false at crash time,
  /// restart=true at revival. The handler typically stops/starts the
  /// matching wireless::SensorNode.
  using RelayFaultHandler = std::function<void(std::uint32_t node, bool restart)>;
  void set_relay_fault_handler(RelayFaultHandler handler) {
    relay_fault_handler_ = std::move(handler);
  }

  /// Executes BeaconFaultSpec events: deaf=true at fault time, deaf=false
  /// at restore. The handler typically flips TreeRouter::set_beacon_deaf.
  using BeaconFaultHandler = std::function<void(std::uint32_t node, bool deaf)>;
  void set_beacon_fault_handler(BeaconFaultHandler handler) {
    beacon_fault_handler_ = std::move(handler);
  }

  /// Manual partition control (sim-time control comes from the plan).
  void open_partition(std::string_view name);
  void heal_partition(std::string_view name);
  [[nodiscard]] bool partition_open(std::string_view name) const;

  [[nodiscard]] const FaultCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const std::vector<FaultRecord>& journal() const noexcept { return journal_; }
  /// Deterministic one-line-per-fault rendering for replay comparison.
  [[nodiscard]] std::string journal_text() const;

 private:
  struct PartitionState {
    FaultPlan::PartitionSpec spec;
    std::set<std::string, std::less<>> members;
    bool open = false;
  };

  [[nodiscard]] const LinkFaults& faults_for(const std::string& from, const std::string& to) const;
  /// True when some open partition has exactly one of {from, to} inside.
  [[nodiscard]] bool partition_blocks(const std::string& from, const std::string& to) const;
  void record(FaultKind kind, const std::string& from, const std::string& to);
  void fire_crash(std::size_t index);
  void fire_restart(std::size_t index);
  void fire_relay(std::size_t index, bool restart);
  void fire_beacon(std::size_t index, bool deaf);

  sim::Scheduler& scheduler_;
  FaultPlan plan_;
  util::Rng rng_;
  std::vector<PartitionState> partitions_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> link_posts_;
  FaultCounters counters_;
  std::vector<FaultRecord> journal_;
  CrashHandler crash_handler_;
  RelayFaultHandler relay_fault_handler_;
  BeaconFaultHandler beacon_fault_handler_;
};

}  // namespace garnet::net
