// Overload-control vocabulary for the fixed-network substrate.
//
// PR 2 made the network *lossy* on purpose; this header makes it
// *overloadable* on purpose. Three cooperating mechanisms (GSN-style
// bounded buffering and shedding, Perera et al., arXiv:1301.0157):
//
//   * Bounded inboxes — every bus endpoint may carry a finite inbox with
//     a per-envelope service time, so a slow service visibly queues and,
//     past capacity, sheds by an explicit policy instead of growing
//     without bound.
//   * Priority classes — control-plane traffic (RPC framing, actuation,
//     credit replenishment) is queued ahead of data-plane deliveries and
//     is never shed while any data-class envelope can be shed instead.
//   * Circuit breakers — a caller that keeps exhausting its retry budget
//     against one callee stops hammering it and fails fast until a
//     half-open probe proves the callee is back.
//
// Everything is deterministic: shed decisions are pure functions of the
// queue state, so identical seeds produce identical shed journals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/time.hpp"

namespace garnet::net {

/// What a bounded inbox does with the envelope that does not fit.
enum class OverflowPolicy : std::uint8_t {
  kDropNewest,  ///< Silently discard the arriving envelope.
  kDropOldest,  ///< Evict the oldest queued envelope to make room.
  kRejectNack,  ///< Discard like kDropNewest, but echo a kNack to the sender.
};

/// Scheduling class of one envelope. Control traffic (RPC framing plus
/// the app types the deployment registers as control) is dequeued first
/// and is only ever shed when no data-class envelope remains to shed.
enum class TrafficClass : std::uint8_t { kControl, kData };

[[nodiscard]] std::string_view to_string(OverflowPolicy policy);
[[nodiscard]] std::string_view to_string(TrafficClass cls);

/// Per-endpoint inbox shape. The default (capacity 0, service_time 0) is
/// inactive: envelopes are handed to the handler on arrival exactly as
/// before this layer existed, and nothing is queued or shed.
struct InboxConfig {
  /// Maximum queued envelopes (control + data together). 0 = unbounded.
  std::size_t capacity = 0;
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
  /// Virtual time the endpoint spends handling one envelope; arrivals
  /// during that window queue. 0 = the handler is instantaneous.
  util::Duration service_time{};

  [[nodiscard]] bool active() const noexcept {
    return capacity > 0 || service_time.ns > 0;
  }
};

/// Per-callee circuit breaker for RpcNode. Disabled by default.
///
/// State machine: closed --(failure_threshold consecutive exhausted
/// budgets)--> open --(open_for elapses)--> half-open --(one probe call
/// succeeds)--> closed, or --(probe exhausts)--> open again. While open
/// (and while a half-open probe is in flight) calls fail fast with
/// RpcError::kCircuitOpen instead of spending a retry budget against a
/// dead or drowning callee.
struct BreakerConfig {
  /// Consecutive exhausted budgets that trip the breaker. 0 = disabled.
  std::uint32_t failure_threshold = 0;
  /// How long the breaker stays open before allowing a half-open probe.
  util::Duration open_for = util::Duration::millis(500);

  [[nodiscard]] bool enabled() const noexcept { return failure_threshold > 0; }
};

/// Shed accounting, split by (class, policy) so the exposition can prove
/// the priority invariant: control is never shed while data still queues.
struct ShedStats {
  std::uint64_t data_drop_newest = 0;
  std::uint64_t data_drop_oldest = 0;
  std::uint64_t data_reject_nack = 0;
  std::uint64_t control_drop_newest = 0;
  std::uint64_t control_drop_oldest = 0;
  std::uint64_t control_reject_nack = 0;
  std::uint64_t nacks_sent = 0;

  [[nodiscard]] std::uint64_t data_total() const noexcept {
    return data_drop_newest + data_drop_oldest + data_reject_nack;
  }
  [[nodiscard]] std::uint64_t control_total() const noexcept {
    return control_drop_newest + control_drop_oldest + control_reject_nack;
  }

  /// Cross-shard aggregation (each shard's bus keeps its own ledger; the
  /// plane sums them at the merge barrier).
  ShedStats& operator+=(const ShedStats& other) noexcept {
    data_drop_newest += other.data_drop_newest;
    data_drop_oldest += other.data_drop_oldest;
    data_reject_nack += other.data_reject_nack;
    control_drop_newest += other.control_drop_newest;
    control_drop_oldest += other.control_drop_oldest;
    control_reject_nack += other.control_reject_nack;
    nacks_sent += other.nacks_sent;
    return *this;
  }
};

}  // namespace garnet::net
