#include "net/rpc.hpp"

#include <cassert>

namespace garnet::net {
namespace {

// RPC request payload:  [u64 call id][u16 method][args...]
// RPC response payload: [u64 call id][u8 status][reply...]
enum class Status : std::uint8_t { kOk = 0, kNoSuchMethod = 1, kFailure = 2 };

}  // namespace

std::string_view to_string(RpcError e) {
  switch (e) {
    case RpcError::kTimeout: return "timeout";
    case RpcError::kNoSuchMethod: return "no such method";
    case RpcError::kRemoteFailure: return "remote failure";
  }
  return "unknown";
}

RpcNode::RpcNode(MessageBus& bus, std::string name, std::function<void(Envelope)> fallback)
    : bus_(bus), fallback_(std::move(fallback)) {
  address_ = bus_.add_endpoint(std::move(name), [this](Envelope e) { on_envelope(std::move(e)); });
}

RpcNode::~RpcNode() {
  for (auto& [id, call] : pending_) bus_.scheduler().cancel(call.timeout);
  bus_.remove_endpoint(address_);
}

void RpcNode::expose(MethodId method, RpcHandler handler) {
  assert(handler);
  expose_async(method, [handler = std::move(handler)](Address caller, util::BytesView args,
                                                      RpcResponder respond) {
    respond(handler(caller, args));
  });
}

void RpcNode::expose_async(MethodId method, AsyncRpcHandler handler) {
  assert(handler);
  const auto [it, inserted] = methods_.emplace(method, std::move(handler));
  assert(inserted && "method already exposed");
  (void)it;
  (void)inserted;
}

void RpcNode::call(Address callee, MethodId method, util::Bytes args, RpcCallback on_done,
                   util::Duration timeout) {
  assert(on_done);
  const std::uint64_t call_id = next_call_id_++;

  util::ByteWriter w(10 + args.size());
  w.u64(call_id);
  w.u16(method);
  w.raw(args);

  const sim::EventId timer = bus_.scheduler().schedule_after(timeout, [this, call_id] {
    const auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    RpcCallback cb = std::move(it->second.on_done);
    pending_.erase(it);
    cb(util::Err{RpcError::kTimeout});
  });

  pending_.emplace(call_id, PendingCall{std::move(on_done), timer});
  bus_.post(address_, callee, MessageType::kRpcRequest, std::move(w).take());
}

void RpcNode::post(Address to, MessageType type, util::Bytes payload) {
  bus_.post(address_, to, type, std::move(payload));
}

void RpcNode::on_envelope(Envelope envelope) {
  switch (envelope.type) {
    case MessageType::kRpcRequest:
      on_request(envelope);
      return;
    case MessageType::kRpcResponse:
      on_response(envelope);
      return;
    default:
      if (fallback_) fallback_(std::move(envelope));
      return;
  }
}

void RpcNode::on_request(const Envelope& envelope) {
  util::ByteReader r(envelope.payload);
  const std::uint64_t call_id = r.u64();
  const MethodId method = r.u16();
  if (!r.ok()) return;  // malformed request; nothing to answer

  const Address caller = envelope.from;
  const auto it = methods_.find(method);
  if (it == methods_.end()) {
    util::ByteWriter w(9);
    w.u64(call_id);
    w.u8(static_cast<std::uint8_t>(Status::kNoSuchMethod));
    bus_.post(address_, caller, MessageType::kRpcResponse, std::move(w).take());
    return;
  }

  // The responder may outlive this stack frame (deferred responses); it
  // captures everything it needs by value.
  RpcResponder respond = [this, call_id, caller](RpcResult result) {
    util::ByteWriter w;
    w.u64(call_id);
    if (result.ok()) {
      w.u8(static_cast<std::uint8_t>(Status::kOk));
      w.raw(result.value());
    } else {
      w.u8(static_cast<std::uint8_t>(Status::kFailure));
    }
    bus_.post(address_, caller, MessageType::kRpcResponse, std::move(w).take());
  };

  const util::BytesView args = envelope.payload;
  it->second(caller, args.subspan(r.consumed()), std::move(respond));
}

void RpcNode::on_response(const Envelope& envelope) {
  util::ByteReader r(envelope.payload);
  const std::uint64_t call_id = r.u64();
  const auto status = static_cast<Status>(r.u8());
  if (!r.ok()) return;

  const auto it = pending_.find(call_id);
  if (it == pending_.end()) return;  // raced with timeout; already reported
  bus_.scheduler().cancel(it->second.timeout);
  RpcCallback cb = std::move(it->second.on_done);
  pending_.erase(it);

  switch (status) {
    case Status::kOk: {
      const util::BytesView payload = envelope.payload;
      cb(util::Bytes(payload.begin() + static_cast<std::ptrdiff_t>(r.consumed()), payload.end()));
      return;
    }
    case Status::kNoSuchMethod:
      cb(util::Err{RpcError::kNoSuchMethod});
      return;
    case Status::kFailure:
      cb(util::Err{RpcError::kRemoteFailure});
      return;
  }
}

}  // namespace garnet::net
