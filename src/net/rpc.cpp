#include "net/rpc.hpp"

#include <algorithm>
#include <cassert>

namespace garnet::net {
namespace {

// RPC request payload:  [u64 call id][u16 method][u8 flags][args...]
// RPC response payload: [u64 call id][u8 status][reply...]
enum class Status : std::uint8_t { kOk = 0, kNoSuchMethod = 1, kFailure = 2 };

constexpr std::uint8_t kFlagIdempotent = 0x01;

}  // namespace

std::string_view to_string(RpcError e) {
  switch (e) {
    case RpcError::kTimeout: return "timeout";
    case RpcError::kNoSuchMethod: return "no such method";
    case RpcError::kRemoteFailure: return "remote failure";
    case RpcError::kCircuitOpen: return "circuit open";
  }
  return "unknown";
}

RpcNode::RpcNode(MessageBus& bus, std::string name, std::function<void(Envelope)> fallback)
    : bus_(bus), fallback_(std::move(fallback)) {
  address_ = bus_.add_endpoint(std::move(name), [this](Envelope e) { on_envelope(std::move(e)); });
  // Seeded from the (deterministically assigned) address so every node
  // has an independent but replayable jitter stream.
  backoff_rng_ = util::Rng(0x9E3779B97F4A7C15ull ^ address_.value);
}

RpcNode::~RpcNode() {
  for (auto& [id, call] : pending_) bus_.scheduler().cancel(call.timer);
  // The bus's open-breaker gauge tracks live nodes only.
  for (const auto& [callee, breaker] : breakers_) {
    if (breaker.state != BreakerState::kClosed) --bus_.rpc_stats().open_breakers;
  }
  bus_.remove_endpoint(address_);
}

RpcNode::Breaker* RpcNode::breaker_for(Address callee) {
  const BreakerConfig& config = bus_.breaker_config();
  if (!config.enabled()) return nullptr;
  Breaker& breaker = breakers_[callee.value];
  // Lazy open -> half-open: evaluated when the next call arrives rather
  // than on a timer, so an idle breaker costs nothing.
  if (breaker.state == BreakerState::kOpen &&
      bus_.now() >= breaker.opened_at + config.open_for) {
    breaker.state = BreakerState::kHalfOpen;
    breaker.probe_inflight = false;
  }
  return &breaker;
}

RpcNode::BreakerState RpcNode::breaker_state(Address callee) {
  const Breaker* breaker = breaker_for(callee);
  return breaker != nullptr ? breaker->state : BreakerState::kClosed;
}

void RpcNode::note_exhausted(Address callee) {
  Breaker* breaker = breaker_for(callee);
  if (breaker == nullptr) return;
  ++breaker->consecutive_failures;
  if (breaker->state == BreakerState::kHalfOpen) {
    // The probe itself exhausted: straight back to open for another
    // cool-down. The breaker was already counted as non-closed.
    breaker->state = BreakerState::kOpen;
    breaker->opened_at = bus_.now();
    breaker->probe_inflight = false;
    ++bus_.rpc_stats().breaker_opens;
  } else if (breaker->state == BreakerState::kClosed &&
             breaker->consecutive_failures >= bus_.breaker_config().failure_threshold) {
    breaker->state = BreakerState::kOpen;
    breaker->opened_at = bus_.now();
    ++bus_.rpc_stats().breaker_opens;
    ++bus_.rpc_stats().open_breakers;
  }
}

void RpcNode::note_answered(Address callee) {
  const auto it = breakers_.find(callee.value);
  if (it == breakers_.end()) return;
  Breaker& breaker = it->second;
  breaker.consecutive_failures = 0;
  // Any answer proves the callee alive — including a late one that races
  // the open state: recover immediately rather than waiting out open_for.
  if (breaker.state != BreakerState::kClosed) {
    breaker.state = BreakerState::kClosed;
    breaker.probe_inflight = false;
    --bus_.rpc_stats().open_breakers;
  }
}

void RpcNode::expose(MethodId method, RpcHandler handler) {
  assert(handler);
  expose_async(method, [handler = std::move(handler)](Address caller, util::BytesView args,
                                                      RpcResponder respond) {
    respond(handler(caller, args));
  });
}

void RpcNode::expose_async(MethodId method, AsyncRpcHandler handler) {
  assert(handler);
  const auto [it, inserted] = methods_.emplace(method, std::move(handler));
  assert(inserted && "method already exposed");
  (void)it;
  (void)inserted;
}

void RpcNode::call(Address callee, MethodId method, util::Bytes args, CallOptions options,
                   RpcCallback on_done) {
  assert(on_done);

  if (Breaker* breaker = breaker_for(callee); breaker != nullptr) {
    if (breaker->state == BreakerState::kOpen ||
        (breaker->state == BreakerState::kHalfOpen && breaker->probe_inflight)) {
      // Fail fast without touching the wire; asynchronously, so callers
      // see the same callback discipline as every other outcome.
      ++bus_.rpc_stats().breaker_fast_fails;
      bus_.scheduler().schedule_after(
          util::Duration{}, [cb = std::move(on_done)] { cb(util::Err{RpcError::kCircuitOpen}); });
      return;
    }
    if (breaker->state == BreakerState::kHalfOpen) breaker->probe_inflight = true;
  }

  const std::uint64_t call_id = next_call_id_++;

  util::ByteWriter w(11 + args.size());
  w.u64(call_id);
  w.u16(method);
  w.u8(options.idempotent ? kFlagIdempotent : 0);
  w.raw(args);

  PendingCall pending;
  pending.on_done = std::move(on_done);
  pending.callee = callee;
  pending.frame = std::move(w).take();
  pending.next_backoff = options.backoff;
  pending.options = options;
  pending_.emplace(call_id, std::move(pending));

  ++bus_.rpc_stats().calls;
  send_attempt(call_id);
}

void RpcNode::send_attempt(std::uint64_t call_id) {
  const auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  PendingCall& pending = it->second;

  ++pending.sends;
  pending.timer = bus_.scheduler().schedule_after(
      pending.options.timeout, [this, call_id] { on_attempt_timeout(call_id); });
  bus_.post(address_, pending.callee, MessageType::kRpcRequest, pending.frame);
}

void RpcNode::on_attempt_timeout(std::uint64_t call_id) {
  const auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  PendingCall& pending = it->second;

  if (pending.sends <= pending.options.retries) {
    ++bus_.rpc_stats().retries;
    util::Duration pause = pending.next_backoff;
    if (pending.options.jitter > 0.0 && pause.ns > 0) {
      const double factor =
          1.0 + pending.options.jitter * (2.0 * backoff_rng_.uniform() - 1.0);
      pause = util::Duration::nanos(
          static_cast<std::int64_t>(static_cast<double>(pause.ns) * factor));
    }
    pending.next_backoff = std::min(
        util::Duration::nanos(static_cast<std::int64_t>(
            static_cast<double>(pending.next_backoff.ns) * pending.options.backoff_factor)),
        pending.options.max_backoff);
    pending.timer =
        bus_.scheduler().schedule_after(pause, [this, call_id] { send_attempt(call_id); });
    return;
  }

  ++bus_.rpc_stats().exhausted;
  note_exhausted(pending.callee);
  RpcCallback cb = std::move(pending.on_done);
  pending_.erase(it);
  cb(util::Err{RpcError::kTimeout});
}

void RpcNode::post(Address to, MessageType type, util::SharedBytes payload) {
  bus_.post(address_, to, type, std::move(payload));
}

void RpcNode::on_envelope(Envelope envelope) {
  switch (envelope.type) {
    case MessageType::kRpcRequest:
      on_request(envelope);
      return;
    case MessageType::kRpcResponse:
      on_response(envelope);
      return;
    case MessageType::kNack:
      on_nack(envelope);
      return;
    default:
      if (fallback_) fallback_(std::move(envelope));
      return;
  }
}

void RpcNode::remember(const DedupKey& key, DedupEntry entry) {
  if (dedup_order_.size() >= kDedupCapacity) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
  dedup_.emplace(key, std::move(entry));
  dedup_order_.push_back(key);
}

void RpcNode::on_request(const Envelope& envelope) {
  util::ByteReader r(envelope.payload);
  const std::uint64_t call_id = r.u64();
  const MethodId method = r.u16();
  const std::uint8_t flags = r.u8();
  if (!r.ok()) return;  // malformed request; nothing to answer

  const Address caller = envelope.from;
  const bool cached = (flags & kFlagIdempotent) == 0;
  const DedupKey key{caller.value, call_id};

  if (cached) {
    // At-most-once: a repeat of a request we have already seen (retry or
    // fault duplicate) must not re-execute the handler. Finished entries
    // answer from the cache; in-flight ones stay silent — the original
    // execution's response is still coming.
    if (const auto it = dedup_.find(key); it != dedup_.end()) {
      ++bus_.rpc_stats().deduped;
      if (it->second.done) {
        bus_.post(address_, caller, MessageType::kRpcResponse, it->second.response);
      }
      return;
    }
    remember(key, DedupEntry{});
  }

  // The responder may outlive this stack frame (deferred responses); it
  // captures everything it needs by value. Every outcome — ok, failure,
  // unknown method — produces a response frame that is cached for
  // repeats, so at-most-once covers error paths too.
  RpcResponder respond = [this, call_id, caller, cached, key](RpcResult result) {
    util::ByteWriter w;
    w.u64(call_id);
    if (result.ok()) {
      w.u8(static_cast<std::uint8_t>(Status::kOk));
      w.raw(result.value());
    } else if (result.error() == RpcError::kNoSuchMethod) {
      w.u8(static_cast<std::uint8_t>(Status::kNoSuchMethod));
    } else {
      w.u8(static_cast<std::uint8_t>(Status::kFailure));
    }
    util::SharedBytes frame = std::move(w).take();
    if (cached) {
      if (const auto it = dedup_.find(key); it != dedup_.end()) {
        it->second.done = true;
        it->second.response = frame;  // shares the buffer with this post
      }
    }
    bus_.post(address_, caller, MessageType::kRpcResponse, std::move(frame));
  };

  const auto it = methods_.find(method);
  if (it == methods_.end()) {
    respond(util::Err{RpcError::kNoSuchMethod});
    return;
  }

  const util::BytesView args = envelope.payload;
  it->second(caller, args.subspan(r.consumed()), std::move(respond));
}

void RpcNode::on_nack(const Envelope& envelope) {
  // An overloaded inbox rejected one of our envelopes (kRejectNack). The
  // payload names the original type plus its first 8 bytes; for a shed
  // RPC request those are the call id, which lets the attempt fail now
  // instead of burning the rest of its timeout. A shed *response* is not
  // actionable here — the caller's own timeout covers it.
  util::ByteReader r(envelope.payload);
  const auto original = static_cast<MessageType>(r.u16());
  const std::uint64_t call_id = r.u64();
  if (!r.ok() || original != MessageType::kRpcRequest) return;
  const auto it = pending_.find(call_id);
  // The callee-address check guards against call-id collisions: ids are
  // per-caller, so a nack echoing someone else's id must not match.
  if (it == pending_.end() || !(it->second.callee == envelope.from)) return;
  ++bus_.rpc_stats().nacked;
  bus_.scheduler().cancel(it->second.timer);
  on_attempt_timeout(call_id);  // retry (with backoff) or exhaust, as usual
}

void RpcNode::on_response(const Envelope& envelope) {
  util::ByteReader r(envelope.payload);
  const std::uint64_t call_id = r.u64();
  const auto status = static_cast<Status>(r.u8());
  if (!r.ok()) return;

  note_answered(envelope.from);
  const auto it = pending_.find(call_id);
  // Late or duplicated response: the call already completed (or gave up);
  // the callback must not fire again.
  if (it == pending_.end()) return;
  // Cancels either the attempt timeout or a pending backoff/retry — a
  // response that arrives between the two still completes the call.
  bus_.scheduler().cancel(it->second.timer);
  RpcCallback cb = std::move(it->second.on_done);
  pending_.erase(it);

  switch (status) {
    case Status::kOk: {
      const util::BytesView payload = envelope.payload;
      cb(util::Bytes(payload.begin() + static_cast<std::ptrdiff_t>(r.consumed()), payload.end()));
      return;
    }
    case Status::kNoSuchMethod:
      cb(util::Err{RpcError::kNoSuchMethod});
      return;
    case Status::kFailure:
      cb(util::Err{RpcError::kRemoteFailure});
      return;
  }
}

}  // namespace garnet::net
