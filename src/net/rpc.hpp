// Request/response calls layered on the asynchronous bus.
//
// Figure 1 marks some service interactions as Remote Procedure Call (e.g.
// consumer -> Resource Manager approval). RpcNode gives a service both
// roles: it can expose methods and call methods on peers.
//
// The caller API is built around CallOptions: every call carries its
// timeout, retry budget, and exponential backoff (with deterministic
// jitter), so RPC-dependent services keep working when the bus is running
// under a FaultPlan. Reliability semantics:
//
//   * A retried request is re-sent with the SAME call id, so the callee
//     can recognise it.
//   * Callees keep an at-most-once cache keyed by (caller, call id):
//     a retried or fault-duplicated request whose original was already
//     executed is answered from the cached response instead of being
//     re-executed. CallOptions::idempotent opts a call out of the cache —
//     the handler may simply run again, which is cheaper than caching.
//   * A response arriving after its call already failed (timeout fired
//     and the budget is spent) is dropped; the callback never fires
//     twice. A response arriving between a timeout and the next retry
//     completes the call and cancels the retry.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "net/bus.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace garnet::net {

enum class RpcError : std::uint8_t {
  kTimeout,        ///< No response within the deadline (after all retries).
  kNoSuchMethod,   ///< Callee does not implement the method.
  kRemoteFailure,  ///< Callee handler reported failure.
  kCircuitOpen,    ///< Failed fast: this callee's circuit breaker is open.
};

[[nodiscard]] std::string_view to_string(RpcError e);

using MethodId = std::uint16_t;

/// Per-call reliability contract. The default is one attempt with a 50 ms
/// deadline — the behaviour of the old bare-timeout API.
struct CallOptions {
  /// Per-attempt deadline (not a budget across attempts).
  util::Duration timeout = util::Duration::millis(50);
  /// Re-send budget after the first attempt; 0 = fail on first timeout.
  std::uint32_t retries = 0;
  /// Pause before the first retry; doubles (backoff_factor) per retry up
  /// to max_backoff.
  util::Duration backoff = util::Duration::millis(5);
  double backoff_factor = 2.0;
  util::Duration max_backoff = util::Duration::millis(250);
  /// Proportional +/- jitter on each backoff pause, drawn from the
  /// node's seeded rng (deterministic across runs). 0 disables.
  double jitter = 0.2;
  /// Declares that re-executing the handler is safe, so the callee skips
  /// the at-most-once cache for this call.
  bool idempotent = false;

  [[nodiscard]] static CallOptions with_timeout(util::Duration t) {
    CallOptions options;
    options.timeout = t;
    return options;
  }
  [[nodiscard]] static CallOptions reliable(std::uint32_t retries,
                                            util::Duration timeout = util::Duration::millis(50)) {
    CallOptions options;
    options.timeout = timeout;
    options.retries = retries;
    return options;
  }
};

/// Handler result: ok bytes or failure (mapped to kRemoteFailure).
using RpcResult = util::Result<util::Bytes, RpcError>;
using RpcHandler = std::function<RpcResult(Address caller, util::BytesView args)>;
using RpcCallback = std::function<void(RpcResult)>;

/// Deferred-response handler: the callee answers by invoking `respond`
/// (exactly once, possibly after further asynchronous work such as an
/// admission-control deliberation).
using RpcResponder = std::function<void(RpcResult)>;
using AsyncRpcHandler =
    std::function<void(Address caller, util::BytesView args, RpcResponder respond)>;

class RpcNode {
 public:
  /// Registers `name` on the bus. Incoming non-RPC envelopes are passed to
  /// `fallback` (may be empty when a service is purely RPC).
  RpcNode(MessageBus& bus, std::string name,
          std::function<void(Envelope)> fallback = {});
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  /// Exposes a method. Must not already be registered.
  void expose(MethodId method, RpcHandler handler);

  /// Exposes a method whose response may be produced asynchronously.
  /// The responder captures this node; it must not fire after the node
  /// is destroyed (services own their nodes for the program's lifetime).
  void expose_async(MethodId method, AsyncRpcHandler handler);

  /// Invokes `method` on `callee` under `options`; `on_done` fires exactly
  /// once, with the response or an error (timeout after the retry budget
  /// is spent, or kCircuitOpen immediately when this callee's breaker is
  /// not accepting traffic).
  void call(Address callee, MethodId method, util::Bytes args, CallOptions options,
            RpcCallback on_done);

  /// Circuit-breaker state towards one callee (bus Config::breaker; see
  /// net/overload.hpp for the state machine). kClosed when disabled.
  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
  [[nodiscard]] BreakerState breaker_state(Address callee);

  /// Posts a plain (non-RPC) message from this node's address.
  void post(Address to, MessageType type, util::SharedBytes payload);

  [[nodiscard]] Address address() const noexcept { return address_; }
  [[nodiscard]] MessageBus& bus() noexcept { return bus_; }

 private:
  /// Bound on the at-most-once cache; oldest entries are evicted first.
  static constexpr std::size_t kDedupCapacity = 512;

  /// (caller address, call id): call ids are per-caller, so the pair is
  /// the request's global identity.
  using DedupKey = std::pair<std::uint32_t, std::uint64_t>;

  struct DedupEntry {
    bool done = false;  ///< False while the handler is still running.
    /// Full response frame; repeats re-post the same shared buffer.
    util::SharedBytes response;
  };

  struct PendingCall {
    RpcCallback on_done;
    sim::EventId timer;  ///< Attempt timeout, or the backoff pause timer.
    Address callee;
    /// Request frame; every retry re-posts the same shared buffer.
    util::SharedBytes frame;
    CallOptions options;
    std::uint32_t sends = 0;
    util::Duration next_backoff{};
  };

  /// Per-callee breaker bookkeeping. The open->half-open transition is
  /// lazy: evaluated when the next call towards the callee arrives.
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    std::uint32_t consecutive_failures = 0;
    util::SimTime opened_at;
    bool probe_inflight = false;  ///< Half-open admits exactly one call.
  };

  void on_envelope(Envelope envelope);
  void on_request(const Envelope& envelope);
  void on_response(const Envelope& envelope);
  void on_nack(const Envelope& envelope);
  void send_attempt(std::uint64_t call_id);
  void on_attempt_timeout(std::uint64_t call_id);
  void remember(const DedupKey& key, DedupEntry entry);
  [[nodiscard]] Breaker* breaker_for(Address callee);
  void note_exhausted(Address callee);
  void note_answered(Address callee);

  MessageBus& bus_;
  Address address_;
  std::function<void(Envelope)> fallback_;
  std::unordered_map<MethodId, AsyncRpcHandler> methods_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::map<DedupKey, DedupEntry> dedup_;
  std::deque<DedupKey> dedup_order_;
  std::unordered_map<std::uint32_t, Breaker> breakers_;
  util::Rng backoff_rng_;
  std::uint64_t next_call_id_ = 1;
};

}  // namespace garnet::net
