// Request/response calls layered on the asynchronous bus.
//
// Figure 1 marks some service interactions as Remote Procedure Call (e.g.
// consumer -> Resource Manager approval). RpcNode gives a service both
// roles: it can expose methods and call methods on peers, with timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/bus.hpp"
#include "util/result.hpp"

namespace garnet::net {

enum class RpcError : std::uint8_t {
  kTimeout,        ///< No response within the deadline.
  kNoSuchMethod,   ///< Callee does not implement the method.
  kRemoteFailure,  ///< Callee handler reported failure.
};

[[nodiscard]] std::string_view to_string(RpcError e);

using MethodId = std::uint16_t;

/// Handler result: ok bytes or failure (mapped to kRemoteFailure).
using RpcResult = util::Result<util::Bytes, RpcError>;
using RpcHandler = std::function<RpcResult(Address caller, util::BytesView args)>;
using RpcCallback = std::function<void(RpcResult)>;

/// Deferred-response handler: the callee answers by invoking `respond`
/// (exactly once, possibly after further asynchronous work such as an
/// admission-control deliberation).
using RpcResponder = std::function<void(RpcResult)>;
using AsyncRpcHandler =
    std::function<void(Address caller, util::BytesView args, RpcResponder respond)>;

class RpcNode {
 public:
  /// Registers `name` on the bus. Incoming non-RPC envelopes are passed to
  /// `fallback` (may be empty when a service is purely RPC).
  RpcNode(MessageBus& bus, std::string name,
          std::function<void(Envelope)> fallback = {});
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  /// Exposes a method. Must not already be registered.
  void expose(MethodId method, RpcHandler handler);

  /// Exposes a method whose response may be produced asynchronously.
  /// The responder captures this node; it must not fire after the node
  /// is destroyed (services own their nodes for the program's lifetime).
  void expose_async(MethodId method, AsyncRpcHandler handler);

  /// Invokes `method` on `callee`; `on_done` fires exactly once, with the
  /// response or an error (timeout if no reply in time).
  void call(Address callee, MethodId method, util::Bytes args, RpcCallback on_done,
            util::Duration timeout = util::Duration::millis(50));

  /// Posts a plain (non-RPC) message from this node's address.
  void post(Address to, MessageType type, util::Bytes payload);

  [[nodiscard]] Address address() const noexcept { return address_; }
  [[nodiscard]] MessageBus& bus() noexcept { return bus_; }

 private:
  void on_envelope(Envelope envelope);
  void on_request(const Envelope& envelope);
  void on_response(const Envelope& envelope);

  struct PendingCall {
    RpcCallback on_done;
    sim::EventId timeout;
  };

  MessageBus& bus_;
  Address address_;
  std::function<void(Envelope)> fallback_;
  std::unordered_map<MethodId, AsyncRpcHandler> methods_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::uint64_t next_call_id_ = 1;
};

}  // namespace garnet::net
