#include "net/admission.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace garnet::net {

std::string_view to_string(PoolKind kind) {
  switch (kind) {
    case PoolKind::kControl: return "control";
    case PoolKind::kData: return "data";
  }
  return "?";
}

std::string_view to_string(ProbeDecision decision) {
  switch (decision) {
    case ProbeDecision::kHold: return "hold";
    case ProbeDecision::kProbeUp: return "probe-up";
    case ProbeDecision::kProbeDown: return "probe-down";
    case ProbeDecision::kAccept: return "accept";
    case ProbeDecision::kBackoff: return "backoff";
  }
  return "?";
}

AdmissionStats& AdmissionStats::operator+=(const AdmissionStats& other) noexcept {
  data_admitted += other.data_admitted;
  data_rejected += other.data_rejected;
  control_admitted += other.control_admitted;
  control_overdrafts += other.control_overdrafts;
  probes += other.probes;
  resizes += other.resizes;
  wire_releases += other.wire_releases;
  spurious_releases += other.spurious_releases;
  goodput_reports += other.goodput_reports;
  wire_malformed += other.wire_malformed;
  return *this;
}

std::string render_probe_record(const ProbeRecord& record) {
  std::ostringstream out;
  out << record.at.ns << " probe " << to_string(record.decision) << ' ' << record.from_size
      << "->" << record.to_size << " goodput=" << record.goodput
      << " ewma_milli=" << record.ewma_milli << '\n';
  return out.str();
}

// ---------------------------------------------------------------------------
// TicketPool

void TicketPool::push_lease(util::SimTime expiry) {
  // Leases usually expire in acquisition order (constant lease length),
  // so the common case is a push_back; equal-lease reordering cannot
  // happen because insertion keeps the deque ascending.
  if (leases_.empty() || leases_.back() <= expiry) {
    leases_.push_back(expiry);
    return;
  }
  auto it = std::upper_bound(leases_.begin(), leases_.end(), expiry);
  leases_.insert(it, expiry);
}

bool TicketPool::try_acquire(util::SimTime now, util::Duration lease) {
  release_expired(now);
  if (leases_.size() >= size_) {
    saturated_ = true;
    return false;
  }
  push_lease(now + lease);
  if (leases_.size() >= size_) saturated_ = true;
  return true;
}

bool TicketPool::acquire_overdraft(util::SimTime now, util::Duration lease) {
  release_expired(now);
  const bool within = leases_.size() < size_;
  if (!within) saturated_ = true;
  push_lease(now + lease);
  return within;
}

std::size_t TicketPool::release_expired(util::SimTime now) {
  std::size_t released = 0;
  while (!leases_.empty() && leases_.front() <= now) {
    leases_.pop_front();
    ++released;
  }
  return released;
}

bool TicketPool::release_one() {
  if (leases_.empty()) return false;
  leases_.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// ThroughputProbe

namespace {

std::uint32_t clamp_size(std::uint32_t size, const ProbeConfig& config) {
  return std::clamp(size, config.min_concurrency, std::max(config.min_concurrency,
                                                           config.max_concurrency));
}

}  // namespace

ThroughputProbe::ThroughputProbe(const ProbeConfig& config)
    : config_(config),
      size_(clamp_size(config.initial_concurrency, config)),
      stable_size_(size_) {}

std::uint32_t ThroughputProbe::step_up(std::uint32_t size) const {
  const auto step = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(static_cast<double>(size) * config_.step));
  return clamp_size(size + step, config_);
}

std::uint32_t ThroughputProbe::step_down(std::uint32_t size) const {
  const auto step = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(static_cast<double>(size) * config_.step));
  return clamp_size(size > step ? size - step : config_.min_concurrency, config_);
}

ThroughputProbe::Outcome ThroughputProbe::on_interval(std::uint64_t goodput, bool saturated) {
  const auto sample = static_cast<double>(goodput);
  if (!seeded_) {
    ewma_ = sample;
    seeded_ = true;
  } else {
    ewma_ = config_.ewma_weight * sample + (1.0 - config_.ewma_weight) * ewma_;
  }

  Outcome out;
  switch (state_) {
    case State::kStable: {
      best_goodput_ = ewma_;
      if (saturated && size_ < clamp_size(config_.max_concurrency, config_)) {
        size_ = step_up(size_);
        state_ = State::kProbingUp;
        out.decision = ProbeDecision::kProbeUp;
      } else if (!saturated && size_ > config_.min_concurrency) {
        size_ = step_down(size_);
        state_ = State::kProbingDown;
        out.decision = ProbeDecision::kProbeDown;
      } else {
        out.decision = ProbeDecision::kHold;
      }
      break;
    }
    case State::kProbingUp: {
      if (ewma_ > best_goodput_) {
        // More concurrency bought more goodput: commit, and keep
        // climbing next interval if the larger pool still saturates.
        stable_size_ = size_;
        best_goodput_ = ewma_;
        state_ = State::kStable;
        out.decision = ProbeDecision::kAccept;
      } else {
        size_ = stable_size_;
        state_ = State::kStable;
        out.decision = ProbeDecision::kBackoff;
      }
      break;
    }
    case State::kProbingDown: {
      if (ewma_ >= best_goodput_ * config_.backoff_ratio) {
        // The smaller pool serves (nearly) the same goodput: keep it —
        // fewer tickets means less downstream queueing for free.
        stable_size_ = size_;
        best_goodput_ = std::max(best_goodput_, ewma_);
        state_ = State::kStable;
        out.decision = ProbeDecision::kAccept;
      } else {
        size_ = stable_size_;
        state_ = State::kStable;
        out.decision = ProbeDecision::kBackoff;
      }
      break;
    }
  }
  out.size = size_;
  out.ewma = ewma_;
  return out;
}

// ---------------------------------------------------------------------------
// AdmissionGate

AdmissionGate::AdmissionGate(AdmissionConfig config)
    : config_(config),
      data_(clamp_size(config.probe.initial_concurrency, config.probe)),
      control_(config.control_tickets),
      probe_(config.probe),
      next_deadline_(util::SimTime::zero() + config.probe.interval) {}

AdmissionGate::~AdmissionGate() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

bool AdmissionGate::admit(TrafficClass cls, util::SimTime now) {
  if (!config_.enabled) return true;
  advance(now);
  if (cls == TrafficClass::kControl) {
    // Control never waits behind the data plane: watchdog heartbeats,
    // breaker half-open probes and credit grants are what un-wedges an
    // overloaded system, so refusing them would invert the cure.
    if (!control_.acquire_overdraft(now, config_.probe.lease)) ++stats_.control_overdrafts;
    ++stats_.control_admitted;
    return true;
  }
  if (data_.try_acquire(now, config_.probe.lease)) {
    ++stats_.data_admitted;
    return true;
  }
  ++stats_.data_rejected;
  return false;
}

void AdmissionGate::advance(util::SimTime now) {
  if (!config_.enabled) return;
  data_.release_expired(now);
  control_.release_expired(now);
  // Deadlines are fixed multiples of the interval from t=0, independent
  // of when callers happen to advance the gate: a bench that polls every
  // message and a shard plane that polls at merge barriers tick at the
  // same virtual instants and journal the same decisions.
  while (next_deadline_ <= now) {
    tick(next_deadline_);
    next_deadline_ = next_deadline_ + config_.probe.interval;
  }
}

void AdmissionGate::tick(util::SimTime at) {
  std::uint64_t delivered = 0;
  std::uint64_t wasted = 0;
  if (goodput_source_) goodput_source_(delivered, wasted);
  delivered += wire_delivered_;
  wasted += wire_wasted_;
  const std::uint64_t delivered_delta =
      delivered >= last_delivered_ ? delivered - last_delivered_ : 0;
  const std::uint64_t wasted_delta = wasted >= last_wasted_ ? wasted - last_wasted_ : 0;
  last_delivered_ = delivered;
  last_wasted_ = wasted;
  const std::uint64_t goodput =
      delivered_delta > wasted_delta ? delivered_delta - wasted_delta : 0;
  const bool saturated = data_.take_saturated();

  ++stats_.probes;
  const std::uint32_t before = data_.size();
  ProbeRecord record;
  record.at = at;
  record.from_size = before;
  record.goodput = goodput;

  if (config_.probing) {
    const ThroughputProbe::Outcome outcome = probe_.on_interval(goodput, saturated);
    record.decision = outcome.decision;
    record.to_size = outcome.size;
    record.ewma_milli = static_cast<std::int64_t>(std::llround(outcome.ewma * 1000.0));
    if (outcome.size != before) {
      data_.resize(outcome.size);
      ++stats_.resizes;
      if (resize_listener_) resize_listener_(outcome.size);
    }
  } else {
    record.decision = ProbeDecision::kHold;
    record.to_size = before;
    record.ewma_milli = static_cast<std::int64_t>(goodput) * 1000;
  }

  if (journal_.size() < config_.journal_limit) journal_.push_back(record);
}

void AdmissionGate::on_wire_release(util::BytesView payload, util::SimTime now) {
  if (!config_.enabled) return;
  util::ByteReader reader(payload);
  std::uint32_t count = reader.u32();
  if (!reader.ok() || reader.remaining() != 0) {
    ++stats_.wire_malformed;
    return;
  }
  advance(now);
  // A forged release can at worst return tickets early (a throughput
  // *gift*); it can never drive holders negative or below reality
  // because release_one() refuses when nothing is outstanding.
  count = std::min(count, data_.holders());
  for (std::uint32_t i = 0; i < count; ++i) {
    if (data_.release_one()) {
      ++stats_.wire_releases;
    } else {
      ++stats_.spurious_releases;
      break;
    }
  }
  if (count == 0) ++stats_.spurious_releases;
}

void AdmissionGate::on_wire_goodput(util::BytesView payload) {
  if (!config_.enabled) return;
  util::ByteReader reader(payload);
  const std::uint64_t delivered = reader.u64();
  const std::uint64_t wasted = reader.u64();
  if (!reader.ok() || reader.remaining() != 0) {
    ++stats_.wire_malformed;
    return;
  }
  // Clamped per frame so a hostile reporter cannot saturate the
  // accumulators and freeze the EWMA at a forged plateau.
  wire_delivered_ += std::min(delivered, kWireReportClamp);
  wire_wasted_ += std::min(wasted, kWireReportClamp);
  ++stats_.goodput_reports;
}

void AdmissionGate::set_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) { collect(out); });
}

void AdmissionGate::collect(obs::SnapshotBuilder& out) const {
  out.gauge("garnet.admission.tickets", static_cast<double>(data_.size()),
            {{"pool", "data"}});
  out.gauge("garnet.admission.tickets", static_cast<double>(control_.size()),
            {{"pool", "control"}});
  out.gauge("garnet.admission.holders", static_cast<double>(data_.holders()),
            {{"pool", "data"}});
  out.gauge("garnet.admission.holders", static_cast<double>(control_.holders()),
            {{"pool", "control"}});
  out.gauge("garnet.admission.goodput", probe_.ewma());
  out.counter("garnet.admission.probes", stats_.probes);
  out.counter("garnet.admission.resizes", stats_.resizes);
  out.counter("garnet.admission.admitted", stats_.data_admitted, {{"pool", "data"}});
  out.counter("garnet.admission.admitted", stats_.control_admitted, {{"pool", "control"}});
  out.counter("garnet.admission.rejected", stats_.data_rejected, {{"pool", "data"}});
  out.counter("garnet.admission.overdrafts", stats_.control_overdrafts,
              {{"pool", "control"}});
  out.counter("garnet.admission.wire_releases", stats_.wire_releases);
  out.counter("garnet.admission.spurious_releases", stats_.spurious_releases);
  out.counter("garnet.admission.goodput_reports", stats_.goodput_reports);
  out.counter("garnet.admission.wire_malformed", stats_.wire_malformed);
}

std::string AdmissionGate::journal_text() const {
  std::string out;
  for (const ProbeRecord& record : journal_) {
    out += render_probe_record(record);
  }
  return out;
}

}  // namespace garnet::net
