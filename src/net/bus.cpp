#include "net/bus.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace garnet::net {

MessageBus::MessageBus(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler), config_(config) {}

Address MessageBus::add_endpoint(std::string name, Handler handler) {
  assert(handler);
  assert(!names_.contains(name) && "endpoint names must be unique");
  const Address address{next_address_++};
  names_.emplace(name, address.value);
  endpoints_.emplace(address.value, EndpointEntry{std::move(name), std::move(handler)});
  return address;
}

void MessageBus::remove_endpoint(Address address) {
  const auto it = endpoints_.find(address.value);
  if (it == endpoints_.end()) return;
  names_.erase(it->second.name);
  endpoints_.erase(it);
}

std::optional<Address> MessageBus::lookup(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) return std::nullopt;
  return Address{it->second};
}

void MessageBus::set_metrics(obs::MetricsRegistry& registry) {
  transit_histogram_ = &registry.histogram("garnet.bus.transit_ns");
  size_histogram_ =
      &registry.histogram("garnet.bus.envelope_bytes", obs::Histogram::Layout::bytes());
}

void MessageBus::post(Address from, Address to, MessageType type, util::Bytes payload) {
  ++stats_.posted;
  stats_.bytes += payload.size();
  if (size_histogram_ != nullptr) size_histogram_->observe(static_cast<double>(payload.size()));

  Envelope envelope{from, to, type, std::move(payload), scheduler_.now()};
  const auto jitter_ns = static_cast<std::int64_t>(
      util::splitmix64(jitter_state_) % static_cast<std::uint64_t>(config_.max_jitter.ns + 1));
  const util::Duration delay = config_.latency + util::Duration::nanos(jitter_ns);

  scheduler_.schedule_after(delay, [this, envelope = std::move(envelope)]() mutable {
    const auto it = endpoints_.find(envelope.to.value);
    if (it == endpoints_.end()) {
      ++stats_.dropped_no_endpoint;
      return;
    }
    ++stats_.delivered;
    if (transit_histogram_ != nullptr) {
      transit_histogram_->observe(
          static_cast<double>((scheduler_.now() - envelope.sent_at).ns));
    }
    it->second.handler(std::move(envelope));
  });
}

}  // namespace garnet::net
