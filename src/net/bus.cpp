#include "net/bus.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/rng.hpp"

namespace garnet::net {

MessageBus::MessageBus(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler), config_(std::move(config)) {
  if (config_.faults.enabled()) {
    injector_ = std::make_unique<FaultInjector>(scheduler_, config_.faults);
  }
  for (const MessageType type : config_.control_types) {
    control_types_.insert(static_cast<std::uint16_t>(type));
  }
}

Address MessageBus::add_endpoint(std::string name, Handler handler) {
  assert(handler);
  assert(!names_.contains(name) && "endpoint names must be unique");
  const Address address{next_address_++};
  names_.emplace(name, address.value);
  EndpointEntry entry{std::move(name), std::move(handler), nullptr};
  const auto override_it = config_.inboxes.find(entry.name);
  const InboxConfig inbox =
      override_it != config_.inboxes.end() ? override_it->second : config_.default_inbox;
  if (inbox.active()) entry.inbox = std::make_unique<Inbox>(inbox);
  endpoints_.emplace(address.value, std::move(entry));
  return address;
}

void MessageBus::remove_endpoint(Address address) {
  const auto it = endpoints_.find(address.value);
  if (it == endpoints_.end()) return;
  names_.erase(it->second.name);
  endpoints_.erase(it);
}

std::optional<Address> MessageBus::lookup(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) return std::nullopt;
  return Address{it->second};
}

void MessageBus::set_inbox(Address address, InboxConfig config) {
  const auto it = endpoints_.find(address.value);
  if (it == endpoints_.end()) return;
  if (!config.active()) {
    it->second.inbox.reset();
    return;
  }
  if (it->second.inbox) {
    it->second.inbox->config = config;
  } else {
    it->second.inbox = std::make_unique<Inbox>(config);
  }
}

void MessageBus::set_endpoint_down(const std::string& name, bool down) {
  const auto it = names_.find(name);
  if (it == names_.end()) return;
  EndpointEntry& entry = endpoints_.at(it->second);
  entry.down = down;
  if (down && entry.inbox) {
    // Queued-but-unserved envelopes lived in the dead process's memory.
    entry.inbox->control.clear();
    entry.inbox->data.clear();
    entry.inbox->busy = false;
  }
}

bool MessageBus::endpoint_down(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) return false;
  return endpoints_.at(it->second).down;
}

TrafficClass MessageBus::classify(MessageType type) const {
  const auto raw = static_cast<std::uint16_t>(type);
  if (raw < static_cast<std::uint16_t>(MessageType::kAppBase)) return TrafficClass::kControl;
  return control_types_.contains(raw) ? TrafficClass::kControl : TrafficClass::kData;
}

// The collector captures `this`, so a bus that dies before its registry
// (bench harnesses snapshot a long-lived registry across short-lived
// buses) must deregister or the next snapshot reads freed memory.
MessageBus::~MessageBus() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void MessageBus::set_metrics(obs::MetricsRegistry& registry) {
  transit_histogram_ = &registry.histogram("garnet.bus.transit_ns");
  size_histogram_ =
      &registry.histogram("garnet.bus.envelope_bytes", obs::Histogram::Layout::bytes());
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) { collect(out); });
}

void MessageBus::collect(obs::SnapshotBuilder& out) const {
  out.counter("garnet.bus.posted", stats_.posted);
  out.counter("garnet.bus.delivered", stats_.delivered);
  out.counter("garnet.bus.dropped_no_endpoint", stats_.dropped_no_endpoint);
  out.counter("garnet.bus.dropped_endpoint_down", stats_.dropped_endpoint_down);
  out.counter("garnet.bus.bytes", stats_.bytes);

  // Zero-copy payload accounting (process-wide; see util/shared_bytes).
  // One allocation per encoded message, ~zero copies: fan-out, duplicates
  // and retries must share buffers, not clone them.
  const util::PayloadStats payload = util::payload_stats();
  out.counter("garnet.bus.payload_allocs", payload.allocations);
  out.counter("garnet.bus.payload_alloc_bytes", payload.allocation_bytes);
  out.counter("garnet.bus.payload_copies", payload.copies);

  // All fault kinds are emitted even when zero (or when no injector is
  // installed) so expositions keep a stable schema across configurations.
  const FaultCounters counters = injector_ ? injector_->counters() : FaultCounters{};
  out.counter("garnet.bus.faults", counters.dropped, {{"kind", "drop"}});
  out.counter("garnet.bus.faults", counters.duplicated, {{"kind", "duplicate"}});
  out.counter("garnet.bus.faults", counters.delayed, {{"kind", "delay"}});
  out.counter("garnet.bus.faults", counters.reordered, {{"kind", "reorder"}});
  out.counter("garnet.bus.faults", counters.partitioned, {{"kind", "partition"}});
  out.counter("garnet.bus.faults", counters.crashed, {{"kind", "crash"}});
  out.counter("garnet.bus.faults", counters.restarted, {{"kind", "restart"}});
  out.counter("garnet.bus.faults", counters.relay_crashed, {{"kind", "relay-crash"}});
  out.counter("garnet.bus.faults", counters.relay_restarted, {{"kind", "relay-restart"}});
  out.counter("garnet.bus.faults", counters.beacon_lost, {{"kind", "beacon-loss"}});
  out.counter("garnet.bus.faults", counters.beacon_restored, {{"kind", "beacon-restore"}});

  // Shed accounting: the full (class, policy) grid is emitted even when
  // zero so the CI control-shed gate can grep a stable schema, and so the
  // priority invariant (control row all-zero while data rows count) is
  // provable from the exposition alone.
  out.counter("garnet.bus.shed", shed_stats_.data_drop_newest,
              {{"class", "data"}, {"policy", "drop_newest"}});
  out.counter("garnet.bus.shed", shed_stats_.data_drop_oldest,
              {{"class", "data"}, {"policy", "drop_oldest"}});
  out.counter("garnet.bus.shed", shed_stats_.data_reject_nack,
              {{"class", "data"}, {"policy", "reject_nack"}});
  out.counter("garnet.bus.shed", shed_stats_.control_drop_newest,
              {{"class", "control"}, {"policy", "drop_newest"}});
  out.counter("garnet.bus.shed", shed_stats_.control_drop_oldest,
              {{"class", "control"}, {"policy", "drop_oldest"}});
  out.counter("garnet.bus.shed", shed_stats_.control_reject_nack,
              {{"class", "control"}, {"policy", "reject_nack"}});
  out.counter("garnet.bus.nacks", shed_stats_.nacks_sent);
  out.gauge("garnet.bus.inbox_depth", static_cast<double>(total_inbox_depth()));
  for (const auto& [address, entry] : endpoints_) {
    if (!entry.inbox) continue;
    out.gauge("garnet.bus.inbox_depth", static_cast<double>(entry.inbox->depth()),
              {{"endpoint", entry.name}});
  }

  out.counter("garnet.rpc.calls", rpc_stats_.calls);
  out.counter("garnet.rpc.retries", rpc_stats_.retries);
  out.counter("garnet.rpc.exhausted", rpc_stats_.exhausted);
  out.counter("garnet.rpc.deduped", rpc_stats_.deduped);
  out.counter("garnet.rpc.nacked", rpc_stats_.nacked);
  out.counter("garnet.rpc.breaker_opens", rpc_stats_.breaker_opens);
  out.counter("garnet.rpc.breaker_fast_fails", rpc_stats_.breaker_fast_fails);
  out.gauge("garnet.rpc.breaker_state", static_cast<double>(rpc_stats_.open_breakers));
}

const std::string& MessageBus::name_of(Address address) const {
  static const std::string kUnknown;
  const auto it = endpoints_.find(address.value);
  return it != endpoints_.end() ? it->second.name : kUnknown;
}

std::size_t MessageBus::inbox_depth(Address address) const {
  const auto it = endpoints_.find(address.value);
  if (it == endpoints_.end() || !it->second.inbox) return 0;
  return it->second.inbox->depth();
}

std::size_t MessageBus::total_inbox_depth() const {
  std::size_t total = 0;
  for (const auto& [address, entry] : endpoints_) {
    if (entry.inbox) total += entry.inbox->depth();
  }
  return total;
}

std::string render_shed_record(const ShedRecord& record) {
  std::ostringstream out;
  out << record.at.ns << " shed " << to_string(record.cls) << ' ' << to_string(record.policy)
      << ' ' << record.from << "->" << record.to << " type=" << record.type << '\n';
  return out.str();
}

bool shed_merge_before(const ShedRecord& a, const ShedRecord& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.to != b.to) return a.to < b.to;
  if (a.from != b.from) return a.from < b.from;
  if (a.type != b.type) return a.type < b.type;
  if (a.cls != b.cls) return a.cls < b.cls;
  return a.policy < b.policy;
}

std::string MessageBus::shed_journal_text() const {
  std::string out;
  for (const ShedRecord& record : shed_journal_) {
    out += render_shed_record(record);
  }
  return out;
}

void MessageBus::shed(const Envelope& envelope, TrafficClass cls, OverflowPolicy policy) {
  switch (cls) {
    case TrafficClass::kData:
      switch (policy) {
        case OverflowPolicy::kDropNewest: ++shed_stats_.data_drop_newest; break;
        case OverflowPolicy::kDropOldest: ++shed_stats_.data_drop_oldest; break;
        case OverflowPolicy::kRejectNack: ++shed_stats_.data_reject_nack; break;
      }
      break;
    case TrafficClass::kControl:
      switch (policy) {
        case OverflowPolicy::kDropNewest: ++shed_stats_.control_drop_newest; break;
        case OverflowPolicy::kDropOldest: ++shed_stats_.control_drop_oldest; break;
        case OverflowPolicy::kRejectNack: ++shed_stats_.control_reject_nack; break;
      }
      break;
  }
  if (shed_journal_.size() < config_.shed_journal_limit) {
    shed_journal_.push_back(ShedRecord{scheduler_.now(), name_of(envelope.from),
                                       name_of(envelope.to), cls, policy,
                                       static_cast<std::uint16_t>(envelope.type)});
  }
  if (policy == OverflowPolicy::kRejectNack) nack(envelope);
}

void MessageBus::nack(const Envelope& envelope) {
  // Never nack a nack — a full inbox on both sides must not ping-pong.
  if (envelope.type == MessageType::kNack || !envelope.from.valid()) return;
  ++shed_stats_.nacks_sent;
  // [u16 original type][first 8 bytes of the original payload]: the RPC
  // layer needs the original type to know the echoed u64 is one of *its*
  // call ids and not a colliding id from an unrelated numbering space.
  const std::size_t echo = std::min<std::size_t>(envelope.payload.size(), 8);
  util::ByteWriter w(2 + echo);
  w.u16(static_cast<std::uint16_t>(envelope.type));
  w.raw(envelope.payload.span().subspan(0, echo));
  post(envelope.to, envelope.from, MessageType::kNack, util::take_shared(std::move(w)));
}

void MessageBus::serve(EndpointEntry& entry, Envelope envelope) {
  ++stats_.delivered;
  if (transit_histogram_ != nullptr) {
    transit_histogram_->observe(static_cast<double>((scheduler_.now() - envelope.sent_at).ns));
  }
  Inbox* inbox = entry.inbox.get();
  if (inbox != nullptr) {
    inbox->busy = true;
    const Address address = envelope.to;
    scheduler_.schedule_after(inbox->config.service_time,
                              [this, address] { service_done(address); });
  }
  entry.handler(std::move(envelope));
}

void MessageBus::service_done(Address address) {
  const auto it = endpoints_.find(address.value);
  if (it == endpoints_.end() || !it->second.inbox) return;
  Inbox& inbox = *it->second.inbox;
  // Priority dequeue: every queued control envelope goes before any data.
  if (!inbox.control.empty()) {
    Envelope next = std::move(inbox.control.front());
    inbox.control.pop_front();
    serve(it->second, std::move(next));
  } else if (!inbox.data.empty()) {
    Envelope next = std::move(inbox.data.front());
    inbox.data.pop_front();
    serve(it->second, std::move(next));
  } else {
    inbox.busy = false;
  }
}

void MessageBus::enqueue(EndpointEntry& entry, Envelope envelope) {
  Inbox& inbox = *entry.inbox;
  const TrafficClass cls = classify(envelope.type);
  if (inbox.config.capacity > 0 && inbox.depth() >= inbox.config.capacity) {
    const OverflowPolicy policy = inbox.config.policy;
    if (cls == TrafficClass::kControl && !inbox.data.empty()) {
      // Control always displaces data: evict the oldest data envelope to
      // admit the control one, whatever the policy. The eviction is a
      // data-class shed (and under kRejectNack its sender is told).
      shed(inbox.data.front(), TrafficClass::kData, policy);
      inbox.data.pop_front();
      inbox.control.push_back(std::move(envelope));
      return;
    }
    // Shedding stays inside the arriving envelope's class from here on.
    // (A control arrival past capacity with no data queued can only shed
    // control — the inbox is all-control, so the invariant holds.)
    switch (policy) {
      case OverflowPolicy::kDropNewest:
      case OverflowPolicy::kRejectNack:
        shed(envelope, cls, policy);
        return;
      case OverflowPolicy::kDropOldest: {
        std::deque<Envelope>& queue =
            cls == TrafficClass::kControl ? inbox.control : inbox.data;
        if (queue.empty()) {
          // Data arrival, data queue empty, inbox full of control: data
          // never displaces control, so the arrival itself is shed.
          shed(envelope, cls, policy);
          return;
        }
        shed(queue.front(), cls, policy);
        queue.pop_front();
        break;
      }
    }
  }
  (cls == TrafficClass::kControl ? inbox.control : inbox.data).push_back(std::move(envelope));
}

void MessageBus::arrive(Envelope envelope) {
  const auto it = endpoints_.find(envelope.to.value);
  if (it == endpoints_.end()) {
    ++stats_.dropped_no_endpoint;
    return;
  }
  EndpointEntry& entry = it->second;
  if (entry.down) {
    ++stats_.dropped_endpoint_down;
    return;
  }
  if (!entry.inbox) {
    // Inactive inbox: historical hand-to-handler-on-arrival behaviour.
    ++stats_.delivered;
    if (transit_histogram_ != nullptr) {
      transit_histogram_->observe(static_cast<double>((scheduler_.now() - envelope.sent_at).ns));
    }
    entry.handler(std::move(envelope));
    return;
  }
  if (entry.inbox->busy) {
    enqueue(entry, std::move(envelope));
  } else {
    serve(entry, std::move(envelope));
  }
}

void MessageBus::deliver_after(util::Duration delay, Envelope envelope) {
  scheduler_.schedule_after(delay, [this, envelope = std::move(envelope)]() mutable {
    arrive(std::move(envelope));
  });
}

void MessageBus::post(Address from, Address to, MessageType type, util::SharedBytes payload) {
  ++stats_.posted;
  stats_.bytes += payload.size();
  if (size_histogram_ != nullptr) size_histogram_->observe(static_cast<double>(payload.size()));

  FaultInjector::Verdict verdict;
  if (injector_) {
    verdict = injector_->decide(name_of(from), name_of(to));
    if (!verdict.deliver) return;  // counted as posted, never arrives
  }

  Envelope envelope{from, to, type, std::move(payload), scheduler_.now()};
  const auto jitter_ns = static_cast<std::int64_t>(
      util::splitmix64(jitter_state_) % static_cast<std::uint64_t>(config_.max_jitter.ns + 1));
  const util::Duration delay =
      config_.latency + util::Duration::nanos(jitter_ns) + verdict.extra_delay;

  if (verdict.duplicate) {
    // The trailing copy shares the original's payload buffer — a
    // duplicated 64 KB envelope costs a refcount bump, not a memcpy.
    deliver_after(delay + verdict.duplicate_delay, envelope);
  }
  deliver_after(delay, std::move(envelope));
}

}  // namespace garnet::net
