#include "net/bus.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace garnet::net {

MessageBus::MessageBus(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler), config_(std::move(config)) {
  if (config_.faults.enabled()) {
    injector_ = std::make_unique<FaultInjector>(scheduler_, config_.faults);
  }
}

Address MessageBus::add_endpoint(std::string name, Handler handler) {
  assert(handler);
  assert(!names_.contains(name) && "endpoint names must be unique");
  const Address address{next_address_++};
  names_.emplace(name, address.value);
  endpoints_.emplace(address.value, EndpointEntry{std::move(name), std::move(handler)});
  return address;
}

void MessageBus::remove_endpoint(Address address) {
  const auto it = endpoints_.find(address.value);
  if (it == endpoints_.end()) return;
  names_.erase(it->second.name);
  endpoints_.erase(it);
}

std::optional<Address> MessageBus::lookup(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) return std::nullopt;
  return Address{it->second};
}

void MessageBus::set_metrics(obs::MetricsRegistry& registry) {
  transit_histogram_ = &registry.histogram("garnet.bus.transit_ns");
  size_histogram_ =
      &registry.histogram("garnet.bus.envelope_bytes", obs::Histogram::Layout::bytes());
  registry.add_collector([this](obs::SnapshotBuilder& out) { collect(out); });
}

void MessageBus::collect(obs::SnapshotBuilder& out) const {
  out.counter("garnet.bus.posted", stats_.posted);
  out.counter("garnet.bus.delivered", stats_.delivered);
  out.counter("garnet.bus.dropped_no_endpoint", stats_.dropped_no_endpoint);
  out.counter("garnet.bus.bytes", stats_.bytes);

  // Zero-copy payload accounting (process-wide; see util/shared_bytes).
  // One allocation per encoded message, ~zero copies: fan-out, duplicates
  // and retries must share buffers, not clone them.
  const util::PayloadStats payload = util::payload_stats();
  out.counter("garnet.bus.payload_allocs", payload.allocations);
  out.counter("garnet.bus.payload_alloc_bytes", payload.allocation_bytes);
  out.counter("garnet.bus.payload_copies", payload.copies);

  // All fault kinds are emitted even when zero (or when no injector is
  // installed) so expositions keep a stable schema across configurations.
  const FaultCounters counters = injector_ ? injector_->counters() : FaultCounters{};
  out.counter("garnet.bus.faults", counters.dropped, {{"kind", "drop"}});
  out.counter("garnet.bus.faults", counters.duplicated, {{"kind", "duplicate"}});
  out.counter("garnet.bus.faults", counters.delayed, {{"kind", "delay"}});
  out.counter("garnet.bus.faults", counters.reordered, {{"kind", "reorder"}});
  out.counter("garnet.bus.faults", counters.partitioned, {{"kind", "partition"}});

  out.counter("garnet.rpc.calls", rpc_stats_.calls);
  out.counter("garnet.rpc.retries", rpc_stats_.retries);
  out.counter("garnet.rpc.exhausted", rpc_stats_.exhausted);
  out.counter("garnet.rpc.deduped", rpc_stats_.deduped);
}

const std::string& MessageBus::name_of(Address address) const {
  static const std::string kUnknown;
  const auto it = endpoints_.find(address.value);
  return it != endpoints_.end() ? it->second.name : kUnknown;
}

void MessageBus::deliver_after(util::Duration delay, Envelope envelope) {
  scheduler_.schedule_after(delay, [this, envelope = std::move(envelope)]() mutable {
    const auto it = endpoints_.find(envelope.to.value);
    if (it == endpoints_.end()) {
      ++stats_.dropped_no_endpoint;
      return;
    }
    ++stats_.delivered;
    if (transit_histogram_ != nullptr) {
      transit_histogram_->observe(static_cast<double>((scheduler_.now() - envelope.sent_at).ns));
    }
    it->second.handler(std::move(envelope));
  });
}

void MessageBus::post(Address from, Address to, MessageType type, util::SharedBytes payload) {
  ++stats_.posted;
  stats_.bytes += payload.size();
  if (size_histogram_ != nullptr) size_histogram_->observe(static_cast<double>(payload.size()));

  FaultInjector::Verdict verdict;
  if (injector_) {
    verdict = injector_->decide(name_of(from), name_of(to));
    if (!verdict.deliver) return;  // counted as posted, never arrives
  }

  Envelope envelope{from, to, type, std::move(payload), scheduler_.now()};
  const auto jitter_ns = static_cast<std::int64_t>(
      util::splitmix64(jitter_state_) % static_cast<std::uint64_t>(config_.max_jitter.ns + 1));
  const util::Duration delay =
      config_.latency + util::Duration::nanos(jitter_ns) + verdict.extra_delay;

  if (verdict.duplicate) {
    // The trailing copy shares the original's payload buffer — a
    // duplicated 64 KB envelope costs a refcount bump, not a memcpy.
    deliver_after(delay + verdict.duplicate_delay, envelope);
  }
  deliver_after(delay, std::move(envelope));
}

}  // namespace garnet::net
