#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>

namespace garnet::obs {

std::string Trace::to_string() const {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%s %u/%u", key.domain == TraceKey::kActuation ? "act" : "msg",
                key.stream, key.sequence);
  std::string out = buffer;
  for (const Span& span : spans) {
    std::snprintf(buffer, sizeof buffer, " %s(%.3fms)", span.stage,
                  static_cast<double>(span.duration_ns()) / 1e6);
    out += buffer;
  }
  return out;
}

Tracer::Tracer(Config config)
    : config_(config), completed_(config.recorder_capacity > 0 ? config.recorder_capacity : 1) {}

void Tracer::begin_span(TraceKey key, const char* stage, std::int64_t now_ns) {
  if (!config_.enabled) return;
  auto it = active_.find(key.packed());
  if (it == active_.end()) {
    if (active_.size() >= config_.max_active) evict_oldest_active();
    Trace trace;
    trace.key = key;
    trace.begin_ns = now_ns;
    it = active_.emplace(key.packed(), std::move(trace)).first;
    active_order_.push_back(key.packed());
    ++stats_.started;
  }
  it->second.spans.push_back(Span{stage, now_ns, -1});
  ++stats_.spans;
}

void Tracer::end_span(TraceKey key, const char* stage, std::int64_t now_ns) {
  if (!config_.enabled) return;
  const auto it = active_.find(key.packed());
  if (it == active_.end()) return;
  auto& spans = it->second.spans;
  for (auto span = spans.rbegin(); span != spans.rend(); ++span) {
    if (!span->open() || std::strcmp(span->stage, stage) != 0) continue;
    span->end_ns = now_ns;
    if (registry_ != nullptr) {
      Histogram*& histogram = stage_histograms_[stage];
      if (histogram == nullptr) {
        histogram = &registry_->histogram(kStageLatencyMetric, Histogram::Layout::latency_ns(),
                                          {{"stage", stage}});
      }
      histogram->observe(static_cast<double>(span->duration_ns()));
    }
    return;
  }
}

void Tracer::complete(TraceKey key, std::int64_t now_ns) {
  if (!config_.enabled) return;
  const auto it = active_.find(key.packed());
  if (it == active_.end()) return;
  Trace trace = std::move(it->second);
  active_.erase(it);
  for (Span& span : trace.spans) {
    if (span.open()) span.end_ns = now_ns;
  }
  trace.end_ns = now_ns;
  completed_.push(std::move(trace));
  ++stats_.completed;
}

void Tracer::discard(TraceKey key) {
  if (active_.erase(key.packed()) > 0) ++stats_.discarded;
}

void Tracer::evict_oldest_active() {
  while (!active_order_.empty()) {
    const std::uint64_t oldest = active_order_.front();
    active_order_.pop_front();
    if (active_.erase(oldest) > 0) {
      ++stats_.abandoned;
      return;
    }
    // Stale entry: that trace already completed or was discarded.
  }
}

std::vector<Trace> Tracer::completed_snapshot() const {
  std::vector<Trace> out;
  out.reserve(completed_.size());
  for (std::size_t i = 0; i < completed_.size(); ++i) out.push_back(completed_.at(i));
  return out;
}

const Trace* Tracer::find_completed(TraceKey key) const {
  for (std::size_t i = completed_.size(); i > 0; --i) {
    const Trace& trace = completed_.at(i - 1);
    if (trace.key == key) return &trace;
  }
  return nullptr;
}

void Tracer::clear() {
  active_.clear();
  active_order_.clear();
  completed_.clear();
}

}  // namespace garnet::obs
