#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace garnet::obs {

std::string label_string(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(Layout layout) : layout_(layout) {
  assert(layout.first_bound > 0 && layout.growth > 1.0 && layout.buckets > 0);
  bounds_.reserve(layout.buckets);
  double bound = layout.first_bound;
  for (std::size_t i = 0; i < layout.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= layout.growth;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction = (rank - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// --- Samples / snapshot -----------------------------------------------------

double Sample::numeric() const {
  switch (kind) {
    case InstrumentKind::kCounter: return static_cast<double>(counter);
    case InstrumentKind::kGauge: return gauge;
    case InstrumentKind::kHistogram: return static_cast<double>(histogram.count);
  }
  return 0.0;
}

const Sample* MetricsSnapshot::find(std::string_view name, const Labels& labels) const {
  const Labels wanted = canonical(labels);
  for (const Sample& sample : samples) {
    if (sample.name == name && sample.labels == wanted) return &sample;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name, const Labels& labels) const {
  const Sample* sample = find(name, labels);
  return sample && sample->kind == InstrumentKind::kCounter ? sample->counter : 0;
}

double MetricsSnapshot::gauge(std::string_view name, const Labels& labels) const {
  const Sample* sample = find(name, labels);
  return sample && sample->kind == InstrumentKind::kGauge ? sample->gauge : 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(std::string_view name,
                                                    const Labels& labels) const {
  const Sample* sample = find(name, labels);
  return sample && sample->kind == InstrumentKind::kHistogram ? &sample->histogram : nullptr;
}

void SnapshotBuilder::counter(std::string name, std::uint64_t value, Labels labels) {
  Sample sample;
  sample.name = std::move(name);
  sample.labels = canonical(std::move(labels));
  sample.kind = InstrumentKind::kCounter;
  sample.counter = value;
  out_.push_back(std::move(sample));
}

void SnapshotBuilder::gauge(std::string name, double value, Labels labels) {
  Sample sample;
  sample.name = std::move(name);
  sample.labels = canonical(std::move(labels));
  sample.kind = InstrumentKind::kGauge;
  sample.gauge = value;
  out_.push_back(std::move(sample));
}

// --- Registry ---------------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name, Labels labels,
                                                   InstrumentKind kind) {
  labels = canonical(std::move(labels));
  const std::string key = name + label_string(labels);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + key + "' already registered as a different kind");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = std::move(labels);
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Entry& entry = entry_for(name, std::move(labels), InstrumentKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  Entry& entry = entry_for(name, std::move(labels), InstrumentKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Histogram::Layout layout,
                                      Labels labels) {
  Entry& entry = entry_for(name, std::move(labels), InstrumentKind::kHistogram);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(layout);
  } else if (!(entry.histogram->layout() == layout)) {
    throw std::logic_error("histogram '" + name + "' already registered with another layout");
  }
  return *entry.histogram;
}

MetricsRegistry::CollectorId MetricsRegistry::add_collector(Collector collector) {
  const CollectorId id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::remove_collector(CollectorId id) {
  std::erase_if(collectors_, [id](const auto& entry) { return entry.first == id; });
}

MetricsSnapshot MetricsRegistry::snapshot(std::uint64_t now_ns) const {
  MetricsSnapshot snap;
  snap.captured_at_ns = now_ns;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    Sample sample;
    sample.name = entry.name;
    sample.labels = entry.labels;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case InstrumentKind::kCounter: sample.counter = entry.counter->value(); break;
      case InstrumentKind::kGauge: sample.gauge = entry.gauge->value(); break;
      case InstrumentKind::kHistogram: sample.histogram = entry.histogram->snapshot(); break;
    }
    snap.samples.push_back(std::move(sample));
  }
  SnapshotBuilder builder(snap.samples);
  for (const auto& [id, collector] : collectors_) collector(builder);
  std::sort(snap.samples.begin(), snap.samples.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return snap;
}

}  // namespace garnet::obs
