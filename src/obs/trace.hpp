// End-to-end message tracing.
//
// A trace follows one data message through the middleware: the sensor
// radio opens it at transmit, each service brackets its work in a span
// ("radio" -> "filter" -> "dispatch" -> "deliver"), and the consumer
// library completes it at delivery. The actuation path uses the same
// machinery for its round-trip ("actuation"). Traces are keyed by the
// message's (StreamID, sequence) — the same identity the wire format
// carries — so no extra context has to ride along with the payload.
//
// Completed traces land in a bounded ring-buffer flight recorder (the
// last N journeys, oldest evicted first); every closed span also feeds
// a per-stage latency histogram in the bound MetricsRegistry, so the
// exposition formats carry receive->filter->dispatch->deliver latency
// distributions without any per-message retention.
//
// The simulation is single-threaded, so the tracer (like the services)
// does not lock; only the registry instruments it feeds are atomic.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/ring_buffer.hpp"

namespace garnet::obs {

/// Name of the per-stage latency histogram fed on every span close.
inline constexpr const char* kStageLatencyMetric = "garnet.stage_latency_ns";

/// Identity of one traced journey. `domain` separates the data path
/// from the actuation path, whose ids live in a different number space.
struct TraceKey {
  std::uint32_t stream = 0;    ///< Packed core::StreamId.
  std::uint16_t sequence = 0;  ///< Data sequence no / actuation request id.
  std::uint8_t domain = kData;

  static constexpr std::uint8_t kData = 0;
  static constexpr std::uint8_t kActuation = 1;

  [[nodiscard]] constexpr std::uint64_t packed() const noexcept {
    return (static_cast<std::uint64_t>(stream) << 24) |
           (static_cast<std::uint64_t>(sequence) << 8) | domain;
  }
  [[nodiscard]] constexpr bool operator==(const TraceKey&) const = default;
};

/// One service's bracket of work inside a trace. `stage` must be a
/// string with static storage duration (instrumentation sites pass
/// literals); spans never own their stage names.
struct Span {
  const char* stage = "";
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = -1;  ///< -1 while the span is still open.

  [[nodiscard]] bool open() const noexcept { return end_ns < 0; }
  [[nodiscard]] std::int64_t duration_ns() const noexcept {
    return open() ? 0 : end_ns - begin_ns;
  }
};

struct Trace {
  TraceKey key;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;  ///< Set when completed.
  std::vector<Span> spans;

  /// One-line rendering for logs: "stream/seq stage(dur) stage(dur) ...".
  [[nodiscard]] std::string to_string() const;
};

class Tracer {
 public:
  struct Config {
    bool enabled = true;
    /// Completed traces retained in the flight recorder.
    std::size_t recorder_capacity = 256;
    /// In-flight bound. A frame no receiver ever hears leaves its trace
    /// open forever; at the cap, the oldest active trace is abandoned to
    /// make room, so tracing keeps following fresh traffic.
    std::size_t max_active = 4096;
  };

  struct Stats {
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t discarded = 0;  ///< Explicitly dropped (orphaned, expired).
    std::uint64_t abandoned = 0;  ///< Evicted while still open (active cap).
    std::uint64_t spans = 0;      ///< Spans opened across all traces.
  };

  Tracer() : Tracer(Config{}) {}
  explicit Tracer(Config config);

  /// Stage histograms land in `registry` from now on (may be null).
  void bind_metrics(MetricsRegistry* registry) { registry_ = registry; }

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  /// Opens a span; starts the trace if this key is new. No-op when the
  /// tracer is disabled or the trace was dropped at the active cap.
  void begin_span(TraceKey key, const char* stage, std::int64_t now_ns);

  /// Closes the most recent open span with this stage name and feeds the
  /// stage latency histogram. No-op when the trace or span is unknown.
  void end_span(TraceKey key, const char* stage, std::int64_t now_ns);

  /// Finishes the trace (closing any spans left open) and moves it into
  /// the flight recorder.
  void complete(TraceKey key, std::int64_t now_ns);

  /// Drops an in-flight trace without recording it.
  void discard(TraceKey key);

  [[nodiscard]] bool active(TraceKey key) const { return active_.contains(key.packed()); }
  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The flight recorder: the last `recorder_capacity` completed traces,
  /// oldest first.
  [[nodiscard]] const util::RingBuffer<Trace>& completed() const noexcept { return completed_; }
  [[nodiscard]] std::vector<Trace> completed_snapshot() const;
  /// Most recent completed trace for a key, if still retained.
  [[nodiscard]] const Trace* find_completed(TraceKey key) const;

  /// Drops all state (active and recorded).
  void clear();

 private:
  void evict_oldest_active();

  Config config_;
  MetricsRegistry* registry_ = nullptr;
  std::unordered_map<std::uint64_t, Trace> active_;
  std::deque<std::uint64_t> active_order_;  ///< FIFO of keys; stale entries skipped lazily.
  util::RingBuffer<Trace> completed_;
  std::unordered_map<std::string, Histogram*> stage_histograms_;
  Stats stats_;
};

}  // namespace garnet::obs
