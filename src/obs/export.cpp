#include "obs/export.hpp"

#include <cstdio>

namespace garnet::obs {

namespace {

void appendf(std::string& out, const char* fmt, auto... args) {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer, fmt, args...);
  out += buffer;
}

/// Compact numeric rendering: integers without a fractional part.
void append_number(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
    appendf(out, "%lld", static_cast<long long>(v));
  } else {
    appendf(out, "%.6g", v);
  }
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, labels[i].first);
    out += ':';
    append_json_string(out, labels[i].second);
  }
  out += '}';
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  appendf(out, "\"count\":%llu,\"sum\":", static_cast<unsigned long long>(h.count));
  append_number(out, h.sum);
  out += ",\"quantiles\":{";
  static constexpr std::pair<const char*, double> kQuantiles[] = {
      {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
  for (std::size_t i = 0; i < std::size(kQuantiles); ++i) {
    if (i) out += ',';
    appendf(out, "\"%s\":", kQuantiles[i].first);
    append_number(out, h.quantile(kQuantiles[i].second));
  }
  out += "},\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;  // sparse: log-scale layouts are mostly empty
    if (!first) out += ',';
    first = false;
    out += "{\"le\":";
    if (i < h.bounds.size()) {
      append_number(out, h.bounds[i]);
    } else {
      out += "\"+Inf\"";
    }
    appendf(out, ",\"count\":%llu}", static_cast<unsigned long long>(h.counts[i]));
  }
  out += ']';
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

void append_prometheus_labels(std::string& out, const Labels& labels,
                              const char* extra_key = nullptr,
                              const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string render_text(const MetricsSnapshot& snapshot) {
  std::string out;
  appendf(out, "== metrics at t=%.3fs (%zu series) ==\n",
          static_cast<double>(snapshot.captured_at_ns) / 1e9, snapshot.samples.size());
  for (const Sample& sample : snapshot.samples) {
    const std::string id = sample.name + label_string(sample.labels);
    if (sample.kind == InstrumentKind::kHistogram) {
      const HistogramSnapshot& h = sample.histogram;
      appendf(out, "  %-52s count=%llu mean=%.3g p50=%.3g p99=%.3g\n", id.c_str(),
              static_cast<unsigned long long>(h.count), h.mean(), h.quantile(0.5),
              h.quantile(0.99));
    } else {
      appendf(out, "  %-52s ", id.c_str());
      append_number(out, sample.numeric());
      out += '\n';
    }
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snapshot) {
  return render_json(snapshot, {});
}

std::string render_json(const MetricsSnapshot& snapshot, const std::vector<Trace>& traces) {
  std::string out;
  appendf(out, "{\"captured_at_ns\":%llu,\"metrics\":[",
          static_cast<unsigned long long>(snapshot.captured_at_ns));
  for (std::size_t i = 0; i < snapshot.samples.size(); ++i) {
    const Sample& sample = snapshot.samples[i];
    if (i) out += ',';
    out += "{\"name\":";
    append_json_string(out, sample.name);
    out += ",\"labels\":";
    append_json_labels(out, sample.labels);
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        appendf(out, ",\"kind\":\"counter\",\"value\":%llu",
                static_cast<unsigned long long>(sample.counter));
        break;
      case InstrumentKind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":";
        append_number(out, sample.gauge);
        break;
      case InstrumentKind::kHistogram:
        out += ",\"kind\":\"histogram\",";
        append_histogram_json(out, sample.histogram);
        break;
    }
    out += '}';
  }
  out += ']';
  if (!traces.empty()) {
    out += ",\"traces\":";
    out += render_traces_json(traces);
  }
  out += '}';
  return out;
}

std::string render_traces_json(const std::vector<Trace>& traces) {
  std::string out = "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const Trace& trace = traces[i];
    if (i) out += ',';
    appendf(out, "{\"stream\":%u,\"sequence\":%u,\"domain\":\"%s\",", trace.key.stream,
            trace.key.sequence, trace.key.domain == TraceKey::kActuation ? "actuation" : "data");
    appendf(out, "\"begin_ns\":%lld,\"end_ns\":%lld,\"spans\":[",
            static_cast<long long>(trace.begin_ns), static_cast<long long>(trace.end_ns));
    for (std::size_t s = 0; s < trace.spans.size(); ++s) {
      const Span& span = trace.spans[s];
      if (s) out += ',';
      out += "{\"stage\":";
      append_json_string(out, span.stage);
      appendf(out, ",\"begin_ns\":%lld,\"end_ns\":%lld}", static_cast<long long>(span.begin_ns),
              static_cast<long long>(span.end_ns));
    }
    out += "]}";
  }
  out += ']';
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const Sample& sample : snapshot.samples) {
    const std::string name = prometheus_name(sample.name);
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        if (name != last_name) appendf(out, "# TYPE %s counter\n", name.c_str());
        out += name;
        append_prometheus_labels(out, sample.labels);
        appendf(out, " %llu\n", static_cast<unsigned long long>(sample.counter));
        break;
      case InstrumentKind::kGauge:
        if (name != last_name) appendf(out, "# TYPE %s gauge\n", name.c_str());
        out += name;
        append_prometheus_labels(out, sample.labels);
        out += ' ';
        append_number(out, sample.gauge);
        out += '\n';
        break;
      case InstrumentKind::kHistogram: {
        if (name != last_name) appendf(out, "# TYPE %s histogram\n", name.c_str());
        const HistogramSnapshot& h = sample.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          if (h.counts[i] == 0 && i < h.bounds.size()) continue;  // keep +Inf, skip empties
          out += name;
          out += "_bucket";
          std::string le = "+Inf";
          if (i < h.bounds.size()) {
            le.clear();
            append_number(le, h.bounds[i]);
          }
          append_prometheus_labels(out, sample.labels, "le", le);
          appendf(out, " %llu\n", static_cast<unsigned long long>(cumulative));
        }
        out += name;
        out += "_sum";
        append_prometheus_labels(out, sample.labels);
        out += ' ';
        append_number(out, h.sum);
        out += '\n';
        out += name;
        out += "_count";
        append_prometheus_labels(out, sample.labels);
        appendf(out, " %llu\n", static_cast<unsigned long long>(h.count));
        break;
      }
    }
    last_name = name;
  }
  return out;
}

}  // namespace garnet::obs
