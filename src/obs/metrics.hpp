// Telemetry metrics: a central registry of named, labelled instruments.
//
// Production sensor middlewares treat monitoring as a first-class
// subsystem; Garnet's is deliberately small. Three instrument kinds:
//
//   * Counter   — monotonically increasing uint64, lock-free increments;
//   * Gauge     — settable double (inventory sizes, battery levels);
//   * Histogram — fixed-bucket log-scale distribution with atomic
//                 per-bucket increments and quantile estimation on read.
//
// Instruments are identified by (name, labels). Registering the same
// identity twice returns the same instrument; re-registering under a
// different kind (or a different histogram layout) throws, so naming
// collisions fail loudly at wiring time rather than corrupting data.
//
// Reads never block writers: snapshot() copies every instrument's
// current value into a MetricsSnapshot, then runs the registered
// collectors — pull-style adapters that let pre-existing plain-struct
// service counters surface through the same exposition path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace garnet::obs {

/// Label set attached to an instrument, e.g. {{"stage", "filter"}}.
/// Canonicalised (sorted by key) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical "{k=v,k2=v2}" rendering; empty string for no labels.
[[nodiscard]] std::string label_string(const Labels& labels);

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Monotonic event count. Increments are single atomic RMW operations.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time measurement that may go up or down.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double expected = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side copy of one histogram: bucket upper bounds plus counts
/// (counts has one extra trailing slot for overflow beyond the last
/// bound). Quantiles are estimated by linear interpolation inside the
/// bucket the rank falls into, so the error is bounded by the bucket's
/// relative width.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< Ascending upper bounds.
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries.
  double sum = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-bucket log-scale histogram. Bucket i covers
/// (bound[i-1], bound[i]] with bound[i] = first_bound * growth^i; values
/// above the last bound land in a final overflow bucket, values at or
/// below first_bound in bucket 0. observe() is a bounded binary search
/// plus one relaxed atomic increment — no locks, no allocation.
class Histogram {
 public:
  struct Layout {
    double first_bound = 1e3;  ///< Upper bound of bucket 0.
    double growth = 1.333521432163324;  ///< 10^(1/8): 8 buckets per decade.
    std::size_t buckets = 72;  ///< Spans ~9 decades at the default growth.

    /// Virtual-time latencies in nanoseconds: 1us .. ~12 minutes.
    [[nodiscard]] static Layout latency_ns() { return {}; }
    /// Payload/frame sizes in bytes: 16B .. 1MiB, power-of-two buckets.
    [[nodiscard]] static Layout bytes() { return {16.0, 2.0, 17}; }

    [[nodiscard]] bool operator==(const Layout&) const = default;
  };

  explicit Histogram(Layout layout);

  void observe(double v) noexcept;

  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  Layout layout_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size() + 1.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One instrument's value at snapshot time.
struct Sample {
  std::string name;
  Labels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t counter = 0;    ///< kCounter.
  double gauge = 0.0;           ///< kGauge.
  HistogramSnapshot histogram;  ///< kHistogram.

  /// Counter or gauge as a double (histograms yield their count).
  [[nodiscard]] double numeric() const;
};

/// Immutable copy of every instrument at one instant, sorted by
/// (name, labels) so renderings are deterministic.
class MetricsSnapshot {
 public:
  std::uint64_t captured_at_ns = 0;
  std::vector<Sample> samples;

  [[nodiscard]] const Sample* find(std::string_view name, const Labels& labels = {}) const;
  /// Counter value; 0 when the metric is absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name, const Labels& labels = {}) const;
  /// Gauge value; 0.0 when absent.
  [[nodiscard]] double gauge(std::string_view name, const Labels& labels = {}) const;
  /// Histogram sample; nullptr when absent or not a histogram.
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name,
                                                   const Labels& labels = {}) const;
};

/// Write-through handle collectors use to append pull-style samples.
class SnapshotBuilder {
 public:
  void counter(std::string name, std::uint64_t value, Labels labels = {});
  void gauge(std::string name, double value, Labels labels = {});

 private:
  friend class MetricsRegistry;
  explicit SnapshotBuilder(std::vector<Sample>& out) : out_(out) {}
  std::vector<Sample>& out_;
};

class MetricsRegistry {
 public:
  /// Create-or-fetch. Throws std::logic_error when the identity is
  /// already registered as a different kind (or histogram layout).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name,
                       Histogram::Layout layout = Histogram::Layout::latency_ns(),
                       Labels labels = {});

  /// Pull-style adapter invoked on every snapshot(); lets services with
  /// plain stats structs expose them without converting to atomics.
  /// Returns a token for remove_collector — owners with a narrower
  /// lifetime than the registry (stack-allocated services in tests) must
  /// deregister before they are destroyed.
  using Collector = std::function<void(SnapshotBuilder&)>;
  using CollectorId = std::uint64_t;
  CollectorId add_collector(Collector collector);
  void remove_collector(CollectorId id);

  [[nodiscard]] MetricsSnapshot snapshot(std::uint64_t now_ns = 0) const;

  [[nodiscard]] std::size_t instrument_count() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    InstrumentKind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, Labels labels, InstrumentKind kind);

  std::map<std::string, Entry> entries_;  ///< Keyed by name + label_string.
  std::vector<std::pair<CollectorId, Collector>> collectors_;
  CollectorId next_collector_id_ = 1;
};

}  // namespace garnet::obs
