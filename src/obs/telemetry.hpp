// The telemetry bundle one deployment owns: a metrics registry plus a
// message tracer bound to it (stage latencies land in the registry's
// per-stage histograms). The Runtime holds one and hands pointers to
// every instrumented service.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace garnet::obs {

struct Telemetry {
  MetricsRegistry registry;
  Tracer tracer;

  Telemetry() : Telemetry(Tracer::Config{}) {}
  explicit Telemetry(Tracer::Config trace_config) : tracer(trace_config) {
    tracer.bind_metrics(&registry);
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;
};

}  // namespace garnet::obs
