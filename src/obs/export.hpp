// Machine- and operator-readable exposition of telemetry snapshots.
//
// Three formats over the same MetricsSnapshot:
//   * render_text        — aligned columns for terminals (RuntimeReport);
//   * render_json        — one JSON object, histograms with quantiles,
//                          consumed by the bench harness (BENCH_*.json);
//   * render_prometheus  — Prometheus text exposition format v0.0.4
//                          (names sanitised, cumulative `le` buckets).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace garnet::obs {

[[nodiscard]] std::string render_text(const MetricsSnapshot& snapshot);

/// {"captured_at_ns":N,"metrics":[...]} — pass traces to append a
/// "traces" array rendered from the flight recorder.
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot,
                                      const std::vector<Trace>& traces);

[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// JSON array of traces (used by render_json and the examples).
[[nodiscard]] std::string render_traces_json(const std::vector<Trace>& traces);

}  // namespace garnet::obs
