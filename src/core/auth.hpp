// Consumer registration and authentication.
//
// Paper §3 presumes "registration, authentication" among the typical
// mechanisms; §9 additionally calls for "support for trusted applications
// to provide advance warning of changing needs and override sensor
// management policies". This service registers consumer identities,
// issues MAC tokens (SipHash under a service secret), and records each
// consumer's trust level, which the Resource Manager and Super
// Coordinator consult:
//
//   kUntrusted — may subscribe to data only;
//   kStandard  — may also issue actuation requests;
//   kTrusted   — may additionally override conflict policy and feed the
//                Super Coordinator with advance state information.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "crypto/siphash.hpp"
#include "net/bus.hpp"
#include "util/result.hpp"

namespace garnet::core {

enum class TrustLevel : std::uint8_t { kUntrusted = 0, kStandard = 1, kTrusted = 2 };

[[nodiscard]] std::string_view to_string(TrustLevel t);

using ConsumerToken = std::uint64_t;

struct ConsumerIdentity {
  std::uint32_t id = 0;
  std::string name;
  TrustLevel trust = TrustLevel::kStandard;
  net::Address address;  ///< Bus endpoint for deliveries to this consumer.
  ConsumerToken token = 0;
  std::uint8_t priority = 100;  ///< Conflict-resolution rank, higher wins.
};

enum class AuthError : std::uint8_t {
  kNameTaken,
  kUnknownToken,
};

class AuthService {
 public:
  struct Config {
    std::uint64_t secret_seed = 0x6172'6E65'7453'6563ull;
    TrustLevel default_trust = TrustLevel::kStandard;
  };

  explicit AuthService(Config config);

  /// Pre-authorises `name` at a trust level (deployment-time policy);
  /// applied when that consumer registers.
  void grant_trust(const std::string& name, TrustLevel trust);

  /// Registers a consumer and issues its token.
  util::Result<ConsumerIdentity, AuthError> register_consumer(const std::string& name,
                                                              net::Address address,
                                                              std::uint8_t priority = 100);

  /// Verifies a token; nullopt when unknown/revoked.
  [[nodiscard]] std::optional<ConsumerIdentity> verify(ConsumerToken token) const;

  /// Revokes a consumer's token. Returns false if unknown.
  bool revoke(ConsumerToken token);

  [[nodiscard]] std::size_t consumer_count() const noexcept { return by_token_.size(); }

 private:
  Config config_;
  crypto::SipKey secret_;
  std::unordered_map<ConsumerToken, ConsumerIdentity> by_token_;
  std::unordered_map<std::string, TrustLevel> trust_grants_;
  std::unordered_map<std::string, ConsumerToken> by_name_;
  std::uint32_t next_id_ = 1;
};

}  // namespace garnet::core
