#include "core/dispatch.hpp"

#include <algorithm>

#include "core/orphanage.hpp"
#include "util/log.hpp"

namespace garnet::core {

namespace {

/// Wrap-aware "seq is at or past floor" for 16-bit sequence numbers:
/// true when seq is within the forward half-window of floor.
[[nodiscard]] bool at_or_past(SequenceNo seq, SequenceNo floor) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(seq - floor)) >= 0;
}

}  // namespace

DispatchStats& DispatchStats::operator+=(const DispatchStats& other) noexcept {
  messages_in += other.messages_in;
  derived_in += other.derived_in;
  copies_delivered += other.copies_delivered;
  orphaned += other.orphaned;
  acks_observed += other.acks_observed;
  rejected_publishes += other.rejected_publishes;
  credits_exhausted += other.credits_exhausted;
  quarantines += other.quarantines;
  quarantine_sheds += other.quarantine_sheds;
  credit_acks += other.credit_acks;
  resumes += other.resumes;
  resume_redelivered += other.resume_redelivered;
  resume_discarded += other.resume_discarded;
  resume_returned += other.resume_returned;
  recovery_replayed += other.recovery_replayed;
  recovery_returned += other.recovery_returned;
  return *this;
}

DispatchingService::DispatchingService(net::MessageBus& bus, AuthService& auth,
                                       StreamCatalog& catalog)
    : bus_(bus),
      auth_(auth),
      catalog_(catalog),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {
  node_.expose(kSubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const auto pattern = StreamPattern::from_packed(r.u64());
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    SubscribeOptions qos;
    if (r.remaining() >= 8) {
      qos.min_interval_ms = r.u32();
      qos.max_age_ms = r.u32();
    }

    const auto identity = auth_.verify(token);
    if (!identity) return util::Err{net::RpcError::kRemoteFailure};

    const SubscriptionId id = subscribe(identity->address, pattern, qos);
    util::ByteWriter w(12);
    w.u64(id);
    w.u32(flow_.credit_window);  // 0 = flow control disabled
    return std::move(w).take();
  });

  node_.expose(kUnsubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const SubscriptionId id = r.u64();
    if (!r.ok() || !auth_.verify(token)) return util::Err{net::RpcError::kRemoteFailure};
    if (!unsubscribe(id)) return util::Err{net::RpcError::kRemoteFailure};
    return util::Bytes{};
  });
}

void DispatchingService::on_filtered(const DataMessage& message, util::SimTime first_heard) {
  ++stats_.messages_in;
  deliver(as_view(message), first_heard);
}

void DispatchingService::on_filtered(const DataMessageView& message, util::SimTime first_heard) {
  ++stats_.messages_in;
  deliver(message, first_heard);
}

SubscriptionId DispatchingService::subscribe(net::Address consumer, StreamPattern pattern,
                                             SubscribeOptions qos) {
  const SubscriptionId id = table_.add(consumer, pattern, qos);
  if (op_sink_) {
    util::ByteWriter w(28);
    w.u64(id);
    w.u32(consumer.value);
    w.u64(pattern.packed());
    w.u32(qos.min_interval_ms);
    w.u32(qos.max_age_ms);
    op_sink_(kOpSubscribe, w.view());
  }
  return id;
}

bool DispatchingService::unsubscribe(SubscriptionId id) {
  if (!table_.remove(id)) return false;
  if (op_sink_) {
    util::ByteWriter w(8);
    w.u64(id);
    op_sink_(kOpUnsubscribe, w.view());
  }
  return true;
}

std::size_t DispatchingService::drop_consumer(net::Address consumer) {
  // Erasing the flow retires its epoch: an in-flight resume that fetched
  // this consumer's stash will see the mismatch and return the frames to
  // the Orphanage instead of delivering to (or losing them with) the
  // departed consumer.
  flows_.erase(ConsumerKey{consumer.value});
  const std::size_t removed = table_.remove_consumer(consumer);
  if (op_sink_) {
    util::ByteWriter w(4);
    w.u32(consumer.value);
    op_sink_(kOpDropConsumer, w.view());
  }
  return removed;
}

void DispatchingService::apply_op(std::uint16_t kind, util::BytesView payload) {
  util::ByteReader r(payload);
  switch (kind) {
    case kOpSubscribe: {
      const SubscriptionId id = r.u64();
      const net::Address consumer{r.u32()};
      const auto pattern = StreamPattern::from_packed(r.u64());
      SubscribeOptions qos;
      qos.min_interval_ms = r.u32();
      qos.max_age_ms = r.u32();
      if (r.ok()) table_.restore_entry(id, consumer, pattern, qos);
      break;
    }
    case kOpUnsubscribe: {
      const SubscriptionId id = r.u64();
      if (r.ok()) table_.remove(id);
      break;
    }
    case kOpDropConsumer: {
      const net::Address consumer{r.u32()};
      if (r.ok()) {
        flows_.erase(ConsumerKey{consumer.value});
        table_.remove_consumer(consumer);
      }
      break;
    }
    case kOpCursor: {
      const std::uint32_t packed = r.u32();
      const SequenceNo seq = r.u16();
      if (!r.ok()) break;
      auto [cur, inserted] = cursors_.try_emplace(StreamKey::from_packed(packed));
      if (inserted || at_or_past(seq, *cur)) *cur = seq;
      break;
    }
    default:
      break;
  }
}

namespace {

/// Flow fields as they sit in a checkpoint frame (shed keys unpacked).
struct ParsedFlow {
  std::uint32_t addr = 0;
  bool quarantined = false;
  std::vector<std::uint64_t> shed;
};

}  // namespace

void DispatchingService::encode_flows(util::ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(flows_.size()));
  flows_.for_each_sorted([&w](ConsumerKey key, const Flow& flow) {
    w.u32(key.pack());
    w.u32(flow.credits);
    w.u8(flow.quarantined ? 1 : 0);
    std::vector<std::uint64_t> shed(flow.shed.begin(), flow.shed.end());
    std::sort(shed.begin(), shed.end());
    w.u32(static_cast<std::uint32_t>(shed.size()));
    for (const std::uint64_t key64 : shed) {
      w.u32(static_cast<std::uint32_t>(key64 >> 16));
      w.u16(static_cast<std::uint16_t>(key64 & 0xFFFF));
    }
  });
}

util::Bytes DispatchingService::capture_state() const {
  util::ByteWriter w(256);
  table_.capture(w);
  encode_flows(w);

  w.u32(static_cast<std::uint32_t>(cursors_.size()));
  cursors_.for_each_sorted([&w](StreamKey key, const SequenceNo& seq) {
    w.u32(key.pack());
    w.u16(seq);
  });
  return std::move(w).take();
}

util::Bytes DispatchingService::capture_full() {
  util::Bytes state = capture_state();
  flows_.clear_dirty();
  cursors_.clear_dirty();
  return state;
}

util::Bytes DispatchingService::capture_delta() {
  util::ByteWriter w(256);
  table_.capture(w);
  encode_flows(w);

  const std::vector<std::uint32_t> removed = cursors_.removed_keys();
  const std::vector<std::uint32_t> dirty = cursors_.dirty_keys();
  w.u32(static_cast<std::uint32_t>(removed.size()));
  for (const std::uint32_t key : removed) w.u32(key);
  w.u32(static_cast<std::uint32_t>(dirty.size()));
  for (const std::uint32_t raw : dirty) {
    w.u32(raw);
    w.u16(*cursors_.find(StreamKey::from_packed(raw)));
  }
  flows_.clear_dirty();
  cursors_.clear_dirty();
  return std::move(w).take();
}

namespace {

std::vector<ParsedFlow> parse_flows(util::ByteReader& r) {
  const std::uint32_t flow_count = r.u32();
  std::vector<ParsedFlow> flows;
  for (std::uint32_t i = 0; i < flow_count && r.ok(); ++i) {
    ParsedFlow f;
    f.addr = r.u32();
    [[maybe_unused]] const std::uint32_t credits = r.u32();  // restore re-primes
    f.quarantined = r.u8() != 0;
    const std::uint32_t shed_count = r.u32();
    for (std::uint32_t j = 0; j < shed_count && r.ok(); ++j) {
      const std::uint32_t packed = r.u32();
      const SequenceNo seq = r.u16();
      f.shed.push_back((static_cast<std::uint64_t>(packed) << 16) | seq);
    }
    if (r.ok()) flows.push_back(std::move(f));
  }
  return flows;
}

}  // namespace

util::Status<util::DecodeError> DispatchingService::apply_delta(util::BytesView delta) {
  util::ByteReader r(delta);
  SubscriptionTable table;
  if (const auto status = table.restore(r); !status.ok()) return status;
  std::vector<ParsedFlow> flows = parse_flows(r);

  std::vector<StreamKey> removed;
  const std::uint32_t removed_count = r.u32();
  for (std::uint32_t i = 0; i < removed_count && r.ok(); ++i) {
    removed.push_back(StreamKey::from_packed(r.u32()));
  }
  std::vector<std::pair<StreamKey, SequenceNo>> upserts;
  const std::uint32_t dirty_count = r.u32();
  for (std::uint32_t i = 0; i < dirty_count && r.ok(); ++i) {
    const StreamKey key = StreamKey::from_packed(r.u32());
    const SequenceNo seq = r.u16();
    upserts.emplace_back(key, seq);
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  table_ = std::move(table);
  flows_.clear();
  if (flow_.enabled()) {
    for (const ParsedFlow& f : flows) {
      Flow& flow = flows_.upsert(ConsumerKey{f.addr});
      flow.credits = flow_.credit_window;
      flow.quarantined = f.quarantined;
      flow.epoch = next_flow_epoch_++;
      flow.shed.insert(f.shed.begin(), f.shed.end());
    }
  }
  for (const StreamKey key : removed) cursors_.erase(key);
  for (const auto& [key, seq] : upserts) cursors_.upsert(key) = seq;
  flows_.clear_dirty();
  cursors_.clear_dirty();
  return {};
}

util::Status<util::DecodeError> DispatchingService::restore_state(util::BytesView state) {
  util::ByteReader r(state);
  SubscriptionTable table;
  if (const auto status = table.restore(r); !status.ok()) return status;
  std::vector<ParsedFlow> flows = parse_flows(r);

  const std::uint32_t cursor_count = r.u32();
  std::vector<std::pair<std::uint32_t, SequenceNo>> cursors;
  for (std::uint32_t i = 0; i < cursor_count && r.ok(); ++i) {
    const std::uint32_t packed = r.u32();
    const SequenceNo seq = r.u16();
    cursors.emplace_back(packed, seq);
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  table_ = std::move(table);
  flows_.clear();
  if (flow_.enabled()) {
    for (const ParsedFlow& f : flows) {
      Flow& flow = flows_.upsert(ConsumerKey{f.addr});
      flow.credits = flow_.credit_window;
      flow.quarantined = f.quarantined;
      flow.epoch = next_flow_epoch_++;
      flow.shed.insert(f.shed.begin(), f.shed.end());
    }
  }
  cursors_.clear();
  cursors_.reserve(cursors.size());
  for (const auto& [packed, seq] : cursors) {
    cursors_.upsert(StreamKey::from_packed(packed)) = seq;
  }
  flows_.clear_dirty();
  cursors_.clear_dirty();
  return {};
}

void DispatchingService::reset_state() {
  table_ = SubscriptionTable{};
  flows_.clear();
  cursors_.clear();
}

std::optional<SequenceNo> DispatchingService::cursor(StreamId id) const {
  const SequenceNo* seq = cursors_.find(StreamKey{id});
  if (seq == nullptr) return std::nullopt;
  return *seq;
}

void DispatchingService::advance_cursor(StreamId id, SequenceNo seq) {
  auto [cur, inserted] = cursors_.try_emplace(StreamKey{id});
  if (inserted) {
    *cur = seq;
  } else {
    if (seq == *cur || !at_or_past(seq, *cur)) return;
    *cur = seq;
  }
  if (op_sink_) {
    util::ByteWriter w(6);
    w.u32(id.packed());
    w.u16(seq);
    op_sink_(kOpCursor, w.view());
  }
}

void DispatchingService::replay_stash() {
  if (!orphan_sink_.valid() || cursors_.empty()) {
    finish_stash_replay();
    return;
  }
  auto plan = std::make_shared<StashReplay>();
  plan->streams.reserve(cursors_.size());
  cursors_.for_each_sorted([&plan](StreamKey key, const SequenceNo& cur) {
    plan->streams.push_back(key.pack());
    plan->windows.upsert(key).floor = static_cast<SequenceNo>(cur + 1);
  });
  plan->windows.clear_dirty();
  active_stash_replay_ = plan;
  fetch_stash(plan);
}

void DispatchingService::fetch_stash(const std::shared_ptr<StashReplay>& plan) {
  if (plan->index >= plan->streams.size()) {
    finish_stash_replay();
    return;
  }
  util::ByteWriter w(6);
  w.u32(plan->streams[plan->index]);
  w.u16(flow_.fetch_batch);
  // Same contract as the quarantine resume: kFetchBacklog drains, so the
  // call must go through the at-most-once cache, never retried blind.
  net::CallOptions options = flow_.fetch_options;
  options.idempotent = false;
  node_.call(orphan_sink_, Orphanage::kFetchBacklog, std::move(w).take(), options,
             [this, plan](net::RpcResult result) {
               if (!result.ok()) {
                 ++plan->index;
                 fetch_stash(plan);
                 return;
               }
               on_stash_backlog(plan, util::SharedBytes(std::move(result).value()));
             });
}

void DispatchingService::on_stash_backlog(const std::shared_ptr<StashReplay>& plan,
                                          util::SharedBytes reply) {
  util::ByteReader r(reply);
  const std::uint16_t count = r.u16();
  const ReplayWindow* fetched =
      plan->windows.find(StreamKey::from_packed(plan->streams[plan->index]));
  const SequenceNo plan_floor = fetched != nullptr ? fetched->floor : 0;
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    const std::uint16_t length = r.u16();
    const std::size_t offset = r.consumed();
    if (r.view(length).empty() && length > 0) break;  // truncated reply
    util::SharedBytes frame = reply.view(offset, length);
    const auto decoded = decode_delivery_view(frame);
    if (!decoded.ok()) continue;
    const DeliveryView& delivery = decoded.value();
    const StreamKey stream_key{delivery.message.stream_id};
    const SequenceNo seq = delivery.message.sequence;
    // The sweep races live traffic, and deliver() re-stashes
    // quarantine-shed copies that later rounds fetch back. A frame is
    // replayed only inside the crash window: at or past the crash-time
    // cursor (floor), below the first live post-promotion delivery
    // (ceiling), and strictly above what this sweep already delivered.
    const ReplayWindow* window = plan->windows.find(stream_key);
    const bool before_crash = !at_or_past(seq, plan_floor);
    const bool live_copy =
        window != nullptr && window->has_ceiling && at_or_past(seq, window->ceiling);
    const bool already_replayed =
        window != nullptr && window->has_replayed &&
        !at_or_past(seq, static_cast<SequenceNo>(window->replayed + 1));
    if (before_crash || live_copy || already_replayed) {
      // Already processed — an orphan or a quarantine shed. Back to the
      // stash for the resume path and late claimants.
      ++stats_.recovery_returned;
      node_.post(orphan_sink_, kDataDelivery, frame);
      continue;
    }
    // The crashed primary never saw this frame (it reached the stash via
    // the runtime's crash redirect): run it through the normal fan-out,
    // which re-advances the cursor and re-stashes it if unclaimed.
    ++stats_.recovery_replayed;
    ReplayWindow& mark = plan->windows.upsert(stream_key);
    mark.has_replayed = true;
    mark.replayed = seq;
    stash_replay_delivering_ = true;
    deliver(delivery.message, delivery.first_heard);
    stash_replay_delivering_ = false;
  }
  if (count < flow_.fetch_batch) ++plan->index;
  fetch_stash(plan);
}

void DispatchingService::finish_stash_replay() {
  active_stash_replay_.reset();
  // Quarantined flows came back with a full window; kick their backlog
  // replay now that the crash-window frames are settled. Snapshot order
  // keeps the kick sequence deterministic.
  std::vector<net::Address> quarantined;
  flows_.for_each_sorted([&quarantined](ConsumerKey key, const Flow& flow) {
    if (flow.quarantined) quarantined.push_back(net::Address{key.pack()});
  });
  for (const net::Address consumer : quarantined) maybe_resume(consumer);
}

void DispatchingService::set_flow_control(FlowControlConfig config) {
  flow_ = config;
  flows_.for_each([this](ConsumerKey, Flow& flow) {
    flow.credits = std::min(flow.credits, flow_.credit_window);
  });
  if (!flow_.enabled()) flows_.clear();
}

bool DispatchingService::quarantined(net::Address consumer) const {
  const Flow* flow = flows_.find(ConsumerKey{consumer.value});
  return flow != nullptr && flow->quarantined;
}

std::uint32_t DispatchingService::credits(net::Address consumer) const {
  const Flow* flow = flows_.find(ConsumerKey{consumer.value});
  return flow != nullptr ? flow->credits : flow_.credit_window;
}

DispatchingService::Flow& DispatchingService::flow_for(net::Address consumer) {
  auto [flow, inserted] = flows_.try_emplace(ConsumerKey{consumer.value});
  if (inserted) {
    flow->credits = flow_.credit_window;
    flow->epoch = next_flow_epoch_++;
  }
  return *flow;
}

DispatchingService::Flow* DispatchingService::flow_if_current(const ResumePlan& plan) {
  Flow* flow = flows_.mutate(ConsumerKey{plan.consumer.value});
  if (flow == nullptr || flow->epoch != plan.epoch) return nullptr;
  return flow;
}

std::uint32_t DispatchingService::resume_threshold() const {
  if (flow_.resume_threshold > 0) return flow_.resume_threshold;
  return std::max<std::uint32_t>(1, flow_.credit_window / 2);
}

void DispatchingService::on_credit(const net::Envelope& envelope) {
  if (!flow_.enabled()) return;
  util::ByteReader r(envelope.payload);
  const std::uint32_t granted = r.u32();
  if (!r.ok() || granted == 0) return;
  // Only senders we have delivered to carry flow state; credits from
  // strangers (fuzzed or stale endpoints) are ignored, not banked.
  Flow* found = flows_.mutate(ConsumerKey{envelope.from.value});
  if (found == nullptr) return;
  ++stats_.credit_acks;
  Flow& flow = *found;
  flow.credits = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      flow_.credit_window, static_cast<std::uint64_t>(flow.credits) + granted));
  maybe_resume(envelope.from);
}

void DispatchingService::maybe_resume(net::Address consumer) {
  Flow* found = flows_.mutate(ConsumerKey{consumer.value});
  if (found == nullptr) return;
  Flow& flow = *found;
  if (!flow.quarantined || flow.resume_inflight || flow.credits == 0) return;
  if (flow.shed.empty()) {
    // Nothing was shed while quarantined (or the stash is unreachable):
    // plain release.
    flow.quarantined = false;
    return;
  }
  if (flow.credits < resume_threshold()) return;
  start_resume(consumer, flow);
}

void DispatchingService::start_resume(net::Address consumer, Flow& flow) {
  if (!orphan_sink_.valid()) {
    // No stash to replay from; release with whatever was lost, lost.
    flow.shed.clear();
    flow.quarantined = false;
    return;
  }
  ++stats_.resumes;
  flow.resume_inflight = true;
  auto plan = std::make_shared<ResumePlan>();
  plan->consumer = consumer;
  plan->epoch = flow.epoch;
  plan->shed = std::move(flow.shed);
  flow.shed.clear();
  for (const std::uint64_t key : plan->shed) {
    plan->streams.push_back(static_cast<std::uint32_t>(key >> 16));
  }
  std::sort(plan->streams.begin(), plan->streams.end());
  plan->streams.erase(std::unique(plan->streams.begin(), plan->streams.end()),
                      plan->streams.end());
  fetch_next(plan);
}

void DispatchingService::fetch_next(const std::shared_ptr<ResumePlan>& plan) {
  if (flow_if_current(*plan) == nullptr) return;  // consumer dropped; plan dead
  if (plan->index >= plan->streams.size()) {
    finish_resume(plan);
    return;
  }
  util::ByteWriter w(6);
  w.u32(plan->streams[plan->index]);
  w.u16(flow_.fetch_batch);
  // kFetchBacklog drains the stash, so a re-executed fetch would see an
  // empty ring and the drained frames would ride the lost response:
  // never idempotent, always through the at-most-once cache.
  net::CallOptions options = flow_.fetch_options;
  options.idempotent = false;
  node_.call(orphan_sink_, Orphanage::kFetchBacklog, std::move(w).take(), options,
             [this, plan](net::RpcResult result) {
               if (!result.ok()) {
                 // Stash unreachable for this stream; skip it rather than
                 // stall the whole replay.
                 ++plan->index;
                 fetch_next(plan);
                 return;
               }
               on_backlog(plan, util::SharedBytes(std::move(result).value()));
             });
}

void DispatchingService::on_backlog(const std::shared_ptr<ResumePlan>& plan,
                                    util::SharedBytes reply) {
  util::ByteReader r(reply);
  const std::uint16_t count = r.u16();
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    const std::uint16_t length = r.u16();
    const std::size_t offset = r.consumed();
    if (r.view(length).empty() && length > 0) break;  // truncated reply
    // Zero-copy: each stashed frame is a sub-view of the one reply buffer.
    util::SharedBytes frame = reply.view(offset, length);

    Flow* flow = flow_if_current(*plan);
    if (flow == nullptr || flow->credits == 0) {
      // Consumer dropped mid-replay, or its window re-exhausted: the
      // frame goes back to the stash so it is neither lost nor delivered
      // out of contract. (For a live flow the floor re-forms, so the
      // next resume round picks it up.)
      ++stats_.resume_returned;
      node_.post(orphan_sink_, kDataDelivery, frame);
      if (flow != nullptr) {
        auto decoded = decode_delivery_view(frame);
        if (decoded.ok()) {
          const DataMessageView& message = decoded.value().message;
          flow->shed.insert(shed_key(message.stream_id.packed(), message.sequence));
        }
      }
      continue;
    }

    auto decoded = decode_delivery_view(frame);
    if (!decoded.ok()) {
      ++stats_.resume_discarded;
      continue;
    }
    const DataMessageView& message = decoded.value().message;
    // Duplicate-freedom: redeliver exactly what was shed from THIS
    // consumer. The shared stash also holds copies shed for other
    // consumers, pre-quarantine orphans, and — after a crash — sweep
    // leftovers interleaving old and new sequences; membership in the
    // flow's shed set is the only test that rejects all of them.
    if (plan->shed.count(shed_key(message.stream_id.packed(), message.sequence)) == 0 ||
        !table_.subscribes(plan->consumer, message.stream_id)) {
      ++stats_.resume_discarded;
      continue;
    }
    ++stats_.resume_redelivered;
    ++stats_.copies_delivered;
    --flow->credits;
    if (flow->credits == 0) ++stats_.credits_exhausted;
    bus_.post(node_.address(), plan->consumer, kDataDelivery, std::move(frame));
  }
  // A full batch may mean more frames remain for this stream; an
  // undersized one means the stash is drained for it.
  if (count < flow_.fetch_batch) ++plan->index;
  fetch_next(plan);
}

void DispatchingService::finish_resume(const std::shared_ptr<ResumePlan>& plan) {
  Flow* flow = flow_if_current(*plan);
  if (flow == nullptr) return;
  flow->resume_inflight = false;
  if (flow->shed.empty()) {
    if (flow->credits > 0) flow->quarantined = false;
    return;
  }
  // New sheds accumulated while replaying (re-stashed frames or fresh
  // traffic): go again if the window allows, else wait for the next ack.
  maybe_resume(plan->consumer);
}

void DispatchingService::on_envelope(net::Envelope envelope) {
  if (envelope.type == kDeliveryCredit) {
    on_credit(envelope);
    return;
  }
  if (envelope.type != kDerivedPublish) return;
  // Zero-copy validate-and-forward: the view's payload aliases the
  // envelope buffer, which outlives the synchronous deliver() below.
  const auto decoded = decode_view(envelope.payload);
  if (!decoded.ok() || !decoded.value().header.has(HeaderFlag::kDerived)) {
    ++stats_.rejected_publishes;
    return;
  }
  ++stats_.derived_in;
  deliver(decoded.value(), bus_.now());
}

void DispatchingService::deliver(const DataMessageView& message, util::SimTime first_heard) {
  if (!stash_replay_delivering_) {
    // Live traffic racing an in-flight stash sweep: the first such
    // sequence caps the sweep for its stream, so quarantine-shed copies
    // of this delivery fetched by a later round are never re-fanned-out.
    if (const auto plan = active_stash_replay_.lock()) {
      ReplayWindow& window = plan->windows.upsert(StreamKey{message.stream_id});
      if (!window.has_ceiling || !at_or_past(message.sequence, window.ceiling)) {
        window.has_ceiling = true;
        window.ceiling = message.sequence;
      }
    }
  }
  const obs::TraceKey trace_key{message.stream_id.packed(), message.sequence};
  if (tracer_ != nullptr) tracer_->begin_span(trace_key, "dispatch", bus_.now().ns);

  catalog_.note_message(message.stream_id, bus_.now());
  // The cursor marks "processed through seq" whatever the claim outcome;
  // it is the gap-detection floor for post-crash stash replay.
  advance_cursor(message.stream_id, message.sequence);

  if (message.ack_request_id && ack_observer_) {
    ++stats_.acks_observed;
    ack_observer_(*message.ack_request_id, message.stream_id.sensor, bus_.now());
  }

  scratch_.clear();
  table_.collect(message.stream_id, {bus_.now(), first_heard}, scratch_);

  if (scratch_.empty()) {
    // Unclaimed (nobody subscribed) goes to the Orphanage. A message
    // with subscribers that were all QoS-suppressed is *claimed* — the
    // consumers chose not to receive this copy — and is simply dropped.
    // Either way the journey ends here, so the trace is not recorded.
    if (tracer_ != nullptr) {
      tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
      tracer_->discard(trace_key);
    }
    if (orphan_sink_.valid() && !table_.anyone_wants(message.stream_id)) {
      ++stats_.orphaned;
      bus_.post(node_.address(), orphan_sink_, kDataDelivery,
                encode_delivery(message, first_heard));
    }
    return;
  }

  if (tracer_ != nullptr) {
    tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
    tracer_->begin_span(trace_key, "deliver", bus_.now().ns);
  }

  // One encode, N posts: every consumer's envelope refcounts this one
  // buffer; no per-subscriber byte copy happens anywhere downstream.
  const util::SharedBytes wire = encode_delivery(message, first_heard);
  bool stashed = false;
  for (const net::Address consumer : scratch_) {
    if (flow_.enabled()) {
      Flow& flow = flow_for(consumer);
      if (flow.quarantined) {
        // Shed for this consumer alone; the copy is stashed (below) and
        // the shed set marks it for duplicate-free redelivery on resume.
        ++stats_.quarantine_sheds;
        flow.shed.insert(shed_key(message.stream_id.packed(), message.sequence));
        stashed = true;
        continue;
      }
      --flow.credits;
      if (flow.credits == 0) {
        ++stats_.credits_exhausted;
        ++stats_.quarantines;
        flow.quarantined = true;
      }
    }
    ++stats_.copies_delivered;
    bus_.post(node_.address(), consumer, kDataDelivery, wire);
  }
  // One stash post covers every consumer quarantined on this message —
  // the Orphanage keeps a single retained copy per message either way.
  if (stashed && orphan_sink_.valid()) {
    bus_.post(node_.address(), orphan_sink_, kDataDelivery, wire);
  }
}

}  // namespace garnet::core
