#include "core/dispatch.hpp"

#include <algorithm>

#include "core/orphanage.hpp"
#include "util/log.hpp"

namespace garnet::core {

namespace {

/// Wrap-aware "seq is at or past floor" for 16-bit sequence numbers:
/// true when seq is within the forward half-window of floor.
[[nodiscard]] bool at_or_past(SequenceNo seq, SequenceNo floor) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(seq - floor)) >= 0;
}

}  // namespace

DispatchingService::DispatchingService(net::MessageBus& bus, AuthService& auth,
                                       StreamCatalog& catalog)
    : bus_(bus),
      auth_(auth),
      catalog_(catalog),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {
  node_.expose(kSubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const auto pattern = StreamPattern::from_packed(r.u64());
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    SubscribeOptions qos;
    if (r.remaining() >= 8) {
      qos.min_interval_ms = r.u32();
      qos.max_age_ms = r.u32();
    }

    const auto identity = auth_.verify(token);
    if (!identity) return util::Err{net::RpcError::kRemoteFailure};

    const SubscriptionId id = subscribe(identity->address, pattern, qos);
    util::ByteWriter w(12);
    w.u64(id);
    w.u32(flow_.credit_window);  // 0 = flow control disabled
    return std::move(w).take();
  });

  node_.expose(kUnsubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const SubscriptionId id = r.u64();
    if (!r.ok() || !auth_.verify(token)) return util::Err{net::RpcError::kRemoteFailure};
    if (!unsubscribe(id)) return util::Err{net::RpcError::kRemoteFailure};
    return util::Bytes{};
  });
}

void DispatchingService::on_filtered(const DataMessage& message, util::SimTime first_heard) {
  ++stats_.messages_in;
  deliver(as_view(message), first_heard);
}

SubscriptionId DispatchingService::subscribe(net::Address consumer, StreamPattern pattern,
                                             SubscribeOptions qos) {
  return table_.add(consumer, pattern, qos);
}

bool DispatchingService::unsubscribe(SubscriptionId id) { return table_.remove(id); }

std::size_t DispatchingService::drop_consumer(net::Address consumer) {
  // Erasing the flow retires its epoch: an in-flight resume that fetched
  // this consumer's stash will see the mismatch and return the frames to
  // the Orphanage instead of delivering to (or losing them with) the
  // departed consumer.
  flows_.erase(consumer.value);
  return table_.remove_consumer(consumer);
}

void DispatchingService::set_flow_control(FlowControlConfig config) {
  flow_ = config;
  for (auto& [address, flow] : flows_) {
    flow.credits = std::min(flow.credits, flow_.credit_window);
  }
  if (!flow_.enabled()) flows_.clear();
}

bool DispatchingService::quarantined(net::Address consumer) const {
  const auto it = flows_.find(consumer.value);
  return it != flows_.end() && it->second.quarantined;
}

std::uint32_t DispatchingService::credits(net::Address consumer) const {
  const auto it = flows_.find(consumer.value);
  return it != flows_.end() ? it->second.credits : flow_.credit_window;
}

DispatchingService::Flow& DispatchingService::flow_for(net::Address consumer) {
  const auto [it, inserted] = flows_.try_emplace(consumer.value);
  if (inserted) {
    it->second.credits = flow_.credit_window;
    it->second.epoch = next_flow_epoch_++;
  }
  return it->second;
}

DispatchingService::Flow* DispatchingService::flow_if_current(const ResumePlan& plan) {
  const auto it = flows_.find(plan.consumer.value);
  if (it == flows_.end() || it->second.epoch != plan.epoch) return nullptr;
  return &it->second;
}

std::uint32_t DispatchingService::resume_threshold() const {
  if (flow_.resume_threshold > 0) return flow_.resume_threshold;
  return std::max<std::uint32_t>(1, flow_.credit_window / 2);
}

void DispatchingService::on_credit(const net::Envelope& envelope) {
  if (!flow_.enabled()) return;
  util::ByteReader r(envelope.payload);
  const std::uint32_t granted = r.u32();
  if (!r.ok() || granted == 0) return;
  // Only senders we have delivered to carry flow state; credits from
  // strangers (fuzzed or stale endpoints) are ignored, not banked.
  const auto it = flows_.find(envelope.from.value);
  if (it == flows_.end()) return;
  ++stats_.credit_acks;
  Flow& flow = it->second;
  flow.credits = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      flow_.credit_window, static_cast<std::uint64_t>(flow.credits) + granted));
  maybe_resume(envelope.from);
}

void DispatchingService::maybe_resume(net::Address consumer) {
  const auto it = flows_.find(consumer.value);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  if (!flow.quarantined || flow.resume_inflight || flow.credits == 0) return;
  if (flow.shed_floor.empty()) {
    // Nothing was shed while quarantined (or the stash is unreachable):
    // plain release.
    flow.quarantined = false;
    return;
  }
  if (flow.credits < resume_threshold()) return;
  start_resume(consumer, flow);
}

void DispatchingService::start_resume(net::Address consumer, Flow& flow) {
  if (!orphan_sink_.valid()) {
    // No stash to replay from; release with whatever was lost, lost.
    flow.shed_floor.clear();
    flow.quarantined = false;
    return;
  }
  ++stats_.resumes;
  flow.resume_inflight = true;
  auto plan = std::make_shared<ResumePlan>();
  plan->consumer = consumer;
  plan->epoch = flow.epoch;
  plan->floors = std::move(flow.shed_floor);
  flow.shed_floor.clear();
  plan->streams.reserve(plan->floors.size());
  for (const auto& [packed, floor] : plan->floors) plan->streams.push_back(packed);
  std::sort(plan->streams.begin(), plan->streams.end());
  fetch_next(plan);
}

void DispatchingService::fetch_next(const std::shared_ptr<ResumePlan>& plan) {
  if (flow_if_current(*plan) == nullptr) return;  // consumer dropped; plan dead
  if (plan->index >= plan->streams.size()) {
    finish_resume(plan);
    return;
  }
  util::ByteWriter w(6);
  w.u32(plan->streams[plan->index]);
  w.u16(flow_.fetch_batch);
  // kFetchBacklog drains the stash, so a re-executed fetch would see an
  // empty ring and the drained frames would ride the lost response:
  // never idempotent, always through the at-most-once cache.
  net::CallOptions options = flow_.fetch_options;
  options.idempotent = false;
  node_.call(orphan_sink_, Orphanage::kFetchBacklog, std::move(w).take(), options,
             [this, plan](net::RpcResult result) {
               if (!result.ok()) {
                 // Stash unreachable for this stream; skip it rather than
                 // stall the whole replay.
                 ++plan->index;
                 fetch_next(plan);
                 return;
               }
               on_backlog(plan, util::SharedBytes(std::move(result).value()));
             });
}

void DispatchingService::on_backlog(const std::shared_ptr<ResumePlan>& plan,
                                    util::SharedBytes reply) {
  util::ByteReader r(reply);
  const std::uint16_t count = r.u16();
  const SequenceNo floor = plan->floors[plan->streams[plan->index]];
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    const std::uint16_t length = r.u16();
    const std::size_t offset = r.consumed();
    if (r.view(length).empty() && length > 0) break;  // truncated reply
    // Zero-copy: each stashed frame is a sub-view of the one reply buffer.
    util::SharedBytes frame = reply.view(offset, length);

    Flow* flow = flow_if_current(*plan);
    if (flow == nullptr || flow->credits == 0) {
      // Consumer dropped mid-replay, or its window re-exhausted: the
      // frame goes back to the stash so it is neither lost nor delivered
      // out of contract. (For a live flow the floor re-forms, so the
      // next resume round picks it up.)
      ++stats_.resume_returned;
      node_.post(orphan_sink_, kDataDelivery, frame);
      if (flow != nullptr) {
        auto decoded = decode_delivery_view(frame);
        if (decoded.ok()) {
          const DataMessageView& message = decoded.value().message;
          const auto [it, inserted] =
              flow->shed_floor.try_emplace(message.stream_id.packed(), message.sequence);
          if (!inserted && at_or_past(it->second, message.sequence)) {
            it->second = message.sequence;
          }
        }
      }
      continue;
    }

    auto decoded = decode_delivery_view(frame);
    if (!decoded.ok()) {
      ++stats_.resume_discarded;
      continue;
    }
    const DataMessageView& message = decoded.value().message;
    // Duplicate-freedom: only frames at or past the shed floor were
    // withheld from this consumer; anything earlier is a pre-quarantine
    // orphan it already received (or never subscribed to at that time).
    if (!at_or_past(message.sequence, floor) ||
        !table_.subscribes(plan->consumer, message.stream_id)) {
      ++stats_.resume_discarded;
      continue;
    }
    ++stats_.resume_redelivered;
    ++stats_.copies_delivered;
    --flow->credits;
    if (flow->credits == 0) ++stats_.credits_exhausted;
    bus_.post(node_.address(), plan->consumer, kDataDelivery, std::move(frame));
  }
  // A full batch may mean more frames remain for this stream; an
  // undersized one means the stash is drained for it.
  if (count < flow_.fetch_batch) ++plan->index;
  fetch_next(plan);
}

void DispatchingService::finish_resume(const std::shared_ptr<ResumePlan>& plan) {
  Flow* flow = flow_if_current(*plan);
  if (flow == nullptr) return;
  flow->resume_inflight = false;
  if (flow->shed_floor.empty()) {
    if (flow->credits > 0) flow->quarantined = false;
    return;
  }
  // New sheds accumulated while replaying (re-stashed frames or fresh
  // traffic): go again if the window allows, else wait for the next ack.
  maybe_resume(plan->consumer);
}

void DispatchingService::on_envelope(net::Envelope envelope) {
  if (envelope.type == kDeliveryCredit) {
    on_credit(envelope);
    return;
  }
  if (envelope.type != kDerivedPublish) return;
  // Zero-copy validate-and-forward: the view's payload aliases the
  // envelope buffer, which outlives the synchronous deliver() below.
  const auto decoded = decode_view(envelope.payload);
  if (!decoded.ok() || !decoded.value().header.has(HeaderFlag::kDerived)) {
    ++stats_.rejected_publishes;
    return;
  }
  ++stats_.derived_in;
  deliver(decoded.value(), bus_.now());
}

void DispatchingService::deliver(const DataMessageView& message, util::SimTime first_heard) {
  const obs::TraceKey trace_key{message.stream_id.packed(), message.sequence};
  if (tracer_ != nullptr) tracer_->begin_span(trace_key, "dispatch", bus_.now().ns);

  catalog_.note_message(message.stream_id, bus_.now());

  if (message.ack_request_id && ack_observer_) {
    ++stats_.acks_observed;
    ack_observer_(*message.ack_request_id, message.stream_id.sensor, bus_.now());
  }

  scratch_.clear();
  table_.collect(message.stream_id, {bus_.now(), first_heard}, scratch_);

  if (scratch_.empty()) {
    // Unclaimed (nobody subscribed) goes to the Orphanage. A message
    // with subscribers that were all QoS-suppressed is *claimed* — the
    // consumers chose not to receive this copy — and is simply dropped.
    // Either way the journey ends here, so the trace is not recorded.
    if (tracer_ != nullptr) {
      tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
      tracer_->discard(trace_key);
    }
    if (orphan_sink_.valid() && !table_.anyone_wants(message.stream_id)) {
      ++stats_.orphaned;
      bus_.post(node_.address(), orphan_sink_, kDataDelivery,
                encode_delivery(message, first_heard));
    }
    return;
  }

  if (tracer_ != nullptr) {
    tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
    tracer_->begin_span(trace_key, "deliver", bus_.now().ns);
  }

  // One encode, N posts: every consumer's envelope refcounts this one
  // buffer; no per-subscriber byte copy happens anywhere downstream.
  const util::SharedBytes wire = encode_delivery(message, first_heard);
  bool stashed = false;
  for (const net::Address consumer : scratch_) {
    if (flow_.enabled()) {
      Flow& flow = flow_for(consumer);
      if (flow.quarantined) {
        // Shed for this consumer alone; the copy is stashed (below) and
        // the floor marks where its duplicate-free replay must start.
        ++stats_.quarantine_sheds;
        const auto [it, inserted] =
            flow.shed_floor.try_emplace(message.stream_id.packed(), message.sequence);
        if (!inserted && at_or_past(it->second, message.sequence)) {
          it->second = message.sequence;
        }
        stashed = true;
        continue;
      }
      --flow.credits;
      if (flow.credits == 0) {
        ++stats_.credits_exhausted;
        ++stats_.quarantines;
        flow.quarantined = true;
      }
    }
    ++stats_.copies_delivered;
    bus_.post(node_.address(), consumer, kDataDelivery, wire);
  }
  // One stash post covers every consumer quarantined on this message —
  // the Orphanage keeps a single retained copy per message either way.
  if (stashed && orphan_sink_.valid()) {
    bus_.post(node_.address(), orphan_sink_, kDataDelivery, wire);
  }
}

}  // namespace garnet::core
