#include "core/dispatch.hpp"

#include "util/log.hpp"

namespace garnet::core {

DispatchingService::DispatchingService(net::MessageBus& bus, AuthService& auth,
                                       StreamCatalog& catalog)
    : bus_(bus),
      auth_(auth),
      catalog_(catalog),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {
  node_.expose(kSubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const auto pattern = StreamPattern::from_packed(r.u64());
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    SubscribeOptions qos;
    if (r.remaining() >= 8) {
      qos.min_interval_ms = r.u32();
      qos.max_age_ms = r.u32();
    }

    const auto identity = auth_.verify(token);
    if (!identity) return util::Err{net::RpcError::kRemoteFailure};

    const SubscriptionId id = subscribe(identity->address, pattern, qos);
    util::ByteWriter w(8);
    w.u64(id);
    return std::move(w).take();
  });

  node_.expose(kUnsubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const SubscriptionId id = r.u64();
    if (!r.ok() || !auth_.verify(token)) return util::Err{net::RpcError::kRemoteFailure};
    if (!unsubscribe(id)) return util::Err{net::RpcError::kRemoteFailure};
    return util::Bytes{};
  });
}

void DispatchingService::on_filtered(const DataMessage& message, util::SimTime first_heard) {
  ++stats_.messages_in;
  deliver(as_view(message), first_heard);
}

SubscriptionId DispatchingService::subscribe(net::Address consumer, StreamPattern pattern,
                                             SubscribeOptions qos) {
  return table_.add(consumer, pattern, qos);
}

bool DispatchingService::unsubscribe(SubscriptionId id) { return table_.remove(id); }

std::size_t DispatchingService::drop_consumer(net::Address consumer) {
  return table_.remove_consumer(consumer);
}

void DispatchingService::on_envelope(net::Envelope envelope) {
  if (envelope.type != kDerivedPublish) return;
  // Zero-copy validate-and-forward: the view's payload aliases the
  // envelope buffer, which outlives the synchronous deliver() below.
  const auto decoded = decode_view(envelope.payload);
  if (!decoded.ok() || !decoded.value().header.has(HeaderFlag::kDerived)) {
    ++stats_.rejected_publishes;
    return;
  }
  ++stats_.derived_in;
  deliver(decoded.value(), bus_.now());
}

void DispatchingService::deliver(const DataMessageView& message, util::SimTime first_heard) {
  const obs::TraceKey trace_key{message.stream_id.packed(), message.sequence};
  if (tracer_ != nullptr) tracer_->begin_span(trace_key, "dispatch", bus_.now().ns);

  catalog_.note_message(message.stream_id, bus_.now());

  if (message.ack_request_id && ack_observer_) {
    ++stats_.acks_observed;
    ack_observer_(*message.ack_request_id, message.stream_id.sensor, bus_.now());
  }

  scratch_.clear();
  table_.collect(message.stream_id, {bus_.now(), first_heard}, scratch_);

  if (scratch_.empty()) {
    // Unclaimed (nobody subscribed) goes to the Orphanage. A message
    // with subscribers that were all QoS-suppressed is *claimed* — the
    // consumers chose not to receive this copy — and is simply dropped.
    // Either way the journey ends here, so the trace is not recorded.
    if (tracer_ != nullptr) {
      tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
      tracer_->discard(trace_key);
    }
    if (orphan_sink_.valid() && !table_.anyone_wants(message.stream_id)) {
      ++stats_.orphaned;
      bus_.post(node_.address(), orphan_sink_, kDataDelivery,
                encode_delivery(message, first_heard));
    }
    return;
  }

  if (tracer_ != nullptr) {
    tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
    tracer_->begin_span(trace_key, "deliver", bus_.now().ns);
  }

  // One encode, N posts: every consumer's envelope refcounts this one
  // buffer; no per-subscriber byte copy happens anywhere downstream.
  const util::SharedBytes wire = encode_delivery(message, first_heard);
  for (const net::Address consumer : scratch_) {
    ++stats_.copies_delivered;
    bus_.post(node_.address(), consumer, kDataDelivery, wire);
  }
}

}  // namespace garnet::core
