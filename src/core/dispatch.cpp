#include "core/dispatch.hpp"

#include <algorithm>

#include "core/orphanage.hpp"
#include "util/log.hpp"

namespace garnet::core {

namespace {

/// Wrap-aware "seq is at or past floor" for 16-bit sequence numbers:
/// true when seq is within the forward half-window of floor.
[[nodiscard]] bool at_or_past(SequenceNo seq, SequenceNo floor) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(seq - floor)) >= 0;
}

}  // namespace

DispatchingService::DispatchingService(net::MessageBus& bus, AuthService& auth,
                                       StreamCatalog& catalog)
    : bus_(bus),
      auth_(auth),
      catalog_(catalog),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {
  node_.expose(kSubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const auto pattern = StreamPattern::from_packed(r.u64());
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    SubscribeOptions qos;
    if (r.remaining() >= 8) {
      qos.min_interval_ms = r.u32();
      qos.max_age_ms = r.u32();
    }

    const auto identity = auth_.verify(token);
    if (!identity) return util::Err{net::RpcError::kRemoteFailure};

    const SubscriptionId id = subscribe(identity->address, pattern, qos);
    util::ByteWriter w(12);
    w.u64(id);
    w.u32(flow_.credit_window);  // 0 = flow control disabled
    return std::move(w).take();
  });

  node_.expose(kUnsubscribe, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const SubscriptionId id = r.u64();
    if (!r.ok() || !auth_.verify(token)) return util::Err{net::RpcError::kRemoteFailure};
    if (!unsubscribe(id)) return util::Err{net::RpcError::kRemoteFailure};
    return util::Bytes{};
  });
}

void DispatchingService::on_filtered(const DataMessage& message, util::SimTime first_heard) {
  ++stats_.messages_in;
  deliver(as_view(message), first_heard);
}

void DispatchingService::on_filtered(const DataMessageView& message, util::SimTime first_heard) {
  ++stats_.messages_in;
  deliver(message, first_heard);
}

SubscriptionId DispatchingService::subscribe(net::Address consumer, StreamPattern pattern,
                                             SubscribeOptions qos) {
  const SubscriptionId id = table_.add(consumer, pattern, qos);
  if (op_sink_) {
    util::ByteWriter w(28);
    w.u64(id);
    w.u32(consumer.value);
    w.u64(pattern.packed());
    w.u32(qos.min_interval_ms);
    w.u32(qos.max_age_ms);
    op_sink_(kOpSubscribe, w.view());
  }
  return id;
}

bool DispatchingService::unsubscribe(SubscriptionId id) {
  if (!table_.remove(id)) return false;
  if (op_sink_) {
    util::ByteWriter w(8);
    w.u64(id);
    op_sink_(kOpUnsubscribe, w.view());
  }
  return true;
}

std::size_t DispatchingService::drop_consumer(net::Address consumer) {
  // Erasing the flow retires its epoch: an in-flight resume that fetched
  // this consumer's stash will see the mismatch and return the frames to
  // the Orphanage instead of delivering to (or losing them with) the
  // departed consumer.
  flows_.erase(consumer.value);
  const std::size_t removed = table_.remove_consumer(consumer);
  if (op_sink_) {
    util::ByteWriter w(4);
    w.u32(consumer.value);
    op_sink_(kOpDropConsumer, w.view());
  }
  return removed;
}

void DispatchingService::apply_op(std::uint16_t kind, util::BytesView payload) {
  util::ByteReader r(payload);
  switch (kind) {
    case kOpSubscribe: {
      const SubscriptionId id = r.u64();
      const net::Address consumer{r.u32()};
      const auto pattern = StreamPattern::from_packed(r.u64());
      SubscribeOptions qos;
      qos.min_interval_ms = r.u32();
      qos.max_age_ms = r.u32();
      if (r.ok()) table_.restore_entry(id, consumer, pattern, qos);
      break;
    }
    case kOpUnsubscribe: {
      const SubscriptionId id = r.u64();
      if (r.ok()) table_.remove(id);
      break;
    }
    case kOpDropConsumer: {
      const net::Address consumer{r.u32()};
      if (r.ok()) {
        flows_.erase(consumer.value);
        table_.remove_consumer(consumer);
      }
      break;
    }
    case kOpCursor: {
      const std::uint32_t packed = r.u32();
      const SequenceNo seq = r.u16();
      if (!r.ok()) break;
      const auto [it, inserted] = cursors_.try_emplace(packed, seq);
      if (!inserted && at_or_past(seq, it->second)) it->second = seq;
      break;
    }
    default:
      break;
  }
}

util::Bytes DispatchingService::capture_state() const {
  util::ByteWriter w(256);
  table_.capture(w);

  std::vector<std::uint32_t> addrs;
  addrs.reserve(flows_.size());
  for (const auto& entry : flows_) addrs.push_back(entry.first);
  std::sort(addrs.begin(), addrs.end());
  w.u32(static_cast<std::uint32_t>(addrs.size()));
  for (const std::uint32_t addr : addrs) {
    const Flow& flow = flows_.at(addr);
    w.u32(addr);
    w.u32(flow.credits);
    w.u8(flow.quarantined ? 1 : 0);
    std::vector<std::uint64_t> shed(flow.shed.begin(), flow.shed.end());
    std::sort(shed.begin(), shed.end());
    w.u32(static_cast<std::uint32_t>(shed.size()));
    for (const std::uint64_t key : shed) {
      w.u32(static_cast<std::uint32_t>(key >> 16));
      w.u16(static_cast<std::uint16_t>(key & 0xFFFF));
    }
  }

  w.u32(static_cast<std::uint32_t>(cursors_.size()));
  for (const auto& [packed, seq] : cursors_) {
    w.u32(packed);
    w.u16(seq);
  }
  return std::move(w).take();
}

util::Status<util::DecodeError> DispatchingService::restore_state(util::BytesView state) {
  util::ByteReader r(state);
  SubscriptionTable table;
  if (const auto status = table.restore(r); !status.ok()) return status;

  struct ParsedFlow {
    std::uint32_t addr = 0;
    bool quarantined = false;
    std::vector<std::uint64_t> shed;
  };
  const std::uint32_t flow_count = r.u32();
  std::vector<ParsedFlow> flows;
  for (std::uint32_t i = 0; i < flow_count && r.ok(); ++i) {
    ParsedFlow f;
    f.addr = r.u32();
    [[maybe_unused]] const std::uint32_t credits = r.u32();  // restore re-primes
    f.quarantined = r.u8() != 0;
    const std::uint32_t shed_count = r.u32();
    for (std::uint32_t j = 0; j < shed_count && r.ok(); ++j) {
      const std::uint32_t packed = r.u32();
      const SequenceNo seq = r.u16();
      f.shed.push_back(shed_key(packed, seq));
    }
    if (r.ok()) flows.push_back(std::move(f));
  }
  const std::uint32_t cursor_count = r.u32();
  std::vector<std::pair<std::uint32_t, SequenceNo>> cursors;
  for (std::uint32_t i = 0; i < cursor_count && r.ok(); ++i) {
    const std::uint32_t packed = r.u32();
    const SequenceNo seq = r.u16();
    cursors.emplace_back(packed, seq);
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  table_ = std::move(table);
  flows_.clear();
  if (flow_.enabled()) {
    for (const ParsedFlow& f : flows) {
      Flow& flow = flows_[f.addr];
      flow.credits = flow_.credit_window;
      flow.quarantined = f.quarantined;
      flow.epoch = next_flow_epoch_++;
      flow.shed.insert(f.shed.begin(), f.shed.end());
    }
  }
  cursors_.clear();
  for (const auto& [packed, seq] : cursors) cursors_.emplace(packed, seq);
  return {};
}

void DispatchingService::reset_state() {
  table_ = SubscriptionTable{};
  flows_.clear();
  cursors_.clear();
}

std::optional<SequenceNo> DispatchingService::cursor(StreamId id) const {
  const auto it = cursors_.find(id.packed());
  if (it == cursors_.end()) return std::nullopt;
  return it->second;
}

void DispatchingService::advance_cursor(StreamId id, SequenceNo seq) {
  const std::uint32_t packed = id.packed();
  const auto [it, inserted] = cursors_.try_emplace(packed, seq);
  if (!inserted) {
    if (seq == it->second || !at_or_past(seq, it->second)) return;
    it->second = seq;
  }
  if (op_sink_) {
    util::ByteWriter w(6);
    w.u32(packed);
    w.u16(seq);
    op_sink_(kOpCursor, w.view());
  }
}

void DispatchingService::replay_stash() {
  if (!orphan_sink_.valid() || cursors_.empty()) {
    finish_stash_replay();
    return;
  }
  auto plan = std::make_shared<StashReplay>();
  plan->streams.reserve(cursors_.size());
  for (const auto& [packed, cur] : cursors_) {
    plan->streams.push_back(packed);
    plan->floors.emplace(packed, static_cast<SequenceNo>(cur + 1));
  }
  active_stash_replay_ = plan;
  fetch_stash(plan);
}

void DispatchingService::fetch_stash(const std::shared_ptr<StashReplay>& plan) {
  if (plan->index >= plan->streams.size()) {
    finish_stash_replay();
    return;
  }
  util::ByteWriter w(6);
  w.u32(plan->streams[plan->index]);
  w.u16(flow_.fetch_batch);
  // Same contract as the quarantine resume: kFetchBacklog drains, so the
  // call must go through the at-most-once cache, never retried blind.
  net::CallOptions options = flow_.fetch_options;
  options.idempotent = false;
  node_.call(orphan_sink_, Orphanage::kFetchBacklog, std::move(w).take(), options,
             [this, plan](net::RpcResult result) {
               if (!result.ok()) {
                 ++plan->index;
                 fetch_stash(plan);
                 return;
               }
               on_stash_backlog(plan, util::SharedBytes(std::move(result).value()));
             });
}

void DispatchingService::on_stash_backlog(const std::shared_ptr<StashReplay>& plan,
                                          util::SharedBytes reply) {
  util::ByteReader r(reply);
  const std::uint16_t count = r.u16();
  const SequenceNo plan_floor = plan->floors[plan->streams[plan->index]];
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    const std::uint16_t length = r.u16();
    const std::size_t offset = r.consumed();
    if (r.view(length).empty() && length > 0) break;  // truncated reply
    util::SharedBytes frame = reply.view(offset, length);
    const auto decoded = decode_delivery_view(frame);
    if (!decoded.ok()) continue;
    const DeliveryView& delivery = decoded.value();
    const std::uint32_t packed = delivery.message.stream_id.packed();
    const SequenceNo seq = delivery.message.sequence;
    // The sweep races live traffic, and deliver() re-stashes
    // quarantine-shed copies that later rounds fetch back. A frame is
    // replayed only inside the crash window: at or past the crash-time
    // cursor (floor), below the first live post-promotion delivery
    // (ceiling), and strictly above what this sweep already delivered.
    const auto ceiling = plan->ceilings.find(packed);
    const auto watermark = plan->replayed.find(packed);
    const bool before_crash = !at_or_past(seq, plan_floor);
    const bool live_copy =
        ceiling != plan->ceilings.end() && at_or_past(seq, ceiling->second);
    const bool already_replayed =
        watermark != plan->replayed.end() &&
        !at_or_past(seq, static_cast<SequenceNo>(watermark->second + 1));
    if (before_crash || live_copy || already_replayed) {
      // Already processed — an orphan or a quarantine shed. Back to the
      // stash for the resume path and late claimants.
      ++stats_.recovery_returned;
      node_.post(orphan_sink_, kDataDelivery, frame);
      continue;
    }
    // The crashed primary never saw this frame (it reached the stash via
    // the runtime's crash redirect): run it through the normal fan-out,
    // which re-advances the cursor and re-stashes it if unclaimed.
    ++stats_.recovery_replayed;
    plan->replayed[packed] = seq;
    stash_replay_delivering_ = true;
    deliver(delivery.message, delivery.first_heard);
    stash_replay_delivering_ = false;
  }
  if (count < flow_.fetch_batch) ++plan->index;
  fetch_stash(plan);
}

void DispatchingService::finish_stash_replay() {
  active_stash_replay_.reset();
  // Quarantined flows came back with a full window; kick their backlog
  // replay now that the crash-window frames are settled.
  std::vector<net::Address> quarantined;
  for (const auto& entry : flows_) {
    if (entry.second.quarantined) quarantined.push_back(net::Address{entry.first});
  }
  std::sort(quarantined.begin(), quarantined.end());
  for (const net::Address consumer : quarantined) maybe_resume(consumer);
}

void DispatchingService::set_flow_control(FlowControlConfig config) {
  flow_ = config;
  for (auto& [address, flow] : flows_) {
    flow.credits = std::min(flow.credits, flow_.credit_window);
  }
  if (!flow_.enabled()) flows_.clear();
}

bool DispatchingService::quarantined(net::Address consumer) const {
  const auto it = flows_.find(consumer.value);
  return it != flows_.end() && it->second.quarantined;
}

std::uint32_t DispatchingService::credits(net::Address consumer) const {
  const auto it = flows_.find(consumer.value);
  return it != flows_.end() ? it->second.credits : flow_.credit_window;
}

DispatchingService::Flow& DispatchingService::flow_for(net::Address consumer) {
  const auto [it, inserted] = flows_.try_emplace(consumer.value);
  if (inserted) {
    it->second.credits = flow_.credit_window;
    it->second.epoch = next_flow_epoch_++;
  }
  return it->second;
}

DispatchingService::Flow* DispatchingService::flow_if_current(const ResumePlan& plan) {
  const auto it = flows_.find(plan.consumer.value);
  if (it == flows_.end() || it->second.epoch != plan.epoch) return nullptr;
  return &it->second;
}

std::uint32_t DispatchingService::resume_threshold() const {
  if (flow_.resume_threshold > 0) return flow_.resume_threshold;
  return std::max<std::uint32_t>(1, flow_.credit_window / 2);
}

void DispatchingService::on_credit(const net::Envelope& envelope) {
  if (!flow_.enabled()) return;
  util::ByteReader r(envelope.payload);
  const std::uint32_t granted = r.u32();
  if (!r.ok() || granted == 0) return;
  // Only senders we have delivered to carry flow state; credits from
  // strangers (fuzzed or stale endpoints) are ignored, not banked.
  const auto it = flows_.find(envelope.from.value);
  if (it == flows_.end()) return;
  ++stats_.credit_acks;
  Flow& flow = it->second;
  flow.credits = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      flow_.credit_window, static_cast<std::uint64_t>(flow.credits) + granted));
  maybe_resume(envelope.from);
}

void DispatchingService::maybe_resume(net::Address consumer) {
  const auto it = flows_.find(consumer.value);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  if (!flow.quarantined || flow.resume_inflight || flow.credits == 0) return;
  if (flow.shed.empty()) {
    // Nothing was shed while quarantined (or the stash is unreachable):
    // plain release.
    flow.quarantined = false;
    return;
  }
  if (flow.credits < resume_threshold()) return;
  start_resume(consumer, flow);
}

void DispatchingService::start_resume(net::Address consumer, Flow& flow) {
  if (!orphan_sink_.valid()) {
    // No stash to replay from; release with whatever was lost, lost.
    flow.shed.clear();
    flow.quarantined = false;
    return;
  }
  ++stats_.resumes;
  flow.resume_inflight = true;
  auto plan = std::make_shared<ResumePlan>();
  plan->consumer = consumer;
  plan->epoch = flow.epoch;
  plan->shed = std::move(flow.shed);
  flow.shed.clear();
  for (const std::uint64_t key : plan->shed) {
    plan->streams.push_back(static_cast<std::uint32_t>(key >> 16));
  }
  std::sort(plan->streams.begin(), plan->streams.end());
  plan->streams.erase(std::unique(plan->streams.begin(), plan->streams.end()),
                      plan->streams.end());
  fetch_next(plan);
}

void DispatchingService::fetch_next(const std::shared_ptr<ResumePlan>& plan) {
  if (flow_if_current(*plan) == nullptr) return;  // consumer dropped; plan dead
  if (plan->index >= plan->streams.size()) {
    finish_resume(plan);
    return;
  }
  util::ByteWriter w(6);
  w.u32(plan->streams[plan->index]);
  w.u16(flow_.fetch_batch);
  // kFetchBacklog drains the stash, so a re-executed fetch would see an
  // empty ring and the drained frames would ride the lost response:
  // never idempotent, always through the at-most-once cache.
  net::CallOptions options = flow_.fetch_options;
  options.idempotent = false;
  node_.call(orphan_sink_, Orphanage::kFetchBacklog, std::move(w).take(), options,
             [this, plan](net::RpcResult result) {
               if (!result.ok()) {
                 // Stash unreachable for this stream; skip it rather than
                 // stall the whole replay.
                 ++plan->index;
                 fetch_next(plan);
                 return;
               }
               on_backlog(plan, util::SharedBytes(std::move(result).value()));
             });
}

void DispatchingService::on_backlog(const std::shared_ptr<ResumePlan>& plan,
                                    util::SharedBytes reply) {
  util::ByteReader r(reply);
  const std::uint16_t count = r.u16();
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    const std::uint16_t length = r.u16();
    const std::size_t offset = r.consumed();
    if (r.view(length).empty() && length > 0) break;  // truncated reply
    // Zero-copy: each stashed frame is a sub-view of the one reply buffer.
    util::SharedBytes frame = reply.view(offset, length);

    Flow* flow = flow_if_current(*plan);
    if (flow == nullptr || flow->credits == 0) {
      // Consumer dropped mid-replay, or its window re-exhausted: the
      // frame goes back to the stash so it is neither lost nor delivered
      // out of contract. (For a live flow the floor re-forms, so the
      // next resume round picks it up.)
      ++stats_.resume_returned;
      node_.post(orphan_sink_, kDataDelivery, frame);
      if (flow != nullptr) {
        auto decoded = decode_delivery_view(frame);
        if (decoded.ok()) {
          const DataMessageView& message = decoded.value().message;
          flow->shed.insert(shed_key(message.stream_id.packed(), message.sequence));
        }
      }
      continue;
    }

    auto decoded = decode_delivery_view(frame);
    if (!decoded.ok()) {
      ++stats_.resume_discarded;
      continue;
    }
    const DataMessageView& message = decoded.value().message;
    // Duplicate-freedom: redeliver exactly what was shed from THIS
    // consumer. The shared stash also holds copies shed for other
    // consumers, pre-quarantine orphans, and — after a crash — sweep
    // leftovers interleaving old and new sequences; membership in the
    // flow's shed set is the only test that rejects all of them.
    if (plan->shed.count(shed_key(message.stream_id.packed(), message.sequence)) == 0 ||
        !table_.subscribes(plan->consumer, message.stream_id)) {
      ++stats_.resume_discarded;
      continue;
    }
    ++stats_.resume_redelivered;
    ++stats_.copies_delivered;
    --flow->credits;
    if (flow->credits == 0) ++stats_.credits_exhausted;
    bus_.post(node_.address(), plan->consumer, kDataDelivery, std::move(frame));
  }
  // A full batch may mean more frames remain for this stream; an
  // undersized one means the stash is drained for it.
  if (count < flow_.fetch_batch) ++plan->index;
  fetch_next(plan);
}

void DispatchingService::finish_resume(const std::shared_ptr<ResumePlan>& plan) {
  Flow* flow = flow_if_current(*plan);
  if (flow == nullptr) return;
  flow->resume_inflight = false;
  if (flow->shed.empty()) {
    if (flow->credits > 0) flow->quarantined = false;
    return;
  }
  // New sheds accumulated while replaying (re-stashed frames or fresh
  // traffic): go again if the window allows, else wait for the next ack.
  maybe_resume(plan->consumer);
}

void DispatchingService::on_envelope(net::Envelope envelope) {
  if (envelope.type == kDeliveryCredit) {
    on_credit(envelope);
    return;
  }
  if (envelope.type != kDerivedPublish) return;
  // Zero-copy validate-and-forward: the view's payload aliases the
  // envelope buffer, which outlives the synchronous deliver() below.
  const auto decoded = decode_view(envelope.payload);
  if (!decoded.ok() || !decoded.value().header.has(HeaderFlag::kDerived)) {
    ++stats_.rejected_publishes;
    return;
  }
  ++stats_.derived_in;
  deliver(decoded.value(), bus_.now());
}

void DispatchingService::deliver(const DataMessageView& message, util::SimTime first_heard) {
  if (!stash_replay_delivering_) {
    // Live traffic racing an in-flight stash sweep: the first such
    // sequence caps the sweep for its stream, so quarantine-shed copies
    // of this delivery fetched by a later round are never re-fanned-out.
    if (const auto plan = active_stash_replay_.lock()) {
      const auto [it, inserted] =
          plan->ceilings.emplace(message.stream_id.packed(), message.sequence);
      if (!inserted && !at_or_past(message.sequence, it->second)) {
        it->second = message.sequence;
      }
    }
  }
  const obs::TraceKey trace_key{message.stream_id.packed(), message.sequence};
  if (tracer_ != nullptr) tracer_->begin_span(trace_key, "dispatch", bus_.now().ns);

  catalog_.note_message(message.stream_id, bus_.now());
  // The cursor marks "processed through seq" whatever the claim outcome;
  // it is the gap-detection floor for post-crash stash replay.
  advance_cursor(message.stream_id, message.sequence);

  if (message.ack_request_id && ack_observer_) {
    ++stats_.acks_observed;
    ack_observer_(*message.ack_request_id, message.stream_id.sensor, bus_.now());
  }

  scratch_.clear();
  table_.collect(message.stream_id, {bus_.now(), first_heard}, scratch_);

  if (scratch_.empty()) {
    // Unclaimed (nobody subscribed) goes to the Orphanage. A message
    // with subscribers that were all QoS-suppressed is *claimed* — the
    // consumers chose not to receive this copy — and is simply dropped.
    // Either way the journey ends here, so the trace is not recorded.
    if (tracer_ != nullptr) {
      tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
      tracer_->discard(trace_key);
    }
    if (orphan_sink_.valid() && !table_.anyone_wants(message.stream_id)) {
      ++stats_.orphaned;
      bus_.post(node_.address(), orphan_sink_, kDataDelivery,
                encode_delivery(message, first_heard));
    }
    return;
  }

  if (tracer_ != nullptr) {
    tracer_->end_span(trace_key, "dispatch", bus_.now().ns);
    tracer_->begin_span(trace_key, "deliver", bus_.now().ns);
  }

  // One encode, N posts: every consumer's envelope refcounts this one
  // buffer; no per-subscriber byte copy happens anywhere downstream.
  const util::SharedBytes wire = encode_delivery(message, first_heard);
  bool stashed = false;
  for (const net::Address consumer : scratch_) {
    if (flow_.enabled()) {
      Flow& flow = flow_for(consumer);
      if (flow.quarantined) {
        // Shed for this consumer alone; the copy is stashed (below) and
        // the shed set marks it for duplicate-free redelivery on resume.
        ++stats_.quarantine_sheds;
        flow.shed.insert(shed_key(message.stream_id.packed(), message.sequence));
        stashed = true;
        continue;
      }
      --flow.credits;
      if (flow.credits == 0) {
        ++stats_.credits_exhausted;
        ++stats_.quarantines;
        flow.quarantined = true;
      }
    }
    ++stats_.copies_delivered;
    bus_.post(node_.address(), consumer, kDataDelivery, wire);
  }
  // One stash post covers every consumer quarantined on this message —
  // the Orphanage keeps a single retained copy per message either way.
  if (stashed && orphan_sink_.valid()) {
    bus_.post(node_.address(), orphan_sink_, kDataDelivery, wire);
  }
}

}  // namespace garnet::core
