// Stream recording and timing-preserving replay.
//
// The Orphanage gives bounded retention for *unclaimed* data; a recorder
// is the consumer-side complement — an application that archives the
// streams it subscribes to and can replay them later at original (or
// scaled) cadence. Replay re-enters the middleware as a derived stream,
// so downstream consumers cannot tell archived data from live data
// except by the kDerived/kFused header flags — the stream abstraction
// the paper argues for (§5) is what makes this composition free.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/consumer.hpp"
#include "core/wire_types.hpp"
#include "sim/scheduler.hpp"

namespace garnet::core {

/// An in-memory archive of deliveries, ordered by capture time.
class Recording {
 public:
  void append(const Delivery& delivery) { entries_.push_back(delivery); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const Delivery& at(std::size_t i) const { return entries_.at(i); }

  /// Deliveries of one stream, in capture order.
  [[nodiscard]] std::vector<Delivery> stream(StreamId id) const;

  /// Distinct streams present.
  [[nodiscard]] std::vector<StreamId> streams() const;

  /// Capture-time span between first and last entry.
  [[nodiscard]] util::Duration span() const;

 private:
  std::vector<Delivery> entries_;
};

/// Attaches to a Consumer and archives everything it receives, while
/// passing deliveries through to the consumer's previous handler.
class StreamRecorder {
 public:
  explicit StreamRecorder(Consumer& consumer);

  [[nodiscard]] const Recording& recording() const noexcept { return recording_; }
  [[nodiscard]] Recording take() && { return std::move(recording_); }

 private:
  Recording recording_;
};

/// Replays a recording through a callback with original inter-message
/// gaps (scaled by `speed`; 2.0 = twice as fast). Returns the virtual
/// time at which the last message will fire.
util::SimTime replay(sim::Scheduler& scheduler, const Recording& recording,
                     std::function<void(const Delivery&)> sink, double speed = 1.0);

/// Replays a recording as a derived stream through a consumer: each
/// archived message is re-published on `output` with fresh sequence
/// numbers and the kDerived|kFused flags set.
util::SimTime replay_as_stream(sim::Scheduler& scheduler, const Recording& recording,
                               Consumer& publisher, StreamId output, double speed = 1.0);

}  // namespace garnet::core
