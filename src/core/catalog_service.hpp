// Catalog service facade: advertising and discovery over the fixed
// network (paper §3's "typical advertising, discovery ... mechanisms").
//
// StreamCatalog is the in-process table; this facade is the bus-visible
// service consumers talk to, so discovery works without sharing memory
// with the middleware — a consumer only needs the endpoint name and a
// token.
#pragma once

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "net/rpc.hpp"

namespace garnet::core {

class CatalogService {
 public:
  enum Method : net::MethodId {
    /// [u64 token][u32 packed stream][str name][str class] -> []
    kAdvertise = 1,
    /// [u32 sensor (0xFFFFFFFF=any)][str class (empty=any)][u8 include_unadvertised]
    /// -> [u16 n] n x ([u32 packed id][u8 advertised][u8 derived][u64 messages]
    ///              [str name][str class])
    kDiscover = 2,
    /// [u64 token] -> [u32 packed stream id]  (derived-stream allocation)
    kAllocateDerived = 3,
  };

  static constexpr const char* kEndpointName = "garnet.catalog";

  CatalogService(net::MessageBus& bus, AuthService& auth, StreamCatalog& catalog);

  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

 private:
  AuthService& auth_;
  StreamCatalog& catalog_;
  net::RpcNode node_;
};

/// Client-side decode of one kDiscover reply.
[[nodiscard]] std::vector<StreamInfo> decode_discover_reply(util::BytesView reply);

}  // namespace garnet::core
