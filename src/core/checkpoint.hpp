// Service checkpoints and the replicated operation log (crash recovery).
//
// The paper presumes "service-level parallelism and replication ... for
// efficiency, data-integrity, and fault-tolerance" (§3). TinyDB-style
// in-network state dies with the nodes, so Garnet's fixed-side services
// must own their durable state: each stateful service (Filtering dedup
// windows, Dispatching subscriptions/credits/cursors, Location tracks,
// the Catalog) serialises itself into a *checkpoint* — a versioned,
// CRC-guarded frame whose body bytes are deterministic (every map is
// walked in sorted key order), so two replicas checkpointing the same
// state produce byte-identical frames.
//
// Between checkpoints, mutations stream into a bounded OpLog that a
// standby tails over the bus (garnet/recovery.hpp). Promotion restores
// the last checkpoint and replays the ops at or past its watermark —
// the classic checkpoint + upstream-replay recovery of stream systems,
// bounded in both directions: the checkpoint cadence bounds replay
// length, the log capacity bounds memory.
//
// Decode NEVER partially applies: it either returns a validated view of
// the state body or a util::DecodeError, and restore_state()
// implementations parse into temporaries before committing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace garnet::core::checkpoint {

/// "GCKP" — rejects frames from other numbering spaces immediately.
inline constexpr std::uint32_t kMagic = 0x47434B50;
/// "GDLT" — an *incremental* frame: dirty entries + removals relative
/// to the frame whose epoch it names as its base. Distinct magic, not a
/// version bump, so pre-delta readers reject deltas as foreign rather
/// than as corrupt full snapshots.
inline constexpr std::uint32_t kDeltaMagic = 0x47444C54;
inline constexpr std::uint8_t kVersion = 1;

/// Full snapshot vs incremental delta over an earlier frame.
enum class FrameKind : std::uint8_t { kFull, kDelta };

struct Header {
  std::uint8_t version = kVersion;
  std::string service;        ///< Recovery-harness service name.
  std::uint64_t epoch = 0;    ///< Monotonic per service; newer wins.
  util::SimTime taken_at{};   ///< Sim time the snapshot was captured.
};

/// Full-frame layout (big-endian):
///   [u32 magic][u8 version][str service][u64 epoch][i64 taken_at]
///   [u32 state_len][state bytes][u32 crc32c over all preceding bytes]
[[nodiscard]] util::Bytes encode(const Header& header, util::BytesView state);

/// Delta-frame layout: as encode(), but under kDeltaMagic and with
/// [u64 base_epoch] between the epoch and taken_at — the epoch of the
/// frame this delta applies on top of. A receiver must reject a delta
/// whose base_epoch is not the epoch of its newest stored frame (epoch
/// skew) or that arrives before any full frame at all.
[[nodiscard]] util::Bytes encode_delta(const Header& header, std::uint64_t base_epoch,
                                       util::BytesView state);

struct Decoded {
  Header header;
  FrameKind kind = FrameKind::kFull;
  std::uint64_t base_epoch = 0;  ///< Meaningful only for kDelta frames.
  util::BytesView state;         ///< Aliases the input buffer.
};

/// Validates framing, version, declared length and CRC before exposing
/// any state bytes. Truncated, bit-flipped or version-skewed input is
/// rejected with the matching DecodeError; nothing is ever applied from
/// a frame that fails any check. Accepts full frames only — the
/// pre-delta surface, still what single-snapshot restore paths use.
[[nodiscard]] util::Result<Decoded, util::DecodeError> decode(util::BytesView wire);

/// Like decode(), but accepts either magic and reports the kind — the
/// replication path, where full snapshots and deltas interleave.
[[nodiscard]] util::Result<Decoded, util::DecodeError> decode_any(util::BytesView wire);

/// Bounded in-memory operation log. The primary appends one Record per
/// logged mutation; the standby's copy (replicated over the bus) is
/// replayed from the checkpoint watermark at promotion. Capacity-bound:
/// the oldest records are evicted first, and `evicted()` exposes how
/// many — a nonzero count with a too-old watermark means the replay
/// window was exceeded and recovery is lossy (surfaced in telemetry).
class OpLog {
 public:
  struct Record {
    std::uint64_t lsn = 0;   ///< Log sequence number, strictly increasing.
    std::uint16_t kind = 0;  ///< Service-private op code.
    util::Bytes payload;
  };

  explicit OpLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void append(Record record) {
    records_.push_back(std::move(record));
    while (records_.size() > capacity_) {
      records_.pop_front();
      ++evicted_;
    }
  }

  /// Drops every record with lsn <= `lsn` (checkpoint truncation).
  void truncate_through(std::uint64_t lsn) {
    while (!records_.empty() && records_.front().lsn <= lsn) records_.pop_front();
  }

  void clear() { records_.clear(); }

  [[nodiscard]] const std::deque<Record>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }

 private:
  std::size_t capacity_;
  std::deque<Record> records_;
  std::uint64_t evicted_ = 0;
};

}  // namespace garnet::core::checkpoint
