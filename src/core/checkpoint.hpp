// Service checkpoints and the replicated operation log (crash recovery).
//
// The paper presumes "service-level parallelism and replication ... for
// efficiency, data-integrity, and fault-tolerance" (§3). TinyDB-style
// in-network state dies with the nodes, so Garnet's fixed-side services
// must own their durable state: each stateful service (Filtering dedup
// windows, Dispatching subscriptions/credits/cursors, Location tracks,
// the Catalog) serialises itself into a *checkpoint* — a versioned,
// CRC-guarded frame whose body bytes are deterministic (every map is
// walked in sorted key order), so two replicas checkpointing the same
// state produce byte-identical frames.
//
// Between checkpoints, mutations stream into a bounded OpLog that a
// standby tails over the bus (garnet/recovery.hpp). Promotion restores
// the last checkpoint and replays the ops at or past its watermark —
// the classic checkpoint + upstream-replay recovery of stream systems,
// bounded in both directions: the checkpoint cadence bounds replay
// length, the log capacity bounds memory.
//
// Decode NEVER partially applies: it either returns a validated view of
// the state body or a util::DecodeError, and restore_state()
// implementations parse into temporaries before committing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace garnet::core::checkpoint {

/// "GCKP" — rejects frames from other numbering spaces immediately.
inline constexpr std::uint32_t kMagic = 0x47434B50;
inline constexpr std::uint8_t kVersion = 1;

struct Header {
  std::uint8_t version = kVersion;
  std::string service;        ///< Recovery-harness service name.
  std::uint64_t epoch = 0;    ///< Monotonic per service; newer wins.
  util::SimTime taken_at{};   ///< Sim time the snapshot was captured.
};

/// Frame layout (big-endian):
///   [u32 magic][u8 version][str service][u64 epoch][i64 taken_at]
///   [u32 state_len][state bytes][u32 crc32c over all preceding bytes]
[[nodiscard]] util::Bytes encode(const Header& header, util::BytesView state);

struct Decoded {
  Header header;
  util::BytesView state;  ///< Aliases the input buffer.
};

/// Validates framing, version, declared length and CRC before exposing
/// any state bytes. Truncated, bit-flipped or version-skewed input is
/// rejected with the matching DecodeError; nothing is ever applied from
/// a frame that fails any check.
[[nodiscard]] util::Result<Decoded, util::DecodeError> decode(util::BytesView wire);

/// Bounded in-memory operation log. The primary appends one Record per
/// logged mutation; the standby's copy (replicated over the bus) is
/// replayed from the checkpoint watermark at promotion. Capacity-bound:
/// the oldest records are evicted first, and `evicted()` exposes how
/// many — a nonzero count with a too-old watermark means the replay
/// window was exceeded and recovery is lossy (surfaced in telemetry).
class OpLog {
 public:
  struct Record {
    std::uint64_t lsn = 0;   ///< Log sequence number, strictly increasing.
    std::uint16_t kind = 0;  ///< Service-private op code.
    util::Bytes payload;
  };

  explicit OpLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void append(Record record) {
    records_.push_back(std::move(record));
    while (records_.size() > capacity_) {
      records_.pop_front();
      ++evicted_;
    }
  }

  /// Drops every record with lsn <= `lsn` (checkpoint truncation).
  void truncate_through(std::uint64_t lsn) {
    while (!records_.empty() && records_.front().lsn <= lsn) records_.pop_front();
  }

  void clear() { records_.clear(); }

  [[nodiscard]] const std::deque<Record>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }

 private:
  std::size_t capacity_;
  std::deque<Record> records_;
  std::uint64_t evicted_ = 0;
};

}  // namespace garnet::core::checkpoint
