// Filtering Service (paper §4.2).
//
// "The Filtering Service reconstructs the data streams by eliminating
// duplicate data messages. Filtered data is then forwarded to the
// Dispatching Service for delivery to subscribed consumer processes."
//
// Input is the raw receiver feed: every surviving copy of every frame,
// from every receiver whose zone contained the sensor — i.e. duplicated,
// jittered and possibly out of order. This service
//
//   * decodes and checksum-verifies each copy,
//   * eliminates duplicates with a per-stream sequence window that is
//     correct across the 16-bit sequence wraparound,
//   * optionally holds messages in a small reorder buffer so consumers
//     see in-sequence streams despite radio jitter, and
//   * republishes per-copy reception metadata (receiver id, RSSI) — the
//     duplicates the dedup discards are exactly what the Location Service
//     wants, since each copy names a receiver that heard the sensor.
#pragma once

#include <functional>
#include <map>

#include "core/message.hpp"
#include "core/stream_table.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"
#include "wireless/radio.hpp"

namespace garnet::core {

/// Metadata about one heard copy, forwarded to the Location Service.
struct ReceptionEvent {
  SensorId sensor = 0;
  wireless::ReceiverId receiver = 0;
  double rssi_dbm = 0.0;
  util::SimTime heard_at;
};

struct FilteringStats {
  std::uint64_t copies_in = 0;        ///< Reception reports ingested.
  std::uint64_t malformed = 0;        ///< Copies failing decode/checksum.
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t stale_dropped = 0;    ///< Arrived after their window passed.
  std::uint64_t messages_out = 0;     ///< Unique messages forwarded.
  std::uint64_t reordered = 0;        ///< Messages held then released in order.
  std::uint64_t streams_seen = 0;     ///< Distinct StreamIds reconstructed.
  std::uint64_t relayed_copies = 0;   ///< Copies that arrived via a relay hop.

  /// Cross-shard aggregation: each shard reconstructs a disjoint slice
  /// of the stream space, so the plane-wide view is a plain sum.
  FilteringStats& operator+=(const FilteringStats& other) noexcept {
    copies_in += other.copies_in;
    malformed += other.malformed;
    duplicates_dropped += other.duplicates_dropped;
    stale_dropped += other.stale_dropped;
    messages_out += other.messages_out;
    reordered += other.reordered;
    streams_seen += other.streams_seen;
    relayed_copies += other.relayed_copies;
    return *this;
  }
};

/// Filtering's single op-log record kind (garnet/recovery): one message
/// forwarded downstream. Payload: [u32 packed StreamId][u16 sequence].
/// Replayed through note_seen() on a promoted standby.
inline constexpr std::uint16_t kFilteringOpSeen = 1;

class FilteringService {
 public:
  struct Config {
    /// How far back (in sequence distance) a copy may trail the newest
    /// seen sequence and still be recognised as a duplicate rather than a
    /// wrapped-around new message. Must be < 32768 (half the space).
    std::uint16_t dedup_window = 1024;
    /// Depth of the in-order release buffer; 0 forwards immediately in
    /// arrival order (ablation A2 sweeps this).
    std::uint16_t reorder_depth = 0;
    /// How long to wait for a sequence gap to fill before releasing
    /// out-of-order anyway.
    util::Duration reorder_timeout = util::Duration::millis(20);
  };

  using MessageSink = std::function<void(const DataMessage&, util::SimTime first_heard)>;
  using ReceptionSink = std::function<void(const ReceptionEvent&)>;

  /// Per-stream reconstruction accounting. `estimated_lost` counts
  /// sequence-number gaps never filled by any copy — frames the radio
  /// swallowed entirely (sensor roamed out of coverage, or every
  /// receiver's copy was lost).
  struct StreamReport {
    StreamId id;
    std::uint64_t accepted = 0;        ///< Unique messages reconstructed.
    std::uint64_t estimated_lost = 0;  ///< Gaps in the sequence space.
    SequenceNo newest = 0;
  };

  FilteringService(sim::Scheduler& scheduler, Config config);

  /// Unique messages, deduplicated (and, if configured, re-ordered).
  void set_message_sink(MessageSink sink) { message_sink_ = std::move(sink); }

  /// Every valid copy, including duplicates (Location Service feed).
  void set_reception_sink(ReceptionSink sink) { reception_sink_ = std::move(sink); }

  /// Ingests one raw copy from a receiver.
  void ingest(const wireless::ReceptionReport& report);

  /// Drops all per-stream state (e.g. on redeployment).
  void reset();

  /// Crash-recovery surface (core/checkpoint.hpp): byte-deterministic
  /// snapshot of the per-stream dedup state, streams sorted by packed id.
  /// The reorder hold buffer is in-flight data and intentionally not
  /// captured — at most reorder_depth messages per stream ride a crash
  /// (they surface as sequence gaps, never as duplicates).
  [[nodiscard]] util::Bytes capture_state() const;

  /// capture_state() plus a rebase of the incremental-capture baseline.
  [[nodiscard]] util::Bytes capture_full();

  /// Incremental snapshot: only streams whose dedup state changed since
  /// the last capture, plus removals. O(active streams) per interval
  /// instead of O(all streams ever seen).
  [[nodiscard]] util::Bytes capture_delta();

  /// Applies one capture_delta() body on top of the current state.
  /// Parses fully before committing — never partially applies. Gap
  /// timers of replaced or removed streams are cancelled.
  [[nodiscard]] util::Status<util::DecodeError> apply_delta(util::BytesView delta);

  /// Rebuilds dedup state from capture_state() bytes. Fully parses
  /// before committing; current state survives a failed restore.
  [[nodiscard]] util::Status<util::DecodeError> restore_state(util::BytesView state);

  /// Marks (id, seq) as already seen and forwarded — the op-log replay
  /// primitive. A promoted standby replays the primary's post-checkpoint
  /// output through this to advance its dedup cursor without re-emitting.
  void note_seen(StreamId id, SequenceNo seq);

  /// Message traces: closes the "radio" span at first valid receipt and
  /// brackets dedup/reorder work in a "filter" span.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const FilteringStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Loss/reception accounting for every reconstructed stream.
  [[nodiscard]] std::vector<StreamReport> stream_reports() const;

  /// Index + arena bytes of the stream table (bench_scale bytes/stream).
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return streams_.memory_bytes(); }

 private:
  struct PendingMessage {
    DataMessage message;
    util::SimTime first_heard;
  };

  /// Per-stream reconstruction state.
  struct StreamState {
    bool started = false;
    SequenceNo newest = 0;  ///< Highest (mod-wrap) sequence seen.
    std::uint64_t accepted = 0;       ///< Unique messages reconstructed.
    std::uint64_t total_advance = 0;  ///< Sum of forward sequence jumps.
    // Seen-set for the dedup window. Keyed by raw sequence; pruned as the
    // window advances. (A bitmap would be faster; a map keeps the logic
    // transparent and the window small.)
    std::map<SequenceNo, bool> seen;
    // Reorder buffer keyed by sequence distance from next_release.
    SequenceNo next_release = 0;  ///< Next sequence owed to the sink.
    std::map<SequenceNo, PendingMessage> held;
    sim::EventId gap_timer;
  };

  /// `message` is a view into the radio frame; the payload is copied out
  /// only when the message is accepted (duplicates drop copy-free).
  void accept(StreamState& state, const DataMessageView& message, util::SimTime heard_at);
  void release_ready(StreamId id, StreamState& state);
  void flush_gap(StreamId id);
  void arm_gap_timer(StreamId id, StreamState& state);
  static void encode_stream(util::ByteWriter& w, std::uint32_t packed, const StreamState& state);
  [[nodiscard]] static StreamState decode_stream(util::ByteReader& r);

  /// True if `a` is newer than `b` in wrapping 16-bit arithmetic.
  [[nodiscard]] static bool seq_newer(SequenceNo a, SequenceNo b) {
    return static_cast<std::uint16_t>(a - b) < 0x8000 && a != b;
  }

  sim::Scheduler& scheduler_;
  Config config_;
  MessageSink message_sink_;
  ReceptionSink reception_sink_;
  StreamTable<StreamState> streams_;
  FilteringStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace garnet::core
