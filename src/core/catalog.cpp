#include "core/catalog.hpp"

#include <cassert>

namespace garnet::core {

void StreamCatalog::advertise(StreamId id, std::string name, std::string stream_class,
                              bool derived) {
  StreamInfo& info = streams_[id];
  info.id = id;
  info.name = std::move(name);
  info.stream_class = std::move(stream_class);
  info.advertised = true;
  info.derived = derived;
}

void StreamCatalog::note_message(StreamId id, util::SimTime now) {
  auto [it, inserted] = streams_.try_emplace(id);
  StreamInfo& info = it->second;
  if (inserted) {
    info.id = id;
    info.first_seen = now;
    info.derived = id.sensor >= kDerivedSensorBase;
  }
  info.last_seen = now;
  ++info.messages;
}

const StreamInfo* StreamCatalog::find(StreamId id) const {
  const auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

std::vector<StreamInfo> StreamCatalog::discover(const Query& query) const {
  std::vector<StreamInfo> out;
  for (const auto& [id, info] : streams_) {
    if (query.sensor && *query.sensor != id.sensor) continue;
    if (!query.stream_class.empty() && query.stream_class != info.stream_class) continue;
    if (!query.include_unadvertised && !info.advertised) continue;
    out.push_back(info);
  }
  return out;
}

StreamId StreamCatalog::allocate_derived() {
  const StreamId id{next_derived_sensor_, next_derived_stream_};
  assert(next_derived_sensor_ <= kMaxSensorId && "derived stream id space exhausted");
  if (next_derived_stream_ == 0xFF) {
    next_derived_stream_ = 0;
    ++next_derived_sensor_;
  } else {
    ++next_derived_stream_;
  }
  return id;
}

}  // namespace garnet::core
