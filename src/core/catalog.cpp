#include "core/catalog.hpp"

#include <cassert>
#include <utility>

namespace garnet::core {

void StreamCatalog::advertise(StreamId id, std::string name, std::string stream_class,
                              bool derived) {
  StreamInfo& info = streams_.upsert(StreamKey{id});
  info.id = id;
  info.name = std::move(name);
  info.stream_class = std::move(stream_class);
  info.advertised = true;
  info.derived = derived;
}

void StreamCatalog::note_message(StreamId id, util::SimTime now) {
  auto [info, inserted] = streams_.try_emplace(StreamKey{id});
  if (inserted) {
    info->id = id;
    info->first_seen = now;
    info->derived = id.sensor >= kDerivedSensorBase;
  }
  info->last_seen = now;
  ++info->messages;
}

const StreamInfo* StreamCatalog::find(StreamId id) const {
  return streams_.find(StreamKey{id});
}

std::vector<StreamInfo> StreamCatalog::discover(const Query& query) const {
  std::vector<StreamInfo> out;
  // Snapshot order: results come back sorted by packed id, so discovery
  // replies are deterministic across identically-populated catalogs.
  streams_.for_each_sorted([&](StreamKey key, const StreamInfo& info) {
    if (query.sensor && *query.sensor != key.sensor()) return;
    if (!query.stream_class.empty() && query.stream_class != info.stream_class) return;
    if (!query.include_unadvertised && !info.advertised) return;
    out.push_back(info);
  });
  return out;
}

void StreamCatalog::encode_info(util::ByteWriter& w, const StreamInfo& info) {
  w.u32(info.id.packed());
  w.str(info.name);
  w.str(info.stream_class);
  w.u8(info.advertised ? 1 : 0);
  w.u8(info.derived ? 1 : 0);
  w.i64(info.first_seen.ns);
  w.i64(info.last_seen.ns);
  w.u64(info.messages);
}

StreamInfo StreamCatalog::decode_info(StreamKey key, util::ByteReader& r) {
  StreamInfo info;
  info.id = key.id();
  info.name = r.str();
  info.stream_class = r.str();
  info.advertised = r.u8() != 0;
  info.derived = r.u8() != 0;
  info.first_seen = util::SimTime{r.i64()};
  info.last_seen = util::SimTime{r.i64()};
  info.messages = r.u64();
  return info;
}

util::Bytes StreamCatalog::capture_state() const {
  util::ByteWriter w(16 + streams_.size() * 48);
  w.u32(static_cast<std::uint32_t>(streams_.size()));
  streams_.for_each_sorted(
      [&w](StreamKey, const StreamInfo& info) { encode_info(w, info); });
  w.u32(next_derived_sensor_);
  w.u8(next_derived_stream_);
  return std::move(w).take();
}

util::Bytes StreamCatalog::capture_full() {
  util::Bytes state = capture_state();
  streams_.clear_dirty();
  return state;
}

util::Bytes StreamCatalog::capture_delta() {
  const std::vector<std::uint32_t> removed = streams_.removed_keys();
  const std::vector<std::uint32_t> dirty = streams_.dirty_keys();
  util::ByteWriter w(16 + removed.size() * 4 + dirty.size() * 48);
  w.u32(static_cast<std::uint32_t>(removed.size()));
  for (const std::uint32_t key : removed) w.u32(key);
  w.u32(static_cast<std::uint32_t>(dirty.size()));
  for (const std::uint32_t raw : dirty) {
    const StreamKey key = StreamKey::from_packed(raw);
    encode_info(w, *streams_.find(key));
  }
  w.u32(next_derived_sensor_);
  w.u8(next_derived_stream_);
  streams_.clear_dirty();
  return std::move(w).take();
}

util::Status<util::DecodeError> StreamCatalog::apply_delta(util::BytesView delta) {
  util::ByteReader r(delta);
  std::vector<StreamKey> removed;
  const std::uint32_t removed_count = r.u32();
  for (std::uint32_t i = 0; i < removed_count && r.ok(); ++i) {
    removed.push_back(StreamKey::from_packed(r.u32()));
  }
  std::vector<StreamInfo> upserts;
  const std::uint32_t dirty_count = r.u32();
  for (std::uint32_t i = 0; i < dirty_count && r.ok(); ++i) {
    const StreamKey key = StreamKey::from_packed(r.u32());
    StreamInfo info = decode_info(key, r);
    if (r.ok()) upserts.push_back(std::move(info));
  }
  const SensorId next_sensor = r.u32();
  const auto next_stream = static_cast<InternalStreamId>(r.u8());
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  for (const StreamKey key : removed) streams_.erase(key);
  for (StreamInfo& info : upserts) streams_.upsert(StreamKey{info.id}) = std::move(info);
  next_derived_sensor_ = next_sensor;
  next_derived_stream_ = next_stream;
  streams_.clear_dirty();
  return {};
}

util::Status<util::DecodeError> StreamCatalog::restore_state(util::BytesView state) {
  util::ByteReader r(state);
  std::vector<StreamInfo> parsed;
  const std::uint32_t declared = r.u32();
  for (std::uint32_t i = 0; i < declared && r.ok(); ++i) {
    const StreamKey key = StreamKey::from_packed(r.u32());
    StreamInfo info = decode_info(key, r);
    if (r.ok()) parsed.push_back(std::move(info));
  }
  const SensorId next_sensor = r.u32();
  const auto next_stream = static_cast<InternalStreamId>(r.u8());
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  streams_.clear();
  for (auto& info : parsed) streams_.upsert(StreamKey{info.id}) = std::move(info);
  next_derived_sensor_ = next_sensor;
  next_derived_stream_ = next_stream;
  streams_.clear_dirty();
  return {};
}

void StreamCatalog::clear() {
  streams_.clear();
  next_derived_sensor_ = kDerivedSensorBase;
  next_derived_stream_ = 0;
}

StreamId StreamCatalog::allocate_derived() {
  const StreamId id{next_derived_sensor_, next_derived_stream_};
  assert(next_derived_sensor_ <= kMaxSensorId && "derived stream id space exhausted");
  if (next_derived_stream_ == 0xFF) {
    next_derived_stream_ = 0;
    ++next_derived_sensor_;
  } else {
    ++next_derived_stream_;
  }
  return id;
}

}  // namespace garnet::core
