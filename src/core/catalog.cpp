#include "core/catalog.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace garnet::core {

void StreamCatalog::advertise(StreamId id, std::string name, std::string stream_class,
                              bool derived) {
  StreamInfo& info = streams_[id];
  info.id = id;
  info.name = std::move(name);
  info.stream_class = std::move(stream_class);
  info.advertised = true;
  info.derived = derived;
}

void StreamCatalog::note_message(StreamId id, util::SimTime now) {
  auto [it, inserted] = streams_.try_emplace(id);
  StreamInfo& info = it->second;
  if (inserted) {
    info.id = id;
    info.first_seen = now;
    info.derived = id.sensor >= kDerivedSensorBase;
  }
  info.last_seen = now;
  ++info.messages;
}

const StreamInfo* StreamCatalog::find(StreamId id) const {
  const auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

std::vector<StreamInfo> StreamCatalog::discover(const Query& query) const {
  std::vector<StreamInfo> out;
  for (const auto& [id, info] : streams_) {
    if (query.sensor && *query.sensor != id.sensor) continue;
    if (!query.stream_class.empty() && query.stream_class != info.stream_class) continue;
    if (!query.include_unadvertised && !info.advertised) continue;
    out.push_back(info);
  }
  return out;
}

util::Bytes StreamCatalog::capture_state() const {
  std::vector<const StreamInfo*> ordered;
  ordered.reserve(streams_.size());
  for (const auto& [id, info] : streams_) ordered.push_back(&info);
  std::sort(ordered.begin(), ordered.end(), [](const StreamInfo* a, const StreamInfo* b) {
    return a->id.packed() < b->id.packed();
  });

  util::ByteWriter w(16 + ordered.size() * 48);
  w.u32(static_cast<std::uint32_t>(ordered.size()));
  for (const StreamInfo* info : ordered) {
    w.u32(info->id.packed());
    w.str(info->name);
    w.str(info->stream_class);
    w.u8(info->advertised ? 1 : 0);
    w.u8(info->derived ? 1 : 0);
    w.i64(info->first_seen.ns);
    w.i64(info->last_seen.ns);
    w.u64(info->messages);
  }
  w.u32(next_derived_sensor_);
  w.u8(next_derived_stream_);
  return std::move(w).take();
}

util::Status<util::DecodeError> StreamCatalog::restore_state(util::BytesView state) {
  util::ByteReader r(state);
  std::vector<StreamInfo> parsed;
  const std::uint32_t declared = r.u32();
  for (std::uint32_t i = 0; i < declared && r.ok(); ++i) {
    StreamInfo info;
    info.id = StreamId::from_packed(r.u32());
    info.name = r.str();
    info.stream_class = r.str();
    info.advertised = r.u8() != 0;
    info.derived = r.u8() != 0;
    info.first_seen = util::SimTime{r.i64()};
    info.last_seen = util::SimTime{r.i64()};
    info.messages = r.u64();
    if (r.ok()) parsed.push_back(std::move(info));
  }
  const SensorId next_sensor = r.u32();
  const auto next_stream = static_cast<InternalStreamId>(r.u8());
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  streams_.clear();
  for (auto& info : parsed) {
    const StreamId id = info.id;
    streams_.emplace(id, std::move(info));
  }
  next_derived_sensor_ = next_sensor;
  next_derived_stream_ = next_stream;
  return {};
}

void StreamCatalog::clear() {
  streams_.clear();
  next_derived_sensor_ = kDerivedSensorBase;
  next_derived_stream_ = 0;
}

StreamId StreamCatalog::allocate_derived() {
  const StreamId id{next_derived_sensor_, next_derived_stream_};
  assert(next_derived_sensor_ <= kMaxSensorId && "derived stream id space exhausted");
  if (next_derived_stream_ == 0xFF) {
    next_derived_stream_ = 0;
    ++next_derived_sensor_;
  } else {
    ++next_derived_stream_;
  }
  return id;
}

}  // namespace garnet::core
