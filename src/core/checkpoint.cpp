#include "core/checkpoint.hpp"

#include "util/crc32c.hpp"

namespace garnet::core::checkpoint {

namespace {

util::Bytes encode_frame(std::uint32_t magic, const Header& header,
                         const std::uint64_t* base_epoch, util::BytesView state) {
  util::ByteWriter w(4 + 1 + 2 + header.service.size() + 8 + 8 + 8 + 4 + state.size() + 4);
  w.u32(magic);
  w.u8(header.version);
  w.str(header.service);
  w.u64(header.epoch);
  if (base_epoch != nullptr) w.u64(*base_epoch);
  w.i64(header.taken_at.ns);
  w.u32(static_cast<std::uint32_t>(state.size()));
  w.raw(state);
  const std::uint32_t crc = util::crc32c(w.view());
  w.u32(crc);
  return std::move(w).take();
}

util::Result<Decoded, util::DecodeError> decode_frame(util::BytesView wire, bool allow_delta) {
  // Smallest possible full frame: magic + version + empty name + epoch +
  // taken_at + zero state_len + crc.
  constexpr std::size_t kMinFrame = 4 + 1 + 2 + 8 + 8 + 4 + 4;
  if (wire.size() < kMinFrame) return util::Err{util::DecodeError::kTruncated};

  util::ByteReader r(wire);
  const std::uint32_t magic = r.u32();
  FrameKind kind = FrameKind::kFull;
  if (magic == kDeltaMagic) {
    if (!allow_delta) return util::Err{util::DecodeError::kMalformed};
    kind = FrameKind::kDelta;
  } else if (magic != kMagic) {
    return util::Err{util::DecodeError::kMalformed};
  }
  const std::uint8_t version = r.u8();
  if (version != kVersion) return util::Err{util::DecodeError::kBadVersion};

  Decoded out;
  out.kind = kind;
  out.header.version = version;
  out.header.service = r.str();
  out.header.epoch = r.u64();
  if (kind == FrameKind::kDelta) out.base_epoch = r.u64();
  out.header.taken_at = util::SimTime{r.i64()};
  const std::uint32_t state_len = r.u32();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  if (r.remaining() < 4 || r.remaining() - 4 != state_len) {
    return util::Err{util::DecodeError::kLengthMismatch};
  }
  out.state = r.view(state_len);

  // CRC covers every byte before the trailer — a flip anywhere in the
  // header or state that slipped past the structural checks fails here.
  const std::uint32_t stored = r.u32();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  if (util::crc32c(wire.subspan(0, wire.size() - 4)) != stored) {
    return util::Err{util::DecodeError::kBadChecksum};
  }
  return out;
}

}  // namespace

util::Bytes encode(const Header& header, util::BytesView state) {
  return encode_frame(kMagic, header, nullptr, state);
}

util::Bytes encode_delta(const Header& header, std::uint64_t base_epoch, util::BytesView state) {
  return encode_frame(kDeltaMagic, header, &base_epoch, state);
}

util::Result<Decoded, util::DecodeError> decode(util::BytesView wire) {
  return decode_frame(wire, /*allow_delta=*/false);
}

util::Result<Decoded, util::DecodeError> decode_any(util::BytesView wire) {
  return decode_frame(wire, /*allow_delta=*/true);
}

}  // namespace garnet::core::checkpoint
