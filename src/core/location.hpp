// Location Service (paper §4.2, §5).
//
// Garnet refuses to put a location field in the message header — that
// "would impose a transmission burden on all sensors, especially those
// without location awareness" (§5). Location is instead *inferred* on the
// fixed side: every receiver that hears a sensor implies the sensor was
// inside that receiver's zone, and signal strength weights the evidence.
// Consumers that know better (e.g. they parse GPS out of an application
// payload) may supply hints, which the service fuses with inference.
//
// "This data is mainly used to target location areas when transmitting
// control messages to the sensor field" — the Message Replicator queries
// estimates to pick transmitters (experiment E4). Location data is also
// re-exportable as a data stream in its own right (§2), since "location
// information may be regarded as sensitive and should be protected" —
// hence a dedicated stream consumers must explicitly subscribe to, rather
// than a field stamped on every message.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "core/auth.hpp"
#include "core/filtering.hpp"
#include "core/stream_table.hpp"
#include "core/wire_types.hpp"
#include "net/rpc.hpp"
#include "sim/geometry.hpp"
#include "wireless/radio.hpp"

namespace garnet::core {

struct LocationEstimate {
  sim::Vec2 position;
  double radius_m = 0.0;    ///< Uncertainty radius around `position`.
  double confidence = 0.0;  ///< 0..1; decays with evidence age.
  util::SimTime computed_at;
  enum class Source : std::uint8_t { kInferred, kHint, kFused } source = Source::kInferred;
};

struct LocationStats {
  std::uint64_t observations = 0;
  std::uint64_t hints = 0;
  std::uint64_t hints_rejected = 0;  ///< Unauthenticated hint envelopes.
  std::uint64_t queries = 0;
  std::uint64_t queries_answered = 0;
};

class LocationService {
 public:
  enum Method : net::MethodId {
    kQuery = 1,  ///< [u24 sensor] -> [u8 ok][f64 x][f64 y][f64 radius][f64 confidence]
  };

  static constexpr const char* kEndpointName = "garnet.location";

  struct Config {
    util::Duration observation_window = util::Duration::seconds(15);
    util::Duration hint_ttl = util::Duration::seconds(60);
    /// Evidence from fewer distinct receivers than this caps confidence.
    std::size_t full_confidence_receivers = 3;
    /// Floor of the uncertainty radius (one receiver zone's worth).
    double base_radius_m = 75.0;
  };

  LocationService(net::MessageBus& bus, AuthService& auth, Config config);

  /// Tells the service where the receivers are (deployment knowledge).
  void set_receiver_layout(const std::vector<wireless::Receiver>& receivers);

  /// Feed from the Filtering Service: one event per heard copy.
  void observe(const ReceptionEvent& event);

  /// Authenticated application hint (also arrives via kLocationHint
  /// envelopes whose payload is [u64 token][LocationHint]).
  void hint(const LocationHint& hint, util::SimTime now);

  /// Best current estimate; nullopt when nothing fresh is known.
  [[nodiscard]] std::optional<LocationEstimate> estimate(SensorId sensor);

  /// Fires on every estimate-relevant update, letting the runtime
  /// republish location as a data stream of its own.
  using UpdateSink = std::function<void(SensorId, const LocationEstimate&)>;
  void set_update_sink(UpdateSink sink) { update_sink_ = std::move(sink); }

  /// Crash-recovery snapshot: every sensor track (observations + hint),
  /// sensors sorted ascending. The receiver layout is deployment
  /// knowledge the runtime re-announces on restart, so it is excluded.
  [[nodiscard]] util::Bytes capture_state() const;

  /// capture_state() plus a rebase of the incremental-capture baseline.
  [[nodiscard]] util::Bytes capture_full();

  /// Incremental snapshot: only tracks touched since the last capture.
  [[nodiscard]] util::Bytes capture_delta();

  /// Applies one capture_delta() body on top of the current tracks.
  /// Parses fully before committing — never partially applies.
  [[nodiscard]] util::Status<util::DecodeError> apply_delta(util::BytesView delta);

  /// Rebuilds tracks from capture_state() bytes; parses fully before
  /// committing, current state survives a failed restore.
  [[nodiscard]] util::Status<util::DecodeError> restore_state(util::BytesView state);

  /// Crash wipe: forgets every track and the receiver layout.
  void reset_state();

  [[nodiscard]] const LocationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

  /// Index + arena bytes of the track table (bench_scale bytes/stream).
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return tracks_.memory_bytes(); }

 private:
  struct Observation {
    wireless::ReceiverId receiver;
    double rssi_dbm;
    util::SimTime at;
  };
  struct HintRecord {
    sim::Vec2 position;
    double radius_m;
    util::SimTime at;
  };
  struct SensorTrack {
    std::deque<Observation> observations;
    std::optional<HintRecord> hint;
  };

  void on_envelope(net::Envelope envelope);
  [[nodiscard]] std::optional<LocationEstimate> infer(SensorTrack& track);
  static void encode_track(util::ByteWriter& w, SensorId sensor, const SensorTrack& track);
  [[nodiscard]] static SensorTrack decode_track(util::ByteReader& r);

  net::MessageBus& bus_;
  AuthService& auth_;
  Config config_;
  net::RpcNode node_;
  std::unordered_map<wireless::ReceiverId, wireless::Receiver> receivers_;
  StreamTable<SensorTrack, SensorKey> tracks_;
  UpdateSink update_sink_;
  LocationStats stats_;
};

}  // namespace garnet::core
