// Stream catalog: advertising and discovery.
//
// Consumers "use typical advertising, discovery, registration ...
// mechanisms to identify, subscribe to, and receive data streams of
// interest" (paper §3). The catalog records advertised streams, detects
// streams that appear on the air without advertisement (the un-configured
// streams the Orphanage exists for), and allocates StreamIds for derived
// streams published by multi-level consumers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "core/stream_table.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace garnet::core {

struct StreamInfo {
  StreamId id;
  std::string name;        ///< Human label, empty for auto-detected streams.
  std::string stream_class;///< e.g. "temperature", "water-level", "location".
  bool advertised = false; ///< Explicitly advertised vs detected on the air.
  bool derived = false;    ///< Produced by a consumer, not a sensor.
  util::SimTime first_seen;
  util::SimTime last_seen;
  std::uint64_t messages = 0;
};

/// Sensor ids at or above this value are reserved for derived streams
/// (multi-level consumers re-publishing processed data, paper §4.2).
inline constexpr SensorId kDerivedSensorBase = 0xF0'0000;

class StreamCatalog {
 public:
  /// Explicitly advertises a stream (producer-side registration).
  void advertise(StreamId id, std::string name, std::string stream_class, bool derived = false);

  /// Records that a message on `id` was observed at `now`; auto-creates an
  /// un-advertised entry for unknown streams so they become discoverable.
  void note_message(StreamId id, util::SimTime now);

  [[nodiscard]] const StreamInfo* find(StreamId id) const;

  struct Query {
    std::optional<SensorId> sensor;
    std::string stream_class;  ///< Empty matches any class.
    bool include_unadvertised = true;
  };
  [[nodiscard]] std::vector<StreamInfo> discover(const Query& query) const;

  /// Allocates a fresh derived-stream id (paper: consumers "may generate
  /// further derived data streams").
  [[nodiscard]] StreamId allocate_derived();

  /// Crash-recovery snapshot: every stream record plus the derived-id
  /// allocator, streams sorted by packed id (byte-deterministic).
  [[nodiscard]] util::Bytes capture_state() const;

  /// capture_state() plus a rebase of the incremental-capture baseline:
  /// the next capture_delta() reports changes relative to this snapshot.
  [[nodiscard]] util::Bytes capture_full();

  /// Incremental snapshot: only streams touched since the last
  /// capture_full()/capture_delta(), plus removals and the allocator.
  /// O(dirty streams) to encode instead of O(catalog).
  [[nodiscard]] util::Bytes capture_delta();

  /// Applies one capture_delta() body on top of the current state.
  /// Parses fully before committing — never partially applies.
  [[nodiscard]] util::Status<util::DecodeError> apply_delta(util::BytesView delta);

  /// Rebuilds from capture_state() bytes; parses fully before
  /// committing, current state survives a failed restore.
  [[nodiscard]] util::Status<util::DecodeError> restore_state(util::BytesView state);

  /// Crash wipe: forgets every stream and resets the derived allocator.
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return streams_.size(); }

  /// Index + arena bytes of the stream table (bench_scale bytes/stream).
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return streams_.memory_bytes(); }

 private:
  static void encode_info(util::ByteWriter& w, const StreamInfo& info);
  [[nodiscard]] static StreamInfo decode_info(StreamKey key, util::ByteReader& r);

  StreamTable<StreamInfo> streams_;
  SensorId next_derived_sensor_ = kDerivedSensorBase;
  InternalStreamId next_derived_stream_ = 0;
};

}  // namespace garnet::core
