// Inter-service message types and payload codecs on the fixed network.
//
// The middleware services are "logically separate and distinct entities"
// (paper §3); they exchange serialised payloads over net::MessageBus.
// This header centralises the type tags and the small codecs so a reader
// can see the whole fixed-network protocol in one place.
#pragma once

#include <cstdint>
#include <optional>

#include "core/message.hpp"
#include "net/bus.hpp"
#include "util/time.hpp"

namespace garnet::core {

/// Application message types (above net::MessageType::kAppBase).
inline constexpr net::MessageType kDataDelivery = net::app_type(0);
inline constexpr net::MessageType kStateChange = net::app_type(1);
inline constexpr net::MessageType kLocationHint = net::app_type(2);
inline constexpr net::MessageType kDerivedPublish = net::app_type(3);
inline constexpr net::MessageType kLocationStream = net::app_type(4);
/// Consumer -> dispatcher credit replenishment (flow control). Payload:
/// [u32 credits]. Registered as control-plane class by the runtime so a
/// data flood cannot shed the very acks that would relieve it.
inline constexpr net::MessageType kDeliveryCredit = net::app_type(5);
/// Primary -> recovery replica checkpoint replication. Payload:
/// [str service][u64 lsn watermark][u32 len][core/checkpoint frame].
/// Control-plane class: a data flood must not shed the standby's state.
inline constexpr net::MessageType kCheckpointReplica = net::app_type(6);
/// Primary -> recovery replica op-log replication. Payload:
/// [str service][u64 lsn][u16 op kind][u16 len][op bytes].
inline constexpr net::MessageType kOpLogRecord = net::app_type(7);
/// Peer -> admission gate early ticket release (net/admission.hpp).
/// Payload: [u32 count]. Control-plane class, and fully untrusted: the
/// gate clamps against outstanding holders, so a forged flood can only
/// return real tickets early, never underflow the pool.
inline constexpr net::MessageType kAdmissionRelease = net::app_type(8);
/// Peer -> admission gate goodput report (downstream deliveries the gate
/// cannot observe directly). Payload: [u64 delivered][u64 wasted], each
/// clamped per frame at the gate. Control-plane class.
inline constexpr net::MessageType kGoodputReport = net::app_type(9);

/// A data message as delivered to a subscribed consumer, carrying the
/// time the fixed network first heard it (for end-to-end latency).
struct Delivery {
  DataMessage message;
  util::SimTime first_heard;
};

/// A delivery whose message payload aliases the wire buffer it arrived
/// in — the zero-copy consumer-facing shape. The `wire` handle keeps the
/// buffer alive, so a DeliveryView is self-contained: it may be stored
/// (orphanage ring, pending queues) without copying payload bytes, and
/// N consumers of one dispatch all alias the same allocation.
struct DeliveryView {
  DataMessageView message;
  util::SimTime first_heard;
  /// The delivery's wire buffer; message.payload points into it.
  util::SharedBytes wire;

  /// Materialises an owned Delivery (one counted payload copy).
  [[nodiscard]] Delivery to_owned() const;
  /// Implicit owning conversion so legacy `const Delivery&` handlers
  /// still bind; costs a counted payload copy — hot paths take the view.
  operator Delivery() const { return to_owned(); }  // NOLINT(google-explicit-constructor)
};

[[nodiscard]] util::Bytes encode(const Delivery& delivery);
[[nodiscard]] util::Result<Delivery, util::DecodeError> decode_delivery(util::BytesView wire);

/// Borrowing view of an owned delivery (no bytes copied, no wire handle):
/// the view is valid only while `delivery` lives. Lets owned data flow
/// into view-taking consumers (stage transforms, handlers) directly.
[[nodiscard]] inline DeliveryView as_view(const Delivery& delivery) {
  return DeliveryView{as_view(delivery.message), delivery.first_heard, {}};
}

/// Encodes a delivery frame (i64 first-heard prefix + Figure-2 message)
/// in one exact allocation, returning the shared buffer that fan-out
/// posts, fault duplicates, and consumer views all alias.
[[nodiscard]] util::SharedBytes encode_delivery(const DataMessageView& message,
                                               util::SimTime first_heard);

/// Zero-copy parse of a delivery frame: the returned view's payload
/// aliases `wire`, which the view retains. Delivery frames are encoded
/// in-process by the dispatcher and never cross a corrupting medium, so
/// consumers default to trusting the encode-time checksum ("verify
/// once") instead of re-hashing the shared buffer per subscriber.
[[nodiscard]] util::Result<DeliveryView, util::DecodeError> decode_delivery_view(
    util::SharedBytes wire, ChecksumPolicy policy = ChecksumPolicy::kTrusted);

/// Consumer state-change report for the Super Coordinator (paper §4.2:
/// "Suitably sophisticated consumer processes may forward state-change
/// details to the Super Coordinator").
struct StateChange {
  std::uint64_t consumer_token = 0;
  std::uint32_t state = 0;
};

[[nodiscard]] util::Bytes encode(const StateChange& change);
[[nodiscard]] util::Result<StateChange, util::DecodeError> decode_state_change(
    util::BytesView wire);

/// Application-supplied location hint (paper §5: "we allow consumer
/// processes to provide location hints instead").
struct LocationHint {
  SensorId sensor = 0;
  double x = 0.0;
  double y = 0.0;
  double radius_m = 50.0;
};

[[nodiscard]] util::Bytes encode(const LocationHint& hint);
[[nodiscard]] util::Result<LocationHint, util::DecodeError> decode_location_hint(
    util::BytesView wire);

}  // namespace garnet::core
