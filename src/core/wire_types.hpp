// Inter-service message types and payload codecs on the fixed network.
//
// The middleware services are "logically separate and distinct entities"
// (paper §3); they exchange serialised payloads over net::MessageBus.
// This header centralises the type tags and the small codecs so a reader
// can see the whole fixed-network protocol in one place.
#pragma once

#include <cstdint>
#include <optional>

#include "core/message.hpp"
#include "net/bus.hpp"
#include "util/time.hpp"

namespace garnet::core {

/// Application message types (above net::MessageType::kAppBase).
inline constexpr net::MessageType kDataDelivery = net::app_type(0);
inline constexpr net::MessageType kStateChange = net::app_type(1);
inline constexpr net::MessageType kLocationHint = net::app_type(2);
inline constexpr net::MessageType kDerivedPublish = net::app_type(3);
inline constexpr net::MessageType kLocationStream = net::app_type(4);

/// A data message as delivered to a subscribed consumer, carrying the
/// time the fixed network first heard it (for end-to-end latency).
struct Delivery {
  DataMessage message;
  util::SimTime first_heard;
};

[[nodiscard]] util::Bytes encode(const Delivery& delivery);
[[nodiscard]] util::Result<Delivery, util::DecodeError> decode_delivery(util::BytesView wire);

/// Consumer state-change report for the Super Coordinator (paper §4.2:
/// "Suitably sophisticated consumer processes may forward state-change
/// details to the Super Coordinator").
struct StateChange {
  std::uint64_t consumer_token = 0;
  std::uint32_t state = 0;
};

[[nodiscard]] util::Bytes encode(const StateChange& change);
[[nodiscard]] util::Result<StateChange, util::DecodeError> decode_state_change(
    util::BytesView wire);

/// Application-supplied location hint (paper §5: "we allow consumer
/// processes to provide location hints instead").
struct LocationHint {
  SensorId sensor = 0;
  double x = 0.0;
  double y = 0.0;
  double radius_m = 50.0;
};

[[nodiscard]] util::Bytes encode(const LocationHint& hint);
[[nodiscard]] util::Result<LocationHint, util::DecodeError> decode_location_hint(
    util::BytesView wire);

}  // namespace garnet::core
