#include "core/message.hpp"

#include <cassert>

#include "util/crc32c.hpp"

namespace garnet::core {
namespace {

std::size_t wire_size_of(bool has_ack, std::size_t payload_bytes) {
  return kFixedHeaderBytes + (has_ack ? kAckExtensionBytes : 0) + payload_bytes + kChecksumBytes;
}

}  // namespace

std::string StreamId::to_string() const {
  return std::to_string(sensor) + '#' + std::to_string(stream);
}

std::size_t DataMessage::wire_size() const {
  return wire_size_of(ack_request_id.has_value(), payload.size());
}

std::size_t DataMessageView::wire_size() const {
  return wire_size_of(ack_request_id.has_value(), payload.size());
}

DataMessage DataMessageView::to_owned() const {
  DataMessage msg;
  msg.header = header;
  msg.stream_id = stream_id;
  msg.sequence = sequence;
  msg.payload = util::counted_copy(payload);
  msg.ack_request_id = ack_request_id;
  return msg;
}

DataMessageView as_view(const DataMessage& msg) {
  DataMessageView view;
  view.header = msg.header;
  view.stream_id = msg.stream_id;
  view.sequence = msg.sequence;
  view.payload = msg.payload;
  view.ack_request_id = msg.ack_request_id;
  return view;
}

void encode_into(util::ByteWriter& w, const DataMessageView& msg) {
  assert(msg.stream_id.sensor <= kMaxSensorId);
  assert(msg.payload.size() <= kMaxPayload);
  assert(msg.ack_request_id.has_value() == msg.header.has(HeaderFlag::kAckPresent));

  const std::size_t start = w.size();
  w.u8(msg.header.packed());
  w.u24(msg.stream_id.sensor);
  w.u8(msg.stream_id.stream);
  w.u16(msg.sequence);
  w.u16(static_cast<std::uint16_t>(msg.payload.size()));
  if (msg.ack_request_id) w.u32(*msg.ack_request_id);
  w.raw(msg.payload);
  w.u32(util::crc32c(w.view().subspan(start)));
}

util::Bytes encode(const DataMessage& msg) {
  util::ByteWriter w(msg.wire_size());
  encode_into(w, as_view(msg));
  return std::move(w).take();
}

util::Result<DataMessageView, util::DecodeError> decode_view(util::BytesView wire,
                                                             ChecksumPolicy policy) {
  if (wire.size() < kFixedHeaderBytes + kChecksumBytes) {
    return util::Err{util::DecodeError::kTruncated};
  }

  const util::BytesView body = wire.first(wire.size() - kChecksumBytes);
  if (policy == ChecksumPolicy::kVerify) {
    util::ByteReader trailer(wire.subspan(body.size()));
    const std::uint32_t claimed = trailer.u32();
    if (util::crc32c(body) != claimed) return util::Err{util::DecodeError::kBadChecksum};
  }

  util::ByteReader r(body);
  DataMessageView msg;
  msg.header = MsgHeader::from_packed(r.u8());
  if (msg.header.version != kFormatVersion) return util::Err{util::DecodeError::kBadVersion};

  msg.stream_id.sensor = r.u24();
  msg.stream_id.stream = r.u8();
  msg.sequence = r.u16();
  const std::uint16_t payload_size = r.u16();
  if (msg.header.has(HeaderFlag::kAckPresent)) msg.ack_request_id = r.u32();
  msg.payload = r.view(payload_size);

  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  if (r.remaining() != 0) return util::Err{util::DecodeError::kLengthMismatch};
  return msg;
}

util::Result<DataMessage, util::DecodeError> decode(util::BytesView wire) {
  auto view = decode_view(wire);
  if (!view.ok()) return util::Err{view.error()};

  // Owned materialisation of the view; the copy is intentional here (the
  // caller asked for an owning decode) and deliberately not counted as a
  // payload copy — accounting tracks the shared-buffer delivery path.
  const DataMessageView& v = view.value();
  DataMessage msg;
  msg.header = v.header;
  msg.stream_id = v.stream_id;
  msg.sequence = v.sequence;
  msg.payload = util::Bytes(v.payload.begin(), v.payload.end());
  msg.ack_request_id = v.ack_request_id;
  return msg;
}

}  // namespace garnet::core
