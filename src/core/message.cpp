#include "core/message.hpp"

#include <cassert>

#include "util/crc32c.hpp"

namespace garnet::core {

std::string StreamId::to_string() const {
  return std::to_string(sensor) + '#' + std::to_string(stream);
}

std::size_t DataMessage::wire_size() const {
  return kFixedHeaderBytes + (ack_request_id ? kAckExtensionBytes : 0) + payload.size() +
         kChecksumBytes;
}

util::Bytes encode(const DataMessage& msg) {
  assert(msg.stream_id.sensor <= kMaxSensorId);
  assert(msg.payload.size() <= kMaxPayload);
  assert(msg.ack_request_id.has_value() == msg.header.has(HeaderFlag::kAckPresent));

  util::ByteWriter w(msg.wire_size());
  w.u8(msg.header.packed());
  w.u24(msg.stream_id.sensor);
  w.u8(msg.stream_id.stream);
  w.u16(msg.sequence);
  w.u16(static_cast<std::uint16_t>(msg.payload.size()));
  if (msg.ack_request_id) w.u32(*msg.ack_request_id);
  w.raw(msg.payload);
  w.u32(util::crc32c(w.view()));
  return std::move(w).take();
}

util::Result<DataMessage, util::DecodeError> decode(util::BytesView wire) {
  if (wire.size() < kFixedHeaderBytes + kChecksumBytes) {
    return util::Err{util::DecodeError::kTruncated};
  }

  const util::BytesView body = wire.first(wire.size() - kChecksumBytes);
  {
    util::ByteReader trailer(wire.subspan(body.size()));
    const std::uint32_t claimed = trailer.u32();
    if (util::crc32c(body) != claimed) return util::Err{util::DecodeError::kBadChecksum};
  }

  util::ByteReader r(body);
  DataMessage msg;
  msg.header = MsgHeader::from_packed(r.u8());
  if (msg.header.version != kFormatVersion) return util::Err{util::DecodeError::kBadVersion};

  msg.stream_id.sensor = r.u24();
  msg.stream_id.stream = r.u8();
  msg.sequence = r.u16();
  const std::uint16_t payload_size = r.u16();
  if (msg.header.has(HeaderFlag::kAckPresent)) msg.ack_request_id = r.u32();
  msg.payload = r.raw(payload_size);

  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  if (r.remaining() != 0) return util::Err{util::DecodeError::kLengthMismatch};
  return msg;
}

}  // namespace garnet::core
