#include "core/coordinator.hpp"

#include "util/log.hpp"

namespace garnet::core {

SuperCoordinator::SuperCoordinator(net::MessageBus& bus, AuthService& auth,
                                   ResourceManager& resource, Config config)
    : bus_(bus),
      auth_(auth),
      resource_(resource),
      config_(config),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {}

void SuperCoordinator::add_rule(AnticipationRule rule) { rules_.push_back(std::move(rule)); }

void SuperCoordinator::on_envelope(net::Envelope envelope) {
  if (envelope.type != kStateChange) return;
  const auto decoded = decode_state_change(envelope.payload);
  if (!decoded.ok()) {
    ++stats_.rejected_reports;
    return;
  }
  report_state(decoded.value().consumer_token, decoded.value().state);
}

void SuperCoordinator::report_state(ConsumerToken token, std::uint32_t state) {
  const auto identity = auth_.verify(token);
  if (!identity || identity->trust < config_.min_trust) {
    ++stats_.rejected_reports;
    return;
  }
  ++stats_.reports;

  auto [it, inserted] = view_.try_emplace(identity->id);
  ConsumerView& consumer = it->second;
  if (inserted) {
    consumer.consumer_id = identity->id;
    consumer.name = identity->name;
    consumer.token = token;
    consumer.state = state;
    consumer.since = bus_.now();
    consumer.changes = 1;
  } else {
    if (consumer.state != state) {
      TransitionModel& model = models_[identity->id];
      ++model.counts[{consumer.state, state}];
      ++model.from_totals[consumer.state];
    }
    consumer.state = state;
    consumer.since = bus_.now();
    ++consumer.changes;
  }

  anticipate(consumer);

  if (policy_hook_) {
    if (const auto policy = policy_hook_(view_)) {
      if (*policy != resource_.policy()) {
        ++stats_.policy_changes;
        resource_.set_policy(*policy);
      }
    }
  }
}

void SuperCoordinator::anticipate(const ConsumerView& consumer) {
  const auto model_it = models_.find(consumer.consumer_id);
  if (model_it == models_.end()) return;
  const TransitionModel& model = model_it->second;

  const auto total_it = model.from_totals.find(consumer.state);
  if (total_it == model.from_totals.end() || total_it->second == 0) return;

  // Most likely successor of the state just entered.
  std::uint32_t best_state = 0;
  std::uint32_t best_count = 0;
  for (const auto& [edge, count] : model.counts) {
    if (edge.first != consumer.state) continue;
    if (count > best_count) {
      best_count = count;
      best_state = edge.second;
    }
  }
  if (best_count < config_.min_observations) return;
  const double probability =
      static_cast<double>(best_count) / static_cast<double>(total_it->second);
  if (probability < config_.min_probability) return;

  ++stats_.predictions;

  for (const AnticipationRule& rule : rules_) {
    if (rule.state != best_state) continue;
    if (!rule.consumer_name.empty() && rule.consumer_name != consumer.name) continue;
    ++stats_.prearms_issued;
    util::log_debug("coordinator", "pre-arming %s: state %u likely (p=%.2f)",
                    consumer.name.c_str(), best_state, probability);
    resource_.prearm(consumer.token, rule.target, rule.action, rule.value);
  }
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
SuperCoordinator::transition_counts(std::uint32_t consumer_id) const {
  const auto it = models_.find(consumer_id);
  if (it == models_.end()) return {};
  return it->second.counts;
}

}  // namespace garnet::core
