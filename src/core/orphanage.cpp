#include "core/orphanage.hpp"

namespace garnet::core {

Orphanage::Orphanage(net::MessageBus& bus, Config config)
    : config_(config),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {
  node_.expose(kFetchBacklog, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const StreamId id = StreamId::from_packed(r.u32());
    const std::uint16_t max = r.u16();
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    // The retained views still hold the original delivery frames, so the
    // backlog reply is framed straight from those buffers — no re-encode.
    const std::vector<DeliveryView> backlog = drain(id, max);
    util::ByteWriter w;
    w.u16(static_cast<std::uint16_t>(backlog.size()));
    for (const DeliveryView& delivery : backlog) {
      w.u16(static_cast<std::uint16_t>(delivery.wire.size()));
      w.raw(delivery.wire);
    }
    return std::move(w).take();
  });
}

void Orphanage::on_envelope(net::Envelope envelope) {
  if (envelope.type != kDataDelivery) return;
  auto decoded = decode_delivery_view(envelope.payload);
  if (!decoded.ok()) return;
  const DeliveryView& delivery = decoded.value();

  ++total_received_;
  auto [it, inserted] =
      stores_.try_emplace(delivery.message.stream_id, config_.retention_per_stream);
  StreamStore& store = it->second;
  OrphanAnalysis& analysis = store.analysis;

  if (inserted) {
    analysis.id = delivery.message.stream_id;
    analysis.first_seen = delivery.first_heard;
  }
  analysis.last_seen = delivery.first_heard;
  ++analysis.messages;
  store.payload_bytes.add(static_cast<double>(delivery.message.payload.size()));
  analysis.mean_payload_bytes = store.payload_bytes.mean();
  const double span_s = (analysis.last_seen - analysis.first_seen).to_seconds();
  analysis.arrival_rate_hz =
      span_s > 0 ? static_cast<double>(analysis.messages - 1) / span_s : 0.0;

  if (store.backlog.push(std::move(decoded).value())) ++analysis.evicted;
}

std::vector<OrphanAnalysis> Orphanage::report() const {
  std::vector<OrphanAnalysis> out;
  out.reserve(stores_.size());
  for (const auto& [id, store] : stores_) out.push_back(store.analysis);
  return out;
}

const OrphanAnalysis* Orphanage::analysis(StreamId id) const {
  const auto it = stores_.find(id);
  return it == stores_.end() ? nullptr : &it->second.analysis;
}

std::vector<DeliveryView> Orphanage::drain(StreamId id, std::size_t max) {
  std::vector<DeliveryView> out;
  const auto it = stores_.find(id);
  if (it == stores_.end()) return out;
  util::RingBuffer<DeliveryView>& backlog = it->second.backlog;
  while (!backlog.empty() && out.size() < max) {
    out.push_back(std::move(backlog.front()));
    backlog.pop();
  }
  return out;
}

std::vector<Delivery> Orphanage::claim(StreamId id, std::size_t max) {
  std::vector<Delivery> out;
  for (const DeliveryView& delivery : drain(id, max)) out.push_back(delivery.to_owned());
  return out;
}

}  // namespace garnet::core
