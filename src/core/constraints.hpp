// Codified sensor constraints — the paper's §8 extension:
//
//   "Codification of sensor constraints via the development of an
//    expressive language. This would facilitate the operation of the
//    resource manager in automatically enforcing such limits."
//
// A constraint text is a semicolon-separated conjunction of clauses over
// the actuatable properties of one sensor stream:
//
//   interval_ms >= 100; interval_ms <= 60000;
//   payload_bytes <= 64;
//   mode in {0, 1, 4};          # standby, continuous, burst
//   interval_ms != 1000         # resonance with the pump controller
//
// Grammar (whitespace-insensitive, '#' comments to end of line):
//
//   constraints := clause (';' clause)* [';']
//   clause      := field cmp number | field 'in' '{' number (',' number)* '}'
//   field       := 'interval_ms' | 'payload_bytes' | 'mode'
//   cmp         := '<=' | '>=' | '<' | '>' | '==' | '!='
//   number      := digits, optionally suffixed 's' or 'min' (interval only)
//
// The Resource Manager consults the compiled ConstraintSet during
// admission: range clauses clamp, membership and inequality clauses veto.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace garnet::core {

enum class ConstraintField : std::uint8_t { kIntervalMs, kPayloadBytes, kMode };

[[nodiscard]] std::string_view to_string(ConstraintField f);

struct ParseError {
  std::size_t offset = 0;   ///< Byte offset into the constraint text.
  std::string message;
};

/// Compiled conjunction of constraint clauses for one sensor stream.
class ConstraintSet {
 public:
  /// Compiles constraint text; returns the first error with its offset.
  [[nodiscard]] static util::Result<ConstraintSet, ParseError> parse(std::string_view text);

  /// An empty set allows everything.
  ConstraintSet() = default;

  /// True if `value` satisfies every clause on `field`.
  [[nodiscard]] bool allows(ConstraintField field, std::uint32_t value) const;

  /// Nearest admissible value for a *range-constrained* field: clamps to
  /// the [lower, upper] envelope implied by <=, >=, <, > and == clauses.
  /// Membership and != clauses do not clamp (use allows() to veto).
  [[nodiscard]] std::uint32_t clamp(ConstraintField field, std::uint32_t value) const;

  /// The inclusive range envelope for a field (defaults: [0, UINT32_MAX]).
  struct Bounds {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xFFFFFFFFu;
  };
  [[nodiscard]] Bounds bounds(ConstraintField field) const;

  /// Canonical re-rendering of the compiled set (for diagnostics).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool empty() const noexcept { return clauses_.empty() && members_.empty(); }
  [[nodiscard]] std::size_t clause_count() const noexcept {
    return clauses_.size() + members_.size();
  }

 private:
  enum class CmpOp : std::uint8_t { kLe, kGe, kLt, kGt, kEq, kNe };

  struct CmpClause {
    ConstraintField field;
    CmpOp op;
    std::uint32_t value;
  };
  struct MemberClause {
    ConstraintField field;
    std::vector<std::uint32_t> allowed;  // sorted
  };

  friend class ConstraintParser;

  std::vector<CmpClause> clauses_;
  std::vector<MemberClause> members_;
};

}  // namespace garnet::core
