#include "core/catalog_service.hpp"

namespace garnet::core {

CatalogService::CatalogService(net::MessageBus& bus, AuthService& auth, StreamCatalog& catalog)
    : auth_(auth), catalog_(catalog), node_(bus, kEndpointName) {
  node_.expose(kAdvertise, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const StreamId id = StreamId::from_packed(r.u32());
    const std::string name = r.str();
    const std::string stream_class = r.str();
    if (!r.ok() || !auth_.verify(token)) return util::Err{net::RpcError::kRemoteFailure};

    catalog_.advertise(id, name, stream_class, id.sensor >= kDerivedSensorBase);
    return util::Bytes{};
  });

  node_.expose(kDiscover, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    StreamCatalog::Query query;
    const std::uint32_t sensor = r.u32();
    if (sensor != 0xFFFFFFFFu) query.sensor = sensor;
    query.stream_class = r.str();
    query.include_unadvertised = r.u8() != 0;
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    const std::vector<StreamInfo> found = catalog_.discover(query);
    util::ByteWriter w;
    w.u16(static_cast<std::uint16_t>(std::min<std::size_t>(found.size(), 0xFFFF)));
    std::size_t emitted = 0;
    for (const StreamInfo& info : found) {
      if (emitted++ == 0xFFFF) break;
      w.u32(info.id.packed());
      w.u8(info.advertised ? 1 : 0);
      w.u8(info.derived ? 1 : 0);
      w.u64(info.messages);
      w.str(info.name);
      w.str(info.stream_class);
    }
    return std::move(w).take();
  });

  node_.expose(kAllocateDerived, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    if (!r.ok() || !auth_.verify(token)) return util::Err{net::RpcError::kRemoteFailure};
    util::ByteWriter w(4);
    w.u32(catalog_.allocate_derived().packed());
    return std::move(w).take();
  });
}

std::vector<StreamInfo> decode_discover_reply(util::BytesView reply) {
  util::ByteReader r(reply);
  const std::uint16_t n = r.u16();
  std::vector<StreamInfo> out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
    StreamInfo info;
    info.id = StreamId::from_packed(r.u32());
    info.advertised = r.u8() != 0;
    info.derived = r.u8() != 0;
    info.messages = r.u64();
    info.name = r.str();
    info.stream_class = r.str();
    if (r.ok()) out.push_back(std::move(info));
  }
  return out;
}

}  // namespace garnet::core
