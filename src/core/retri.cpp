#include "core/retri.hpp"

#include <cassert>
#include <cmath>

namespace garnet::core {

RetriAllocator::RetriAllocator(unsigned id_bits, util::Rng rng)
    : id_bits_(id_bits), rng_(rng) {
  assert(id_bits >= 1 && id_bits <= 32);
  mask_ = id_bits == 32 ? 0xFFFFFFFFu : ((1u << id_bits) - 1);
}

std::uint32_t RetriAllocator::begin() {
  ++stats_.begun;
  const auto id = static_cast<std::uint32_t>(rng_.next()) & mask_;
  if (!active_.insert(id).second) ++stats_.collisions;
  return id;
}

void RetriAllocator::end(std::uint32_t id) { active_.erase(id); }

double RetriAllocator::expected_collision_probability(unsigned id_bits, std::size_t active) {
  const double space = std::pow(2.0, id_bits);
  return 1.0 - std::pow(1.0 - 1.0 / space, static_cast<double>(active));
}

}  // namespace garnet::core
