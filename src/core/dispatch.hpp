// Dispatching Service (paper §4.2).
//
// Receives the reconstructed streams from the Filtering Service and fans
// each message out to every subscribed consumer over the fixed network.
// Data delivery is address-free: nothing in the message names a consumer
// — "the StreamID in the data message implicitly identifies the source of
// the message, while the end destinations are inferred" (paper §5,
// "Delayed delivery decision-making").
//
// Messages matching no subscription are unclaimed and forwarded to the
// Orphanage's address. Acknowledgement fields observed in passing data
// messages are surfaced to the Actuation Service via a callback.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/message.hpp"
#include "core/pubsub.hpp"
#include "core/stream_table.hpp"
#include "core/wire_types.hpp"
#include "net/rpc.hpp"
#include "obs/trace.hpp"

namespace garnet::core {

struct DispatchStats {
  std::uint64_t messages_in = 0;      ///< Filtered messages received.
  std::uint64_t derived_in = 0;       ///< Consumer-published derived messages.
  std::uint64_t copies_delivered = 0; ///< Consumer deliveries posted.
  std::uint64_t orphaned = 0;         ///< Unclaimed messages sent to Orphanage.
  std::uint64_t acks_observed = 0;    ///< Ack fields relayed to Actuation.
  std::uint64_t rejected_publishes = 0;
  // Credit-based flow control (zero while disabled):
  std::uint64_t credits_exhausted = 0;   ///< Windows driven to zero.
  std::uint64_t quarantines = 0;         ///< Consumers entering quarantine.
  std::uint64_t quarantine_sheds = 0;    ///< Copies withheld from quarantined consumers.
  std::uint64_t credit_acks = 0;         ///< kDeliveryCredit envelopes applied.
  std::uint64_t resumes = 0;             ///< Backlog-replay rounds started.
  std::uint64_t resume_redelivered = 0;  ///< Stashed copies delivered on resume.
  std::uint64_t resume_discarded = 0;    ///< Stashed copies dropped (dup/unsubscribed).
  std::uint64_t resume_returned = 0;     ///< Fetched copies re-stashed (no credits / consumer gone).
  // Crash recovery (zero unless replay_stash() ran):
  std::uint64_t recovery_replayed = 0;   ///< Crash-window frames re-dispatched after restart.
  std::uint64_t recovery_returned = 0;   ///< Pre-crash frames re-stashed during replay.

  /// Cross-shard aggregation: the shard plane sums its per-shard
  /// dispatchers' ledgers into one plane-wide view at the merge barrier.
  DispatchStats& operator+=(const DispatchStats& other) noexcept;
};

/// Op-log record kinds emitted through set_op_sink() and consumed by
/// apply_op(). Payloads are ByteWriter frames:
///   kOpSubscribe    [u64 id][u32 consumer][u64 packed pattern][u32 min_interval_ms][u32 max_age_ms]
///   kOpUnsubscribe  [u64 id]
///   kOpDropConsumer [u32 consumer]
///   kOpCursor       [u32 packed stream][u16 sequence]
enum DispatchOp : std::uint16_t {
  kOpSubscribe = 1,
  kOpUnsubscribe = 2,
  kOpDropConsumer = 3,
  kOpCursor = 4,
};

/// Credit-based backpressure for the dispatch fan-out. Each subscriber
/// carries a delivery window; every posted copy spends one credit and the
/// consumer replenishes with kDeliveryCredit acks after it processes a
/// delivery. A consumer that drains its window to zero is *quarantined*:
/// its copies are shed to the Orphanage (the stash) while every other
/// subscriber's fan-out continues untouched. When credits return, the
/// dispatcher replays the stash via Orphanage::kFetchBacklog, filtered by
/// the consumer's exact shed set so nothing is delivered twice.
struct FlowControlConfig {
  /// Deliveries in flight per consumer before quarantine. 0 = disabled.
  std::uint32_t credit_window = 0;
  /// Credits required before a quarantined consumer's backlog replay
  /// starts. 0 = half the window (at least 1).
  std::uint32_t resume_threshold = 0;
  /// Backlog messages fetched per kFetchBacklog round-trip.
  std::uint16_t fetch_batch = 32;
  /// Reliability contract for the stash-fetch RPCs.
  net::CallOptions fetch_options = net::CallOptions::reliable(2);

  [[nodiscard]] bool enabled() const noexcept { return credit_window > 0; }
};

class DispatchingService {
 public:
  /// RPC surface.
  enum Method : net::MethodId {
    /// [u64 token][u64 packed pattern][u32 min_interval_ms][u32 max_age_ms]
    /// -> [u64 sub id][u32 credit window]. The two QoS request fields may
    /// be omitted (defaults 0); the reply's credit window is 0 when flow
    /// control is disabled. Pre-flow-control readers that stop after the
    /// sub id still parse the reply.
    kSubscribe = 1,
    kUnsubscribe = 2,  ///< [u64 token][u64 sub id] -> []
  };

  static constexpr const char* kEndpointName = "garnet.dispatch";

  DispatchingService(net::MessageBus& bus, AuthService& auth, StreamCatalog& catalog);

  /// Unclaimed data goes here (the Orphanage registers itself). Also the
  /// quarantine stash when flow control is enabled.
  void set_orphan_sink(net::Address address) { orphan_sink_ = address; }

  /// Enables (or reconfigures) credit-based backpressure. Existing
  /// consumers' windows are re-primed to the new size.
  void set_flow_control(FlowControlConfig config);
  [[nodiscard]] const FlowControlConfig& flow_control() const noexcept { return flow_; }

  /// True while `consumer` is quarantined (flow control only).
  [[nodiscard]] bool quarantined(net::Address consumer) const;
  /// Remaining delivery credits (the full window when unknown/disabled).
  [[nodiscard]] std::uint32_t credits(net::Address consumer) const;

  /// Actuation Service hook: fires for every data message that carries a
  /// stream-update acknowledgement.
  using AckObserver = std::function<void(std::uint32_t request_id, SensorId sensor,
                                         util::SimTime observed_at)>;
  void set_ack_observer(AckObserver observer) { ack_observer_ = std::move(observer); }

  /// Input from the Filtering Service (wired directly by the runtime).
  void on_filtered(const DataMessage& message, util::SimTime first_heard);

  /// View-taking twin for callers whose message already aliases a wire
  /// buffer (the gateway's socket ingest): fan-out re-encodes into the
  /// shared delivery frame directly from the view, so no owned
  /// DataMessage — and no counted payload copy — is materialised.
  void on_filtered(const DataMessageView& message, util::SimTime first_heard);

  /// Direct (non-RPC) subscription management, used by in-process
  /// services and tests. The RPC methods call these.
  SubscriptionId subscribe(net::Address consumer, StreamPattern pattern,
                           SubscribeOptions qos = {});
  bool unsubscribe(SubscriptionId id);
  std::size_t drop_consumer(net::Address consumer);

  /// Streams subscription and cursor mutations into the recovery
  /// harness's replicated op log (DispatchOp kinds above). Ops are never
  /// emitted while apply_op() is replaying.
  using OpSink = std::function<void(std::uint16_t kind, util::BytesView payload)>;
  void set_op_sink(OpSink sink) { op_sink_ = std::move(sink); }

  /// Applies one replayed op-log record (promotion path). Malformed
  /// payloads are ignored; replay is idempotent.
  void apply_op(std::uint16_t kind, util::BytesView payload);

  /// Crash-recovery snapshot: subscriptions, per-consumer credit/
  /// quarantine state with shed sets, and per-stream delivery cursors.
  /// Byte-deterministic (every unordered container is walked sorted).
  [[nodiscard]] util::Bytes capture_state() const;

  /// capture_state() plus a rebase of the incremental-capture baseline.
  [[nodiscard]] util::Bytes capture_full();

  /// Incremental snapshot. Subscriptions and flows are small
  /// (per-consumer) and ride every delta whole; the cursor table — the
  /// section that actually scales with stream count — is encoded as
  /// removals + dirty entries only, so capture cost tracks traffic, not
  /// the 10^6-stream registration footprint.
  [[nodiscard]] util::Bytes capture_delta();

  /// Applies one capture_delta() body on top of the current state.
  /// Parses fully before committing — never partially applies. Flows are
  /// re-primed exactly as in restore_state().
  [[nodiscard]] util::Status<util::DecodeError> apply_delta(util::BytesView delta);

  /// Rebuilds from capture_state() bytes; parses fully before
  /// committing. Restored flows are re-primed to a full credit window —
  /// in-flight deliveries died with the primary, so the true outstanding
  /// count is unknowable; the cost is bounded at one extra window of
  /// in-flight copies per consumer. Quarantine flags and shed sets are
  /// preserved, so resume replay stays duplicate-free.
  [[nodiscard]] util::Status<util::DecodeError> restore_state(util::BytesView state);

  /// Crash wipe: drops subscriptions, flows, and cursors.
  void reset_state();

  /// Post-restore gap repair: re-fetches the Orphanage stash for every
  /// cursor stream. Frames past the cursor (arrived while down, parked
  /// in the stash by the runtime's crash redirect) re-enter the normal
  /// fan-out; frames at or before it (orphans, quarantine sheds) return
  /// to the stash. Finishes by kicking quarantine resume for restored
  /// quarantined consumers.
  void replay_stash();

  /// Newest delivered sequence for gap detection (nullopt = never seen).
  [[nodiscard]] std::optional<SequenceNo> cursor(StreamId id) const;

  /// Message traces: brackets fan-out in a "dispatch" span, opens the
  /// "deliver" span when copies are posted, discards orphaned journeys.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const DispatchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SubscriptionTable& subscriptions() const noexcept { return table_; }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

  /// Index + arena bytes of the cursor and flow tables (bench_scale
  /// bytes/stream; excludes heap owned by shed sets).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cursors_.memory_bytes() + flows_.memory_bytes();
  }

 private:
  /// Per-consumer flow state, created lazily at first delivery. The epoch
  /// is globally unique per Flow instance so an in-flight resume can tell
  /// "my consumer was dropped (and possibly re-admitted)" apart from "my
  /// consumer is still the one I started for".
  struct Flow {
    std::uint32_t credits = 0;
    bool quarantined = false;
    bool resume_inflight = false;
    std::uint64_t epoch = 0;
    /// Exactly the (stream, sequence) pairs shed from this consumer,
    /// keyed `packed StreamId << 16 | sequence`. Resume redelivers a
    /// fetched frame iff it is in this set: the shared stash also holds
    /// copies shed for *other* consumers, and a post-crash sweep
    /// interleaves old and new sequences, so neither a floor nor a
    /// [floor, ceiling] range can separate "missed" from "already
    /// received" — only membership can. Cleared per resume round, so it
    /// is bounded by one quarantine episode's sheds.
    std::unordered_set<std::uint64_t> shed;
  };

  /// One backlog-replay round for one quarantined consumer; fetches the
  /// stashed streams sequentially from the Orphanage.
  struct ResumePlan {
    net::Address consumer;
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> streams;  ///< Sorted: deterministic replay order.
    std::unordered_set<std::uint64_t> shed;  ///< Moved from the flow (see Flow::shed).
    std::size_t index = 0;
  };

  /// Key for Flow::shed / ResumePlan::shed.
  [[nodiscard]] static constexpr std::uint64_t shed_key(std::uint32_t packed,
                                                        SequenceNo seq) noexcept {
    return (static_cast<std::uint64_t>(packed) << 16) | seq;
  }

  /// Per-stream bounds of one post-restart stash sweep (StashReplay).
  /// `floor` bounds the sweep from below (processed before the crash),
  /// `ceiling` from above (delivered live since the sweep began), and
  /// `replayed` makes the sweep itself idempotent.
  struct ReplayWindow {
    SequenceNo floor = 0;  ///< cursor + 1 at sweep start.
    bool has_ceiling = false;
    SequenceNo ceiling = 0;  ///< First live post-promotion sequence.
    bool has_replayed = false;
    SequenceNo replayed = 0;  ///< Highest sequence this sweep delivered.
  };

  /// One post-restart stash sweep over the cursor streams. The sweep
  /// races live traffic: fetch rounds are RPC-paced, and both the
  /// replay's own deliveries and fresh post-promotion frames re-stash
  /// quarantine-shed copies the next round can fetch back. One
  /// ReplayWindow per stream replaces what used to be three parallel
  /// std::maps keyed by the same packed id.
  struct StashReplay {
    std::vector<std::uint32_t> streams;  ///< Sorted: deterministic replay order.
    StreamTable<ReplayWindow> windows;
    std::size_t index = 0;
  };

  void on_envelope(net::Envelope envelope);
  void encode_flows(util::ByteWriter& w) const;
  void deliver(const DataMessageView& message, util::SimTime first_heard);
  void advance_cursor(StreamId id, SequenceNo seq);
  void fetch_stash(const std::shared_ptr<StashReplay>& plan);
  void on_stash_backlog(const std::shared_ptr<StashReplay>& plan, util::SharedBytes reply);
  void finish_stash_replay();
  Flow& flow_for(net::Address consumer);
  [[nodiscard]] Flow* flow_if_current(const ResumePlan& plan);
  [[nodiscard]] std::uint32_t resume_threshold() const;
  void on_credit(const net::Envelope& envelope);
  void maybe_resume(net::Address consumer);
  void start_resume(net::Address consumer, Flow& flow);
  void fetch_next(const std::shared_ptr<ResumePlan>& plan);
  void on_backlog(const std::shared_ptr<ResumePlan>& plan, util::SharedBytes reply);
  void finish_resume(const std::shared_ptr<ResumePlan>& plan);

  net::MessageBus& bus_;
  AuthService& auth_;
  StreamCatalog& catalog_;
  net::RpcNode node_;
  SubscriptionTable table_;
  net::Address orphan_sink_;
  AckObserver ack_observer_;
  DispatchStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<net::Address> scratch_;  ///< Reused fan-out buffer.
  FlowControlConfig flow_;
  StreamTable<Flow, ConsumerKey> flows_;  ///< Keyed by consumer address.
  std::uint64_t next_flow_epoch_ = 1;
  OpSink op_sink_;
  /// Newest processed sequence per stream — the 10^6-scale table; its
  /// dirty set is what makes dispatch deltas O(traffic) not O(streams).
  StreamTable<SequenceNo> cursors_;
  /// Alive while a post-restart stash sweep is in flight, so deliver()
  /// can mark live traffic racing it (the sweep's per-stream ceiling).
  std::weak_ptr<StashReplay> active_stash_replay_;
  bool stash_replay_delivering_ = false;  ///< deliver() call is the sweep's own.
};

}  // namespace garnet::core
