// Dispatching Service (paper §4.2).
//
// Receives the reconstructed streams from the Filtering Service and fans
// each message out to every subscribed consumer over the fixed network.
// Data delivery is address-free: nothing in the message names a consumer
// — "the StreamID in the data message implicitly identifies the source of
// the message, while the end destinations are inferred" (paper §5,
// "Delayed delivery decision-making").
//
// Messages matching no subscription are unclaimed and forwarded to the
// Orphanage's address. Acknowledgement fields observed in passing data
// messages are surfaced to the Actuation Service via a callback.
#pragma once

#include <functional>

#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/message.hpp"
#include "core/pubsub.hpp"
#include "core/wire_types.hpp"
#include "net/rpc.hpp"
#include "obs/trace.hpp"

namespace garnet::core {

struct DispatchStats {
  std::uint64_t messages_in = 0;      ///< Filtered messages received.
  std::uint64_t derived_in = 0;       ///< Consumer-published derived messages.
  std::uint64_t copies_delivered = 0; ///< Consumer deliveries posted.
  std::uint64_t orphaned = 0;         ///< Unclaimed messages sent to Orphanage.
  std::uint64_t acks_observed = 0;    ///< Ack fields relayed to Actuation.
  std::uint64_t rejected_publishes = 0;
};

class DispatchingService {
 public:
  /// RPC surface.
  enum Method : net::MethodId {
    /// [u64 token][u64 packed pattern][u32 min_interval_ms][u32 max_age_ms]
    /// -> [u64 sub id]. The two QoS fields may be omitted (defaults 0).
    kSubscribe = 1,
    kUnsubscribe = 2,  ///< [u64 token][u64 sub id] -> []
  };

  static constexpr const char* kEndpointName = "garnet.dispatch";

  DispatchingService(net::MessageBus& bus, AuthService& auth, StreamCatalog& catalog);

  /// Unclaimed data goes here (the Orphanage registers itself).
  void set_orphan_sink(net::Address address) { orphan_sink_ = address; }

  /// Actuation Service hook: fires for every data message that carries a
  /// stream-update acknowledgement.
  using AckObserver = std::function<void(std::uint32_t request_id, SensorId sensor,
                                         util::SimTime observed_at)>;
  void set_ack_observer(AckObserver observer) { ack_observer_ = std::move(observer); }

  /// Input from the Filtering Service (wired directly by the runtime).
  void on_filtered(const DataMessage& message, util::SimTime first_heard);

  /// Direct (non-RPC) subscription management, used by in-process
  /// services and tests. The RPC methods call these.
  SubscriptionId subscribe(net::Address consumer, StreamPattern pattern,
                           SubscribeOptions qos = {});
  bool unsubscribe(SubscriptionId id);
  std::size_t drop_consumer(net::Address consumer);

  /// Message traces: brackets fan-out in a "dispatch" span, opens the
  /// "deliver" span when copies are posted, discards orphaned journeys.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const DispatchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SubscriptionTable& subscriptions() const noexcept { return table_; }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

 private:
  void on_envelope(net::Envelope envelope);
  void deliver(const DataMessageView& message, util::SimTime first_heard);

  net::MessageBus& bus_;
  AuthService& auth_;
  StreamCatalog& catalog_;
  net::RpcNode node_;
  SubscriptionTable table_;
  net::Address orphan_sink_;
  AckObserver ack_observer_;
  DispatchStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<net::Address> scratch_;  ///< Reused fan-out buffer.
};

}  // namespace garnet::core
