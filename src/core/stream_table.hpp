// Flat, checkpoint-aware stream-state storage.
//
// The paper sizes Garnet at 2^24 sensors with 256 streams each; holding
// that many live streams rules out one heap node per stream. Every
// hot-path service used to key std::map / std::unordered_map by an
// ad-hoc packed uint32_t — cache-hostile, alloc-per-insert, and
// O(total streams) to snapshot. This header replaces both halves:
//
//   * StreamKey (and its siblings SensorKey / ConsumerKey) is a strong
//     type around the packed 24+8-bit composite StreamID, so a sensor
//     address can no longer be passed where a stream key is expected.
//   * StreamTable<T, Key> is an open-addressing hash table over a
//     chunked arena of values: the index is a flat power-of-two slot
//     array (8 bytes/slot, linear probing), values live in fixed-size
//     chunks that never move (references remain stable across growth),
//     and erased slots are free-listed for reuse.
//
// Checkpoint support is built in rather than bolted on:
//
//   * for_each_sorted() walks entries in ascending key order, giving
//     byte-deterministic snapshots without the per-service "collect
//     keys, sort, look each up again" boilerplate — and *byte-identical*
//     frames to the old sorted-std::map captures.
//   * Every mutating accessor marks its entry dirty and erase() records
//     the removed key, so a service can capture an *incremental* delta
//     (dirty entries + removals since the last capture) instead of
//     stalling the plane to walk 10^6 entries (core/checkpoint.hpp's
//     delta frames). clear_dirty() rebases after any capture.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/message.hpp"

namespace garnet::core {

/// Strong key wrapping the packed 32-bit composite StreamID (24-bit
/// sensor, 8-bit internal stream tag). Constructed explicitly from a
/// StreamId or from raw packed bits, never implicitly from an integer —
/// the point is that a SensorId or a net::Address no longer converts
/// into a stream key by accident.
class StreamKey {
 public:
  constexpr StreamKey() = default;
  constexpr explicit StreamKey(StreamId id) : raw_(id.packed()) {}
  constexpr StreamKey(SensorId sensor, InternalStreamId tag)
      : raw_((sensor << 8) | tag) {}

  [[nodiscard]] static constexpr StreamKey from_packed(std::uint32_t raw) {
    StreamKey k;
    k.raw_ = raw;
    return k;
  }

  /// The Figure-2 wire form: (sensor << 8) | tag.
  [[nodiscard]] constexpr std::uint32_t pack() const noexcept { return raw_; }
  [[nodiscard]] constexpr SensorId sensor() const noexcept { return raw_ >> 8; }
  [[nodiscard]] constexpr InternalStreamId tag() const noexcept {
    return static_cast<InternalStreamId>(raw_ & 0xFF);
  }
  [[nodiscard]] constexpr StreamId id() const noexcept {
    return StreamId::from_packed(raw_);
  }

  constexpr auto operator<=>(const StreamKey&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

/// Strong key over a bare 24-bit sensor identity (location tracks).
class SensorKey {
 public:
  constexpr SensorKey() = default;
  constexpr explicit SensorKey(SensorId sensor) : raw_(sensor) {}

  [[nodiscard]] static constexpr SensorKey from_packed(std::uint32_t raw) {
    return SensorKey{raw};
  }
  [[nodiscard]] constexpr std::uint32_t pack() const noexcept { return raw_; }
  [[nodiscard]] constexpr SensorId sensor() const noexcept { return raw_; }

  constexpr auto operator<=>(const SensorKey&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

/// Strong key over a consumer's bus address (dispatch flow state).
class ConsumerKey {
 public:
  constexpr ConsumerKey() = default;
  constexpr explicit ConsumerKey(std::uint32_t address) : raw_(address) {}

  [[nodiscard]] static constexpr ConsumerKey from_packed(std::uint32_t raw) {
    return ConsumerKey{raw};
  }
  [[nodiscard]] constexpr std::uint32_t pack() const noexcept { return raw_; }

  constexpr auto operator<=>(const ConsumerKey&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

/// Open-addressing hash table with arena-allocated values and built-in
/// dirty tracking. Key is any of the strong key types above (anything
/// with pack()/from_packed and ordering). Not a general-purpose map:
/// iteration is either arena order (for_each) or ascending key order
/// (for_each_sorted — the snapshot iterator); there are no STL
/// iterators to invalidate.
template <typename T, typename Key = StreamKey>
class StreamTable {
 public:
  StreamTable() = default;

  StreamTable(StreamTable&&) noexcept = default;
  StreamTable& operator=(StreamTable&&) noexcept = default;
  StreamTable(const StreamTable&) = delete;
  StreamTable& operator=(const StreamTable&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Find-or-insert; marks the entry dirty and returns a reference that
  /// stays valid until the entry is erased (values never move).
  T& upsert(Key key) {
    auto [entry, inserted] = emplace(key);
    entry->dirty = true;
    return entry->value;
  }

  /// Like upsert, but also reports whether the entry is new.
  std::pair<T*, bool> try_emplace(Key key) {
    auto [entry, inserted] = emplace(key);
    entry->dirty = true;
    return {&entry->value, inserted};
  }

  /// Read-only lookup; never touches dirty state.
  [[nodiscard]] const T* find(Key key) const {
    const std::uint32_t slot = locate(key);
    return slot == kNoSlot ? nullptr : &arena_at(slots_[slot].ref)->value;
  }

  /// Mutating lookup: marks the entry dirty (the caller is assumed to
  /// change it — that is what distinguishes mutate from find).
  [[nodiscard]] T* mutate(Key key) {
    const std::uint32_t slot = locate(key);
    if (slot == kNoSlot) return nullptr;
    Entry* entry = arena_at(slots_[slot].ref);
    entry->dirty = true;
    return &entry->value;
  }

  [[nodiscard]] bool contains(Key key) const { return locate(key) != kNoSlot; }

  /// Erases the entry, free-listing its arena slot and recording the
  /// key in the removal journal for the next delta capture.
  bool erase(Key key) {
    const std::uint32_t slot = locate(key);
    if (slot == kNoSlot) return false;
    const std::uint32_t index = slots_[slot].ref;
    Entry* entry = arena_at(index);
    entry->value = T{};  // release the value's own heap state now
    entry->alive = false;
    entry->dirty = false;
    slots_[slot].ref = kTombstone;
    ++tombstone_slots_;
    free_.push_back(index);
    removed_.push_back(key.pack());
    --size_;
    return true;
  }

  /// Drops every entry and all dirty/removal bookkeeping.
  void clear() {
    slots_.clear();
    chunks_.clear();
    free_.clear();
    removed_.clear();
    size_ = 0;
    arena_used_ = 0;
    tombstone_slots_ = 0;
  }

  /// Arena-order iteration (fast, order not deterministic across
  /// identical logical states built differently). fn(Key, T&) / (Key, const T&).
  template <typename F>
  void for_each(F&& fn) {
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      Entry* entry = arena_at(i);
      if (entry->alive) fn(Key::from_packed(entry->key), entry->value);
    }
  }
  template <typename F>
  void for_each(F&& fn) const {
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      const Entry* entry = arena_at(i);
      if (entry->alive) fn(Key::from_packed(entry->key), entry->value);
    }
  }

  /// Snapshot iterator: visits entries in ascending key order, the
  /// deterministic order every checkpoint frame is written in. This is
  /// the one sorted-keys helper; services must not re-implement it.
  template <typename F>
  void for_each_sorted(F&& fn) const {
    std::vector<std::uint32_t> keys = sorted_keys();
    for (const std::uint32_t raw : keys) {
      const Key key = Key::from_packed(raw);
      fn(key, *find(key));
    }
  }
  template <typename F>
  void for_each_sorted(F&& fn) {
    std::vector<std::uint32_t> keys = sorted_keys();
    for (const std::uint32_t raw : keys) {
      const Key key = Key::from_packed(raw);
      const std::uint32_t slot = locate(key);
      fn(key, arena_at(slots_[slot].ref)->value);
    }
  }

  /// Ascending packed keys of every live entry.
  [[nodiscard]] std::vector<std::uint32_t> sorted_keys() const {
    std::vector<std::uint32_t> keys;
    keys.reserve(size_);
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      const Entry* entry = arena_at(i);
      if (entry->alive) keys.push_back(entry->key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  // --- incremental-checkpoint surface ---------------------------------

  /// Ascending packed keys of entries dirtied since the last
  /// clear_dirty(). O(live entries) to collect but O(dirty) to encode —
  /// the encode (and any value serialisation) is what stalls a capture.
  [[nodiscard]] std::vector<std::uint32_t> dirty_keys() const {
    std::vector<std::uint32_t> keys;
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      const Entry* entry = arena_at(i);
      if (entry->alive && entry->dirty) keys.push_back(entry->key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Ascending packed keys erased since the last clear_dirty(),
  /// deduplicated. A key both erased and re-inserted appears in both
  /// journals; delta apply handles removals before upserts.
  [[nodiscard]] std::vector<std::uint32_t> removed_keys() const {
    std::vector<std::uint32_t> keys = removed_;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }

  [[nodiscard]] std::size_t dirty_count() const {
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      const Entry* entry = arena_at(i);
      if (entry->alive && entry->dirty) ++n;
    }
    return n;
  }

  /// Rebases the delta baseline: every entry becomes clean and the
  /// removal journal is dropped. Call after any capture (full or delta).
  void clear_dirty() {
    for (std::uint32_t i = 0; i < arena_used_; ++i) arena_at(i)->dirty = false;
    removed_.clear();
  }

  /// Marks every live entry dirty (restore paths that rebuild wholesale
  /// and want the next delta to carry everything).
  void mark_all_dirty() {
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      Entry* entry = arena_at(i);
      if (entry->alive) entry->dirty = true;
    }
  }

  /// Bytes held by the index and arena (not counting heap owned by the
  /// values themselves) — the bytes/stream numerator in bench_scale.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) + chunks_.size() * sizeof(Entry) * kChunkEntries +
           free_.capacity() * sizeof(std::uint32_t) + removed_.capacity() * sizeof(std::uint32_t);
  }

  /// Pre-sizes the index for `n` entries (bench warm-up; optional).
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * 3 < n * 4) want <<= 1;  // keep load below 0.75
    if (want > slots_.size()) rehash(want);
  }

 private:
  // 1024 entries per chunk: large enough to amortise the allocation,
  // small enough that a sparse table does not overshoot wildly.
  static constexpr std::size_t kChunkEntries = 1024;
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFF;
  static constexpr std::uint32_t kTombstone = 0xFFFFFFFE;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFF;

  struct Entry {
    std::uint32_t key = 0;
    bool alive = false;
    bool dirty = false;
    T value{};
  };

  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t ref = kEmpty;  ///< Arena index, kEmpty, or kTombstone.
  };

  struct Chunk {
    Entry entries[kChunkEntries];
  };

  [[nodiscard]] Entry* arena_at(std::uint32_t index) {
    return &chunks_[index / kChunkEntries]->entries[index % kChunkEntries];
  }
  [[nodiscard]] const Entry* arena_at(std::uint32_t index) const {
    return &chunks_[index / kChunkEntries]->entries[index % kChunkEntries];
  }

  /// Fibonacci-style multiplicative hash: packed stream ids are dense
  /// in the low bits (tag) and sparse above, so a plain mask would
  /// cluster entire sensors into runs.
  [[nodiscard]] static std::uint32_t mix(std::uint32_t key) noexcept {
    return key * 0x9E3779B9u;
  }

  /// Probe for a live entry; kNoSlot when absent.
  [[nodiscard]] std::uint32_t locate(Key key) const {
    if (slots_.empty()) return kNoSlot;
    const std::uint32_t raw = key.pack();
    const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
    std::uint32_t slot = mix(raw) & mask;
    while (true) {
      const Slot& s = slots_[slot];
      if (s.ref == kEmpty) return kNoSlot;
      if (s.ref != kTombstone && s.key == raw) return slot;
      slot = (slot + 1) & mask;
    }
  }

  std::pair<Entry*, bool> emplace(Key key) {
    if (slots_.empty() || (size_ + tombstones()) * 4 >= slots_.size() * 3) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    const std::uint32_t raw = key.pack();
    const std::uint32_t mask = static_cast<std::uint32_t>(slots_.size()) - 1;
    std::uint32_t slot = mix(raw) & mask;
    std::uint32_t first_tombstone = kNoSlot;
    while (true) {
      Slot& s = slots_[slot];
      if (s.ref == kEmpty) break;
      if (s.ref == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = slot;
      } else if (s.key == raw) {
        return {arena_at(s.ref), false};
      }
      slot = (slot + 1) & mask;
    }
    if (first_tombstone != kNoSlot) {
      slot = first_tombstone;
      --tombstone_slots_;
    }

    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      if (arena_used_ == chunks_.size() * kChunkEntries) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      index = arena_used_++;
    }
    Entry* entry = arena_at(index);
    entry->key = raw;
    entry->alive = true;
    entry->dirty = false;
    entry->value = T{};
    slots_[slot] = Slot{raw, index};
    ++size_;
    return {entry, true};
  }

  [[nodiscard]] std::size_t tombstones() const noexcept { return tombstone_slots_; }

  void rehash(std::size_t new_size) {
    assert((new_size & (new_size - 1)) == 0 && "slot count must stay a power of two");
    std::vector<Slot> next(new_size);
    const std::uint32_t mask = static_cast<std::uint32_t>(new_size) - 1;
    for (std::uint32_t i = 0; i < arena_used_; ++i) {
      const Entry* entry = arena_at(i);
      if (!entry->alive) continue;
      std::uint32_t slot = mix(entry->key) & mask;
      while (next[slot].ref != kEmpty) slot = (slot + 1) & mask;
      next[slot] = Slot{entry->key, i};
    }
    slots_ = std::move(next);
    tombstone_slots_ = 0;
  }

  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_;     ///< Reusable arena indices.
  std::vector<std::uint32_t> removed_;  ///< Keys erased since clear_dirty().
  std::size_t size_ = 0;
  std::uint32_t arena_used_ = 0;        ///< High-water arena index.
  std::size_t tombstone_slots_ = 0;     ///< Live tombstones in slots_.
};

}  // namespace garnet::core

template <>
struct std::hash<garnet::core::StreamKey> {
  std::size_t operator()(const garnet::core::StreamKey& key) const noexcept {
    return std::hash<std::uint32_t>{}(key.pack());
  }
};
