#include "core/stream_update.hpp"

#include <cassert>

#include "util/crc32c.hpp"

namespace garnet::core {

std::string_view to_string(UpdateAction a) {
  switch (a) {
    case UpdateAction::kSetIntervalMs: return "set-interval-ms";
    case UpdateAction::kEnableStream: return "enable-stream";
    case UpdateAction::kDisableStream: return "disable-stream";
    case UpdateAction::kSetMode: return "set-mode";
    case UpdateAction::kSetPayloadHint: return "set-payload-hint";
  }
  return "unknown";
}

util::Bytes encode(const StreamUpdateRequest& req) {
  assert(req.target.sensor <= kMaxSensorId);
  util::ByteWriter w(StreamUpdateRequest::wire_size());
  w.u8(kFormatVersion);
  w.u32(req.request_id);
  w.u24(req.target.sensor);
  w.u8(req.target.stream);
  w.u8(static_cast<std::uint8_t>(req.action));
  w.u32(req.value);
  w.i64(req.issued_at.ns);
  w.u32(util::crc32c(w.view()));
  return std::move(w).take();
}

util::Result<StreamUpdateRequest, util::DecodeError> decode_update(util::BytesView wire) {
  if (wire.size() != StreamUpdateRequest::wire_size()) {
    return util::Err{util::DecodeError::kTruncated};
  }

  const util::BytesView body = wire.first(wire.size() - 4);
  {
    util::ByteReader trailer(wire.subspan(body.size()));
    if (util::crc32c(body) != trailer.u32()) return util::Err{util::DecodeError::kBadChecksum};
  }

  util::ByteReader r(body);
  const std::uint8_t version = r.u8();
  if (version != kFormatVersion) return util::Err{util::DecodeError::kBadVersion};

  StreamUpdateRequest req;
  req.request_id = r.u32();
  req.target.sensor = r.u24();
  req.target.stream = r.u8();
  const std::uint8_t action = r.u8();
  if (action < 1 || action > 5) return util::Err{util::DecodeError::kMalformed};
  req.action = static_cast<UpdateAction>(action);
  req.value = r.u32();
  req.issued_at.ns = r.i64();

  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  return req;
}

}  // namespace garnet::core
