#include "core/replicator.hpp"

namespace garnet::core {

MessageReplicator::MessageReplicator(wireless::RadioMedium& medium, LocationService& location,
                                     Config config)
    : medium_(medium), location_(location), config_(config) {}

MessageReplicator::~MessageReplicator() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void MessageReplicator::set_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) {
    out.counter("garnet.replicator.sends", stats_.sends);
    out.counter("garnet.replicator.targeted_sends", stats_.targeted_sends);
    out.counter("garnet.replicator.flooded_sends", stats_.flooded_sends);
    out.counter("garnet.replicator.transmitter_activations", stats_.transmitter_activations);
    out.counter("garnet.replicator.copies_scheduled", stats_.copies_scheduled);
  });
}

MessageReplicator::SendReport MessageReplicator::send(SensorId target, const util::Bytes& frame) {
  ++stats_.sends;
  SendReport report;

  const auto estimate = location_.estimate(target);
  const bool usable = estimate && estimate->confidence >= config_.min_confidence;

  for (const wireless::Transmitter& tx : medium_.transmitters()) {
    if (usable) {
      const double reach = tx.range_m + estimate->radius_m + config_.margin_m;
      if (sim::distance(tx.position, estimate->position) > reach) continue;
    }
    ++report.transmitters_used;
    report.copies_scheduled += medium_.downlink(tx.id, frame);
  }

  // A usable estimate that selected zero transmitters (sensor believed
  // outside all coverage) degrades to flood — better late than lost.
  if (usable && report.transmitters_used == 0) {
    for (const wireless::Transmitter& tx : medium_.transmitters()) {
      ++report.transmitters_used;
      report.copies_scheduled += medium_.downlink(tx.id, frame);
    }
    report.targeted = false;
  } else {
    report.targeted = usable;
  }

  if (report.targeted) {
    ++stats_.targeted_sends;
  } else {
    ++stats_.flooded_sends;
  }
  stats_.transmitter_activations += report.transmitters_used;
  stats_.copies_scheduled += report.copies_scheduled;
  return report;
}

}  // namespace garnet::core
