#include "core/consumer.hpp"

#include <cassert>

#include "core/catalog_service.hpp"
#include "core/coordinator.hpp"
#include "core/location.hpp"

namespace garnet::core {

Consumer::Consumer(net::MessageBus& bus, std::string endpoint_name)
    : bus_(bus),
      name_(endpoint_name),
      node_(bus, std::move(endpoint_name), [this](net::Envelope e) { on_envelope(std::move(e)); }) {}

Consumer::~Consumer() {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
}

void Consumer::set_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ != nullptr) metrics_->remove_collector(collector_id_);
  metrics_ = &registry;
  collector_id_ = registry.add_collector([this](obs::SnapshotBuilder& out) { collect(out); });
}

void Consumer::collect(obs::SnapshotBuilder& out) const {
  const obs::Labels who{{"consumer", name_}};
  out.counter("garnet.consumer.rpc_failures", net_stats_.subscribe_failures,
              {{"consumer", name_}, {"op", "subscribe"}});
  out.counter("garnet.consumer.rpc_failures", net_stats_.unsubscribe_failures,
              {{"consumer", name_}, {"op", "unsubscribe"}});
  out.counter("garnet.consumer.rpc_failures", net_stats_.update_failures,
              {{"consumer", name_}, {"op", "update"}});
  out.counter("garnet.consumer.rpc_failures", net_stats_.catalog_failures,
              {{"consumer", name_}, {"op", "catalog"}});
  out.counter("garnet.consumer.received", received_, who);
  out.counter("garnet.consumer.credit_acks", credit_acks_, who);
}

net::Address Consumer::resolve(const char* name) {
  const auto address = bus_.lookup(name);
  assert(address && "middleware service endpoint not found on bus");
  return *address;
}

net::CallOptions Consumer::options_for(bool idempotent) const {
  net::CallOptions options = call_options_;
  options.idempotent = idempotent;
  return options;
}

void Consumer::on_envelope(net::Envelope envelope) {
  if (envelope.type != kDataDelivery) return;
  const auto decoded = decode_delivery_view(envelope.payload);
  if (!decoded.ok()) return;
  ++received_;
  delivery_latency_.add(bus_.now() - decoded.value().first_heard);
  if (tracer_ != nullptr) {
    // The first consumer to receive a copy completes the journey; for
    // later copies the trace is already in the flight recorder.
    const DataMessageView& message = decoded.value().message;
    const obs::TraceKey trace_key{message.stream_id.packed(), message.sequence};
    tracer_->end_span(trace_key, "deliver", bus_.now().ns);
    tracer_->complete(trace_key, bus_.now().ns);
  }
  if (data_handler_) data_handler_(decoded.value());
  // The ack rides *behind* the handler: under flow control the credit
  // returns to the dispatcher only once this delivery is processed, so a
  // slow consumer's window drains at its true consumption rate.
  if (credit_window_ > 0) send_credit();
}

void Consumer::send_credit() {
  ++credit_acks_;
  util::ByteWriter w(4);
  w.u32(1);
  node_.post(resolve(DispatchingService::kEndpointName), kDeliveryCredit,
             util::take_shared(std::move(w)));
}

void Consumer::subscribe(StreamPattern pattern, SubscribeCallback on_done) {
  subscribe(pattern, SubscribeOptions{}, std::move(on_done));
}

void Consumer::subscribe(StreamPattern pattern, SubscribeOptions qos, SubscribeCallback on_done) {
  util::ByteWriter w(24);
  w.u64(identity_.token);
  w.u64(pattern.packed());
  w.u32(qos.min_interval_ms);
  w.u32(qos.max_age_ms);
  // Not idempotent: re-executing would create a second subscription, so
  // retries lean on the dispatcher's at-most-once cache.
  node_.call(resolve(DispatchingService::kEndpointName), DispatchingService::kSubscribe,
             std::move(w).take(), options_for(/*idempotent=*/false),
             [this, on_done = std::move(on_done)](net::RpcResult result) {
               if (!result.ok()) {
                 ++net_stats_.subscribe_failures;
                 if (on_done) on_done(util::Err{result.error()});
                 return;
               }
               util::ByteReader r(result.value());
               const auto id = SubscriptionId{r.u64()};
               // Flow-control window granted by the dispatcher (absent in
               // pre-flow-control replies; 0 means disabled either way).
               if (r.remaining() >= 4) credit_window_ = r.u32();
               if (on_done) on_done(id);
             });
}

void Consumer::unsubscribe(SubscriptionId id) {
  util::ByteWriter w(16);
  w.u64(identity_.token);
  w.u64(id);
  node_.call(resolve(DispatchingService::kEndpointName), DispatchingService::kUnsubscribe,
             std::move(w).take(), options_for(/*idempotent=*/true), [this](net::RpcResult result) {
               if (!result.ok()) ++net_stats_.unsubscribe_failures;
             });
}

void Consumer::publish_derived(StreamId id, util::Bytes payload, std::uint8_t extra_flags) {
  assert(id.sensor >= kDerivedSensorBase && "derived streams use the reserved id range");
  DataMessage message;
  message.header.flags = extra_flags;
  message.header.set(HeaderFlag::kDerived);
  message.stream_id = id;
  message.sequence = derived_sequences_[id.packed()]++;
  message.payload = std::move(payload);
  node_.post(resolve(DispatchingService::kEndpointName), kDerivedPublish, encode(message));
}

void Consumer::request_update(StreamId target, UpdateAction action, std::uint32_t value,
                              UpdateCallback on_done) {
  util::ByteWriter w(17);
  w.u64(identity_.token);
  w.u32(target.packed());
  w.u8(static_cast<std::uint8_t>(action));
  w.u32(value);
  // An actuation demand must execute at most once — a retried duplicate
  // would reach the sensor twice — so it is never marked idempotent.
  node_.call(resolve(ActuationService::kEndpointName), ActuationService::kRequestUpdate,
             std::move(w).take(), options_for(/*idempotent=*/false),
             [this, on_done = std::move(on_done)](net::RpcResult result) {
               if (!result.ok()) {
                 ++net_stats_.update_failures;
                 if (on_done) on_done(0, Admission::kDenied, 0);
                 return;
               }
               if (!on_done) return;
               util::ByteReader r(result.value());
               const std::uint32_t request_id = r.u32();
               const auto admission = static_cast<Admission>(r.u8());
               const std::uint32_t effective = r.u32();
               on_done(request_id, admission, effective);
             });
}

void Consumer::report_state(std::uint32_t state) {
  node_.post(resolve(SuperCoordinator::kEndpointName), kStateChange,
             encode(StateChange{identity_.token, state}));
}

void Consumer::send_location_hint(const LocationHint& hint) {
  util::ByteWriter w(8 + 27);
  w.u64(identity_.token);
  w.raw(encode(hint));
  node_.post(resolve(LocationService::kEndpointName), kLocationHint, std::move(w).take());
}

void Consumer::discover(const DiscoveryQuery& query, DiscoverCallback on_done) {
  util::ByteWriter w;
  w.u32(query.sensor ? *query.sensor : 0xFFFFFFFFu);
  w.str(query.stream_class);
  w.u8(query.include_unadvertised ? 1 : 0);
  node_.call(resolve(CatalogService::kEndpointName), CatalogService::kDiscover,
             std::move(w).take(), options_for(/*idempotent=*/true),
             [this, on_done = std::move(on_done)](net::RpcResult result) {
               if (!result.ok()) {
                 ++net_stats_.catalog_failures;
                 if (on_done) on_done({});
                 return;
               }
               if (on_done) on_done(decode_discover_reply(result.value()));
             });
}

void Consumer::advertise(StreamId id, const std::string& name, const std::string& stream_class) {
  util::ByteWriter w;
  w.u64(identity_.token);
  w.u32(id.packed());
  w.str(name);
  w.str(stream_class);
  // Re-advertising the same stream overwrites the same entry: idempotent.
  node_.call(resolve(CatalogService::kEndpointName), CatalogService::kAdvertise,
             std::move(w).take(), options_for(/*idempotent=*/true), [this](net::RpcResult result) {
               if (!result.ok()) ++net_stats_.catalog_failures;
             });
}

void Consumer::allocate_derived_stream(AllocateCallback on_done) {
  util::ByteWriter w(8);
  w.u64(identity_.token);
  // Not idempotent: each execution burns a fresh id from the catalog.
  node_.call(resolve(CatalogService::kEndpointName), CatalogService::kAllocateDerived,
             std::move(w).take(), options_for(/*idempotent=*/false),
             [this, on_done = std::move(on_done)](net::RpcResult result) {
               if (!result.ok()) {
                 ++net_stats_.catalog_failures;
                 if (on_done) on_done(util::Err{result.error()});
                 return;
               }
               if (!on_done) return;
               util::ByteReader r(result.value());
               on_done(StreamId::from_packed(r.u32()));
             });
}

}  // namespace garnet::core
