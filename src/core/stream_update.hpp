// Stream-update requests: the control messages consumers send back into
// the sensor field to "influence the future contents of the originating
// data streams" (paper §3). The Actuation Service stamps and checksums
// them (§4.2) before the Message Replicator broadcasts them.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/message.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace garnet::core {

/// What a consumer may ask a sensor stream to do.
enum class UpdateAction : std::uint8_t {
  kSetIntervalMs = 1,   ///< Set sampling interval; value = milliseconds.
  kEnableStream = 2,    ///< Begin producing this internal stream.
  kDisableStream = 3,   ///< Stop producing this internal stream.
  kSetMode = 4,         ///< Opaque sensing mode selector; value = mode id.
  kSetPayloadHint = 5,  ///< Request payload size/precision; value = bytes.
};

[[nodiscard]] std::string_view to_string(UpdateAction a);

/// One control message, as carried over the air.
struct StreamUpdateRequest {
  std::uint32_t request_id = 0;  ///< Echoed by receive-capable sensors in acks.
  StreamId target;
  UpdateAction action = UpdateAction::kSetIntervalMs;
  std::uint32_t value = 0;
  util::SimTime issued_at;  ///< Stamped by the Actuation Service.

  [[nodiscard]] static constexpr std::size_t wire_size() {
    return 1 + 4 + 4 + 1 + 4 + 8 + 4;  // version, req id, stream, action, value, time, crc
  }
};

[[nodiscard]] util::Bytes encode(const StreamUpdateRequest& req);
[[nodiscard]] util::Result<StreamUpdateRequest, util::DecodeError> decode_update(
    util::BytesView wire);

}  // namespace garnet::core
