#include "core/resource.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace garnet::core {

std::string_view to_string(ConflictPolicy p) {
  switch (p) {
    case ConflictPolicy::kMostDemandingWins: return "most-demanding-wins";
    case ConflictPolicy::kPriorityWins: return "priority-wins";
    case ConflictPolicy::kMerge: return "merge";
    case ConflictPolicy::kRejectConflicts: return "reject-conflicts";
  }
  return "unknown";
}

ResourceManager::ResourceManager(net::MessageBus& bus, AuthService& auth, Config config)
    : bus_(bus),
      auth_(auth),
      config_(config),
      node_(bus, kEndpointName) {
  // Async exposure so remote callers go through the same path as
  // in-process ones: pre-armed decisions answer immediately, everything
  // else pays the deliberation delay.
  node_.expose_async(kEvaluate, [this](net::Address, util::BytesView args,
                                       net::RpcResponder respond) {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const StreamId target = StreamId::from_packed(r.u32());
    const auto action = static_cast<UpdateAction>(r.u8());
    const std::uint32_t value = r.u32();
    if (!r.ok()) {
      respond(util::Err{net::RpcError::kRemoteFailure});
      return;
    }

    evaluate(token, target, action, value, [respond = std::move(respond)](Decision decision) {
      util::ByteWriter w(5);
      w.u8(static_cast<std::uint8_t>(decision.admission));
      w.u32(decision.effective_value);
      respond(std::move(w).take());
    });
  });
}

void ResourceManager::register_profile(SensorProfile profile) {
  profiles_[profile.id] = std::move(profile);
}

util::Status<ParseError> ResourceManager::codify(SensorId sensor, InternalStreamId stream,
                                                 std::string_view constraint_text) {
  auto compiled = ConstraintSet::parse(constraint_text);
  if (!compiled.ok()) return util::Err{compiled.error()};

  SensorProfile& profile = profiles_[sensor];
  profile.id = sensor;  // may be creating the profile here
  profile.codified[stream] = std::move(compiled).value();
  util::log_debug("resource", "codified constraints for %u#%u: %s", sensor, stream,
                  profile.codified[stream].to_string().c_str());
  return {};
}

void ResourceManager::evaluate(ConsumerToken token, StreamId target, UpdateAction action,
                               std::uint32_t value, std::function<void(Decision)> on_decision) {
  const PrearmKey key{token, target.packed(), static_cast<std::uint8_t>(action)};
  if (const auto it = prearmed_.find(key); it != prearmed_.end()) {
    const bool fresh =
        bus_.scheduler().now() - it->second.armed_at <= config_.prearm_ttl;
    const Decision decision = it->second.decision;
    prearmed_.erase(it);
    if (fresh) {
      // Anticipated by the Super Coordinator: the deliberation already
      // happened, so the caller gets the cached decision with no delay.
      ++stats_.prearm_hits;
      record_outcome(decision);
      on_decision(decision);
      return;
    }
    // Stale prediction: fall through to a full deliberation.
  }

  bus_.scheduler().schedule_after(
      config_.evaluation_delay,
      [this, token, target, action, value, on_decision = std::move(on_decision)] {
        const Decision decision = evaluate_now(token, target, action, value);
        record_outcome(decision);
        on_decision(decision);
      });
}

Decision ResourceManager::evaluate_now(ConsumerToken token, StreamId target, UpdateAction action,
                                       std::uint32_t value) {
  const auto identity = auth_.verify(token);
  if (!identity) return {Admission::kDenied, 0, "unknown consumer token"};
  if (identity->trust == TrustLevel::kUntrusted) {
    return {Admission::kDenied, 0, "untrusted consumers may not actuate"};
  }

  const SensorProfile* profile = nullptr;
  const wireless::StreamConstraints* constraints = nullptr;
  const ConstraintSet* codified = nullptr;
  if (const auto it = profiles_.find(target.sensor); it != profiles_.end()) {
    profile = &it->second;
    if (!profile->receive_capable) {
      return {Admission::kDenied, 0, "sensor is transmit-only"};
    }
    if (const auto cit = profile->constraints.find(target.stream);
        cit != profile->constraints.end()) {
      constraints = &cit->second;
    }
    if (const auto kit = profile->codified.find(target.stream);
        kit != profile->codified.end()) {
      codified = &kit->second;
    }
  }

  StreamLedger& ledger = ledgers_[target];

  switch (action) {
    case UpdateAction::kSetIntervalMs:
      return mediate_interval(ledger, *identity, constraints, codified, value);

    case UpdateAction::kEnableStream:
      ledger.believed_enabled = true;
      return {Admission::kApproved, value, "enable"};

    case UpdateAction::kDisableStream: {
      // Disabling starves every other consumer of the stream; it is only
      // admitted when nobody else holds an active demand, or the
      // requester outranks them / is trusted.
      const bool others = std::any_of(
          ledger.demands.begin(), ledger.demands.end(),
          [&](const Demand& d) { return d.consumer != token; });
      if (!others) {
        ledger.believed_enabled = false;
        return {Admission::kApproved, value, "disable, no competing demand"};
      }
      if (identity->trust == TrustLevel::kTrusted && config_.allow_trusted_override) {
        ++stats_.trusted_overrides;
        ledger.believed_enabled = false;
        return {Admission::kApproved, value, "disable via trusted override"};
      }
      const bool outranks_all = std::all_of(
          ledger.demands.begin(), ledger.demands.end(), [&](const Demand& d) {
            return d.consumer == token || d.priority < identity->priority;
          });
      if (config_.policy == ConflictPolicy::kPriorityWins && outranks_all) {
        ledger.believed_enabled = false;
        return {Admission::kApproved, value, "disable by priority"};
      }
      return {Admission::kDenied, 0, "competing consumers depend on stream"};
    }

    case UpdateAction::kSetMode: {
      // Modes are opaque to the middleware, but a codified constraint can
      // still whitelist them (e.g. "mode in {0, 1, 4}").
      if (codified && !codified->allows(ConstraintField::kMode, value)) {
        return {Admission::kDenied, 0, "mode forbidden by codified constraints"};
      }
      return {Admission::kApproved, value, "mode change"};
    }

    case UpdateAction::kSetPayloadHint: {
      std::uint32_t effective = value;
      if (constraints && effective > constraints->max_payload) {
        effective = constraints->max_payload;
      }
      if (codified) {
        effective = codified->clamp(ConstraintField::kPayloadBytes, effective);
        if (!codified->allows(ConstraintField::kPayloadBytes, effective)) {
          return {Admission::kDenied, 0, "payload forbidden by codified constraints"};
        }
      }
      if (effective != value) return {Admission::kModified, effective, "payload clamped"};
      return {Admission::kApproved, value, "payload hint"};
    }
  }
  return {Admission::kDenied, 0, "unknown action"};
}

Decision ResourceManager::mediate_interval(StreamLedger& ledger, const ConsumerIdentity& who,
                                           const wireless::StreamConstraints* constraints,
                                           const ConstraintSet* codified, std::uint32_t asked) {
  const util::SimTime now = bus_.scheduler().now();

  // Device constraints first: clamp what the hardware cannot do, then
  // the codified policy envelope (paper §8's constraint language).
  std::uint32_t feasible = asked;
  if (constraints) {
    feasible = std::clamp(asked, constraints->min_interval_ms, constraints->max_interval_ms);
  }
  if (codified) {
    feasible = codified->clamp(ConstraintField::kIntervalMs, feasible);
    if (!codified->allows(ConstraintField::kIntervalMs, feasible)) {
      // Range-satisfying but vetoed (e.g. an "!=" exclusion): refuse
      // rather than guess what the operator meant.
      return {Admission::kDenied, ledger.believed_interval,
              "interval forbidden by codified constraints"};
    }
  }

  // Expire stale demands, then upsert this consumer's.
  std::erase_if(ledger.demands,
                [&](const Demand& d) { return now - d.at > config_.demand_ttl; });
  const auto mine = std::find_if(ledger.demands.begin(), ledger.demands.end(),
                                 [&](const Demand& d) { return d.consumer == who.token; });
  if (mine != ledger.demands.end()) {
    mine->interval_ms = feasible;
    mine->priority = who.priority;
    mine->at = now;
  } else {
    ledger.demands.push_back({who.token, who.priority, feasible, now});
  }

  // Mediate across all live demands.
  std::uint32_t effective = feasible;
  switch (config_.policy) {
    case ConflictPolicy::kMostDemandingWins: {
      effective = feasible;
      for (const Demand& d : ledger.demands) effective = std::min(effective, d.interval_ms);
      break;
    }
    case ConflictPolicy::kPriorityWins: {
      const auto top = std::max_element(
          ledger.demands.begin(), ledger.demands.end(),
          [](const Demand& a, const Demand& b) { return a.priority < b.priority; });
      effective = top->interval_ms;
      break;
    }
    case ConflictPolicy::kMerge: {
      std::vector<std::uint32_t> values;
      values.reserve(ledger.demands.size());
      for (const Demand& d : ledger.demands) values.push_back(d.interval_ms);
      std::sort(values.begin(), values.end());
      effective = values[values.size() / 2];
      break;
    }
    case ConflictPolicy::kRejectConflicts: {
      const bool conflicting = std::any_of(
          ledger.demands.begin(), ledger.demands.end(), [&](const Demand& d) {
            return d.consumer != who.token && d.interval_ms != feasible;
          });
      if (conflicting) {
        if (who.trust == TrustLevel::kTrusted && config_.allow_trusted_override) {
          ++stats_.trusted_overrides;
        } else {
          // Withdraw the demand we just recorded; it was not admitted.
          std::erase_if(ledger.demands,
                        [&](const Demand& d) { return d.consumer == who.token; });
          return {Admission::kDenied, ledger.believed_interval, "conflicts with existing demand"};
        }
      }
      effective = feasible;
      break;
    }
  }

  ledger.believed_interval = effective;
  if (effective == asked) return {Admission::kApproved, effective, "admitted"};
  return {Admission::kModified, effective, "mediated"};
}

void ResourceManager::prearm(ConsumerToken token, StreamId target, UpdateAction action,
                             std::uint32_t value) {
  const Decision decision = evaluate_now(token, target, action, value);
  prearmed_[PrearmKey{token, target.packed(), static_cast<std::uint8_t>(action)}] =
      PrearmedDecision{decision, bus_.scheduler().now()};
}

void ResourceManager::set_policy(ConflictPolicy policy) {
  if (policy == config_.policy) return;
  ++stats_.policy_changes;
  util::log_info("resource", "conflict policy -> %s",
                 std::string(to_string(policy)).c_str());
  config_.policy = policy;
}

std::size_t ResourceManager::withdraw_consumer(ConsumerToken token) {
  std::size_t touched = 0;
  for (auto& [id, ledger] : ledgers_) {
    const auto before = ledger.demands.size();
    std::erase_if(ledger.demands, [token](const Demand& d) { return d.consumer == token; });
    if (ledger.demands.size() != before) ++touched;
  }
  std::erase_if(prearmed_,
                [token](const auto& entry) { return entry.first.token == token; });
  return touched;
}

std::optional<std::uint32_t> ResourceManager::believed_interval(StreamId id) const {
  const auto it = ledgers_.find(id);
  if (it == ledgers_.end() || it->second.believed_interval == 0) return std::nullopt;
  return it->second.believed_interval;
}

void ResourceManager::record_outcome(const Decision& decision) {
  ++stats_.evaluated;
  switch (decision.admission) {
    case Admission::kApproved: ++stats_.approved; break;
    case Admission::kModified: ++stats_.modified; break;
    case Admission::kDenied: ++stats_.denied; break;
  }
}

}  // namespace garnet::core
