#include "core/auth.hpp"

namespace garnet::core {

std::string_view to_string(TrustLevel t) {
  switch (t) {
    case TrustLevel::kUntrusted: return "untrusted";
    case TrustLevel::kStandard: return "standard";
    case TrustLevel::kTrusted: return "trusted";
  }
  return "unknown";
}

AuthService::AuthService(Config config)
    : config_(config), secret_(crypto::sipkey_from_seed(config.secret_seed)) {}

void AuthService::grant_trust(const std::string& name, TrustLevel trust) {
  trust_grants_[name] = trust;
}

util::Result<ConsumerIdentity, AuthError> AuthService::register_consumer(const std::string& name,
                                                                         net::Address address,
                                                                         std::uint8_t priority) {
  if (by_name_.contains(name)) return util::Err{AuthError::kNameTaken};

  ConsumerIdentity identity;
  identity.id = next_id_++;
  identity.name = name;
  identity.address = address;
  identity.priority = priority;
  const auto grant = trust_grants_.find(name);
  identity.trust = grant == trust_grants_.end() ? config_.default_trust : grant->second;

  // Token is a MAC over the identity under the service secret: holders
  // cannot forge tokens for other identities.
  util::ByteWriter w(name.size() + 8);
  w.u32(identity.id);
  w.str(name);
  identity.token = crypto::siphash24(secret_, w.view());

  by_token_.emplace(identity.token, identity);
  by_name_.emplace(name, identity.token);
  return identity;
}

std::optional<ConsumerIdentity> AuthService::verify(ConsumerToken token) const {
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) return std::nullopt;
  return it->second;
}

bool AuthService::revoke(ConsumerToken token) {
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) return false;
  by_name_.erase(it->second.name);
  by_token_.erase(it);
  return true;
}

}  // namespace garnet::core
