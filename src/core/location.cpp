#include "core/location.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace garnet::core {

LocationService::LocationService(net::MessageBus& bus, AuthService& auth, Config config)
    : bus_(bus),
      auth_(auth),
      config_(config),
      node_(bus, kEndpointName, [this](net::Envelope e) { on_envelope(std::move(e)); }) {
  node_.expose(kQuery, [this](net::Address, util::BytesView args) -> net::RpcResult {
    util::ByteReader r(args);
    const SensorId sensor = r.u24();
    if (!r.ok()) return util::Err{net::RpcError::kRemoteFailure};

    const auto est = estimate(sensor);
    util::ByteWriter w(33);
    w.u8(est ? 1 : 0);
    if (est) {
      w.f64(est->position.x);
      w.f64(est->position.y);
      w.f64(est->radius_m);
      w.f64(est->confidence);
    }
    return std::move(w).take();
  });
}

void LocationService::set_receiver_layout(const std::vector<wireless::Receiver>& receivers) {
  receivers_.clear();
  for (const wireless::Receiver& rx : receivers) receivers_.emplace(rx.id, rx);
}

void LocationService::observe(const ReceptionEvent& event) {
  if (!receivers_.contains(event.receiver)) return;  // unknown antenna
  ++stats_.observations;

  SensorTrack& track = tracks_.upsert(SensorKey{event.sensor});
  track.observations.push_back({event.receiver, event.rssi_dbm, event.heard_at});

  // Trim anything outside the window.
  const util::SimTime cutoff = event.heard_at - config_.observation_window;
  while (!track.observations.empty() && track.observations.front().at < cutoff) {
    track.observations.pop_front();
  }

  if (update_sink_) {
    if (const auto est = infer(track)) update_sink_(event.sensor, *est);
  }
}

void LocationService::hint(const LocationHint& hint, util::SimTime now) {
  ++stats_.hints;
  SensorTrack& track = tracks_.upsert(SensorKey{hint.sensor});
  track.hint = HintRecord{{hint.x, hint.y}, hint.radius_m, now};
  if (update_sink_) {
    if (const auto est = estimate(hint.sensor)) update_sink_(hint.sensor, *est);
  }
}

std::optional<LocationEstimate> LocationService::estimate(SensorId sensor) {
  ++stats_.queries;
  // mutate(): the age-out pruning below changes the track, so the entry
  // must re-enter the next delta frame.
  SensorTrack* found = tracks_.mutate(SensorKey{sensor});
  if (found == nullptr) return std::nullopt;
  SensorTrack& track = *found;
  const util::SimTime now = bus_.scheduler().now();

  // Drop observations that have aged out since the last touch.
  const util::SimTime cutoff = now - config_.observation_window;
  while (!track.observations.empty() && track.observations.front().at < cutoff) {
    track.observations.pop_front();
  }

  std::optional<LocationEstimate> inferred = infer(track);

  // A fresh hint competes with inference; a stale one is ignored.
  std::optional<LocationEstimate> hinted;
  if (track.hint && now - track.hint->at <= config_.hint_ttl) {
    const double age_frac =
        static_cast<double>((now - track.hint->at).ns) / static_cast<double>(config_.hint_ttl.ns);
    hinted = LocationEstimate{track.hint->position, track.hint->radius_m,
                              std::max(0.0, 1.0 - age_frac), now, LocationEstimate::Source::kHint};
  }

  std::optional<LocationEstimate> best;
  if (inferred && hinted) {
    // Fuse: confidence-weighted blend of position, tightest radius wins.
    const double wi = inferred->confidence;
    const double wh = hinted->confidence;
    const double total = wi + wh;
    if (total > 0) {
      LocationEstimate fused;
      fused.position = inferred->position * (wi / total) + hinted->position * (wh / total);
      fused.radius_m = std::min(inferred->radius_m, hinted->radius_m);
      fused.confidence = std::max(wi, wh);
      fused.computed_at = now;
      fused.source = LocationEstimate::Source::kFused;
      best = fused;
    }
  } else if (inferred) {
    best = inferred;
  } else if (hinted) {
    best = hinted;
  }

  if (best) ++stats_.queries_answered;
  return best;
}

std::optional<LocationEstimate> LocationService::infer(SensorTrack& track) {
  if (track.observations.empty()) return std::nullopt;

  // RSSI-weighted centroid over the receivers that heard the sensor.
  // Weight is linear received power: w = 10^(rssi/10).
  double wsum = 0.0;
  sim::Vec2 centroid{};
  std::vector<wireless::ReceiverId> distinct;
  for (const Observation& obs : track.observations) {
    const auto rx = receivers_.find(obs.receiver);
    if (rx == receivers_.end()) continue;
    const double w = std::pow(10.0, obs.rssi_dbm / 10.0);
    centroid = centroid + rx->second.position * w;
    wsum += w;
    if (std::find(distinct.begin(), distinct.end(), obs.receiver) == distinct.end()) {
      distinct.push_back(obs.receiver);
    }
  }
  if (wsum <= 0.0 || distinct.empty()) return std::nullopt;
  centroid = centroid * (1.0 / wsum);

  // Uncertainty: weighted spread of contributing receivers, floored at
  // the base radius (one receiver alone only says "somewhere in my zone").
  double spread = 0.0;
  for (const Observation& obs : track.observations) {
    const auto rx = receivers_.find(obs.receiver);
    if (rx == receivers_.end()) continue;
    const double w = std::pow(10.0, obs.rssi_dbm / 10.0);
    spread += w * sim::distance(rx->second.position, centroid);
  }
  spread /= wsum;

  LocationEstimate est;
  est.position = centroid;
  est.radius_m = std::max(config_.base_radius_m, spread);
  est.confidence = std::min(1.0, static_cast<double>(distinct.size()) /
                                     static_cast<double>(config_.full_confidence_receivers));
  est.computed_at = track.observations.back().at;
  est.source = LocationEstimate::Source::kInferred;
  return est;
}

void LocationService::encode_track(util::ByteWriter& w, SensorId sensor,
                                   const SensorTrack& track) {
  w.u32(sensor);
  w.u32(static_cast<std::uint32_t>(track.observations.size()));
  for (const Observation& obs : track.observations) {
    w.u32(obs.receiver);
    w.f64(obs.rssi_dbm);
    w.i64(obs.at.ns);
  }
  w.u8(track.hint ? 1 : 0);
  if (track.hint) {
    w.f64(track.hint->position.x);
    w.f64(track.hint->position.y);
    w.f64(track.hint->radius_m);
    w.i64(track.hint->at.ns);
  }
}

LocationService::SensorTrack LocationService::decode_track(util::ByteReader& r) {
  SensorTrack track;
  const std::uint32_t obs_count = r.u32();
  for (std::uint32_t j = 0; j < obs_count && r.ok(); ++j) {
    Observation obs{};
    obs.receiver = r.u32();
    obs.rssi_dbm = r.f64();
    obs.at = util::SimTime{r.i64()};
    track.observations.push_back(obs);
  }
  if (r.u8() != 0) {
    HintRecord hint{};
    hint.position.x = r.f64();
    hint.position.y = r.f64();
    hint.radius_m = r.f64();
    hint.at = util::SimTime{r.i64()};
    track.hint = hint;
  }
  return track;
}

util::Bytes LocationService::capture_state() const {
  util::ByteWriter w(16 + tracks_.size() * 64);
  w.u32(static_cast<std::uint32_t>(tracks_.size()));
  tracks_.for_each_sorted([&w](SensorKey key, const SensorTrack& track) {
    encode_track(w, key.sensor(), track);
  });
  return std::move(w).take();
}

util::Bytes LocationService::capture_full() {
  util::Bytes state = capture_state();
  tracks_.clear_dirty();
  return state;
}

util::Bytes LocationService::capture_delta() {
  const std::vector<std::uint32_t> removed = tracks_.removed_keys();
  const std::vector<std::uint32_t> dirty = tracks_.dirty_keys();
  util::ByteWriter w(16 + removed.size() * 4 + dirty.size() * 64);
  w.u32(static_cast<std::uint32_t>(removed.size()));
  for (const std::uint32_t key : removed) w.u32(key);
  w.u32(static_cast<std::uint32_t>(dirty.size()));
  for (const std::uint32_t raw : dirty) {
    const SensorKey key = SensorKey::from_packed(raw);
    encode_track(w, key.sensor(), *tracks_.find(key));
  }
  tracks_.clear_dirty();
  return std::move(w).take();
}

util::Status<util::DecodeError> LocationService::apply_delta(util::BytesView delta) {
  util::ByteReader r(delta);
  std::vector<SensorKey> removed;
  const std::uint32_t removed_count = r.u32();
  for (std::uint32_t i = 0; i < removed_count && r.ok(); ++i) {
    removed.push_back(SensorKey::from_packed(r.u32()));
  }
  std::vector<std::pair<SensorId, SensorTrack>> upserts;
  const std::uint32_t dirty_count = r.u32();
  for (std::uint32_t i = 0; i < dirty_count && r.ok(); ++i) {
    const SensorId sensor = r.u32();
    SensorTrack track = decode_track(r);
    if (r.ok()) upserts.emplace_back(sensor, std::move(track));
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  for (const SensorKey key : removed) tracks_.erase(key);
  for (auto& [sensor, track] : upserts) tracks_.upsert(SensorKey{sensor}) = std::move(track);
  tracks_.clear_dirty();
  return {};
}

util::Status<util::DecodeError> LocationService::restore_state(util::BytesView state) {
  util::ByteReader r(state);
  std::vector<std::pair<SensorId, SensorTrack>> parsed;
  const std::uint32_t declared = r.u32();
  for (std::uint32_t i = 0; i < declared && r.ok(); ++i) {
    const SensorId sensor = r.u32();
    SensorTrack track = decode_track(r);
    if (r.ok()) parsed.emplace_back(sensor, std::move(track));
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  tracks_.clear();
  for (auto& [sensor, track] : parsed) tracks_.upsert(SensorKey{sensor}) = std::move(track);
  tracks_.clear_dirty();
  return {};
}

void LocationService::reset_state() {
  tracks_.clear();
  receivers_.clear();
}

void LocationService::on_envelope(net::Envelope envelope) {
  if (envelope.type != kLocationHint) return;
  util::ByteReader r(envelope.payload);
  const ConsumerToken token = r.u64();
  if (!r.ok() || !auth_.verify(token)) {
    ++stats_.hints_rejected;
    return;
  }
  const util::BytesView rest = util::BytesView(envelope.payload).subspan(r.consumed());
  const auto decoded = decode_location_hint(rest);
  if (!decoded.ok()) {
    ++stats_.hints_rejected;
    return;
  }
  hint(decoded.value(), bus_.scheduler().now());
}

}  // namespace garnet::core
