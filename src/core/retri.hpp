// RETRI baseline: Random, Ephemeral TRansaction Identifiers.
//
// Elson & Estrin (ICDCS-21) cut transmission energy by replacing large
// predefined sensor/stream identifiers with small random per-transaction
// ids. Garnet's §7 argues the ephemeral ids are inappropriate for its
// model "because Garnet depends on unique consistent stream IDs". This
// module implements the RETRI scheme so experiment E7 can measure the
// actual trade: header bits saved per message versus the probability that
// two concurrent transactions collide and their data is misattributed.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "util/rng.hpp"

namespace garnet::core {

struct RetriStats {
  std::uint64_t begun = 0;
  std::uint64_t collisions = 0;  ///< begin() drew an id already active.
};

class RetriAllocator {
 public:
  /// `id_bits` in [1, 32]: identifier width each message would carry.
  RetriAllocator(unsigned id_bits, util::Rng rng);

  /// Opens a transaction with a random id. A collision with an active
  /// transaction is counted (the receiver would merge two transactions)
  /// but the id is still returned — that is exactly the failure mode.
  [[nodiscard]] std::uint32_t begin();

  /// Closes a transaction; ignores unknown ids (the colliding twin
  /// already closed it).
  void end(std::uint32_t id);

  [[nodiscard]] unsigned id_bits() const noexcept { return id_bits_; }
  [[nodiscard]] std::size_t active() const noexcept { return active_.size(); }
  [[nodiscard]] const RetriStats& stats() const noexcept { return stats_; }

  /// Birthday-style analytic collision probability for one new
  /// transaction against `active` concurrent ones.
  [[nodiscard]] static double expected_collision_probability(unsigned id_bits,
                                                             std::size_t active);

 private:
  unsigned id_bits_;
  std::uint32_t mask_;
  util::Rng rng_;
  std::unordered_set<std::uint32_t> active_;
  RetriStats stats_;
};

}  // namespace garnet::core
