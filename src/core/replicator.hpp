// Message Replicator (paper §4.2).
//
// "The Message Replicator determines the expected location area of the
// target sensor. Based on the location area, the appropriate set of
// Transmitters broadcast the request, whereupon it may be received by the
// sensor node."
//
// With a location estimate, only transmitters whose range can plausibly
// reach the estimate (distance <= tx range + uncertainty radius) are
// activated; without one, the request floods every transmitter. The
// difference in transmitter activations is exactly the transmission-cost
// saving the paper attributes to inferred location (§5) — experiment E4.
#pragma once

#include "core/location.hpp"
#include "obs/metrics.hpp"
#include "wireless/radio.hpp"

namespace garnet::core {

/// Targeting counters. Surfaced as garnet.replicator.* via set_metrics —
/// there is no accessor; tests read registry snapshots.
struct ReplicatorStats {
  std::uint64_t sends = 0;
  std::uint64_t targeted_sends = 0;    ///< Had a usable location estimate.
  std::uint64_t flooded_sends = 0;     ///< No estimate; all transmitters.
  std::uint64_t transmitter_activations = 0;
  std::uint64_t copies_scheduled = 0;  ///< Sensor-side deliveries scheduled.
};

class MessageReplicator {
 public:
  struct Config {
    /// Estimates below this confidence are treated as absent.
    double min_confidence = 0.15;
    /// Extra slack added to the uncertainty radius when selecting
    /// transmitters (covers sensor movement since the estimate).
    double margin_m = 25.0;
  };

  MessageReplicator(wireless::RadioMedium& medium, LocationService& location, Config config);
  ~MessageReplicator();

  MessageReplicator(const MessageReplicator&) = delete;
  MessageReplicator& operator=(const MessageReplicator&) = delete;

  struct SendReport {
    bool targeted = false;
    std::size_t transmitters_used = 0;
    std::size_t copies_scheduled = 0;
  };

  /// Broadcasts `frame` toward `target` through the chosen transmitters.
  SendReport send(SensorId target, const util::Bytes& frame);

  /// Registers a pull collector exposing the garnet.replicator.sends/
  /// targeted_sends/flooded_sends/transmitter_activations/
  /// copies_scheduled counters. Deregistered automatically on destruction
  /// (the registry must outlive the replicator).
  void set_metrics(obs::MetricsRegistry& registry);

 private:
  wireless::RadioMedium& medium_;
  LocationService& location_;
  Config config_;
  ReplicatorStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace garnet::core
