// Super Coordinator (paper §4.2, §6).
//
// "Suitably sophisticated consumer processes may forward state-change
// details to the Super Coordinator, which eventually amasses a global
// view of these consumers. In response to (or in anticipation of) global
// consumer states, the Super Coordinator may invoke policy changes in the
// strategy used by the Resource Manager."
//
// The coordinator's value is *prediction* (§6.1): from observed state
// transitions it learns a per-consumer first-order transition model; when
// a consumer enters a state whose likely successor carries a registered
// anticipation rule, the coordinator pre-arms the Resource Manager so the
// actuation request the consumer is about to make skips the evaluation
// latency. "This provides opportunities for user-defined policies to be
// enacted, leading to a policy-driven middleware infrastructure" — both
// the anticipation rules and the policy hook are user-supplied.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/auth.hpp"
#include "core/resource.hpp"
#include "core/wire_types.hpp"
#include "net/rpc.hpp"

namespace garnet::core {

/// Coordinator's view of one reporting consumer.
struct ConsumerView {
  std::uint32_t consumer_id = 0;
  std::string name;
  ConsumerToken token = 0;
  std::uint32_t state = 0;
  util::SimTime since;
  std::uint64_t changes = 0;
};

/// The "approximate overview of key consumers" (paper §6).
using GlobalView = std::unordered_map<std::uint32_t, ConsumerView>;

/// User-defined anticipation: when `consumer name` is predicted to enter
/// `state`, pre-arm this actuation with the Resource Manager.
struct AnticipationRule {
  std::string consumer_name;  ///< Empty matches any consumer.
  std::uint32_t state = 0;
  StreamId target;
  UpdateAction action = UpdateAction::kSetIntervalMs;
  std::uint32_t value = 0;
};

struct CoordinatorStats {
  std::uint64_t reports = 0;
  std::uint64_t rejected_reports = 0;  ///< Bad token / untrusted.
  std::uint64_t predictions = 0;       ///< Next-state predictions made.
  std::uint64_t prearms_issued = 0;
  std::uint64_t policy_changes = 0;
};

class SuperCoordinator {
 public:
  static constexpr const char* kEndpointName = "garnet.coordinator";

  struct Config {
    /// A transition needs this many observations before it predicts.
    std::uint32_t min_observations = 3;
    /// ...and this share of all departures from the source state.
    double min_probability = 0.5;
    /// Untrusted consumers may not feed the global view.
    TrustLevel min_trust = TrustLevel::kStandard;
  };

  SuperCoordinator(net::MessageBus& bus, AuthService& auth, ResourceManager& resource,
                   Config config);

  /// Registers a user anticipation rule.
  void add_rule(AnticipationRule rule);

  /// Optional global policy hook: examined after every report; returning
  /// a policy switches the Resource Manager's conflict strategy.
  using PolicyHook = std::function<std::optional<ConflictPolicy>(const GlobalView&)>;
  void set_policy_hook(PolicyHook hook) { policy_hook_ = std::move(hook); }

  /// Direct-call report path (the bus fallback decodes into this).
  void report_state(ConsumerToken token, std::uint32_t state);

  [[nodiscard]] const GlobalView& view() const noexcept { return view_; }
  [[nodiscard]] const CoordinatorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

  /// Learned transition counts for one consumer (tests/diagnostics).
  [[nodiscard]] std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
  transition_counts(std::uint32_t consumer_id) const;

 private:
  struct TransitionModel {
    // (from, to) -> count, plus per-from totals.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> counts;
    std::map<std::uint32_t, std::uint32_t> from_totals;
  };

  void on_envelope(net::Envelope envelope);
  void anticipate(const ConsumerView& consumer);

  net::MessageBus& bus_;
  AuthService& auth_;
  ResourceManager& resource_;
  Config config_;
  net::RpcNode node_;
  GlobalView view_;
  std::unordered_map<std::uint32_t, TransitionModel> models_;
  std::vector<AnticipationRule> rules_;
  PolicyHook policy_hook_;
  CoordinatorStats stats_;
};

}  // namespace garnet::core
