#include "core/actuation.hpp"

#include "util/log.hpp"

namespace garnet::core {

ActuationService::ActuationService(net::MessageBus& bus, AuthService& auth,
                                   MessageReplicator& replicator, Config config)
    : bus_(bus),
      auth_(auth),
      replicator_(replicator),
      config_(config),
      node_(bus, kEndpointName) {
  node_.expose_async(kRequestUpdate, [this](net::Address, util::BytesView args,
                                            net::RpcResponder respond) {
    util::ByteReader r(args);
    const ConsumerToken token = r.u64();
    const StreamId target = StreamId::from_packed(r.u32());
    const auto action = static_cast<UpdateAction>(r.u8());
    const std::uint32_t value = r.u32();
    if (!r.ok()) {
      respond(util::Err{net::RpcError::kRemoteFailure});
      return;
    }

    // The response is deferred until the Resource Manager's deliberation
    // resolves (or immediately, if the Super Coordinator pre-armed it).
    request_update(token, target, action, value,
                   [respond = std::move(respond)](Outcome outcome) {
                     util::ByteWriter w(9);
                     w.u32(outcome.request_id);
                     w.u8(static_cast<std::uint8_t>(outcome.decision.admission));
                     w.u32(outcome.decision.effective_value);
                     respond(std::move(w).take());
                   });
  });
}

void ActuationService::request_update(ConsumerToken token, StreamId target, UpdateAction action,
                                      std::uint32_t value,
                                      std::function<void(Outcome)> on_outcome) {
  ++stats_.requests;

  const auto manager = bus_.lookup(ResourceManager::kEndpointName);
  if (!manager) {
    deny_unreachable(std::move(on_outcome));
    return;
  }

  util::ByteWriter w(17);
  w.u64(token);
  w.u32(target.packed());
  w.u8(static_cast<std::uint8_t>(action));
  w.u32(value);

  // Approval execution is guarded by the callee's at-most-once cache, so
  // a retried request never deliberates (or records a demand) twice.
  net::CallOptions options;
  options.timeout = config_.approval_timeout;
  options.retries = config_.approval_retries;
  options.backoff = config_.approval_backoff;
  node_.call(*manager, ResourceManager::kEvaluate, std::move(w).take(), options,
             [this, token, target, action, on_outcome = std::move(on_outcome)](
                 net::RpcResult result) mutable {
               if (!result.ok()) {
                 deny_unreachable(std::move(on_outcome));
                 return;
               }
               util::ByteReader r(result.value());
               Decision decision;
               decision.admission = static_cast<Admission>(r.u8());
               decision.effective_value = r.u32();
               Outcome outcome{0, decision};
               if (decision.admission == Admission::kDenied) {
                 ++stats_.denied;
               } else {
                 outcome.request_id = launch(token, target, action, decision.effective_value);
               }
               if (on_outcome) on_outcome(outcome);
             });
}

void ActuationService::deny_unreachable(std::function<void(Outcome)> on_outcome) {
  ++stats_.approval_unreachable;
  ++stats_.denied;
  util::log_warn("actuation", "resource manager unreachable; denying request at t=%.3fs",
                 bus_.scheduler().now().to_seconds());
  if (on_outcome) {
    on_outcome(Outcome{0, Decision{Admission::kDenied, 0, "resource manager unreachable"}});
  }
}

std::uint32_t ActuationService::launch(ConsumerToken, StreamId target, UpdateAction action,
                                       std::uint32_t effective_value) {
  const std::uint32_t request_id = next_request_id_++;

  StreamUpdateRequest request;
  request.request_id = request_id;
  request.target = target;
  request.action = action;
  request.value = effective_value;
  request.issued_at = bus_.scheduler().now();  // the paper's timestamping step

  PendingRequest pending;
  pending.sensor = target.sensor;
  pending.issued_at = request.issued_at;
  pending.retries_left = config_.max_retries;
  pending.frame = encode(request);  // the paper's checksumming step (CRC trailer)
  pending.trace_key = obs::TraceKey{target.packed(), static_cast<std::uint16_t>(request_id),
                                    obs::TraceKey::kActuation};
  if (tracer_ != nullptr) {
    tracer_->begin_span(pending.trace_key, "actuation", pending.issued_at.ns);
  }
  pending_.emplace(request_id, std::move(pending));

  transmit(request_id);
  return request_id;
}

void ActuationService::transmit(std::uint32_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest& pending = it->second;

  ++stats_.sent;
  replicator_.send(pending.sensor, pending.frame);
  pending.timer = bus_.scheduler().schedule_after(config_.ack_timeout,
                                                  [this, request_id] { on_timeout(request_id); });
}

void ActuationService::on_timeout(std::uint32_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest& pending = it->second;

  if (pending.retries_left > 0) {
    --pending.retries_left;
    ++stats_.retries;
    transmit(request_id);
    return;
  }

  ++stats_.expired;
  const util::Duration latency = bus_.scheduler().now() - pending.issued_at;
  if (tracer_ != nullptr) tracer_->discard(pending.trace_key);
  pending_.erase(it);
  if (completion_observer_) completion_observer_(request_id, false, latency);
}

void ActuationService::on_ack(std::uint32_t request_id, SensorId sensor,
                              util::SimTime observed_at) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // duplicate or unsolicited ack
  if (it->second.sensor != sensor) return;

  ++stats_.acked;
  const util::Duration latency = observed_at - it->second.issued_at;
  ack_latency_.add(latency);
  bus_.scheduler().cancel(it->second.timer);
  if (tracer_ != nullptr) {
    tracer_->end_span(it->second.trace_key, "actuation", observed_at.ns);
    tracer_->complete(it->second.trace_key, observed_at.ns);
  }
  pending_.erase(it);
  if (completion_observer_) completion_observer_(request_id, true, latency);
}

}  // namespace garnet::core
