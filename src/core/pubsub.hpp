// Publish/subscribe plumbing: stream patterns and the subscription table.
//
// "Consumer processes use a publish/subscribe mechanism to access data
// streams, which permits un-configured data streams to be detected"
// (paper §4.2). The Dispatching Service consults this table for every
// filtered message; a message matching no subscription is "unclaimed" and
// goes to the Orphanage.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/message.hpp"
#include "net/bus.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace garnet::core {

/// Per-subscription quality-of-service options (paper §1 lists
/// "mechanisms to support quality of service" among the required
/// delivery mechanisms; "real-time ... is context dependent", so the
/// bounds are per-consumer, not global).
struct SubscribeOptions {
  /// Rate cap: suppress deliveries arriving sooner than this after the
  /// previous delivery on this subscription. 0 = deliver everything.
  /// This is consumer-side demand shaping — a slow dashboard need not
  /// receive a 100Hz stream it would discard.
  std::uint32_t min_interval_ms = 0;
  /// Staleness bound: drop messages older than this (measured from the
  /// instant the fixed network first heard them). 0 = no bound. A
  /// context where only fresh data is actionable (actuation loops)
  /// prefers a gap to a late sample.
  std::uint32_t max_age_ms = 0;
};

/// What a subscription matches. Absent fields are wildcards:
///   exact(id)        — one specific stream,
///   all_of(sensor)   — every internal stream of one sensor,
///   everything()     — firehose (e.g. monitoring consumers).
struct StreamPattern {
  std::optional<SensorId> sensor;
  std::optional<InternalStreamId> stream;

  [[nodiscard]] static StreamPattern exact(StreamId id) { return {id.sensor, id.stream}; }
  [[nodiscard]] static StreamPattern all_of(SensorId sensor) { return {sensor, std::nullopt}; }
  [[nodiscard]] static StreamPattern everything() { return {std::nullopt, std::nullopt}; }

  [[nodiscard]] bool matches(StreamId id) const {
    return (!sensor || *sensor == id.sensor) && (!stream || *stream == id.stream);
  }
  [[nodiscard]] bool is_exact() const { return sensor && stream; }

  /// Wire form: sensor 0xFFFFFFFF = any, stream 0x100 = any.
  [[nodiscard]] std::uint64_t packed() const;
  [[nodiscard]] static StreamPattern from_packed(std::uint64_t v);
};

using SubscriptionId = std::uint64_t;

struct QosStats {
  std::uint64_t suppressed_rate = 0;   ///< Copies withheld by min_interval.
  std::uint64_t suppressed_stale = 0;  ///< Copies withheld by max_age.
};

class SubscriptionTable {
 public:
  SubscriptionId add(net::Address consumer, StreamPattern pattern, SubscribeOptions qos = {});

  /// Returns false if the id was unknown.
  bool remove(SubscriptionId id);

  /// Removes every subscription held by `consumer`; returns how many.
  std::size_t remove_consumer(net::Address consumer);

  /// Timing context for QoS decisions on one delivery.
  struct DeliveryContext {
    util::SimTime now;
    util::SimTime first_heard;
  };

  /// Appends the addresses owed this message into `out`, deduplicated (a
  /// consumer holding an exact and a wildcard match gets one copy), after
  /// applying each subscription's QoS options. Non-const: rate caps
  /// track the last delivery per subscription.
  void collect(StreamId id, const DeliveryContext& context, std::vector<net::Address>& out);

  /// QoS-blind form (tests, anyone_wants-style probing).
  void collect(StreamId id, std::vector<net::Address>& out);

  /// Byte-deterministic snapshot of every subscription (sorted by id)
  /// plus the id allocator, appended to `w` for service checkpoints.
  /// Rate-cap state (`last_delivery`) is transient and not captured; a
  /// restored subscription may deliver one message early.
  void capture(util::ByteWriter& w) const;

  /// Rebuilds the table from capture() bytes at `r`'s cursor. Parses
  /// fully before committing — on failure the table is untouched.
  [[nodiscard]] util::Status<util::DecodeError> restore(util::ByteReader& r);

  /// Re-inserts one subscription under its original id (checkpoint
  /// restore and op-log replay), bumping the allocator past it. A
  /// duplicate id is ignored, making replay idempotent.
  void restore_entry(SubscriptionId id, net::Address consumer, StreamPattern pattern,
                     SubscribeOptions qos);

  [[nodiscard]] bool anyone_wants(StreamId id) const;
  /// True when `consumer` holds any subscription (exact or wildcard)
  /// matching `id`. QoS-blind; used by quarantine resume to decide
  /// whether a stashed message is still owed to the consumer.
  [[nodiscard]] bool subscribes(net::Address consumer, StreamId id) const;
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const QosStats& qos_stats() const noexcept { return qos_stats_; }

 private:
  struct Entry {
    SubscriptionId id;
    net::Address consumer;
    StreamPattern pattern;
    SubscribeOptions qos;
    util::SimTime last_delivery{-1};  ///< -1 = never delivered.
  };

  /// True if this entry's QoS admits the delivery; updates rate state.
  bool qos_admits(Entry& entry, const DeliveryContext& context);

  // Exact subscriptions indexed by stream for O(1) fan-out lookup;
  // wildcard subscriptions scanned linearly (they are few in practice —
  // the ablation in bench_dispatch quantifies this choice). A reverse
  // index keeps unsubscribe O(bucket) instead of O(table).
  std::unordered_map<StreamId, std::vector<Entry>> exact_;
  std::vector<Entry> wildcards_;
  std::unordered_map<SubscriptionId, std::optional<StreamId>> index_;  // id -> bucket
  SubscriptionId next_id_ = 1;
  std::size_t count_ = 0;
  QosStats qos_stats_;
};

}  // namespace garnet::core
