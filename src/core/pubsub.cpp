#include "core/pubsub.hpp"

#include <algorithm>

namespace garnet::core {

std::uint64_t StreamPattern::packed() const {
  const std::uint64_t s = sensor ? *sensor : 0xFFFFFFFFull;
  const std::uint64_t t = stream ? *stream : 0x100ull;
  return (s << 16) | t;
}

StreamPattern StreamPattern::from_packed(std::uint64_t v) {
  StreamPattern p;
  const auto s = static_cast<std::uint32_t>(v >> 16);
  const auto t = static_cast<std::uint16_t>(v & 0xFFFF);
  if (s != 0xFFFFFFFFu) p.sensor = s;
  if (t != 0x100u) p.stream = static_cast<InternalStreamId>(t);
  return p;
}

SubscriptionId SubscriptionTable::add(net::Address consumer, StreamPattern pattern,
                                      SubscribeOptions qos) {
  const SubscriptionId id = next_id_++;
  Entry entry{id, consumer, pattern, qos, util::SimTime{-1}};
  if (pattern.is_exact()) {
    const StreamId stream{*pattern.sensor, *pattern.stream};
    exact_[stream].push_back(entry);
    index_.emplace(id, stream);
  } else {
    wildcards_.push_back(entry);
    index_.emplace(id, std::nullopt);
  }
  ++count_;
  return id;
}

bool SubscriptionTable::remove(SubscriptionId id) {
  const auto where = index_.find(id);
  if (where == index_.end()) return false;

  if (where->second) {
    const auto bucket = exact_.find(*where->second);
    if (bucket != exact_.end()) {
      std::erase_if(bucket->second, [id](const Entry& e) { return e.id == id; });
      if (bucket->second.empty()) exact_.erase(bucket);
    }
  } else {
    std::erase_if(wildcards_, [id](const Entry& e) { return e.id == id; });
  }
  index_.erase(where);
  --count_;
  return true;
}

std::size_t SubscriptionTable::remove_consumer(net::Address consumer) {
  std::size_t removed = 0;
  for (auto& [stream, entries] : exact_) {
    for (const Entry& e : entries) {
      if (e.consumer == consumer) index_.erase(e.id);
    }
    const auto before = entries.size();
    std::erase_if(entries, [consumer](const Entry& e) { return e.consumer == consumer; });
    removed += before - entries.size();
  }
  for (const Entry& e : wildcards_) {
    if (e.consumer == consumer) index_.erase(e.id);
  }
  const auto before = wildcards_.size();
  std::erase_if(wildcards_, [consumer](const Entry& e) { return e.consumer == consumer; });
  removed += before - wildcards_.size();
  count_ -= removed;
  return removed;
}

bool SubscriptionTable::qos_admits(Entry& entry, const DeliveryContext& context) {
  if (entry.qos.max_age_ms != 0) {
    const auto age = context.now - context.first_heard;
    if (age > util::Duration::millis(entry.qos.max_age_ms)) {
      ++qos_stats_.suppressed_stale;
      return false;
    }
  }
  if (entry.qos.min_interval_ms != 0 && entry.last_delivery.ns >= 0) {
    const auto since = context.now - entry.last_delivery;
    if (since < util::Duration::millis(entry.qos.min_interval_ms)) {
      ++qos_stats_.suppressed_rate;
      return false;
    }
  }
  entry.last_delivery = context.now;
  return true;
}

void SubscriptionTable::collect(StreamId id, const DeliveryContext& context,
                                std::vector<net::Address>& out) {
  const std::size_t start = out.size();
  if (const auto it = exact_.find(id); it != exact_.end()) {
    for (Entry& e : it->second) {
      if (qos_admits(e, context)) out.push_back(e.consumer);
    }
  }
  for (Entry& e : wildcards_) {
    if (e.pattern.matches(id) && qos_admits(e, context)) out.push_back(e.consumer);
  }
  // Deduplicate newly appended addresses (consumer may match twice).
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  out.erase(std::unique(out.begin() + static_cast<std::ptrdiff_t>(start), out.end()), out.end());
}

void SubscriptionTable::collect(StreamId id, std::vector<net::Address>& out) {
  const std::size_t start = out.size();
  if (const auto it = exact_.find(id); it != exact_.end()) {
    for (const Entry& e : it->second) out.push_back(e.consumer);
  }
  for (const Entry& e : wildcards_) {
    if (e.pattern.matches(id)) out.push_back(e.consumer);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  out.erase(std::unique(out.begin() + static_cast<std::ptrdiff_t>(start), out.end()), out.end());
}

void SubscriptionTable::capture(util::ByteWriter& w) const {
  std::vector<const Entry*> entries;
  entries.reserve(count_);
  for (const auto& [stream, bucket] : exact_) {
    for (const Entry& e : bucket) entries.push_back(&e);
  }
  for (const Entry& e : wildcards_) entries.push_back(&e);
  // Sorted by id so two replicas capture byte-identical tables.
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });

  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry* e : entries) {
    w.u64(e->id);
    w.u32(e->consumer.value);
    w.u64(e->pattern.packed());
    w.u32(e->qos.min_interval_ms);
    w.u32(e->qos.max_age_ms);
  }
  w.u64(next_id_);
}

util::Status<util::DecodeError> SubscriptionTable::restore(util::ByteReader& r) {
  struct Parsed {
    SubscriptionId id;
    net::Address consumer;
    StreamPattern pattern;
    SubscribeOptions qos;
  };
  const std::uint32_t declared = r.u32();
  std::vector<Parsed> parsed;
  for (std::uint32_t i = 0; i < declared && r.ok(); ++i) {
    Parsed p;
    p.id = r.u64();
    p.consumer = net::Address{r.u32()};
    p.pattern = StreamPattern::from_packed(r.u64());
    p.qos.min_interval_ms = r.u32();
    p.qos.max_age_ms = r.u32();
    if (r.ok()) parsed.push_back(p);
  }
  const std::uint64_t next_id = r.u64();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};

  exact_.clear();
  wildcards_.clear();
  index_.clear();
  count_ = 0;
  next_id_ = 1;
  for (const Parsed& p : parsed) restore_entry(p.id, p.consumer, p.pattern, p.qos);
  if (next_id > next_id_) next_id_ = next_id;
  return {};
}

void SubscriptionTable::restore_entry(SubscriptionId id, net::Address consumer,
                                      StreamPattern pattern, SubscribeOptions qos) {
  if (index_.contains(id)) return;
  Entry entry{id, consumer, pattern, qos, util::SimTime{-1}};
  if (pattern.is_exact()) {
    const StreamId stream{*pattern.sensor, *pattern.stream};
    exact_[stream].push_back(entry);
    index_.emplace(id, stream);
  } else {
    wildcards_.push_back(entry);
    index_.emplace(id, std::nullopt);
  }
  ++count_;
  if (id >= next_id_) next_id_ = id + 1;
}

bool SubscriptionTable::anyone_wants(StreamId id) const {
  if (const auto it = exact_.find(id); it != exact_.end() && !it->second.empty()) return true;
  return std::any_of(wildcards_.begin(), wildcards_.end(),
                     [id](const Entry& e) { return e.pattern.matches(id); });
}

bool SubscriptionTable::subscribes(net::Address consumer, StreamId id) const {
  if (const auto it = exact_.find(id); it != exact_.end()) {
    for (const Entry& entry : it->second) {
      if (entry.consumer == consumer) return true;
    }
  }
  return std::any_of(wildcards_.begin(), wildcards_.end(), [&](const Entry& entry) {
    return entry.consumer == consumer && entry.pattern.matches(id);
  });
}

std::size_t SubscriptionTable::size() const noexcept { return count_; }

}  // namespace garnet::core
