#include "core/wire_types.hpp"

namespace garnet::core {

Delivery DeliveryView::to_owned() const {
  return Delivery{message.to_owned(), first_heard};
}

util::Bytes encode(const Delivery& delivery) {
  util::ByteWriter w(8 + delivery.message.wire_size());
  w.i64(delivery.first_heard.ns);
  encode_into(w, as_view(delivery.message));
  return std::move(w).take();
}

util::Result<Delivery, util::DecodeError> decode_delivery(util::BytesView wire) {
  util::ByteReader r(wire);
  Delivery delivery;
  delivery.first_heard.ns = r.i64();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  auto message = decode(wire.subspan(r.consumed()));
  if (!message.ok()) return util::Err{message.error()};
  delivery.message = std::move(message).value();
  return delivery;
}

util::SharedBytes encode_delivery(const DataMessageView& message, util::SimTime first_heard) {
  util::ByteWriter w(8 + message.wire_size());
  w.i64(first_heard.ns);
  encode_into(w, message);
  return util::take_shared(std::move(w));
}

util::Result<DeliveryView, util::DecodeError> decode_delivery_view(util::SharedBytes wire,
                                                                   ChecksumPolicy policy) {
  util::ByteReader r(wire);
  DeliveryView delivery;
  delivery.first_heard.ns = r.i64();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  auto message = decode_view(wire.span().subspan(r.consumed()), policy);
  if (!message.ok()) return util::Err{message.error()};
  delivery.message = message.value();
  delivery.wire = std::move(wire);
  return delivery;
}

util::Bytes encode(const StateChange& change) {
  util::ByteWriter w(12);
  w.u64(change.consumer_token);
  w.u32(change.state);
  return std::move(w).take();
}

util::Result<StateChange, util::DecodeError> decode_state_change(util::BytesView wire) {
  util::ByteReader r(wire);
  StateChange change;
  change.consumer_token = r.u64();
  change.state = r.u32();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  return change;
}

util::Bytes encode(const LocationHint& hint) {
  util::ByteWriter w(27);
  w.u24(hint.sensor);
  w.f64(hint.x);
  w.f64(hint.y);
  w.f64(hint.radius_m);
  return std::move(w).take();
}

util::Result<LocationHint, util::DecodeError> decode_location_hint(util::BytesView wire) {
  util::ByteReader r(wire);
  LocationHint hint;
  hint.sensor = r.u24();
  hint.x = r.f64();
  hint.y = r.f64();
  hint.radius_m = r.f64();
  if (!r.ok()) return util::Err{util::DecodeError::kTruncated};
  return hint;
}

}  // namespace garnet::core
