// Consumer-process library.
//
// The application-facing half of Garnet: a Consumer owns a bus endpoint,
// subscribes to streams by pattern, receives deliveries, issues stream-
// update requests down the actuation path, reports its state to the Super
// Coordinator, supplies location hints, and can re-publish *derived*
// streams — the multi-level consumption the paper highlights ("each layer
// offers increasingly enhanced services to successive levels", §4.2).
//
// Consumers are mutually unaware: nothing here names another consumer,
// and all mediation happens inside the middleware services.
//
// Identity provisioning (AuthService registration) happens out-of-band
// through the Runtime facade, like an operator issuing credentials; the
// consumer then presents its token on every privileged interaction.
#pragma once

#include <functional>
#include <string>

#include "core/actuation.hpp"
#include "core/auth.hpp"
#include "core/catalog.hpp"
#include "core/dispatch.hpp"
#include "core/wire_types.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace garnet::core {

/// Outcomes of the consumer's control-plane RPCs under network faults:
/// each counter is a give-up after the per-call retry budget was spent.
/// The consumer degrades (callbacks fire with a failure) instead of
/// stalling. Surfaced as garnet.consumer.rpc_failures{op,consumer} via
/// set_metrics — there is no accessor.
struct ConsumerNetStats {
  std::uint64_t subscribe_failures = 0;
  std::uint64_t unsubscribe_failures = 0;
  std::uint64_t update_failures = 0;    ///< Actuation demands.
  std::uint64_t catalog_failures = 0;   ///< Discover / advertise / allocate.
};

class Consumer {
 public:
  /// `endpoint_name` must be unique on the bus (e.g. "consumer.flood-watch").
  Consumer(net::MessageBus& bus, std::string endpoint_name);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Installs the credentials issued by the operator (Runtime facade).
  void set_identity(const ConsumerIdentity& identity) { identity_ = identity; }
  [[nodiscard]] const ConsumerIdentity& identity() const noexcept { return identity_; }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

  /// Base reliability contract for every control-plane RPC this consumer
  /// issues (per-call idempotency is set by the operation). The default
  /// retries a few times with exponential backoff before degrading.
  void set_call_options(net::CallOptions options) { call_options_ = options; }
  [[nodiscard]] const net::CallOptions& call_options() const noexcept { return call_options_; }

  // --- data plane ---------------------------------------------------------

  /// Handlers receive a zero-copy view whose payload aliases the wire
  /// buffer (valid for the callback's duration; retain `wire` or call
  /// to_owned() to keep it). Lambdas written against `const Delivery&`
  /// still bind — the view converts implicitly, at the cost of a counted
  /// payload copy.
  using DataHandler = std::function<void(const DeliveryView&)>;
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }
  /// Current handler (utilities like StreamRecorder chain in front of it).
  [[nodiscard]] const DataHandler& data_handler() const noexcept { return data_handler_; }

  using SubscribeCallback = std::function<void(util::Result<SubscriptionId, net::RpcError>)>;
  void subscribe(StreamPattern pattern, SubscribeCallback on_done = {});
  /// Subscription with per-consumer QoS (rate cap / staleness bound).
  void subscribe(StreamPattern pattern, SubscribeOptions qos, SubscribeCallback on_done = {});
  void unsubscribe(SubscriptionId id);

  /// Publishes one message on a derived stream this consumer owns. The
  /// kDerived flag is set automatically; sequence numbers are managed per
  /// stream id.
  void publish_derived(StreamId id, util::Bytes payload, std::uint8_t extra_flags = 0);

  // --- control plane ------------------------------------------------------

  using UpdateCallback =
      std::function<void(std::uint32_t request_id, Admission admission, std::uint32_t effective)>;
  void request_update(StreamId target, UpdateAction action, std::uint32_t value,
                      UpdateCallback on_done = {});

  void report_state(std::uint32_t state);
  void send_location_hint(const LocationHint& hint);

  // --- discovery ------------------------------------------------------------

  struct DiscoveryQuery {
    std::optional<SensorId> sensor;
    std::string stream_class;  ///< Empty matches any class.
    bool include_unadvertised = true;
  };
  using DiscoverCallback = std::function<void(std::vector<StreamInfo>)>;
  /// Remote catalog discovery; the callback receives matching streams
  /// (empty on failure).
  void discover(const DiscoveryQuery& query, DiscoverCallback on_done);

  /// Advertises a stream this consumer produces (or curates).
  void advertise(StreamId id, const std::string& name, const std::string& stream_class);

  /// Allocates a fresh derived-stream id from the catalog.
  using AllocateCallback = std::function<void(util::Result<StreamId, net::RpcError>)>;
  void allocate_derived_stream(AllocateCallback on_done);

  // --- introspection ------------------------------------------------------

  /// Message traces: delivery to this consumer closes the "deliver" span
  /// and completes the journey (installed by Runtime::provision).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Registers a pull collector exposing this consumer's control-plane
  /// RPC give-ups as garnet.consumer.rpc_failures{op,consumer=<endpoint>}
  /// plus garnet.consumer.received and garnet.consumer.credit_acks.
  /// Deregistered automatically on destruction (the registry must
  /// outlive the consumer).
  void set_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  /// Radio-ingress to consumer-delivery latency distribution.
  [[nodiscard]] const util::Quantiles& delivery_latency() const noexcept {
    return delivery_latency_;
  }
  /// Delivery window granted by the dispatcher (0 until a subscribe
  /// reply arrives under flow control).
  [[nodiscard]] std::uint32_t credit_window() const noexcept { return credit_window_; }

 private:
  void on_envelope(net::Envelope envelope);
  [[nodiscard]] net::Address resolve(const char* name);
  /// The base policy with the operation's idempotency applied.
  [[nodiscard]] net::CallOptions options_for(bool idempotent) const;

  void collect(obs::SnapshotBuilder& out) const;
  void send_credit();

  net::MessageBus& bus_;
  std::string name_;  ///< Endpoint name; labels this consumer's metrics.
  net::RpcNode node_;
  ConsumerIdentity identity_;
  DataHandler data_handler_;
  net::CallOptions call_options_ = default_call_options();
  ConsumerNetStats net_stats_;
  std::unordered_map<std::uint32_t, SequenceNo> derived_sequences_;
  std::uint64_t received_ = 0;
  util::Quantiles delivery_latency_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t credit_window_ = 0;  ///< From the subscribe reply; 0 = no flow control.
  std::uint64_t credit_acks_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;

  [[nodiscard]] static net::CallOptions default_call_options() {
    net::CallOptions options;
    options.retries = 4;
    options.backoff = util::Duration::millis(2);
    options.max_backoff = util::Duration::millis(50);
    return options;
  }
};

}  // namespace garnet::core
