// Actuation Service (paper §4.2).
//
// The consumer-to-sensor control pathway: "First, approval is sought from
// the Resource Manager ... The Actuation Service next processes the
// request with timestamps, and checksums, before forwarding to the
// message replicator."
//
// This service owns the request lifecycle: admission via the Resource
// Manager, stamping + checksumming (core/stream_update codec), handing
// the frame to the Message Replicator, and matching the acknowledgement
// field that receive-capable sensors embed in their next data message
// (surfaced by the Dispatching Service). Unacknowledged requests are
// retransmitted a configurable number of times.
//
// Approval is a real RPC over the bus (as Figure 1 draws it), found by
// endpoint name — not a shared-memory call. When the Resource Manager is
// unreachable (partition, loss) the call is retried per Config and then
// the request is *denied*, surfacing in stats().approval_unreachable,
// rather than stalling the consumer forever.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/replicator.hpp"
#include "core/resource.hpp"
#include "core/stream_update.hpp"
#include "net/rpc.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace garnet::core {

struct ActuationStats {
  std::uint64_t requests = 0;
  std::uint64_t denied = 0;
  std::uint64_t sent = 0;          ///< Frames handed to the replicator (incl. retries).
  std::uint64_t retries = 0;
  std::uint64_t acked = 0;
  std::uint64_t expired = 0;       ///< Gave up after all retries.
  /// Requests denied because the Resource Manager could not be reached
  /// within the approval retry budget (degraded mode, also in denied).
  std::uint64_t approval_unreachable = 0;
};

class ActuationService {
 public:
  enum Method : net::MethodId {
    /// [u64 token][u32 packed stream][u8 action][u32 value]
    /// -> [u32 request id][u8 admission][u32 effective value]
    kRequestUpdate = 1,
  };

  static constexpr const char* kEndpointName = "garnet.actuation";

  struct Config {
    util::Duration ack_timeout = util::Duration::seconds(3);
    std::uint32_t max_retries = 2;
    /// Resource Manager approval call: per-attempt deadline must cover
    /// the manager's deliberation delay plus two bus transits.
    util::Duration approval_timeout = util::Duration::millis(20);
    std::uint32_t approval_retries = 3;
    util::Duration approval_backoff = util::Duration::millis(5);
  };

  ActuationService(net::MessageBus& bus, AuthService& auth, MessageReplicator& replicator,
                   Config config);

  struct Outcome {
    std::uint32_t request_id = 0;  ///< 0 when denied.
    Decision decision;
  };

  /// Full pipeline; `on_outcome` fires once admission resolves (the ack
  /// arrives later, see set_completion_observer).
  void request_update(ConsumerToken token, StreamId target, UpdateAction action,
                      std::uint32_t value, std::function<void(Outcome)> on_outcome);

  /// Wired to DispatchingService::set_ack_observer by the runtime.
  void on_ack(std::uint32_t request_id, SensorId sensor, util::SimTime observed_at);

  /// Fires when a request completes: acknowledged (with issue-to-ack
  /// latency) or expired.
  using CompletionObserver =
      std::function<void(std::uint32_t request_id, bool acked, util::Duration latency)>;
  void set_completion_observer(CompletionObserver observer) {
    completion_observer_ = std::move(observer);
  }

  /// Message traces: each admitted request opens an "actuation" span that
  /// closes when the sensor's acknowledgement is observed (kActuation
  /// domain, so keys never collide with data-plane traces).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const ActuationStats& stats() const noexcept { return stats_; }
  /// Issue-to-ack latency distribution (virtual time, ns).
  [[nodiscard]] const util::Quantiles& ack_latency() const noexcept { return ack_latency_; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

 private:
  /// Builds, stamps, checksums and transmits an admitted request;
  /// returns the new request id.
  std::uint32_t launch(ConsumerToken token, StreamId target, UpdateAction action,
                       std::uint32_t effective_value);

  struct PendingRequest {
    SensorId sensor = 0;
    util::SimTime issued_at;
    std::uint32_t retries_left = 0;
    util::Bytes frame;
    sim::EventId timer;
    obs::TraceKey trace_key;
  };

  void transmit(std::uint32_t request_id);
  void on_timeout(std::uint32_t request_id);
  /// Degraded path: the approval RPC exhausted its budget (or no manager
  /// is on the bus); the request is denied, never silently stalled.
  void deny_unreachable(std::function<void(Outcome)> on_outcome);

  net::MessageBus& bus_;
  AuthService& auth_;
  MessageReplicator& replicator_;
  Config config_;
  net::RpcNode node_;
  std::unordered_map<std::uint32_t, PendingRequest> pending_;
  std::uint32_t next_request_id_ = 1;
  ActuationStats stats_;
  util::Quantiles ack_latency_;
  CompletionObserver completion_observer_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace garnet::core
