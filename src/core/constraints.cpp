#include "core/constraints.hpp"

#include <algorithm>
#include <cassert>

namespace garnet::core {

std::string_view to_string(ConstraintField f) {
  switch (f) {
    case ConstraintField::kIntervalMs: return "interval_ms";
    case ConstraintField::kPayloadBytes: return "payload_bytes";
    case ConstraintField::kMode: return "mode";
  }
  return "?";
}

namespace {

constexpr std::string_view op_text(std::uint8_t op) {
  constexpr std::string_view kOps[] = {"<=", ">=", "<", ">", "==", "!="};
  return kOps[op];
}

}  // namespace

/// Hand-rolled recursive-descent parser over the constraint grammar.
class ConstraintParser {
 public:
  explicit ConstraintParser(std::string_view text) : text_(text) {}

  util::Result<ConstraintSet, ParseError> run() {
    skip_ws();
    while (!at_end()) {
      if (auto err = parse_clause()) return util::Err{std::move(*err)};
      skip_ws();
      if (!at_end()) {
        if (!consume(';')) return util::Err{error("expected ';' between clauses")};
        skip_ws();
      }
    }
    return std::move(set_);
  }

 private:
  using CmpOp = std::uint8_t;  // indexes op_text's table

  std::optional<ParseError> parse_clause() {
    const auto field = parse_field();
    if (!field) return error("expected a field name (interval_ms, payload_bytes, mode)");
    skip_ws();

    if (match_keyword("in")) {
      skip_ws();
      if (!consume('{')) return error("expected '{' after 'in'");
      std::vector<std::uint32_t> allowed;
      for (;;) {
        skip_ws();
        const auto value = parse_number(*field);
        if (!value) return error("expected a number in membership set");
        allowed.push_back(*value);
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) break;
        return error("expected ',' or '}' in membership set");
      }
      std::sort(allowed.begin(), allowed.end());
      allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());
      set_.members_.push_back({*field, std::move(allowed)});
      return std::nullopt;
    }

    const auto op = parse_op();
    if (!op) return error("expected a comparison operator or 'in'");
    skip_ws();
    const auto value = parse_number(*field);
    if (!value) return error("expected a number");
    set_.clauses_.push_back(
        {*field, static_cast<ConstraintSet::CmpOp>(*op), *value});
    return std::nullopt;
  }

  std::optional<ConstraintField> parse_field() {
    if (match_keyword("interval_ms")) return ConstraintField::kIntervalMs;
    if (match_keyword("payload_bytes")) return ConstraintField::kPayloadBytes;
    if (match_keyword("mode")) return ConstraintField::kMode;
    return std::nullopt;
  }

  std::optional<CmpOp> parse_op() {
    for (CmpOp op = 0; op < 6; ++op) {
      if (match_symbol(op_text(op))) return op;
    }
    return std::nullopt;
  }

  /// digits with an optional duration suffix ('s', 'min') on interval_ms.
  std::optional<std::uint32_t> parse_number(ConstraintField field) {
    if (at_end() || !is_digit(peek())) return std::nullopt;
    std::uint64_t value = 0;
    while (!at_end() && is_digit(peek())) {
      value = value * 10 + static_cast<std::uint64_t>(peek() - '0');
      if (value > 0xFFFFFFFFull) return std::nullopt;  // overflow
      ++pos_;
    }
    if (field == ConstraintField::kIntervalMs) {
      if (match_keyword("min")) {
        value *= 60'000;
      } else if (match_keyword("ms")) {
        // canonical unit, no scaling
      } else if (match_keyword("s")) {
        value *= 1'000;
      }
      if (value > 0xFFFFFFFFull) return std::nullopt;
    }
    return static_cast<std::uint32_t>(value);
  }

  // --- lexing helpers -------------------------------------------------------

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  static bool is_ident(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || is_digit(c);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (!at_end() && peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos_;
    return true;
  }

  /// Matches an identifier-like keyword with a word boundary after it.
  bool match_keyword(std::string_view word) {
    if (text_.substr(pos_).substr(0, word.size()) != word) return false;
    const std::size_t after = pos_ + word.size();
    if (after < text_.size() && is_ident(text_[after])) return false;
    pos_ = after;
    return true;
  }

  /// Matches punctuation exactly (no word-boundary rule).
  bool match_symbol(std::string_view sym) {
    if (text_.substr(pos_).substr(0, sym.size()) != sym) return false;
    pos_ += sym.size();
    return true;
  }

  [[nodiscard]] ParseError error(std::string message) const { return {pos_, std::move(message)}; }

  std::string_view text_;
  std::size_t pos_ = 0;
  ConstraintSet set_;
};

util::Result<ConstraintSet, ParseError> ConstraintSet::parse(std::string_view text) {
  return ConstraintParser(text).run();
}

bool ConstraintSet::allows(ConstraintField field, std::uint32_t value) const {
  for (const CmpClause& clause : clauses_) {
    if (clause.field != field) continue;
    switch (clause.op) {
      case CmpOp::kLe: if (!(value <= clause.value)) return false; break;
      case CmpOp::kGe: if (!(value >= clause.value)) return false; break;
      case CmpOp::kLt: if (!(value < clause.value)) return false; break;
      case CmpOp::kGt: if (!(value > clause.value)) return false; break;
      case CmpOp::kEq: if (!(value == clause.value)) return false; break;
      case CmpOp::kNe: if (!(value != clause.value)) return false; break;
    }
  }
  for (const MemberClause& clause : members_) {
    if (clause.field != field) continue;
    if (!std::binary_search(clause.allowed.begin(), clause.allowed.end(), value)) return false;
  }
  return true;
}

ConstraintSet::Bounds ConstraintSet::bounds(ConstraintField field) const {
  Bounds b;
  for (const CmpClause& clause : clauses_) {
    if (clause.field != field) continue;
    switch (clause.op) {
      case CmpOp::kLe: b.hi = std::min(b.hi, clause.value); break;
      case CmpOp::kGe: b.lo = std::max(b.lo, clause.value); break;
      case CmpOp::kLt:
        if (clause.value > 0) b.hi = std::min(b.hi, clause.value - 1);
        else b.hi = 0;  // x < 0 is unsatisfiable for unsigned; collapse
        break;
      case CmpOp::kGt:
        b.lo = clause.value == 0xFFFFFFFFu ? 0xFFFFFFFFu : std::max(b.lo, clause.value + 1);
        break;
      case CmpOp::kEq:
        b.lo = std::max(b.lo, clause.value);
        b.hi = std::min(b.hi, clause.value);
        break;
      case CmpOp::kNe: break;  // does not shape the envelope
    }
  }
  return b;
}

std::uint32_t ConstraintSet::clamp(ConstraintField field, std::uint32_t value) const {
  const Bounds b = bounds(field);
  if (b.lo > b.hi) return value;  // contradictory set: nothing sensible to do
  return std::clamp(value, b.lo, b.hi);
}

std::string ConstraintSet::to_string() const {
  std::string out;
  const auto append = [&out](std::string piece) {
    if (!out.empty()) out += "; ";
    out += piece;
  };
  for (const CmpClause& clause : clauses_) {
    append(std::string(core::to_string(clause.field)) + ' ' +
           std::string(op_text(static_cast<std::uint8_t>(clause.op))) + ' ' +
           std::to_string(clause.value));
  }
  for (const MemberClause& clause : members_) {
    std::string piece = std::string(core::to_string(clause.field)) + " in {";
    for (std::size_t i = 0; i < clause.allowed.size(); ++i) {
      if (i) piece += ", ";
      piece += std::to_string(clause.allowed[i]);
    }
    piece += '}';
    append(std::move(piece));
  }
  return out;
}

}  // namespace garnet::core
