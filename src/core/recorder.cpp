#include "core/recorder.hpp"

#include <algorithm>
#include <cassert>

namespace garnet::core {

std::vector<Delivery> Recording::stream(StreamId id) const {
  std::vector<Delivery> out;
  for (const Delivery& d : entries_) {
    if (d.message.stream_id == id) out.push_back(d);
  }
  return out;
}

std::vector<StreamId> Recording::streams() const {
  std::vector<StreamId> out;
  for (const Delivery& d : entries_) {
    if (std::find(out.begin(), out.end(), d.message.stream_id) == out.end()) {
      out.push_back(d.message.stream_id);
    }
  }
  return out;
}

util::Duration Recording::span() const {
  if (entries_.size() < 2) return {};
  return entries_.back().first_heard - entries_.front().first_heard;
}

StreamRecorder::StreamRecorder(Consumer& consumer) {
  // Chain in front of whatever handler the consumer already has; the
  // recorder is transparent to the application.
  consumer.set_data_handler(
      [this, previous = consumer.data_handler()](const DeliveryView& delivery) {
        // Archival must outlive the wire buffer, so this is a deliberate
        // (counted) payload copy.
        recording_.append(delivery.to_owned());
        if (previous) previous(delivery);
      });
}

util::SimTime replay(sim::Scheduler& scheduler, const Recording& recording,
                     std::function<void(const Delivery&)> sink, double speed) {
  assert(speed > 0);
  if (recording.empty()) return scheduler.now();

  const util::SimTime base = recording.at(0).first_heard;
  util::SimTime last = scheduler.now();
  auto shared_sink = std::make_shared<std::function<void(const Delivery&)>>(std::move(sink));
  for (std::size_t i = 0; i < recording.size(); ++i) {
    const Delivery& delivery = recording.at(i);
    const auto offset_ns =
        static_cast<std::int64_t>(static_cast<double>((delivery.first_heard - base).ns) / speed);
    const util::SimTime at = scheduler.now() + util::Duration::nanos(offset_ns);
    last = std::max(last, at);
    scheduler.schedule_at(at, [shared_sink, delivery] { (*shared_sink)(delivery); });
  }
  return last;
}

util::SimTime replay_as_stream(sim::Scheduler& scheduler, const Recording& recording,
                               Consumer& publisher, StreamId output, double speed) {
  return replay(
      scheduler, recording,
      [&publisher, output](const Delivery& delivery) {
        publisher.publish_derived(output, delivery.message.payload,
                                  static_cast<std::uint8_t>(HeaderFlag::kFused));
      },
      speed);
}

}  // namespace garnet::core
