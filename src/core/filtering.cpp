#include "core/filtering.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace garnet::core {

FilteringService::FilteringService(sim::Scheduler& scheduler, Config config)
    : scheduler_(scheduler), config_(config) {
  assert(config_.dedup_window < 0x8000 && "dedup window must be below half the sequence space");
}

void FilteringService::ingest(const wireless::ReceptionReport& report) {
  ++stats_.copies_in;

  // Zero-copy parse: most copies are duplicates the dedup below will
  // drop, so the payload is not copied out of the radio frame here.
  const auto decoded = decode_view(report.frame);
  if (!decoded.ok()) {
    ++stats_.malformed;
    return;
  }
  const DataMessageView& message = decoded.value();

  // Relayed copies (paper §8) carry another node's radio signature: the
  // receiver heard the *relay*, not the source, so they must not feed
  // location inference. The header tag makes that decision possible —
  // "initial support has been provided by tagging the message header to
  // reflect multi-hop and relayed data messages to facilitate intelligent
  // processing decisions."
  if (reception_sink_ && !message.header.has(HeaderFlag::kRelayed)) {
    reception_sink_(ReceptionEvent{message.stream_id.sensor, report.receiver, report.rssi_dbm,
                                   report.received_at});
  } else if (message.header.has(HeaderFlag::kRelayed)) {
    ++stats_.relayed_copies;
  }

  auto [state, inserted] = streams_.try_emplace(StreamKey{message.stream_id});
  if (inserted) ++stats_.streams_seen;
  accept(*state, message, report.received_at);
}

void FilteringService::reset() {
  streams_.for_each([this](StreamKey, StreamState& state) { scheduler_.cancel(state.gap_timer); });
  streams_.clear();
}

void FilteringService::encode_stream(util::ByteWriter& w, std::uint32_t packed,
                                     const StreamState& state) {
  w.u32(packed);
  w.u8(state.started ? 1 : 0);
  w.u16(state.newest);
  w.u16(state.next_release);
  w.u64(state.accepted);
  w.u64(state.total_advance);
  // std::map iterates keys ascending — deterministic by construction.
  w.u16(static_cast<std::uint16_t>(state.seen.size()));
  for (const auto& entry : state.seen) w.u16(entry.first);
}

FilteringService::StreamState FilteringService::decode_stream(util::ByteReader& r) {
  StreamState s;
  s.started = r.u8() != 0;
  s.newest = r.u16();
  s.next_release = r.u16();
  s.accepted = r.u64();
  s.total_advance = r.u64();
  const std::uint16_t seen_count = r.u16();
  for (std::uint16_t j = 0; j < seen_count && r.ok(); ++j) s.seen.emplace(r.u16(), true);
  return s;
}

util::Bytes FilteringService::capture_state() const {
  util::ByteWriter w(16 + streams_.size() * 32);
  w.u32(static_cast<std::uint32_t>(streams_.size()));
  streams_.for_each_sorted([&w](StreamKey key, const StreamState& state) {
    encode_stream(w, key.pack(), state);
  });
  return std::move(w).take();
}

util::Bytes FilteringService::capture_full() {
  util::Bytes state = capture_state();
  streams_.clear_dirty();
  return state;
}

util::Bytes FilteringService::capture_delta() {
  const std::vector<std::uint32_t> removed = streams_.removed_keys();
  const std::vector<std::uint32_t> dirty = streams_.dirty_keys();
  util::ByteWriter w(16 + removed.size() * 4 + dirty.size() * 32);
  w.u32(static_cast<std::uint32_t>(removed.size()));
  for (const std::uint32_t key : removed) w.u32(key);
  w.u32(static_cast<std::uint32_t>(dirty.size()));
  for (const std::uint32_t raw : dirty) {
    encode_stream(w, raw, *streams_.find(StreamKey::from_packed(raw)));
  }
  streams_.clear_dirty();
  return std::move(w).take();
}

util::Status<util::DecodeError> FilteringService::apply_delta(util::BytesView delta) {
  util::ByteReader r(delta);
  std::vector<StreamKey> removed;
  const std::uint32_t removed_count = r.u32();
  for (std::uint32_t i = 0; i < removed_count && r.ok(); ++i) {
    removed.push_back(StreamKey::from_packed(r.u32()));
  }
  std::vector<std::pair<StreamKey, StreamState>> upserts;
  const std::uint32_t dirty_count = r.u32();
  for (std::uint32_t i = 0; i < dirty_count && r.ok(); ++i) {
    const StreamKey key = StreamKey::from_packed(r.u32());
    StreamState s = decode_stream(r);
    if (r.ok()) upserts.emplace_back(key, std::move(s));
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  for (const StreamKey key : removed) {
    if (StreamState* gone = streams_.mutate(key)) scheduler_.cancel(gone->gap_timer);
    streams_.erase(key);
  }
  for (auto& [key, s] : upserts) {
    StreamState& entry = streams_.upsert(key);
    // A replaced stream's in-flight reorder state dies with the primary:
    // the delta carries dedup state only.
    scheduler_.cancel(entry.gap_timer);
    entry = std::move(s);
  }
  streams_.clear_dirty();
  return {};
}

util::Status<util::DecodeError> FilteringService::restore_state(util::BytesView state) {
  util::ByteReader r(state);
  std::vector<std::pair<StreamKey, StreamState>> parsed;
  const std::uint32_t declared = r.u32();
  for (std::uint32_t i = 0; i < declared && r.ok(); ++i) {
    const StreamKey key = StreamKey::from_packed(r.u32());
    StreamState s = decode_stream(r);
    if (r.ok()) parsed.emplace_back(key, std::move(s));
  }
  if (!r.ok() || r.remaining() != 0) return util::Err{util::DecodeError::kTruncated};

  reset();  // cancels gap timers before the wholesale swap
  for (auto& [key, s] : parsed) streams_.upsert(key) = std::move(s);
  streams_.clear_dirty();
  return {};
}

void FilteringService::note_seen(StreamId id, SequenceNo seq) {
  auto [entry, inserted] = streams_.try_emplace(StreamKey{id});
  if (inserted) ++stats_.streams_seen;
  StreamState& state = *entry;
  if (!state.started) {
    state.started = true;
    state.newest = seq;
    // Unlike accept(), the message was already forwarded by the (dead)
    // primary, so the release cursor points past it.
    state.next_release = static_cast<SequenceNo>(seq + 1);
    state.seen.emplace(seq, true);
    state.accepted = 1;
    return;
  }
  if (state.seen.contains(seq)) return;
  const auto backward = static_cast<std::uint16_t>(state.newest - seq);
  if (seq_newer(seq, state.newest)) {
    state.total_advance += static_cast<std::uint16_t>(seq - state.newest);
    state.newest = seq;
    for (auto sit = state.seen.begin(); sit != state.seen.end();) {
      if (static_cast<std::uint16_t>(state.newest - sit->first) > config_.dedup_window) {
        sit = state.seen.erase(sit);
      } else {
        ++sit;
      }
    }
    state.next_release = static_cast<SequenceNo>(seq + 1);
  } else if (backward > config_.dedup_window) {
    return;
  }
  state.seen.emplace(seq, true);
  ++state.accepted;
}

std::vector<FilteringService::StreamReport> FilteringService::stream_reports() const {
  std::vector<StreamReport> out;
  out.reserve(streams_.size());
  streams_.for_each([&out](StreamKey key, const StreamState& state) {
    if (!state.started) return;
    StreamReport report;
    report.id = key.id();
    report.accepted = state.accepted;
    // The stream spanned total_advance+1 sequence slots; anything we
    // never accepted inside that span is a presumed-lost frame.
    report.estimated_lost = state.total_advance + 1 - state.accepted;
    report.newest = state.newest;
    out.push_back(report);
  });
  return out;
}

void FilteringService::accept(StreamState& state, const DataMessageView& message,
                              util::SimTime heard_at) {
  const SequenceNo seq = message.sequence;
  const StreamId id = message.stream_id;

  if (!state.started) {
    state.started = true;
    state.newest = seq;
    state.next_release = seq;
    state.seen.emplace(seq, true);
    state.accepted = 1;
  } else {
    if (state.seen.contains(seq)) {
      ++stats_.duplicates_dropped;
      return;
    }
    const auto backward = static_cast<std::uint16_t>(state.newest - seq);
    if (seq_newer(seq, state.newest)) {
      state.total_advance += static_cast<std::uint16_t>(seq - state.newest);
      state.newest = seq;
      // Prune seen-set entries that fell out of the dedup window.
      for (auto sit = state.seen.begin(); sit != state.seen.end();) {
        if (static_cast<std::uint16_t>(state.newest - sit->first) > config_.dedup_window) {
          sit = state.seen.erase(sit);
        } else {
          ++sit;
        }
      }
    } else if (backward > config_.dedup_window) {
      // Too old to distinguish a late copy from a wrapped sequence; the
      // paper's 64K sequence space makes this a rare pathological case.
      ++stats_.stale_dropped;
      return;
    }
    state.seen.emplace(seq, true);
    ++state.accepted;
  }

  // A new unique message: the radio hop ends at its first valid receipt
  // and filtering's own work (dedup + optional reordering) begins.
  if (tracer_ != nullptr) {
    const obs::TraceKey trace_key{id.packed(), seq};
    tracer_->end_span(trace_key, "radio", heard_at.ns);
    tracer_->begin_span(trace_key, "filter", heard_at.ns);
  }

  if (config_.reorder_depth == 0) {
    ++stats_.messages_out;
    if (tracer_ != nullptr) {
      tracer_->end_span({id.packed(), seq}, "filter", scheduler_.now().ns);
    }
    if (message_sink_) message_sink_(message.to_owned(), heard_at);
    return;
  }

  if (seq != state.next_release) ++stats_.reordered;
  state.held.emplace(seq, PendingMessage{message.to_owned(), heard_at});
  release_ready(id, state);

  // Overflow: don't hold more than reorder_depth; skip the gap to the
  // earliest held message (in wrap order from next_release).
  if (state.held.size() > config_.reorder_depth) {
    flush_gap(id);
  } else if (!state.held.empty()) {
    arm_gap_timer(id, state);
  }
}

void FilteringService::release_ready(StreamId id, StreamState& state) {
  auto it = state.held.find(state.next_release);
  while (it != state.held.end()) {
    ++stats_.messages_out;
    if (tracer_ != nullptr) {
      tracer_->end_span({id.packed(), it->second.message.sequence}, "filter",
                        scheduler_.now().ns);
    }
    if (message_sink_) message_sink_(it->second.message, it->second.first_heard);
    state.held.erase(it);
    state.next_release = static_cast<SequenceNo>(state.next_release + 1);
    it = state.held.find(state.next_release);
  }
  if (state.held.empty() && state.gap_timer.valid()) {
    scheduler_.cancel(state.gap_timer);
    state.gap_timer = sim::EventId{};
  }
}

void FilteringService::flush_gap(StreamId id) {
  StreamState* found = streams_.mutate(StreamKey{id});
  if (found == nullptr) return;
  StreamState& state = *found;
  if (state.held.empty()) return;

  // Find the held sequence closest ahead of next_release (wrap order).
  SequenceNo best = 0;
  std::uint16_t best_dist = 0xFFFF;
  for (const auto& [seq, pending] : state.held) {
    const auto dist = static_cast<std::uint16_t>(seq - state.next_release);
    if (dist <= best_dist) {
      best_dist = dist;
      best = seq;
    }
  }
  state.next_release = best;
  release_ready(id, state);
  if (!state.held.empty()) arm_gap_timer(id, state);
}

void FilteringService::arm_gap_timer(StreamId id, StreamState& state) {
  if (state.gap_timer.valid()) return;  // already armed
  state.gap_timer = scheduler_.schedule_after(config_.reorder_timeout, [this, id] {
    StreamState* found = streams_.mutate(StreamKey{id});
    if (found == nullptr) return;
    found->gap_timer = sim::EventId{};
    flush_gap(id);
  });
}

}  // namespace garnet::core
