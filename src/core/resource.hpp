// Resource Manager (paper §4.2, §6).
//
// Consumers are mutually unaware, so their stream-update requests can
// conflict — two applications may demand different sampling rates from
// the same unwittingly-shared sensor. "Approval is sought from the
// Resource Manager which exercises control over the permissible actions
// which a set of consumers may request."
//
// The manager keeps an *approximate overview of sensor configuration*
// (§6): per-sensor constraint profiles registered at deployment plus the
// interval it believes each stream currently runs at. Admission applies,
// in order: authentication/trust, device constraints (clamping), then a
// pluggable conflict policy across the active demands of all consumers.
//
// The Super Coordinator may change the conflict policy at runtime and may
// pre-arm decisions it predicts are coming, short-circuiting the
// evaluation latency (experiment E5).
#pragma once

#include <functional>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/auth.hpp"
#include "core/constraints.hpp"
#include "core/stream_update.hpp"
#include "net/rpc.hpp"
#include "sim/scheduler.hpp"
#include "wireless/sensor.hpp"

namespace garnet::core {

/// How conflicting demands on one stream are mediated.
enum class ConflictPolicy : std::uint8_t {
  kMostDemandingWins = 0,  ///< Fastest requested rate serves everyone.
  kPriorityWins = 1,       ///< Highest-priority consumer's demand rules.
  kMerge = 2,              ///< Median demand; splits the difference.
  kRejectConflicts = 3,    ///< Later conflicting requests are denied.
};

[[nodiscard]] std::string_view to_string(ConflictPolicy p);

enum class Admission : std::uint8_t {
  kApproved = 0,  ///< Request admitted as asked.
  kModified = 1,  ///< Admitted with an adjusted value (clamp/mediation).
  kDenied = 2,
};

struct Decision {
  Admission admission = Admission::kDenied;
  std::uint32_t effective_value = 0;  ///< Value actually sent to the sensor.
  std::string_view reason;            ///< Static string; diagnostic only.
};

/// Deployment-time knowledge about one sensor (the approximate overview).
struct SensorProfile {
  SensorId id = 0;
  bool receive_capable = true;
  std::map<InternalStreamId, wireless::StreamConstraints> constraints;
  /// Optional codified constraints (paper §8's constraint language),
  /// enforced *in addition* to the structural limits above. See
  /// ResourceManager::codify for installing them from text.
  std::map<InternalStreamId, ConstraintSet> codified;
};

struct ResourceStats {
  std::uint64_t evaluated = 0;
  std::uint64_t approved = 0;
  std::uint64_t modified = 0;
  std::uint64_t denied = 0;
  std::uint64_t trusted_overrides = 0;
  std::uint64_t prearm_hits = 0;   ///< Evaluations served from a pre-arm.
  std::uint64_t policy_changes = 0;
};

class ResourceManager {
 public:
  enum Method : net::MethodId {
    kEvaluate = 1,  ///< [u64 token][u32 packed stream][u8 action][u32 value]
                    ///< -> [u8 admission][u32 effective]
  };

  static constexpr const char* kEndpointName = "garnet.resource";

  struct Config {
    ConflictPolicy policy = ConflictPolicy::kMostDemandingWins;
    /// Deliberation latency per evaluation (policy lookup, constraint
    /// store access); pre-armed requests skip it.
    util::Duration evaluation_delay = util::Duration::millis(5);
    /// Trusted consumers may override kRejectConflicts denials (§9).
    bool allow_trusted_override = true;
    /// Demands idle longer than this stop influencing mediation.
    util::Duration demand_ttl = util::Duration::seconds(300);
    /// Pre-armed decisions expire after this long: a prediction is a
    /// statement about the *near* future, and the ledger it was computed
    /// against drifts as other consumers act.
    util::Duration prearm_ttl = util::Duration::seconds(60);
  };

  ResourceManager(net::MessageBus& bus, AuthService& auth, Config config);

  /// Registers deployment knowledge about a sensor.
  void register_profile(SensorProfile profile);

  /// Compiles constraint text (core/constraints.hpp) and installs it for
  /// one stream, creating the profile if needed — "codification of
  /// sensor constraints via ... an expressive language [to] facilitate
  /// the operation of the resource manager in automatically enforcing
  /// such limits" (paper §8).
  util::Status<ParseError> codify(SensorId sensor, InternalStreamId stream,
                                  std::string_view constraint_text);

  /// Asynchronous admission: `on_decision` fires after the evaluation
  /// delay (or immediately on a pre-arm hit).
  void evaluate(ConsumerToken token, StreamId target, UpdateAction action, std::uint32_t value,
                std::function<void(Decision)> on_decision);

  /// Synchronous core (tests and the pre-arm path use this directly).
  Decision evaluate_now(ConsumerToken token, StreamId target, UpdateAction action,
                        std::uint32_t value);

  /// Super Coordinator hooks -------------------------------------------

  /// Pre-computes and caches the decision for an anticipated request; the
  /// matching evaluate() is then served without the evaluation delay.
  void prearm(ConsumerToken token, StreamId target, UpdateAction action, std::uint32_t value);

  /// Runtime policy change ("the Super Coordinator may invoke policy
  /// changes in the strategy used by the Resource Manager").
  void set_policy(ConflictPolicy policy);

  /// Withdraws every demand a departing consumer holds, so mediation
  /// stops honouring it immediately (rather than waiting for demand_ttl).
  /// Returns how many stream ledgers were touched.
  std::size_t withdraw_consumer(ConsumerToken token);

  /// Introspection ------------------------------------------------------

  /// The interval the manager believes a stream currently runs at.
  [[nodiscard]] std::optional<std::uint32_t> believed_interval(StreamId id) const;
  [[nodiscard]] const ResourceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ConflictPolicy policy() const noexcept { return config_.policy; }
  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }

 private:
  struct Demand {
    ConsumerToken consumer;
    std::uint8_t priority;
    std::uint32_t interval_ms;
    util::SimTime at;
  };
  struct StreamLedger {
    std::vector<Demand> demands;         ///< One per consumer, newest wins.
    std::uint32_t believed_interval = 0; ///< 0 = unknown.
    bool believed_enabled = true;
  };
  struct PrearmKey {
    ConsumerToken token;
    std::uint32_t stream_packed;
    std::uint8_t action;
    bool operator==(const PrearmKey&) const = default;
  };
  struct PrearmKeyHash {
    std::size_t operator()(const PrearmKey& k) const {
      return std::hash<std::uint64_t>{}(k.token ^ (static_cast<std::uint64_t>(k.stream_packed) << 8) ^
                                        k.action);
    }
  };

  Decision mediate_interval(StreamLedger& ledger, const ConsumerIdentity& who,
                            const wireless::StreamConstraints* constraints,
                            const ConstraintSet* codified, std::uint32_t asked);
  void record_outcome(const Decision& decision);

  net::MessageBus& bus_;
  AuthService& auth_;
  Config config_;
  net::RpcNode node_;
  struct PrearmedDecision {
    Decision decision;
    util::SimTime armed_at;
  };

  std::unordered_map<SensorId, SensorProfile> profiles_;
  std::unordered_map<StreamId, StreamLedger> ledgers_;
  std::unordered_map<PrearmKey, PrearmedDecision, PrearmKeyHash> prearmed_;
  ResourceStats stats_;
};

}  // namespace garnet::core
