// Orphanage (paper §4.2).
//
// "The Orphanage is a default consumer process which receives
// un-configured data. There, data messages are analysed and potentially
// stored." The Dispatching Service routes every unclaimed message here.
// The Orphanage keeps a bounded backlog per stream plus simple analysis
// (arrival rate, payload size), and hands the backlog over when a real
// consumer belatedly subscribes — so data produced before anyone was
// listening is not lost.
#pragma once

#include <unordered_map>

#include "core/message.hpp"
#include "core/wire_types.hpp"
#include "net/rpc.hpp"
#include "util/ring_buffer.hpp"
#include "util/stats.hpp"

namespace garnet::core {

struct OrphanAnalysis {
  StreamId id;
  std::uint64_t messages = 0;
  std::uint64_t evicted = 0;           ///< Dropped when retention overflowed.
  util::SimTime first_seen;
  util::SimTime last_seen;
  double mean_payload_bytes = 0.0;
  double arrival_rate_hz = 0.0;        ///< messages / observed span.
};

class Orphanage {
 public:
  enum Method : net::MethodId {
    kFetchBacklog = 1,  ///< [u32 packed stream][u16 max] -> [u16 n][n deliveries]
  };

  static constexpr const char* kEndpointName = "garnet.orphanage";

  struct Config {
    std::size_t retention_per_stream = 64;
  };

  Orphanage(net::MessageBus& bus, Config config);

  /// Streams currently holding orphaned data.
  [[nodiscard]] std::vector<OrphanAnalysis> report() const;
  [[nodiscard]] const OrphanAnalysis* analysis(StreamId id) const;

  /// Removes and returns up to `max` retained deliveries of a stream,
  /// oldest first (claim handoff). Direct-call form of kFetchBacklog.
  /// Materialises owned copies — claiming is the cold path; retention
  /// itself holds refcounted views of the original wire buffers.
  [[nodiscard]] std::vector<Delivery> claim(StreamId id, std::size_t max = SIZE_MAX);

  [[nodiscard]] net::Address address() const noexcept { return node_.address(); }
  [[nodiscard]] std::uint64_t total_received() const noexcept { return total_received_; }

 private:
  struct StreamStore {
    OrphanAnalysis analysis;
    /// Views keep the dispatch-time wire buffers alive; no payload copy
    /// happens on the retention path.
    util::RingBuffer<DeliveryView> backlog;
    util::Accumulator payload_bytes;
    explicit StreamStore(std::size_t retention) : backlog(retention) {}
  };

  void on_envelope(net::Envelope envelope);
  [[nodiscard]] std::vector<DeliveryView> drain(StreamId id, std::size_t max);

  Config config_;
  net::RpcNode node_;
  std::unordered_map<StreamId, StreamStore> stores_;
  std::uint64_t total_received_ = 0;
};

}  // namespace garnet::core
