// Byte-level serialisation helpers.
//
// Garnet's wire format (paper Figure 2) is defined in terms of exact bit
// widths; the codec in core/message builds on these big-endian primitives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace garnet::util {

using Bytes = std::vector<std::byte>;
using BytesView = std::span<const std::byte>;

/// One element of a scatter-gather write: an immutable byte run that a
/// transport hands to the kernel (POSIX `struct iovec`) without copying.
/// Kept POSIX-free so codec-level code can build slice arrays portably;
/// gw::PosixTransport converts at the syscall boundary.
struct IoSlice {
  const std::byte* data = nullptr;
  std::size_t size = 0;

  [[nodiscard]] static IoSlice of(BytesView bytes) noexcept {
    return {bytes.data(), bytes.size()};
  }
};

/// Appends big-endian encoded primitives to a growing byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);  ///< Low 24 bits only; high byte must be zero.
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void raw(BytesView data);
  void str(std::string_view s);  ///< u16 length prefix + bytes.

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] BytesView view() const noexcept { return out_; }
  [[nodiscard]] Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

enum class DecodeError : std::uint8_t {
  kTruncated,       ///< Fewer bytes remained than the read required.
  kBadChecksum,     ///< CRC trailer did not match the body.
  kBadVersion,      ///< Unsupported format version.
  kMalformed,       ///< Structurally invalid contents.
  kLengthMismatch,  ///< Declared payload size disagrees with actual bytes.
};

[[nodiscard]] std::string_view to_string(DecodeError e);

/// Consumes big-endian primitives from a byte view, tracking truncation.
///
/// All reads after the first failure keep failing; callers may batch reads
/// and check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u24();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] Bytes raw(std::size_t n);
  /// Zero-copy read: a view of the next n bytes, aliasing the reader's
  /// underlying buffer (valid for that buffer's lifetime). Empty on
  /// truncation.
  [[nodiscard]] BytesView view(std::size_t n);
  [[nodiscard]] std::string str();

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Convenience: view over a string's bytes (for tests and payload helpers).
[[nodiscard]] Bytes to_bytes(std::string_view s);
[[nodiscard]] std::string to_string(BytesView b);

}  // namespace garnet::util
