#include "util/bytes.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace garnet::util {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u24(std::uint32_t v) {
  assert((v >> 24) == 0 && "u24 value exceeds 24 bits");
  u8(static_cast<std::uint8_t>(v >> 16));
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::raw(BytesView data) { out_.insert(out_.end(), data.begin(), data.end()); }

void ByteWriter::str(std::string_view s) {
  assert(s.size() <= 0xFFFF && "string too long for u16 length prefix");
  u16(static_cast<std::uint16_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out_.insert(out_.end(), p, p + s.size());
}

std::string_view to_string(DecodeError e) {
  switch (e) {
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadChecksum: return "bad checksum";
    case DecodeError::kBadVersion: return "bad version";
    case DecodeError::kMalformed: return "malformed";
    case DecodeError::kLengthMismatch: return "length mismatch";
  }
  return "unknown";
}

bool ByteReader::take(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  const auto hi = u8();
  const auto lo = u8();
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t ByteReader::u24() {
  const std::uint32_t hi = u8();
  const std::uint32_t mid = u8();
  const std::uint32_t lo = u8();
  return (hi << 16) | (mid << 8) | lo;
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

Bytes ByteReader::raw(std::size_t n) {
  if (!take(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

BytesView ByteReader::view(std::size_t n) {
  if (!take(n)) return {};
  const BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const auto n = u16();
  if (!take(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Bytes to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace garnet::util
