// Minimal leveled logger (printf-style; <format> needs GCC 13+).
//
// Services log noteworthy transitions (admission denials, orphaned
// streams, predictive pre-arms); examples raise the level to narrate what
// the middleware is doing. Default threshold is Warn.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string_view>

namespace garnet::util {

enum class LogLevel : std::uint8_t { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view component, std::string_view message);
}

template <typename... Args>
void log(LogLevel level, std::string_view component, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buffer[512];
  if constexpr (sizeof...(Args) == 0) {
    detail::log_line(level, component, fmt);
  } else {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
    std::snprintf(buffer, sizeof buffer, fmt, args...);
#pragma GCC diagnostic pop
    detail::log_line(level, component, buffer);
  }
}

template <typename... Args>
void log_info(std::string_view component, const char* fmt, Args... args) {
  log(LogLevel::kInfo, component, fmt, args...);
}

template <typename... Args>
void log_warn(std::string_view component, const char* fmt, Args... args) {
  log(LogLevel::kWarn, component, fmt, args...);
}

template <typename... Args>
void log_debug(std::string_view component, const char* fmt, Args... args) {
  log(LogLevel::kDebug, component, fmt, args...);
}

}  // namespace garnet::util
