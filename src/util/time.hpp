// Virtual time for the discrete-event world.
//
// All latencies the middleware reports are measured in SimTime so that
// experiment results do not depend on host hardware. SimTime is integer
// nanoseconds since simulation start.
#pragma once

#include <compare>
#include <cstdint>

namespace garnet::util {

/// A span of virtual time, in nanoseconds. Strongly typed to avoid
/// accidental mixing with raw integers.
struct Duration {
  std::int64_t ns = 0;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) { return {n}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return {us * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return {ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return {s * 1'000'000'000}; }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration other) const { return {ns + other.ns}; }
  constexpr Duration operator-(Duration other) const { return {ns - other.ns}; }
  constexpr Duration operator*(std::int64_t k) const { return {ns * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {ns / k}; }
};

/// An instant of virtual time, nanoseconds since simulation start.
struct SimTime {
  std::int64_t ns = 0;

  [[nodiscard]] static constexpr SimTime zero() { return {0}; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return {ns + d.ns}; }
  constexpr SimTime operator-(Duration d) const { return {ns - d.ns}; }
  constexpr Duration operator-(SimTime other) const { return {ns - other.ns}; }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) / 1e9; }
};

}  // namespace garnet::util
