// Result<T, E>: a minimal expected-style sum type for fallible operations.
//
// Garnet services never throw across service boundaries; fallible calls
// return Result and callers decide how to react. (std::expected is C++23;
// this project targets C++20, so we carry a small equivalent.)
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace garnet::util {

/// Wrapper distinguishing the error alternative when T and E coincide.
template <typename E>
struct Err {
  E value;
};

template <typename E>
Err(E) -> Err<E>;

/// Value-or-error sum type. Default-constructs to a default-constructed
/// value when T is default-constructible.
template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> err) : storage_(std::in_place_index<1>, std::move(err.value)) {}

  [[nodiscard]] bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  /// Precondition: !ok().
  [[nodiscard]] const E& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

/// Result specialisation for operations that produce no value.
template <typename E>
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Err<E> err) : error_(std::move(err.value)), failed_(true) {}

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: !ok().
  [[nodiscard]] const E& error() const {
    assert(failed_);
    return error_;
  }

 private:
  E error_{};
  bool failed_ = false;
};

}  // namespace garnet::util
