// Streaming statistics used by service counters and the bench harness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace garnet::util {

/// Welford-style streaming accumulator: mean/variance/min/max without
/// retaining samples.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains samples for exact quantiles; used where distributions matter
/// (e.g. actuation latency in experiment E5).
class Quantiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add(Duration d) { add(static_cast<double>(d.ns)); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// q in [0,1]; returns 0 when empty. Nearest-rank on the sorted samples.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bucket histogram over [lo, hi); overflow/underflow tracked.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Render a compact one-line-per-bucket text chart for example output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace garnet::util
