#include "util/shared_bytes.hpp"

#include <atomic>

namespace garnet::util {
namespace {

// Process-wide accounting. Monotonic counters; readers take deltas.
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_allocation_bytes{0};
std::atomic<std::uint64_t> g_copies{0};

void count_allocation(std::size_t bytes) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocation_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace

PayloadStats payload_stats() noexcept {
  return {g_allocations.load(std::memory_order_relaxed),
          g_allocation_bytes.load(std::memory_order_relaxed),
          g_copies.load(std::memory_order_relaxed)};
}

SharedBytes::SharedBytes(Bytes&& bytes) {
  if (bytes.empty()) return;
  count_allocation(bytes.size());
  owner_ = std::make_shared<const Bytes>(std::move(bytes));
  data_ = owner_->data();
  length_ = owner_->size();
}

SharedBytes SharedBytes::copy_of(BytesView data) {
  if (data.empty()) return {};
  g_copies.fetch_add(1, std::memory_order_relaxed);
  return SharedBytes(Bytes(data.begin(), data.end()));
}

Bytes SharedBytes::to_owned_copy() const {
  if (!empty()) g_copies.fetch_add(1, std::memory_order_relaxed);
  return Bytes(data_, data_ + length_);
}

Bytes counted_copy(BytesView data) {
  if (!data.empty()) g_copies.fetch_add(1, std::memory_order_relaxed);
  return Bytes(data.begin(), data.end());
}

}  // namespace garnet::util
