#include "util/stats.hpp"

#include <cassert>
#include <cmath>

namespace garnet::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Quantiles::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(clamped * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

double Quantiles::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Quantiles::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(idx, counts_.size() - 1)];
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = lo_ + step * static_cast<double>(i);
    char label[64];
    std::snprintf(label, sizeof label, "%10.3g | ", lo);
    out += label;
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) * static_cast<double>(width) / static_cast<double>(peak));
    out.append(bar, '#');
    out += "  ";
    out += std::to_string(counts_[i]);
    out += '\n';
  }
  return out;
}

}  // namespace garnet::util
