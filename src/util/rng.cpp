#include "util/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <numbers>

namespace garnet::util {

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace garnet::util
