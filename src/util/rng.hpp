// Deterministic random number generation.
//
// Every stochastic element of the simulation — mobility, radio loss,
// payload generation, RETRI identifiers — draws from a seeded Rng so that
// all experiments are exactly repeatable. The generator is xoshiro256**,
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>

namespace garnet::util {

/// SplitMix64 step; used to expand seeds and as a cheap hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9A3EC9D57F1B2C44ull);

  /// Uniform over the full 64-bit range.
  [[nodiscard]] std::uint64_t next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Standard normal via Box–Muller.
  [[nodiscard]] double normal();
  [[nodiscard]] double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate);

  /// Derives an independent child generator; used to give each sensor or
  /// service its own stream without cross-coupling draw order.
  [[nodiscard]] Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace garnet::util
