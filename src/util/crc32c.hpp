// CRC-32C (Castagnoli) checksum.
//
// The Actuation Service checksums every stream-update request before it is
// replicated to the transmitters (paper §4.2), and the data-message codec
// appends a CRC trailer standing in for "the usual checksums" the paper
// elides from Figure 2.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace garnet::util {

/// One-shot CRC-32C over a byte view.
[[nodiscard]] std::uint32_t crc32c(BytesView data);

/// Incremental CRC-32C.
class Crc32c {
 public:
  void update(BytesView data);
  [[nodiscard]] std::uint32_t value() const noexcept;

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace garnet::util
