#include "util/crc32c.hpp"

#include <array>
#include <cstring>

namespace garnet::util {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, so eight lookups
// retire eight input bytes per iteration.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

const auto kTables = make_tables();

std::uint32_t update_sliced(std::uint32_t crc, const std::byte* p, std::size_t n) {
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // little-endian assumed, as elsewhere in util/bytes
    crc ^= static_cast<std::uint32_t>(chunk);
    const auto hi = static_cast<std::uint32_t>(chunk >> 32);
    crc = kTables[7][crc & 0xFFu] ^ kTables[6][(crc >> 8) & 0xFFu] ^
          kTables[5][(crc >> 16) & 0xFFu] ^ kTables[4][crc >> 24] ^ kTables[3][hi & 0xFFu] ^
          kTables[2][(hi >> 8) & 0xFFu] ^ kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ static_cast<std::uint8_t>(*p++)) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2"))) std::uint32_t update_hw(std::uint32_t crc, const std::byte* p,
                                                          std::size_t n) {
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, static_cast<std::uint8_t>(*p++));
  }
  return crc;
}

bool hw_supported() {
  static const bool supported = __builtin_cpu_supports("sse4.2");
  return supported;
}
#else
std::uint32_t update_hw(std::uint32_t crc, const std::byte* p, std::size_t n) {
  return update_sliced(crc, p, n);
}
constexpr bool hw_supported() { return false; }
#endif

}  // namespace

void Crc32c::update(BytesView data) {
  state_ = hw_supported() ? update_hw(state_, data.data(), data.size())
                          : update_sliced(state_, data.data(), data.size());
}

std::uint32_t Crc32c::value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

std::uint32_t crc32c(BytesView data) {
  Crc32c crc;
  crc.update(data);
  return crc.value();
}

}  // namespace garnet::util
