#include "util/crc32c.hpp"

#include <array>

namespace garnet::util {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32c::update(BytesView data) {
  std::uint32_t crc = state_;
  for (const std::byte b : data) {
    crc = kTable[(crc ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  state_ = crc;
}

std::uint32_t Crc32c::value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

std::uint32_t crc32c(BytesView data) {
  Crc32c crc;
  crc.update(data);
  return crc.value();
}

}  // namespace garnet::util
