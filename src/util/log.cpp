#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace garnet::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %-14.*s %.*s\n", static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace garnet::util
