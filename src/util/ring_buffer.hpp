// Fixed-capacity ring buffer.
//
// Used by the Orphanage for bounded retention of unclaimed data and by the
// filtering reorder window.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace garnet::util {

/// FIFO of bounded capacity; pushing into a full buffer evicts the oldest
/// element. Not thread-safe (the simulation is single-threaded).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) { assert(capacity > 0); }

  /// Returns true if an element was evicted to make room.
  bool push(T value) {
    const bool evicted = size_ == slots_.size();
    if (evicted) head_ = (head_ + 1) % slots_.size();
    slots_[(head_ + size_ - (evicted ? 1 : 0)) % slots_.size()] = std::move(value);
    if (!evicted) ++size_;
    return evicted;
  }

  /// Precondition: !empty().
  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return slots_[head_];
  }

  void pop() {
    assert(size_ > 0);
    head_ = (head_ + 1) % slots_.size();
    --size_;
  }

  /// Element i positions from the oldest. Precondition: i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == slots_.size(); }
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace garnet::util
