// Immutable, refcounted byte buffers for the zero-copy payload path.
//
// A SharedBytes is a cheap handle onto one heap allocation: copying the
// handle bumps a refcount, and view(offset, length) produces a sub-view
// sharing the same allocation. Once wrapped, the bytes are immutable —
// every reader (bus fan-out copies, fault-injector duplicates, RPC retry
// frames, dedup-cache replays, consumer-side payload views) aliases the
// same memory safely, for as long as any handle lives.
//
// The payload accounting counters make the discipline observable: every
// buffer entering the shared domain counts one allocation, and every
// escape back to owned bytes (to_owned_copy / copy_of) counts one copy.
// The bus's telemetry collector exposes them as garnet.bus.payload_*;
// tests and benches pin "1 allocation, ~0 copies per dispatched message"
// against them (see docs/PERFORMANCE.md).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace garnet::util {

/// Process-wide payload accounting, read by pull collectors. Relaxed
/// atomics: the counts are exact in the single-threaded simulator and
/// race-free (merely unordered) elsewhere.
struct PayloadStats {
  std::uint64_t allocations = 0;      ///< Buffers that entered the shared domain.
  std::uint64_t allocation_bytes = 0; ///< Total bytes of those buffers.
  std::uint64_t copies = 0;           ///< Byte copies in or out of the domain.
};

[[nodiscard]] PayloadStats payload_stats() noexcept;

class SharedBytes {
 public:
  /// Empty buffer; no allocation.
  SharedBytes() = default;

  /// Adopts an already-built byte vector without copying it — the
  /// canonical entry point ("encode once"). Counts one allocation.
  SharedBytes(Bytes&& bytes);  // NOLINT(google-explicit-constructor)

  /// Allocates a new buffer and copies `data` into it. Counts one
  /// allocation and one copy — use adopt (the Bytes&& constructor) when
  /// the source can be moved instead.
  [[nodiscard]] static SharedBytes copy_of(BytesView data);

  // Handle copies and moves share the allocation; nothing is counted.
  SharedBytes(const SharedBytes&) = default;
  SharedBytes& operator=(const SharedBytes&) = default;
  SharedBytes(SharedBytes&&) noexcept = default;
  SharedBytes& operator=(SharedBytes&&) noexcept = default;

  /// Sub-view [offset, offset + length) sharing this allocation.
  /// Precondition: offset + length <= size().
  [[nodiscard]] SharedBytes view(std::size_t offset, std::size_t length) const {
    assert(offset + length <= length_ && "SharedBytes::view out of range");
    SharedBytes out;
    out.owner_ = owner_;
    out.data_ = data_ + offset;
    out.length_ = length;
    return out;
  }

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return length_; }
  [[nodiscard]] bool empty() const noexcept { return length_ == 0; }

  [[nodiscard]] BytesView span() const noexcept { return {data_, length_}; }
  operator BytesView() const noexcept { return span(); }  // NOLINT

  /// Scatter-gather descriptor aliasing this allocation — the zero-copy
  /// bridge to writev-style transports: the kernel reads straight from
  /// the shared buffer, so no copy is counted between encode and the
  /// socket. The caller must keep a handle alive until the write lands.
  [[nodiscard]] IoSlice io_slice() const noexcept { return {data_, length_}; }

  /// Materialises an owned copy of the bytes (for callers that must
  /// mutate or outlive every handle). Counts one copy.
  [[nodiscard]] Bytes to_owned_copy() const;

  /// Handles (including sub-views) currently sharing the allocation;
  /// 0 for an empty buffer. Test/diagnostic aid.
  [[nodiscard]] long use_count() const noexcept { return owner_.use_count(); }

 private:
  std::shared_ptr<const Bytes> owner_;
  const std::byte* data_ = nullptr;
  std::size_t length_ = 0;
};

/// Appends the writer's bytes as a freshly adopted shared buffer. With an
/// exact-size ByteWriter reservation this is the path's single
/// allocation.
[[nodiscard]] inline SharedBytes take_shared(ByteWriter&& writer) {
  return SharedBytes(std::move(writer).take());
}

/// Copies `data` out of the shared domain into a fresh owned vector,
/// counting one copy (the accounting twin of to_owned_copy for callers
/// that hold a view rather than a handle).
[[nodiscard]] Bytes counted_copy(BytesView data);

}  // namespace garnet::util
