#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace garnet::net {
namespace {

using util::Duration;

struct RpcFixture : ::testing::Test {
  sim::Scheduler scheduler;
  MessageBus bus{scheduler, MessageBus::Config{}};
};

TEST_F(RpcFixture, CallRoundTrip) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");

  server.expose(1, [](Address, util::BytesView args) -> RpcResult {
    util::ByteReader r(args);
    const std::uint32_t x = r.u32();
    util::ByteWriter w(4);
    w.u32(x * 2);
    return std::move(w).take();
  });

  std::optional<std::uint32_t> answer;
  util::ByteWriter w(4);
  w.u32(21);
  client.call(server.address(), 1, std::move(w).take(), [&](RpcResult result) {
    ASSERT_TRUE(result.ok());
    util::ByteReader r(result.value());
    answer = r.u32();
  });
  scheduler.run();
  EXPECT_EQ(answer, 42u);
}

TEST_F(RpcFixture, CallerIdentityPassedToHandler) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  Address seen{};
  server.expose(1, [&](Address caller, util::BytesView) -> RpcResult {
    seen = caller;
    return util::Bytes{};
  });
  client.call(server.address(), 1, {}, [](RpcResult) {});
  scheduler.run();
  EXPECT_EQ(seen, client.address());
}

TEST_F(RpcFixture, NoSuchMethod) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  std::optional<RpcError> error;
  client.call(server.address(), 99, {}, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kNoSuchMethod);
}

TEST_F(RpcFixture, RemoteFailurePropagates) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult {
    return util::Err{RpcError::kRemoteFailure};
  });
  std::optional<RpcError> error;
  client.call(server.address(), 1, {}, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kRemoteFailure);
}

TEST_F(RpcFixture, TimeoutWhenCalleeGone) {
  RpcNode client(bus, "client");
  std::optional<RpcError> error;
  client.call(Address{777}, 1, {}, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  }, Duration::millis(10));
  scheduler.run();
  EXPECT_EQ(error, RpcError::kTimeout);
  EXPECT_GE(scheduler.now().ns, Duration::millis(10).ns);
}

TEST_F(RpcFixture, CallbackFiresExactlyOnceOnTimeoutRace) {
  // Server responds, but after the client's deadline: only the timeout
  // callback may fire.
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult { return util::Bytes{}; });

  MessageBus slow_bus(scheduler, {Duration::millis(50), Duration::nanos(0)});
  RpcNode slow_server(slow_bus, "slow");
  (void)slow_server;

  int calls = 0;
  std::optional<RpcError> error;
  // Route through the normal bus but with a 0ms-ish deadline shorter than
  // 2x latency.
  client.call(server.address(), 1, {}, [&](RpcResult result) {
    ++calls;
    if (!result.ok()) error = result.error();
  }, Duration::micros(100));
  scheduler.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(error, RpcError::kTimeout);
}

TEST_F(RpcFixture, ConcurrentCallsCorrelate) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView args) -> RpcResult {
    return util::Bytes(args.begin(), args.end());  // echo
  });

  // Jitter may reorder arrivals; what matters is that every callback
  // receives the echo of *its own* request.
  int completed = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    util::ByteWriter w(4);
    w.u32(i);
    client.call(server.address(), 1, std::move(w).take(), [&, expected = i](RpcResult result) {
      ASSERT_TRUE(result.ok());
      util::ByteReader r(result.value());
      EXPECT_EQ(r.u32(), expected);
      ++completed;
    });
  }
  scheduler.run();
  EXPECT_EQ(completed, 10);
}

TEST_F(RpcFixture, TwoServersIndependentMethods) {
  RpcNode s1(bus, "s1");
  RpcNode s2(bus, "s2");
  RpcNode client(bus, "client");
  s1.expose(1, [](Address, util::BytesView) -> RpcResult { return util::to_bytes("one"); });
  s2.expose(1, [](Address, util::BytesView) -> RpcResult { return util::to_bytes("two"); });

  std::string r1, r2;
  client.call(s1.address(), 1, {}, [&](RpcResult r) { r1 = util::to_string(r.value()); });
  client.call(s2.address(), 1, {}, [&](RpcResult r) { r2 = util::to_string(r.value()); });
  scheduler.run();
  EXPECT_EQ(r1, "one");
  EXPECT_EQ(r2, "two");
}

TEST_F(RpcFixture, FallbackReceivesPlainMessages) {
  std::vector<MessageType> types;
  RpcNode server(bus, "server", [&](Envelope e) { types.push_back(e.type); });
  RpcNode client(bus, "client");
  client.post(server.address(), app_type(5), util::to_bytes("plain"));
  scheduler.run();
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], app_type(5));
}

TEST_F(RpcFixture, AsyncHandlerDefersResponse) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");

  // The callee answers only after 30ms of its own asynchronous work.
  server.expose_async(1, [this](Address, util::BytesView, RpcResponder respond) {
    scheduler.schedule_after(Duration::millis(30), [respond = std::move(respond)] {
      respond(util::to_bytes("late answer"));
    });
  });

  std::optional<std::string> answer;
  std::optional<std::int64_t> answered_at;
  client.call(server.address(), 1, {}, [&](RpcResult result) {
    ASSERT_TRUE(result.ok());
    answer = util::to_string(result.value());
    answered_at = scheduler.now().ns;
  }, Duration::seconds(1));
  scheduler.run();

  EXPECT_EQ(answer, "late answer");
  ASSERT_TRUE(answered_at.has_value());
  EXPECT_GE(*answered_at, Duration::millis(30).ns);
}

TEST_F(RpcFixture, AsyncHandlerSlowerThanDeadlineTimesOut) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose_async(1, [this](Address, util::BytesView, RpcResponder respond) {
    scheduler.schedule_after(Duration::millis(100), [respond = std::move(respond)] {
      respond(util::Bytes{});
    });
  });

  int calls = 0;
  std::optional<RpcError> error;
  client.call(server.address(), 1, {}, [&](RpcResult result) {
    ++calls;
    if (!result.ok()) error = result.error();
  }, Duration::millis(20));
  scheduler.run();

  EXPECT_EQ(calls, 1);  // the late response must not double-fire
  EXPECT_EQ(error, RpcError::kTimeout);
}

TEST_F(RpcFixture, DestructionCancelsPendingTimeouts) {
  {
    RpcNode client(bus, "client");
    client.call(Address{777}, 1, {}, [](RpcResult) { FAIL() << "must not fire"; },
                Duration::seconds(10));
  }
  scheduler.run();  // timeout event was cancelled with the node
}

}  // namespace
}  // namespace garnet::net
