#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace garnet::net {
namespace {

using util::Duration;

struct RpcFixture : ::testing::Test {
  sim::Scheduler scheduler;
  MessageBus bus{scheduler, MessageBus::Config{}};
};

TEST_F(RpcFixture, CallRoundTrip) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");

  server.expose(1, [](Address, util::BytesView args) -> RpcResult {
    util::ByteReader r(args);
    const std::uint32_t x = r.u32();
    util::ByteWriter w(4);
    w.u32(x * 2);
    return std::move(w).take();
  });

  std::optional<std::uint32_t> answer;
  util::ByteWriter w(4);
  w.u32(21);
  client.call(server.address(), 1, std::move(w).take(), CallOptions{}, [&](RpcResult result) {
    ASSERT_TRUE(result.ok());
    util::ByteReader r(result.value());
    answer = r.u32();
  });
  scheduler.run();
  EXPECT_EQ(answer, 42u);
}

TEST_F(RpcFixture, CallerIdentityPassedToHandler) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  Address seen{};
  server.expose(1, [&](Address caller, util::BytesView) -> RpcResult {
    seen = caller;
    return util::Bytes{};
  });
  client.call(server.address(), 1, {}, CallOptions{}, [](RpcResult) {});
  scheduler.run();
  EXPECT_EQ(seen, client.address());
}

TEST_F(RpcFixture, NoSuchMethod) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  std::optional<RpcError> error;
  client.call(server.address(), 99, {}, CallOptions{}, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kNoSuchMethod);
}

TEST_F(RpcFixture, RemoteFailurePropagates) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult {
    return util::Err{RpcError::kRemoteFailure};
  });
  std::optional<RpcError> error;
  client.call(server.address(), 1, {}, CallOptions{}, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kRemoteFailure);
}

TEST_F(RpcFixture, TimeoutWhenCalleeGone) {
  RpcNode client(bus, "client");
  std::optional<RpcError> error;
  client.call(Address{777}, 1, {}, CallOptions::with_timeout(Duration::millis(10)),
              [&](RpcResult result) {
                ASSERT_FALSE(result.ok());
                error = result.error();
              });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kTimeout);
  EXPECT_GE(scheduler.now().ns, Duration::millis(10).ns);
}

TEST_F(RpcFixture, CallbackFiresExactlyOnceOnTimeoutRace) {
  // Server responds, but after the client's deadline: only the timeout
  // callback may fire.
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult { return util::Bytes{}; });

  int calls = 0;
  std::optional<RpcError> error;
  // Route through the normal bus but with a deadline shorter than 2x
  // latency, so the response is in flight when the timeout fires.
  client.call(server.address(), 1, {}, CallOptions::with_timeout(Duration::micros(100)),
              [&](RpcResult result) {
                ++calls;
                if (!result.ok()) error = result.error();
              });
  scheduler.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(error, RpcError::kTimeout);
}

TEST_F(RpcFixture, ConcurrentCallsCorrelate) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView args) -> RpcResult {
    return util::Bytes(args.begin(), args.end());  // echo
  });

  // Jitter may reorder arrivals; what matters is that every callback
  // receives the echo of *its own* request.
  int completed = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    util::ByteWriter w(4);
    w.u32(i);
    client.call(server.address(), 1, std::move(w).take(), CallOptions{},
                [&, expected = i](RpcResult result) {
                  ASSERT_TRUE(result.ok());
                  util::ByteReader r(result.value());
                  EXPECT_EQ(r.u32(), expected);
                  ++completed;
                });
  }
  scheduler.run();
  EXPECT_EQ(completed, 10);
}

TEST_F(RpcFixture, TwoServersIndependentMethods) {
  RpcNode s1(bus, "s1");
  RpcNode s2(bus, "s2");
  RpcNode client(bus, "client");
  s1.expose(1, [](Address, util::BytesView) -> RpcResult { return util::to_bytes("one"); });
  s2.expose(1, [](Address, util::BytesView) -> RpcResult { return util::to_bytes("two"); });

  std::string r1, r2;
  client.call(s1.address(), 1, {}, CallOptions{},
              [&](RpcResult r) { r1 = util::to_string(r.value()); });
  client.call(s2.address(), 1, {}, CallOptions{},
              [&](RpcResult r) { r2 = util::to_string(r.value()); });
  scheduler.run();
  EXPECT_EQ(r1, "one");
  EXPECT_EQ(r2, "two");
}

TEST_F(RpcFixture, FallbackReceivesPlainMessages) {
  std::vector<MessageType> types;
  RpcNode server(bus, "server", [&](Envelope e) { types.push_back(e.type); });
  RpcNode client(bus, "client");
  client.post(server.address(), app_type(5), util::to_bytes("plain"));
  scheduler.run();
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], app_type(5));
}

TEST_F(RpcFixture, AsyncHandlerDefersResponse) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");

  // The callee answers only after 30ms of its own asynchronous work.
  server.expose_async(1, [this](Address, util::BytesView, RpcResponder respond) {
    scheduler.schedule_after(Duration::millis(30), [respond = std::move(respond)] {
      respond(util::to_bytes("late answer"));
    });
  });

  std::optional<std::string> answer;
  std::optional<std::int64_t> answered_at;
  client.call(server.address(), 1, {}, CallOptions::with_timeout(Duration::seconds(1)),
              [&](RpcResult result) {
                ASSERT_TRUE(result.ok());
                answer = util::to_string(result.value());
                answered_at = scheduler.now().ns;
              });
  scheduler.run();

  EXPECT_EQ(answer, "late answer");
  ASSERT_TRUE(answered_at.has_value());
  EXPECT_GE(*answered_at, Duration::millis(30).ns);
}

TEST_F(RpcFixture, AsyncHandlerSlowerThanDeadlineTimesOut) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose_async(1, [this](Address, util::BytesView, RpcResponder respond) {
    scheduler.schedule_after(Duration::millis(100), [respond = std::move(respond)] {
      respond(util::Bytes{});
    });
  });

  int calls = 0;
  std::optional<RpcError> error;
  client.call(server.address(), 1, {}, CallOptions::with_timeout(Duration::millis(20)),
              [&](RpcResult result) {
                ++calls;
                if (!result.ok()) error = result.error();
              });
  scheduler.run();

  EXPECT_EQ(calls, 1);  // the late response must not double-fire
  EXPECT_EQ(error, RpcError::kTimeout);
}

TEST_F(RpcFixture, LateResponseAfterRetriedCallDoesNotDoubleFire) {
  // The reply to attempt #1 lands *after* the per-attempt deadline, while
  // attempt #2 is pending; its own reply lands too. The callback must
  // fire exactly once, with the first response that arrives.
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  int executions = 0;
  server.expose_async(1, [&, this](Address, util::BytesView, RpcResponder respond) {
    ++executions;
    scheduler.schedule_after(Duration::millis(30), [respond = std::move(respond)] {
      respond(util::to_bytes("slow"));
    });
  });

  CallOptions options;
  options.timeout = Duration::millis(20);
  options.retries = 2;
  options.backoff = Duration::millis(1);
  options.idempotent = true;  // each attempt re-executes and re-replies
  int calls = 0;
  client.call(server.address(), 1, {}, options, [&](RpcResult result) {
    ++calls;
    EXPECT_TRUE(result.ok());
  });
  scheduler.run();
  EXPECT_EQ(calls, 1);
  EXPECT_GE(executions, 2);  // the retry really did reach the server
}

TEST_F(RpcFixture, ExhaustedAfterRetryBudget) {
  RpcNode client(bus, "client");
  CallOptions options;
  options.timeout = Duration::millis(5);
  options.retries = 3;
  options.backoff = Duration::millis(1);
  std::optional<RpcError> error;
  client.call(Address{777}, 1, {}, options, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kTimeout);
  EXPECT_EQ(bus.rpc_stats().calls, 1u);
  EXPECT_EQ(bus.rpc_stats().retries, 3u);
  EXPECT_EQ(bus.rpc_stats().exhausted, 1u);
}

/// Chaos fixture: the server's responses back to the client lose their
/// first copy, so every call needs one retry. Faulting only the response
/// link guarantees each retry *reaches* the server and exercises dedup.
struct RpcRetryFixture : ::testing::Test {
  sim::Scheduler scheduler;
  MessageBus bus{scheduler, []() {
                   MessageBus::Config config;
                   config.faults.links[{"server", "client"}].drop_first = 1;
                   return config;
                 }()};
};

TEST_F(RpcRetryFixture, RetryRecoversFromLostResponse) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult { return util::to_bytes("ok"); });

  CallOptions options;
  options.timeout = Duration::millis(10);
  options.retries = 3;
  options.backoff = Duration::millis(1);
  std::optional<std::string> answer;
  client.call(server.address(), 1, {}, options,
              [&](RpcResult result) { answer = util::to_string(result.value()); });
  scheduler.run();
  EXPECT_EQ(answer, "ok");
  EXPECT_EQ(bus.rpc_stats().retries, 1u);
  EXPECT_EQ(bus.rpc_stats().exhausted, 0u);
}

TEST_F(RpcRetryFixture, NonIdempotentRetryExecutesExactlyOnce) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  int executions = 0;
  server.expose(1, [&](Address, util::BytesView) -> RpcResult {
    ++executions;
    return util::to_bytes("done");
  });

  CallOptions options;
  options.timeout = Duration::millis(10);
  options.retries = 3;
  options.backoff = Duration::millis(1);
  // Not idempotent: the retry must be answered from the callee's
  // at-most-once cache, never re-executed.
  std::optional<std::string> answer;
  client.call(server.address(), 1, {}, options,
              [&](RpcResult result) { answer = util::to_string(result.value()); });
  scheduler.run();
  EXPECT_EQ(answer, "done");
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(bus.rpc_stats().deduped, 1u);
}

TEST_F(RpcRetryFixture, IdempotentRetryReExecutes) {
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  int executions = 0;
  server.expose(1, [&](Address, util::BytesView) -> RpcResult {
    ++executions;
    return util::to_bytes("done");
  });

  CallOptions options;
  options.timeout = Duration::millis(10);
  options.retries = 3;
  options.backoff = Duration::millis(1);
  options.idempotent = true;  // declared safe to re-run: skips the cache
  std::optional<std::string> answer;
  client.call(server.address(), 1, {}, options,
              [&](RpcResult result) { answer = util::to_string(result.value()); });
  scheduler.run();
  EXPECT_EQ(answer, "done");
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(bus.rpc_stats().deduped, 0u);
}

TEST_F(RpcRetryFixture, RetryAndDedupReplayShareBuffersNotCopies) {
  // Reliability without re-serialisation: the retry re-posts the stored
  // request frame and the dedup cache re-posts the stored response frame,
  // so one lost response costs zero extra payload allocations or copies.
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult { return util::Bytes(512); });

  CallOptions options;
  options.timeout = Duration::millis(10);
  options.retries = 3;
  options.backoff = Duration::millis(1);
  const util::PayloadStats before = util::payload_stats();
  std::optional<std::size_t> answer;
  client.call(server.address(), 1, {}, options,
              [&](RpcResult result) { answer = result.value().size(); });
  scheduler.run();

  EXPECT_EQ(answer, 512u);
  EXPECT_EQ(bus.rpc_stats().retries, 1u);
  EXPECT_EQ(bus.rpc_stats().deduped, 1u);
  const util::PayloadStats after = util::payload_stats();
  // Exactly two frames entered the shared domain (one request, one
  // response) despite four posts (request, retry, response, replay).
  EXPECT_EQ(after.allocations - before.allocations, 2u);
  EXPECT_EQ(after.copies - before.copies, 0u);
}

TEST_F(RpcRetryFixture, DedupCachesFailureOutcomesToo) {
  // A kNoSuchMethod response is also cached: the retried request must get
  // the same verdict back instead of vanishing into an in-flight entry.
  RpcNode server(bus, "server");
  RpcNode client(bus, "client");

  CallOptions options;
  options.timeout = Duration::millis(10);
  options.retries = 3;
  options.backoff = Duration::millis(1);
  std::optional<RpcError> error;
  client.call(server.address(), 99, {}, options, [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
  });
  scheduler.run();
  EXPECT_EQ(error, RpcError::kNoSuchMethod);
  EXPECT_EQ(bus.rpc_stats().deduped, 1u);
  EXPECT_EQ(bus.rpc_stats().exhausted, 0u);
}

TEST_F(RpcFixture, DestructionCancelsPendingTimeouts) {
  {
    RpcNode client(bus, "client");
    client.call(Address{777}, 1, {}, CallOptions::with_timeout(Duration::seconds(10)),
                [](RpcResult) { FAIL() << "must not fire"; });
  }
  scheduler.run();  // timeout event was cancelled with the node
}

}  // namespace
}  // namespace garnet::net
