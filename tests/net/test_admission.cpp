// Adaptive admission control (net/admission.hpp): ticket-pool lease
// semantics, the throughput-probe state machine, probe-journal
// determinism under arbitrary advance() cadences, the hostile wire
// surface (forged releases, clamped goodput reports), the control-class
// exemption, and the garnet.admission.* exposition.
#include "net/admission.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace garnet::net {
namespace {

using util::Duration;
using util::SimTime;

SimTime at_us(std::int64_t micros) { return SimTime::zero() + Duration::micros(micros); }

// --- TicketPool -------------------------------------------------------------

TEST(AdmissionTicketPool, RefusesWhenEveryTicketIsOutAndFlagsSaturation) {
  TicketPool pool(2);
  EXPECT_TRUE(pool.try_acquire(at_us(0), Duration::millis(1)));
  EXPECT_FALSE(pool.take_saturated());  // one ticket still free
  EXPECT_TRUE(pool.try_acquire(at_us(0), Duration::millis(1)));
  EXPECT_TRUE(pool.take_saturated());  // the fill itself counts
  EXPECT_FALSE(pool.try_acquire(at_us(0), Duration::millis(1)));
  EXPECT_EQ(pool.holders(), 2u);
  EXPECT_TRUE(pool.take_saturated());
  EXPECT_FALSE(pool.take_saturated());  // reading clears the flag
}

TEST(AdmissionTicketPool, LeaseExpiryReturnsTickets) {
  TicketPool pool(1);
  EXPECT_TRUE(pool.try_acquire(at_us(0), Duration::micros(500)));
  EXPECT_FALSE(pool.try_acquire(at_us(499), Duration::micros(500)));
  EXPECT_TRUE(pool.try_acquire(at_us(500), Duration::micros(500)));  // lease over
  EXPECT_EQ(pool.holders(), 1u);
  EXPECT_EQ(pool.release_expired(at_us(2000)), 1u);
  EXPECT_EQ(pool.holders(), 0u);
}

TEST(AdmissionTicketPool, OverdraftAlwaysGrantsAndReportsWithinSize) {
  TicketPool pool(1);
  EXPECT_TRUE(pool.acquire_overdraft(at_us(0), Duration::millis(1)));   // within
  EXPECT_FALSE(pool.acquire_overdraft(at_us(0), Duration::millis(1)));  // overdraft
  EXPECT_FALSE(pool.acquire_overdraft(at_us(0), Duration::millis(1)));
  EXPECT_EQ(pool.holders(), 3u);  // every grant is real, size or not
}

TEST(AdmissionTicketPool, ShrinkRefusesNewAdmissionsUntilLeasesDrain) {
  TicketPool pool(4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.try_acquire(at_us(0), Duration::millis(1)));
  }
  pool.resize(2);
  EXPECT_FALSE(pool.try_acquire(at_us(10), Duration::millis(1)));  // 3 holders > size 2
  EXPECT_EQ(pool.holders(), 3u);  // the shrink cancelled nothing
  EXPECT_TRUE(pool.try_acquire(at_us(1000), Duration::millis(1)));  // leases drained
  EXPECT_EQ(pool.holders(), 1u);
}

TEST(AdmissionTicketPool, ReleaseOneRefusesOnEmptyPool) {
  TicketPool pool(2);
  EXPECT_FALSE(pool.release_one());
  EXPECT_TRUE(pool.try_acquire(at_us(0), Duration::millis(1)));
  EXPECT_TRUE(pool.release_one());
  EXPECT_FALSE(pool.release_one());
  EXPECT_EQ(pool.holders(), 0u);
}

// --- ThroughputProbe --------------------------------------------------------

ProbeConfig probe_config(std::uint32_t initial) {
  ProbeConfig config;
  config.initial_concurrency = initial;
  config.min_concurrency = 2;
  config.max_concurrency = 8;
  config.step = 0.25;
  config.ewma_weight = 0.5;
  config.backoff_ratio = 0.9;
  return config;
}

TEST(AdmissionProbe, ClimbsWhileSaturatedConcurrencyBuysGoodput) {
  ThroughputProbe probe(probe_config(4));

  // Saturated with goodput rising: the up-excursion pays and commits.
  auto out = probe.on_interval(100, true);
  EXPECT_EQ(out.decision, ProbeDecision::kProbeUp);
  EXPECT_EQ(out.size, 5u);
  EXPECT_DOUBLE_EQ(out.ewma, 100.0);  // first sample seeds the EWMA

  out = probe.on_interval(300, true);
  EXPECT_EQ(out.decision, ProbeDecision::kAccept);
  EXPECT_EQ(out.size, 5u);
  EXPECT_DOUBLE_EQ(out.ewma, 200.0);

  // Still saturated: keep climbing...
  out = probe.on_interval(300, true);
  EXPECT_EQ(out.decision, ProbeDecision::kProbeUp);
  EXPECT_EQ(out.size, 6u);

  // ...but the sixth ticket only fed the shedders: revert to 5.
  out = probe.on_interval(100, true);
  EXPECT_EQ(out.decision, ProbeDecision::kBackoff);
  EXPECT_EQ(out.size, 5u);
}

TEST(AdmissionProbe, GivesBackConcurrencyTheLoadDoesNotNeed) {
  ThroughputProbe probe(probe_config(4));

  // Not saturated: try a smaller pool; near-equal goodput keeps it.
  auto out = probe.on_interval(100, false);
  EXPECT_EQ(out.decision, ProbeDecision::kProbeDown);
  EXPECT_EQ(out.size, 3u);

  out = probe.on_interval(95, false);  // ewma 97.5 >= 0.9 x best 100
  EXPECT_EQ(out.decision, ProbeDecision::kAccept);
  EXPECT_EQ(out.size, 3u);

  // Goodput collapses during the next down-excursion: back off.
  out = probe.on_interval(0, false);
  EXPECT_EQ(out.decision, ProbeDecision::kProbeDown);
  EXPECT_EQ(out.size, 2u);

  out = probe.on_interval(0, false);
  EXPECT_EQ(out.decision, ProbeDecision::kBackoff);
  EXPECT_EQ(out.size, 3u);
}

TEST(AdmissionProbe, HoldsAtTheConcurrencyBounds) {
  ThroughputProbe floor(probe_config(2));
  EXPECT_EQ(floor.on_interval(10, false).decision, ProbeDecision::kHold);
  EXPECT_EQ(floor.concurrency(), 2u);

  ThroughputProbe ceiling(probe_config(8));
  EXPECT_EQ(ceiling.on_interval(10, true).decision, ProbeDecision::kHold);
  EXPECT_EQ(ceiling.concurrency(), 8u);
}

// --- AdmissionGate ----------------------------------------------------------

AdmissionConfig static_config(std::uint32_t data_tickets, std::uint32_t control_tickets) {
  AdmissionConfig config;
  config.enabled = true;
  config.probing = false;
  config.probe.initial_concurrency = data_tickets;
  config.probe.min_concurrency = 1;
  config.probe.lease = Duration::seconds(1);      // no expiry inside a test instant
  config.probe.interval = Duration::seconds(100);  // no probe ticks
  config.control_tickets = control_tickets;
  return config;
}

TEST(AdmissionGate, DisabledGateIsTransparent) {
  AdmissionGate gate(AdmissionConfig{});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(gate.admit_data(at_us(i)));
  EXPECT_EQ(gate.stats().data_admitted, 0u);  // nothing counted, nothing held
  EXPECT_EQ(gate.data_pool().holders(), 0u);
  EXPECT_TRUE(gate.journal().empty());
}

TEST(AdmissionGate, ControlIsNeverRefusedWhileDataSaturates) {
  AdmissionGate gate(static_config(1, 1));
  EXPECT_TRUE(gate.admit_data(at_us(0)));
  EXPECT_FALSE(gate.admit_data(at_us(0)));  // data pool exhausted
  // The control-class exemption: breaker half-open probes and watchdog
  // heartbeats must get through the saturated front door, always.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(gate.admit_control(at_us(0)));
  EXPECT_EQ(gate.stats().data_admitted, 1u);
  EXPECT_EQ(gate.stats().data_rejected, 1u);
  EXPECT_EQ(gate.stats().control_admitted, 3u);
  EXPECT_EQ(gate.stats().control_overdrafts, 2u);  // pool of 1, grants 2..3
  EXPECT_EQ(gate.control_pool().holders(), 3u);
}

/// Same admit schedule, different advance() cadence: the punctual caller
/// polls between admissions, the lazy one never does. Deadlines are
/// fixed multiples of the interval, so the journals must match
/// byte-for-byte — the unsharded-runtime vs shard-plane equivalence in
/// miniature.
std::string drive_gate(bool extra_advances, AdmissionStats* stats_out = nullptr) {
  AdmissionConfig config;
  config.enabled = true;
  config.probing = true;
  config.journal_limit = 256;
  config.probe.initial_concurrency = 4;
  config.probe.min_concurrency = 2;
  config.probe.max_concurrency = 8;
  config.probe.interval = Duration::millis(1);
  config.probe.lease = Duration::micros(300);
  AdmissionGate gate(config);
  // Goodput derived from the gate's own admission counters: a
  // deterministic function of the admit order, like the dispatch
  // counters it mirrors in production.
  gate.set_goodput_source([&gate](std::uint64_t& delivered, std::uint64_t& wasted) {
    delivered = gate.stats().data_admitted;
    wasted = gate.stats().data_rejected / 2;
  });
  for (int k = 0; k < 4000; ++k) {
    const SimTime now = at_us(50 * k);
    gate.admit_data(now);
    if (extra_advances && k % 7 == 0) gate.advance(now + Duration::micros(13));
  }
  if (stats_out != nullptr) *stats_out = gate.stats();
  return gate.journal_text();
}

TEST(AdmissionGate, JournalIsByteIdenticalUnderAnyAdvanceCadence) {
  AdmissionStats punctual;
  AdmissionStats lazy;
  const std::string a = drive_gate(false, &punctual);
  const std::string b = drive_gate(true, &lazy);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(punctual.data_admitted, lazy.data_admitted);
  EXPECT_EQ(punctual.data_rejected, lazy.data_rejected);
  EXPECT_EQ(punctual.probes, lazy.probes);
  EXPECT_EQ(punctual.resizes, lazy.resizes);
  // The workload genuinely exercised the controller, not just the door.
  EXPECT_GT(punctual.data_rejected, 0u);
  EXPECT_GT(punctual.resizes, 0u);
}

TEST(AdmissionGate, ForgedReleaseFloodCannotUnderflowThePool) {
  AdmissionGate gate(static_config(4, 4));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(gate.admit_data(at_us(0)));

  util::ByteWriter flood(4);
  flood.u32(1000);  // claims far more tickets than exist
  gate.on_wire_release(flood.view(), at_us(0));
  EXPECT_EQ(gate.stats().wire_releases, 3u);  // clamped to real holders
  EXPECT_EQ(gate.data_pool().holders(), 0u);

  util::ByteWriter empty_pool(4);
  empty_pool.u32(5);
  gate.on_wire_release(empty_pool.view(), at_us(0));
  EXPECT_EQ(gate.stats().wire_releases, 3u);
  EXPECT_EQ(gate.stats().spurious_releases, 1u);

  util::ByteWriter trailing(5);
  trailing.u32(1);
  trailing.u8(0xFF);  // trailing garbage: not a release frame
  gate.on_wire_release(trailing.view(), at_us(0));
  gate.on_wire_release({}, at_us(0));  // truncated
  EXPECT_EQ(gate.stats().wire_malformed, 2u);
  EXPECT_EQ(gate.stats().wire_releases, 3u);

  // The early releases were a gift, not a leak: tickets are usable again.
  EXPECT_TRUE(gate.admit_data(at_us(0)));
}

TEST(AdmissionGate, HostileGoodputReportsAreClampedPerFrame) {
  AdmissionConfig config;
  config.enabled = true;
  config.probing = false;
  config.journal_limit = 4;
  config.probe.interval = Duration::millis(1);
  config.probe.lease = Duration::micros(10);
  AdmissionGate gate(config);

  util::ByteWriter forged(16);
  forged.u64(~std::uint64_t{0});  // a goodput plateau no real run produces
  forged.u64(0);
  gate.on_wire_goodput(forged.view());
  EXPECT_EQ(gate.stats().goodput_reports, 1u);

  util::ByteWriter truncated(8);
  truncated.u64(7);
  gate.on_wire_goodput(truncated.view());
  EXPECT_EQ(gate.stats().wire_malformed, 1u);

  gate.advance(at_us(1000));  // first probe deadline
  ASSERT_EQ(gate.journal().size(), 1u);
  EXPECT_EQ(gate.journal()[0].goodput, AdmissionGate::kWireReportClamp);
}

TEST(AdmissionGate, ResizesDriveTheDerivedCreditWindow) {
  AdmissionConfig config;
  config.enabled = true;
  config.probing = true;
  config.journal_limit = 16;
  config.probe.initial_concurrency = 4;
  config.probe.min_concurrency = 2;
  config.probe.max_concurrency = 8;
  config.probe.interval = Duration::millis(1);
  AdmissionGate gate(config);
  std::vector<std::uint32_t> sizes;
  gate.set_resize_listener([&sizes](std::uint32_t size) { sizes.push_back(size); });

  // No traffic at all: the pool never saturates, so the prober walks the
  // size down (4 -> 3 -> 2) and the listener sees every committed step.
  for (int tick = 1; tick <= 5; ++tick) gate.advance(at_us(1000 * tick));
  EXPECT_EQ(sizes, (std::vector<std::uint32_t>{3, 2}));
  EXPECT_EQ(gate.data_pool_size(), 2u);
  EXPECT_EQ(gate.derived_credit_window(), 2u);
  EXPECT_EQ(gate.stats().resizes, 2u);
}

TEST(AdmissionGate, CollectorExposesAdmissionSeriesAndDeregisters) {
  obs::MetricsRegistry registry;
  const obs::Labels data{{"pool", "data"}};
  const obs::Labels control{{"pool", "control"}};
  {
    AdmissionGate gate(static_config(3, 2));
    gate.set_metrics(registry);
    for (int i = 0; i < 4; ++i) gate.admit_data(at_us(0));     // 3 in, 1 refused
    for (int i = 0; i < 3; ++i) gate.admit_control(at_us(0));  // 1 overdraft

    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.gauge("garnet.admission.tickets", data), 3.0);
    EXPECT_EQ(snapshot.gauge("garnet.admission.holders", data), 3.0);
    EXPECT_EQ(snapshot.counter("garnet.admission.admitted", data), 3u);
    EXPECT_EQ(snapshot.counter("garnet.admission.rejected", data), 1u);
    EXPECT_EQ(snapshot.gauge("garnet.admission.tickets", control), 2.0);
    EXPECT_EQ(snapshot.counter("garnet.admission.admitted", control), 3u);
    EXPECT_EQ(snapshot.counter("garnet.admission.overdrafts", control), 1u);
    ASSERT_NE(snapshot.find("garnet.admission.goodput"), nullptr);
    ASSERT_NE(snapshot.find("garnet.admission.probes"), nullptr);
  }
  // Destroying the gate removed its collector from the shared registry.
  EXPECT_EQ(registry.snapshot().find("garnet.admission.tickets", data), nullptr);
}

TEST(AdmissionGate, RenderProbeRecordIsByteStable) {
  ProbeRecord record;
  record.at = at_us(50);
  record.decision = ProbeDecision::kAccept;
  record.from_size = 4;
  record.to_size = 5;
  record.goodput = 7;
  record.ewma_milli = -250;
  EXPECT_EQ(render_probe_record(record), "50000 probe accept 4->5 goodput=7 ewma_milli=-250\n");
}

}  // namespace
}  // namespace garnet::net
