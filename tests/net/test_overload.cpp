// Overload-control unit suite: bounded inboxes (all three overflow
// policies), the control-over-data priority invariant, NACK fast-fail in
// the RPC layer, the per-callee circuit breaker lifecycle, and the
// byte-comparable shed journal.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/bus.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace garnet::net {
namespace {

using util::Duration;

constexpr MessageType kData = app_type(0);
constexpr MessageType kAppControl = app_type(7);

util::SharedBytes tagged(std::uint32_t tag) {
  util::ByteWriter w(4);
  w.u32(tag);
  return util::take_shared(std::move(w));
}

std::uint32_t tag_of(const Envelope& envelope) {
  util::ByteReader r(envelope.payload);
  return r.u32();
}

/// Bus with deterministic transport (no jitter) and one bounded endpoint
/// "sink" whose handler records the tag of every envelope it serves.
struct OverloadFixture : ::testing::Test {
  sim::Scheduler scheduler;

  MessageBus::Config config_with(InboxConfig inbox) {
    MessageBus::Config config;
    config.latency = Duration::micros(10);
    config.max_jitter = Duration{};
    config.control_types = {kAppControl};
    config.inboxes["sink"] = inbox;
    return config;
  }

  static InboxConfig small_inbox(OverflowPolicy policy) {
    InboxConfig inbox;
    inbox.capacity = 2;
    inbox.policy = policy;
    inbox.service_time = Duration::millis(1);
    return inbox;
  }
};

TEST_F(OverloadFixture, InactiveInboxDeliversDirectlyAndShedsNothing) {
  MessageBus bus(scheduler, {});  // no inbox config anywhere
  std::vector<std::uint32_t> served;
  const Address sink = bus.add_endpoint("sink", [&](Envelope e) { served.push_back(tag_of(e)); });
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  for (std::uint32_t i = 0; i < 100; ++i) bus.post(src, sink, kData, tagged(i));
  scheduler.run();

  EXPECT_EQ(served.size(), 100u);
  EXPECT_EQ(bus.shed_stats().data_total(), 0u);
  EXPECT_EQ(bus.shed_stats().control_total(), 0u);
  EXPECT_EQ(bus.inbox_depth(sink), 0u);
}

TEST_F(OverloadFixture, DropNewestShedsTheArrivingEnvelope) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kDropNewest)));
  std::vector<std::uint32_t> served;
  const Address sink = bus.add_endpoint("sink", [&](Envelope e) { served.push_back(tag_of(e)); });
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  // All four arrive in the same service window: #0 enters service,
  // #1 and #2 fill the two queue slots, #3 is the newest and is shed.
  for (std::uint32_t i = 0; i < 4; ++i) bus.post(src, sink, kData, tagged(i));
  scheduler.run();

  EXPECT_EQ(served, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(bus.shed_stats().data_drop_newest, 1u);
  EXPECT_EQ(bus.shed_stats().data_total(), 1u);
}

TEST_F(OverloadFixture, DropOldestEvictsTheQueueHead) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kDropOldest)));
  std::vector<std::uint32_t> served;
  const Address sink = bus.add_endpoint("sink", [&](Envelope e) { served.push_back(tag_of(e)); });
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  // #0 in service, #1/#2 queued, #3 evicts #1 (the oldest queued).
  for (std::uint32_t i = 0; i < 4; ++i) bus.post(src, sink, kData, tagged(i));
  scheduler.run();

  EXPECT_EQ(served, (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(bus.shed_stats().data_drop_oldest, 1u);
}

TEST_F(OverloadFixture, RejectNackEchoesTypeAndPayloadPrefixToSender) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kRejectNack)));
  const Address sink = bus.add_endpoint("sink", [](Envelope) {});
  std::vector<Envelope> nacks;
  const Address src = bus.add_endpoint("src", [&](Envelope e) {
    if (e.type == MessageType::kNack) nacks.push_back(std::move(e));
  });

  for (std::uint32_t i = 0; i < 4; ++i) bus.post(src, sink, kData, tagged(i));
  scheduler.run();

  EXPECT_EQ(bus.shed_stats().data_reject_nack, 1u);
  EXPECT_EQ(bus.shed_stats().nacks_sent, 1u);
  ASSERT_EQ(nacks.size(), 1u);
  util::ByteReader r(nacks[0].payload);
  EXPECT_EQ(static_cast<MessageType>(r.u16()), kData);
  EXPECT_EQ(r.u32(), 3u);  // the rejected envelope's own payload prefix
}

TEST_F(OverloadFixture, ControlArrivalDisplacesOldestDataWhenFull) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kDropNewest)));
  std::vector<std::pair<bool, std::uint32_t>> served;  // (is_control, tag)
  const Address sink = bus.add_endpoint("sink", [&](Envelope e) {
    served.emplace_back(e.type == kAppControl, tag_of(e));
  });
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  // Fill with data (#0 in service, #1/#2 queued), then a control
  // envelope arrives at capacity: it must displace the oldest queued
  // data (#1) — under *every* policy, even kDropNewest — and must be
  // dequeued ahead of the surviving data.
  for (std::uint32_t i = 0; i < 3; ++i) bus.post(src, sink, kData, tagged(i));
  bus.post(src, sink, kAppControl, tagged(99));
  scheduler.run();

  EXPECT_EQ(served,
            (std::vector<std::pair<bool, std::uint32_t>>{{false, 0}, {true, 99}, {false, 2}}));
  EXPECT_EQ(bus.shed_stats().data_total(), 1u);
  EXPECT_EQ(bus.shed_stats().control_total(), 0u);
}

TEST_F(OverloadFixture, ControlIsShedOnlyWhenTheWholeInboxIsControl) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kDropNewest)));
  const Address sink = bus.add_endpoint("sink", [](Envelope) {});
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  // Only control traffic: #0 in service, #1/#2 queued, #3 overflows.
  // With no data to displace, the class invariant allows a control shed.
  for (std::uint32_t i = 0; i < 4; ++i) bus.post(src, sink, kAppControl, tagged(i));
  scheduler.run();

  EXPECT_EQ(bus.shed_stats().control_drop_newest, 1u);
  EXPECT_EQ(bus.shed_stats().data_total(), 0u);
}

TEST_F(OverloadFixture, InboxDepthGaugeTracksTheQueue) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kDropNewest)));
  obs::MetricsRegistry registry;
  bus.set_metrics(registry);
  const Address sink = bus.add_endpoint("sink", [](Envelope) {});
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  for (std::uint32_t i = 0; i < 3; ++i) bus.post(src, sink, kData, tagged(i));
  scheduler.run_until(util::SimTime{} + Duration::micros(50));

  // #0 is in service; #1 and #2 are queued.
  EXPECT_EQ(bus.inbox_depth(sink), 2u);
  EXPECT_EQ(bus.total_inbox_depth(), 2u);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge("garnet.bus.inbox_depth", {{"endpoint", "sink"}}), 2.0);

  scheduler.run();
  EXPECT_EQ(bus.inbox_depth(sink), 0u);
}

TEST_F(OverloadFixture, ShedGridIsExportedWithClassAndPolicyLabels) {
  MessageBus bus(scheduler, config_with(small_inbox(OverflowPolicy::kDropOldest)));
  obs::MetricsRegistry registry;
  bus.set_metrics(registry);
  const Address sink = bus.add_endpoint("sink", [](Envelope) {});
  const Address src = bus.add_endpoint("src", [](Envelope) {});

  for (std::uint32_t i = 0; i < 6; ++i) bus.post(src, sink, kData, tagged(i));
  scheduler.run();

  // #0 enters service, #1/#2 fill the queue; #3..#5 each evict the head.
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.bus.shed", {{"class", "data"}, {"policy", "drop_oldest"}}), 3u);
  EXPECT_EQ(snap.counter("garnet.bus.shed", {{"class", "control"}, {"policy", "drop_oldest"}}),
            0u);
}

TEST_F(OverloadFixture, ShedJournalIsByteIdenticalAcrossIdenticalRuns) {
  const auto run_once = [this] {
    sim::Scheduler local;
    MessageBus::Config config;
    config.latency = Duration::micros(10);
    config.max_jitter = Duration{};
    config.shed_journal_limit = 64;
    InboxConfig inbox;
    inbox.capacity = 1;
    inbox.policy = OverflowPolicy::kDropNewest;
    inbox.service_time = Duration::millis(1);
    config.inboxes["sink"] = inbox;
    MessageBus bus(local, config);
    const Address sink = bus.add_endpoint("sink", [](Envelope) {});
    const Address src = bus.add_endpoint("src", [](Envelope) {});
    for (std::uint32_t i = 0; i < 10; ++i) bus.post(src, sink, kData, tagged(i));
    local.run();
    return bus.shed_journal_text();
  };

  const std::string first = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("shed data drop_newest src->sink"), std::string::npos);
  EXPECT_EQ(first, run_once());
}

// --- RPC-layer integration: NACK fast-fail and the circuit breaker -------

TEST_F(OverloadFixture, NackFailsTheRpcAttemptWithoutWaitingForTimeout) {
  // The server's inbox holds one queued envelope and rejects with NACK.
  // A burst of calls therefore gets one served, one queued, and the rest
  // nacked — each nack cancels its attempt timer immediately.
  MessageBus::Config config;
  config.latency = Duration::micros(10);
  config.max_jitter = Duration{};
  InboxConfig inbox;
  inbox.capacity = 1;
  inbox.policy = OverflowPolicy::kRejectNack;
  inbox.service_time = Duration::millis(5);
  config.inboxes["server"] = inbox;
  MessageBus bus(scheduler, config);

  RpcNode server(bus, "server");
  RpcNode client(bus, "client");
  server.expose(1, [](Address, util::BytesView) -> RpcResult { return util::to_bytes("ok"); });

  CallOptions options;
  options.timeout = Duration::seconds(10);  // a plain timeout would blow the deadline below
  options.retries = 0;

  int ok = 0, failed = 0;
  for (int i = 0; i < 4; ++i) {
    client.call(server.address(), 1, {}, options, [&](RpcResult result) {
      result.ok() ? ++ok : ++failed;
    });
  }
  scheduler.run_until(util::SimTime{} + Duration::seconds(1));

  EXPECT_EQ(ok, 2);      // in-service + queued both complete
  EXPECT_EQ(failed, 2);  // the shed pair failed via NACK, not timeout
  EXPECT_EQ(bus.rpc_stats().nacked, 2u);
  EXPECT_EQ(bus.shed_stats().nacks_sent, 2u);
}

struct BreakerFixture : ::testing::Test {
  sim::Scheduler scheduler;
  MessageBus::Config config;
  BreakerFixture() {
    config.latency = Duration::micros(10);
    config.max_jitter = Duration{};
    config.breaker.failure_threshold = 2;
    config.breaker.open_for = Duration::millis(100);
  }

  CallOptions fast() const {
    CallOptions options;
    options.timeout = Duration::millis(2);
    options.retries = 0;
    return options;
  }
};

TEST_F(BreakerFixture, OpensAfterConsecutiveExhaustionsAndFailsFast) {
  MessageBus bus(scheduler, config);
  RpcNode client(bus, "client");
  RpcNode server(bus, "server");
  // A handler that never responds: an unknown method would answer
  // kNoSuchMethod (which counts as alive), so attempts must exhaust.
  server.expose_async(1, [](Address, util::BytesView, RpcResponder) {});

  std::vector<RpcError> errors;
  const auto record = [&](RpcResult result) {
    ASSERT_FALSE(result.ok());
    errors.push_back(result.error());
  };

  client.call(server.address(), 1, {}, fast(), record);
  scheduler.run();
  EXPECT_EQ(client.breaker_state(server.address()), RpcNode::BreakerState::kClosed);

  client.call(server.address(), 1, {}, fast(), record);
  scheduler.run();
  EXPECT_EQ(client.breaker_state(server.address()), RpcNode::BreakerState::kOpen);
  EXPECT_EQ(bus.rpc_stats().breaker_opens, 1u);
  EXPECT_EQ(bus.rpc_stats().open_breakers, 1u);

  // While open: rejected without touching the wire.
  const std::uint64_t calls_before = bus.rpc_stats().calls;
  client.call(server.address(), 1, {}, fast(), record);
  scheduler.run();
  EXPECT_EQ(bus.rpc_stats().calls, calls_before);  // never counted as a call
  EXPECT_EQ(bus.rpc_stats().breaker_fast_fails, 1u);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[2], RpcError::kCircuitOpen);
}

TEST_F(BreakerFixture, HalfOpenProbeFailureReopensProbeSuccessCloses) {
  MessageBus bus(scheduler, config);
  RpcNode client(bus, "client");
  RpcNode server(bus, "server");
  bool answer = false;
  server.expose_async(1, [&](Address, util::BytesView, RpcResponder respond) {
    if (answer) respond(util::to_bytes("pong"));
  });

  // Trip the breaker (two exhausted budgets).
  for (int i = 0; i < 2; ++i) {
    client.call(server.address(), 1, {}, fast(), [](RpcResult) {});
    scheduler.run();
  }
  ASSERT_EQ(client.breaker_state(server.address()), RpcNode::BreakerState::kOpen);

  // After open_for the next call is a half-open probe; the server is
  // still dead, so the probe exhausts and the breaker reopens.
  scheduler.run_until(scheduler.now() + Duration::millis(150));
  EXPECT_EQ(client.breaker_state(server.address()), RpcNode::BreakerState::kHalfOpen);
  client.call(server.address(), 1, {}, fast(), [](RpcResult) {});
  scheduler.run();
  EXPECT_EQ(client.breaker_state(server.address()), RpcNode::BreakerState::kOpen);
  EXPECT_EQ(bus.rpc_stats().breaker_opens, 2u);

  // Second cool-down; the server recovers; the probe answer closes it.
  answer = true;
  scheduler.run_until(scheduler.now() + Duration::millis(150));
  bool succeeded = false;
  client.call(server.address(), 1, {}, fast(),
              [&](RpcResult result) { succeeded = result.ok(); });
  scheduler.run();
  EXPECT_TRUE(succeeded);
  EXPECT_EQ(client.breaker_state(server.address()), RpcNode::BreakerState::kClosed);
  EXPECT_EQ(bus.rpc_stats().open_breakers, 0u);
}

TEST_F(BreakerFixture, ConcurrentCallsDuringHalfOpenProbeFailFast) {
  MessageBus bus(scheduler, config);
  RpcNode client(bus, "client");
  RpcNode server(bus, "server");
  server.expose_async(1, [](Address, util::BytesView, RpcResponder) {});

  for (int i = 0; i < 2; ++i) {
    client.call(server.address(), 1, {}, fast(), [](RpcResult) {});
    scheduler.run();
  }
  scheduler.run_until(scheduler.now() + Duration::millis(150));

  // First call is the probe (goes to the wire); the second, issued while
  // the probe is in flight, is rejected immediately.
  std::vector<RpcError> errors;
  for (int i = 0; i < 2; ++i) {
    client.call(server.address(), 1, {}, fast(), [&](RpcResult result) {
      ASSERT_FALSE(result.ok());
      errors.push_back(result.error());
    });
  }
  scheduler.run();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], RpcError::kCircuitOpen);  // fast-fail resolves first
  EXPECT_EQ(errors[1], RpcError::kTimeout);      // the probe's real exhaustion
  EXPECT_EQ(bus.rpc_stats().breaker_fast_fails, 1u);
}

}  // namespace
}  // namespace garnet::net
