// Deterministic fault injection: the FaultInjector's verdict stream and
// journal must be a pure function of (plan, post sequence), partitions
// must open/heal on schedule, and every fault must be counted.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include "net/bus.hpp"
#include "obs/metrics.hpp"

namespace garnet::net {
namespace {

using util::Duration;
using util::SimTime;

struct FaultFixture : ::testing::Test {
  sim::Scheduler scheduler;
};

TEST_F(FaultFixture, EmptyPlanIsDisabled) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  FaultPlan plan;
  plan.global.drop = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan = FaultPlan{};
  plan.links[{"a", "b"}].drop_first = 1;
  EXPECT_TRUE(plan.enabled());
  plan = FaultPlan{};
  plan.partitions.push_back({"p", {"a"}, SimTime{}, std::nullopt});
  EXPECT_TRUE(plan.enabled());
}

TEST_F(FaultFixture, CleanLinkDeliversUntouched) {
  FaultPlan plan;
  plan.links[{"a", "b"}].drop = 1.0;  // some *other* link is faulty
  FaultInjector injector(scheduler, plan);
  const auto verdict = injector.decide("c", "d");
  EXPECT_TRUE(verdict.deliver);
  EXPECT_FALSE(verdict.duplicate);
  EXPECT_EQ(verdict.extra_delay.ns, 0);
  EXPECT_EQ(injector.counters().total(), 0u);
}

TEST_F(FaultFixture, DropFirstDropsExactlyFirstN) {
  FaultPlan plan;
  plan.links[{"a", "b"}].drop_first = 3;
  FaultInjector injector(scheduler, plan);

  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.decide("a", "b").deliver) ++delivered;
  }
  EXPECT_EQ(delivered, 7);
  EXPECT_EQ(injector.counters().dropped, 3u);
  // The reverse direction is a different link: untouched.
  EXPECT_TRUE(injector.decide("b", "a").deliver);
}

TEST_F(FaultFixture, DropProbabilityRoughlyHonoured) {
  FaultPlan plan;
  plan.global.drop = 0.5;
  FaultInjector injector(scheduler, plan);
  int dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!injector.decide("a", "b").deliver) ++dropped;
  }
  EXPECT_GT(dropped, 350);
  EXPECT_LT(dropped, 650);
  EXPECT_EQ(injector.counters().dropped, static_cast<std::uint64_t>(dropped));
}

TEST_F(FaultFixture, ExtraLatencyIsDeterministicPerLink) {
  FaultPlan plan;
  plan.links[{"a", "b"}].extra_latency = Duration::millis(7);
  FaultInjector injector(scheduler, plan);
  const auto verdict = injector.decide("a", "b");
  EXPECT_TRUE(verdict.deliver);
  EXPECT_EQ(verdict.extra_delay.ns, Duration::millis(7).ns);
  EXPECT_EQ(injector.counters().delayed, 1u);
}

TEST_F(FaultFixture, DuplicateProducesTrailingCopy) {
  FaultPlan plan;
  plan.global.duplicate = 1.0;
  FaultInjector injector(scheduler, plan);
  const auto verdict = injector.decide("a", "b");
  EXPECT_TRUE(verdict.deliver);
  EXPECT_TRUE(verdict.duplicate);
  EXPECT_GE(verdict.duplicate_delay.ns, 0);
  EXPECT_EQ(injector.counters().duplicated, 1u);
}

TEST_F(FaultFixture, ReorderAddsBoundedRandomDelay) {
  FaultPlan plan;
  plan.global.reorder = 1.0;
  plan.global.reorder_window = Duration::millis(2);
  FaultInjector injector(scheduler, plan);
  for (int i = 0; i < 100; ++i) {
    const auto verdict = injector.decide("a", "b");
    EXPECT_TRUE(verdict.deliver);
    EXPECT_GE(verdict.extra_delay.ns, 0);
    EXPECT_LT(verdict.extra_delay.ns, Duration::millis(2).ns);
  }
  EXPECT_EQ(injector.counters().reordered, 100u);
}

TEST_F(FaultFixture, SameSeedSameVerdictsAndJournal) {
  FaultPlan plan;
  plan.seed = 0xFEEDFACE;
  plan.global.drop = 0.3;
  plan.global.duplicate = 0.2;
  plan.global.reorder = 0.1;
  plan.journal_limit = 4096;

  const auto replay = [&] {
    sim::Scheduler fresh;
    FaultInjector injector(fresh, plan);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 500; ++i) {
      const auto verdict = injector.decide("svc.a", "svc.b");
      stream.push_back((verdict.deliver ? 1u : 0u) | (verdict.duplicate ? 2u : 0u));
      stream.push_back(static_cast<std::uint64_t>(verdict.extra_delay.ns));
      stream.push_back(static_cast<std::uint64_t>(verdict.duplicate_delay.ns));
    }
    return std::make_tuple(stream, injector.journal_text(), injector.counters());
  };

  const auto first = replay();
  const auto second = replay();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));  // byte-identical journal
  EXPECT_FALSE(std::get<1>(first).empty());
  EXPECT_EQ(std::get<2>(first).dropped, std::get<2>(second).dropped);
  EXPECT_EQ(std::get<2>(first).duplicated, std::get<2>(second).duplicated);
  EXPECT_EQ(std::get<2>(first).reordered, std::get<2>(second).reordered);
}

TEST_F(FaultFixture, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.global.drop = 0.5;
  plan.journal_limit = 4096;
  const auto journal_for = [&](std::uint64_t seed) {
    sim::Scheduler fresh;
    FaultPlan seeded = plan;
    seeded.seed = seed;
    FaultInjector injector(fresh, seeded);
    for (int i = 0; i < 200; ++i) (void)injector.decide("a", "b");
    return injector.journal_text();
  };
  EXPECT_NE(journal_for(1), journal_for(2));
}

TEST_F(FaultFixture, PartitionBlocksCrossTrafficBothWays) {
  FaultPlan plan;
  plan.partitions.push_back({"west-wing", {"svc.a", "svc.b"}, SimTime{}, std::nullopt});
  FaultInjector injector(scheduler, plan);

  EXPECT_TRUE(injector.partition_open("west-wing"));
  EXPECT_FALSE(injector.decide("svc.a", "svc.c").deliver);
  EXPECT_FALSE(injector.decide("svc.c", "svc.a").deliver);
  // Traffic among members, and among outsiders, still flows.
  EXPECT_TRUE(injector.decide("svc.a", "svc.b").deliver);
  EXPECT_TRUE(injector.decide("svc.c", "svc.d").deliver);
  EXPECT_EQ(injector.counters().partitioned, 2u);

  injector.heal_partition("west-wing");
  EXPECT_FALSE(injector.partition_open("west-wing"));
  EXPECT_TRUE(injector.decide("svc.a", "svc.c").deliver);
}

TEST_F(FaultFixture, PartitionOpensAndHealsOnSchedule) {
  FaultPlan plan;
  FaultPlan::PartitionSpec spec;
  spec.name = "storm";
  spec.members = {"svc.a"};
  spec.opens_at = SimTime{} + Duration::millis(100);
  spec.heals_at = SimTime{} + Duration::millis(200);
  plan.partitions.push_back(spec);
  FaultInjector injector(scheduler, plan);

  EXPECT_TRUE(injector.decide("svc.a", "svc.b").deliver);  // not open yet
  scheduler.run_for(Duration::millis(150));
  EXPECT_TRUE(injector.partition_open("storm"));
  EXPECT_FALSE(injector.decide("svc.a", "svc.b").deliver);
  scheduler.run_for(Duration::millis(100));
  EXPECT_FALSE(injector.partition_open("storm"));
  EXPECT_TRUE(injector.decide("svc.a", "svc.b").deliver);
}

TEST_F(FaultFixture, JournalLimitCapsRecording) {
  FaultPlan plan;
  plan.global.drop = 1.0;
  plan.journal_limit = 5;
  FaultInjector injector(scheduler, plan);
  for (int i = 0; i < 50; ++i) (void)injector.decide("a", "b");
  EXPECT_EQ(injector.journal().size(), 5u);
  EXPECT_EQ(injector.counters().dropped, 50u);  // counting is never capped
}

TEST_F(FaultFixture, RelayAndBeaconFaultsEnableThePlan) {
  FaultPlan plan;
  plan.relay_faults.push_back({7, SimTime{} + Duration::millis(100), std::nullopt});
  EXPECT_TRUE(plan.enabled());
  plan = FaultPlan{};
  plan.beacon_faults.push_back({7, SimTime{} + Duration::millis(100), std::nullopt});
  EXPECT_TRUE(plan.enabled());
}

TEST_F(FaultFixture, RelayFaultsFireOnScheduleAndJournal) {
  FaultPlan plan;
  plan.journal_limit = 64;
  plan.relay_faults.push_back(
      {7, SimTime{} + Duration::millis(100), Duration::millis(50)});
  FaultInjector injector(scheduler, plan);

  std::vector<std::pair<std::uint32_t, bool>> events;
  injector.set_relay_fault_handler(
      [&](std::uint32_t node, bool restart) { events.emplace_back(node, restart); });

  scheduler.run_for(Duration::millis(90));
  EXPECT_TRUE(events.empty());  // not yet
  scheduler.run_for(Duration::millis(30));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (std::pair<std::uint32_t, bool>{7, false}));
  scheduler.run_for(Duration::millis(50));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], (std::pair<std::uint32_t, bool>{7, true}));

  EXPECT_EQ(injector.counters().relay_crashed, 1u);
  EXPECT_EQ(injector.counters().relay_restarted, 1u);
  const std::string journal = injector.journal_text();
  EXPECT_NE(journal.find("relay-crash"), std::string::npos);
  EXPECT_NE(journal.find("relay-restart"), std::string::npos);
  EXPECT_NE(journal.find("sensor-7"), std::string::npos);
}

TEST_F(FaultFixture, BeaconFaultsFireOnScheduleAndJournal) {
  FaultPlan plan;
  plan.journal_limit = 64;
  plan.beacon_faults.push_back(
      {9, SimTime{} + Duration::millis(100), Duration::millis(50)});
  FaultInjector injector(scheduler, plan);

  std::vector<std::pair<std::uint32_t, bool>> events;
  injector.set_beacon_fault_handler(
      [&](std::uint32_t node, bool deaf) { events.emplace_back(node, deaf); });

  scheduler.run_for(Duration::millis(200));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<std::uint32_t, bool>{9, true}));
  EXPECT_EQ(events[1], (std::pair<std::uint32_t, bool>{9, false}));
  EXPECT_EQ(injector.counters().beacon_lost, 1u);
  EXPECT_EQ(injector.counters().beacon_restored, 1u);
  const std::string journal = injector.journal_text();
  EXPECT_NE(journal.find("beacon-loss"), std::string::npos);
  EXPECT_NE(journal.find("beacon-restore"), std::string::npos);
}

TEST_F(FaultFixture, RelayChurnConsumesNoRngDraws) {
  // Relay and beacon faults are pure time triggers: adding them to a plan
  // must not shift the link-fault decision stream by a single draw.
  FaultPlan base;
  base.seed = 0xBEE;
  base.global.drop = 0.3;
  base.global.duplicate = 0.2;

  const auto verdict_stream = [&](const FaultPlan& plan) {
    sim::Scheduler fresh;
    FaultInjector injector(fresh, plan);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 400; ++i) {
      fresh.run_for(Duration::millis(1));  // let scheduled faults fire
      const auto verdict = injector.decide("svc.a", "svc.b");
      stream.push_back((verdict.deliver ? 1u : 0u) | (verdict.duplicate ? 2u : 0u));
      stream.push_back(static_cast<std::uint64_t>(verdict.duplicate_delay.ns));
    }
    return stream;
  };

  FaultPlan churny = base;
  churny.relay_faults.push_back(
      {1, SimTime{} + Duration::millis(50), Duration::millis(25)});
  churny.relay_faults.push_back({2, SimTime{} + Duration::millis(120), std::nullopt});
  churny.beacon_faults.push_back(
      {3, SimTime{} + Duration::millis(200), Duration::millis(40)});

  EXPECT_EQ(verdict_stream(base), verdict_stream(churny));
}

TEST_F(FaultFixture, BusInstallsInjectorAndCountsFaults) {
  // End-to-end through MessageBus::post: a total drop plan starves the
  // endpoint and the faults surface in the telemetry collector.
  obs::MetricsRegistry registry;
  MessageBus::Config config;
  config.faults.global.drop = 1.0;
  MessageBus bus(scheduler, config);
  bus.set_metrics(registry);
  ASSERT_NE(bus.fault_injector(), nullptr);

  int received = 0;
  const Address a = bus.add_endpoint("a", [&](Envelope) { ++received; });
  for (int i = 0; i < 10; ++i) bus.post(a, a, MessageType::kAppBase, {});
  scheduler.run();

  EXPECT_EQ(received, 0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("garnet.bus.faults", {{"kind", "drop"}}), 10u);
  EXPECT_EQ(snap.counter("garnet.bus.posted"), 10u);
  EXPECT_EQ(snap.counter("garnet.bus.delivered"), 0u);
}

TEST_F(FaultFixture, BusWithoutPlanHasNoInjector) {
  MessageBus bus(scheduler, MessageBus::Config{});
  EXPECT_EQ(bus.fault_injector(), nullptr);
}

}  // namespace
}  // namespace garnet::net
